"""Design-choice ablations (DESIGN.md section 5).

Beyond the paper's own figures, these benches isolate each tunable the
auto-tuner exposes so the trade-offs are visible in isolation:

* bit-flag word type (u8/u16/u32): footprint vs flag loads;
* block dimensions: fill-in vs index compression;
* strategy 1 vs strategy 2 as a function of mean segment length;
* thread-level tile size;
* BCCOO vs BCCOO+ slice count on a wide (LP-like) matrix vs a square
  FEM-like matrix -- the paper's "BCCOO+ chosen only for LP" result.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import render_table
from repro.formats import BCCOOMatrix, BCCOOPlusMatrix
from repro.gpu import GTX680, TimingModel
from repro.kernels import YaSpMVConfig, YaSpMVKernel
from repro.matrices import fem_banded, get_spec, wide_rows

from conftest import record_table

KERNEL = YaSpMVKernel()
TIMING = TimingModel(GTX680)


def _time(fmt, x, cfg) -> float:
    return TIMING.estimate(KERNEL.run(fmt, x, GTX680, config=cfg).stats).t_total


@pytest.fixture(scope="module")
def fem_case(cap_nnz):
    spec = get_spec("FEM/Harbor")
    A = spec.load(scale=spec.scale_for_nnz(min(cap_nnz, 300_000)))
    return A, np.ones(A.shape[1])


class TestBitWordAblation:
    def test_word_type_footprint_monotone(self, fem_case, benchmark):
        A, x = fem_case

        def footprints():
            return [
                BCCOOMatrix.from_scipy(A, bit_word_dtype=d).footprint_bytes()
                for d in (np.uint8, np.uint16, np.uint32)
            ]

        u8, u16, u32 = benchmark.pedantic(footprints, rounds=1, iterations=1)
        assert u8 <= u16 <= u32
        rows = [[d, f"{b / 2**20:.3f}"] for d, b in zip(["u8", "u16", "u32"], [u8, u16, u32])]
        record_table(
            "ablation_bitword",
            render_table(["word", "MB"], rows, title="Ablation: bit-flag word type"),
        )


class TestBlockDimensionAblation:
    def test_blocking_helps_blocked_matrices_only(self, cap_nnz, benchmark):
        fem = fem_banded(30_000, nnz_per_row=48, block=4, seed=3)
        x = np.ones(fem.shape[1])

        def times():
            t11 = _time(BCCOOMatrix.from_scipy(fem, 1, 1), x, YaSpMVConfig())
            t44 = _time(BCCOOMatrix.from_scipy(fem, 4, 4), x, YaSpMVConfig())
            return t11, t44

        t11, t44 = benchmark.pedantic(times, rounds=1, iterations=1)
        # Dense 4x4 clusters: blocking must pay off.
        assert t44 < t11
        record_table(
            "ablation_blocks",
            f"Ablation: block size on 4x4-clustered FEM matrix\n"
            f"  1x1: {t11 * 1e6:.1f} us   4x4: {t44 * 1e6:.1f} us",
        )


class TestStrategyAblation:
    def test_strategy_choice_tracks_segment_length(self, benchmark):
        # Short segments (few blocks per row) favour strategy 1's
        # register buffers; long rows favour strategy 2's result cache.
        short_rows = fem_banded(40_000, nnz_per_row=4, block=1, seed=1)
        long_rows = wide_rows(128, 40_000, 1500, seed=1)

        def run():
            out = {}
            for label, A in (("short", short_rows), ("long", long_rows)):
                x = np.ones(A.shape[1])
                fmt = BCCOOMatrix.from_scipy(A)
                s1 = _time(fmt, x, YaSpMVConfig(strategy=1, reg_size=16))
                s2 = _time(fmt, x, YaSpMVConfig(strategy=2, tile_size=16))
                out[label] = (s1, s2)
            return out

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            [label, f"{s1 * 1e6:.1f}", f"{s2 * 1e6:.1f}"]
            for label, (s1, s2) in res.items()
        ]
        record_table(
            "ablation_strategy",
            render_table(
                ["segments", "strategy1 (us)", "strategy2 (us)"],
                rows,
                title="Ablation: strategy 1 vs 2 by segment length",
            ),
        )
        # Long segments: the result cache must not lose.
        s1_long, s2_long = res["long"]
        assert s2_long <= s1_long * 1.1


class TestTileSizeAblation:
    def test_tile_sweep(self, fem_case, benchmark):
        A, x = fem_case
        fmt = BCCOOMatrix.from_scipy(A)

        def sweep():
            return {
                t: _time(fmt, x, YaSpMVConfig(strategy=2, tile_size=t))
                for t in (2, 4, 8, 16, 32)
            }

        times = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [[str(t), f"{v * 1e6:.1f}"] for t, v in times.items()]
        record_table(
            "ablation_tile",
            render_table(["tile", "time (us)"], rows, title="Ablation: tile size"),
        )
        # Extremely small tiles waste auxiliary bandwidth: tile 16
        # should beat tile 2.
        assert times[16] < times[2]


class TestSliceAblation:
    def test_bccoo_plus_pays_only_when_vector_overflows_cache(self, benchmark):
        # LP-like: wide with heavy rows, so each vector element is
        # reused a few times (the real LP reuses each column ~10x) but
        # the 800 KB vector swamps the 48 KB texture cache -- the
        # regime where vertical slicing converts those reuses to hits.
        lp_like = wide_rows(1000, 200_000, 800, seed=2)
        # FEM-like: square, vector fits comfortably after a few slices.
        fem = fem_banded(12_000, nnz_per_row=16, block=2, seed=2)

        def run():
            out = {}
            for label, A in (("lp-like", lp_like), ("fem-like", fem)):
                x = np.ones(A.shape[1])
                base = _time(BCCOOMatrix.from_scipy(A), x, YaSpMVConfig())
                sliced = _time(
                    BCCOOPlusMatrix.from_scipy(A, slice_count=8),
                    x,
                    YaSpMVConfig(),
                )
                out[label] = (base, sliced)
            return out

        res = benchmark.pedantic(run, rounds=1, iterations=1)
        rows = [
            [label, f"{b * 1e6:.1f}", f"{s * 1e6:.1f}", "BCCOO+" if s < b else "BCCOO"]
            for label, (b, s) in res.items()
        ]
        record_table(
            "ablation_slices",
            render_table(
                ["matrix", "BCCOO (us)", "BCCOO+ x8 (us)", "winner"],
                rows,
                title="Ablation: vertical slicing (paper: BCCOO+ only for LP)",
            ),
        )
        base, sliced = res["lp-like"]
        assert sliced < base  # slicing must pay on the LP-like case
        base_f, sliced_f = res["fem-like"]
        assert base_f <= sliced_f * 1.05  # and not on the FEM-like case


class TestPrecisionAblation:
    def test_fp64_costs_roughly_bandwidth_ratio(self, fem_case, benchmark):
        """Extension ablation: double precision on a bandwidth-bound
        matrix costs roughly the byte inflation (not the 24x fp64 ALU
        penalty), because SpMV stays memory-bound."""
        A, x = fem_case
        fmt = BCCOOMatrix.from_scipy(A)

        def run():
            t32 = _time(fmt, x, YaSpMVConfig(precision="fp32"))
            t64 = _time(fmt, x, YaSpMVConfig(precision="fp64"))
            return t32, t64

        t32, t64 = benchmark.pedantic(run, rounds=1, iterations=1)
        ratio = t64 / t32
        record_table(
            "ablation_precision",
            f"Ablation: precision (fp64/fp32 time ratio = {ratio:.2f}; "
            f"bandwidth-bound => expect ~1.5-2.0x, not the 24x ALU ratio)",
        )
        assert 1.2 < ratio < 2.5


class TestReorderingAblation:
    def test_reordering_vs_format_design(self, benchmark):
        """Related-work comparison (section 7): naive row reordering
        trades warp divergence for workgroup-level imbalance (all hub
        rows land in the first blocks), while yaSpMV's equal tiles fix
        load balance without touching the matrix -- the format wins
        outright."""
        from repro.formats import CSRMatrix
        from repro.kernels import get_kernel
        from repro.matrices import power_law
        from repro.matrices.reorder import sort_rows_by_length

        A = power_law(30_000, 200_000, alpha=1.9, seed=5)
        x = np.ones(A.shape[1])

        def run():
            csr = CSRMatrix.from_scipy(A)
            t_csr = TIMING.estimate(
                get_kernel("csr_scalar").run(csr, x, GTX680).stats
            ).t_total
            reord = sort_rows_by_length(A)
            csr_r = CSRMatrix.from_scipy(reord.matrix)
            t_csr_sorted = TIMING.estimate(
                get_kernel("csr_scalar")
                .run(csr_r, reord.apply_to_vector(x), GTX680)
                .stats
            ).t_total
            t_ya = _time(BCCOOMatrix.from_scipy(A), x, YaSpMVConfig())
            return t_csr, t_csr_sorted, t_ya

        t_csr, t_sorted, t_ya = benchmark.pedantic(run, rounds=1, iterations=1)
        record_table(
            "ablation_reorder",
            "Ablation: reordering vs format design (power-law matrix)\n"
            f"  scalar-CSR             : {t_csr * 1e6:9.1f} us\n"
            f"  scalar-CSR + rowsort   : {t_sorted * 1e6:9.1f} us "
            "(divergence fixed, block balance wrecked)\n"
            f"  yaSpMV (no reordering) : {t_ya * 1e6:9.1f} us",
        )
        # The format beats CSR with or without reordering; the naive
        # sort itself backfires at workgroup granularity (section 7's
        # "changes the inherent locality" critique, writ large).
        assert t_ya < t_csr
        assert t_ya < t_sorted
