"""Section 4: auto-tuning cost and quality.

The paper reports, for its accelerated (pruned) search:

* average tuning time of 12.8 s per matrix (GTX680 host),
* pruned results identical to the exhaustive optimum on GTX680,
* two GTX480 exceptions (Epidemiology prefers no texture cache,
  +10.5%; Circuit prefers online transpose, +11.1%), and a fine-grain
  tile-size gap on Dense (+5%),
* <2% overhead for atomic logical workgroup ids (section 3.2.4).

We reproduce the protocol: pruned search over a matrix subset, wall
time and evaluation counts; then an exhaustive sweep restricted to the
pruned winner's block/word axes (documented restriction -- the full
cross product is combinatorial) to measure the pruned-vs-exhaustive
quality gap; plus the plan-cache reuse statistics across matrices.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.bench.report import render_table
from repro.gpu import GTX480, GTX680, TimingModel
from repro.kernels import YaSpMVKernel
from repro.matrices import get_spec
from repro.tuning import AutoTuner, KernelPlanCache

from conftest import bench_names, record_table

#: Matrices for the tuning study (a spread of structural classes).
TUNE_NAMES = [
    "Dense",
    "QCD",
    "Circuit",
    "Economics",
    "Epidemiology",
    "FEM/Harbor",
    "Webbase",
    "LP",
]


@pytest.fixture(scope="module")
def tuning_runs(cap_nnz):
    names = bench_names() or TUNE_NAMES
    cache = KernelPlanCache()
    runs = {}
    for name in names:
        spec = get_spec(name)
        A = spec.load(scale=spec.scale_for_nnz(min(cap_nnz, 120_000)))
        tuner = AutoTuner(GTX680, plan_cache=cache)
        runs[name] = (A, tuner.tune(A))

    rows = []
    for name, (A, res) in runs.items():
        bp = res.best_point
        rows.append(
            [
                name,
                str(res.evaluated),
                f"{res.wall_seconds:.1f}",
                f"{bp.block_height}x{bp.block_width}",
                bp.bit_word,
                str(bp.slice_count),
                f"s{bp.kernel.strategy}/wg{bp.kernel.workgroup_size}"
                f"/t{bp.kernel.effective_tile}",
                f"{res.best.gflops:.2f}",
            ]
        )
    avg_wall = np.mean([res.wall_seconds for _, res in runs.values()])
    text = render_table(
        ["Matrix", "evals", "wall(s)", "block", "word", "slices", "kernel", "GFLOPS"],
        rows,
        title="Section 4: pruned auto-tuning per matrix (gtx680)",
    )
    text += (
        f"\navg wall {avg_wall:.1f}s/matrix (paper: 12.8 s incl. OpenCL JIT); "
        f"plan cache: {cache.hits} hits / {cache.misses} misses, "
        f"simulated JIT saved {cache.simulated_time_saved_s:.0f}s"
    )
    record_table("autotune_section4", text)
    return runs


def test_pruned_vs_exhaustive_gap(tuning_runs, benchmark):
    """Pruned search must be near the (restricted-)exhaustive optimum."""
    gaps = {}
    for name in list(tuning_runs)[:4]:
        A, pruned = tuning_runs[name]
        bp = pruned.best_point
        exhaustive = AutoTuner(
            GTX680,
            mode="exhaustive",
            keep_history=False,
            exhaustive_kwargs=dict(
                block_heights=(bp.block_height,),
                block_widths=(bp.block_width,),
                bit_words=(bp.bit_word,),
            ),
        ).tune(A)
        gaps[name] = pruned.best.time_s / exhaustive.best.time_s - 1.0

    def worst():
        return max(gaps.values())

    gap = benchmark.pedantic(worst, rounds=1, iterations=1)
    # Paper: identical on GTX680; we allow the ~11% GTX480-style slack.
    assert gap < 0.12
    record_table(
        "autotune_gap",
        "Pruned vs exhaustive quality gap (time ratio - 1):\n"
        + "\n".join(f"  {k}: {v * 100:.2f}%" for k, v in gaps.items()),
    )


def test_plan_cache_amortizes_across_matrices(cap_nnz, benchmark):
    """Plans compiled for one matrix are reused on later matrices.

    The paper's acceleration #2 ("cached ... so that they can be reused
    for different matrices") pays off when matrices share pruned
    configurations -- i.e. within a structural class.  We tune two
    different Circuit-class instances (different seeds): the second one
    must hit the cache for nearly every plan, because its pruned space
    coincides with the first one's.
    """
    cache = KernelPlanCache()
    spec = get_spec("Circuit")
    scale = spec.scale_for_nnz(min(cap_nnz, 120_000))
    first = spec.load(scale=scale, seed=1)
    second = spec.load(scale=scale, seed=2)

    def run_all():
        res1 = AutoTuner(GTX680, plan_cache=cache, keep_history=False).tune(first)
        res2 = AutoTuner(GTX680, plan_cache=cache, keep_history=False).tune(second)
        return res1, res2

    res1, res2 = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # The per-run deltas on TuningResult make shared-cache accounting
    # explicit: no hits on a cold cache, near-total reuse on the second.
    assert res1.cache_hits == 0
    assert res1.cache_misses == cache.misses
    assert res2.cache_hits + res2.cache_misses > 0
    assert res1.cache_hits + res2.cache_hits == cache.hits
    assert res1.cache_misses + res2.cache_misses == cache.misses
    hit_rate = res2.cache_hits / (res2.cache_hits + res2.cache_misses)
    assert hit_rate > 0.9


def test_parallel_tuning_identical_and_faster(cap_nnz, benchmark):
    """The parallel tuner is an observable no-op except for wall clock.

    Equivalence (identical best point, identical evaluation set and
    skip-reason counters, identical shared plan-cache state) is asserted
    unconditionally.  The wall-clock speedup assertion needs real
    hardware parallelism, so it scales with the CPUs this process may
    use: >= 2x with 4+ cores (the acceptance bar), a token >= 1.05x with
    2-3 cores, and skipped on a single core where a process pool cannot
    physically beat the serial walk.  ``REPRO_BENCH_WORKERS`` overrides
    the pool width (the CI smoke job sets 2).
    """
    workers = int(os.environ.get("REPRO_BENCH_WORKERS", "4"))
    spec = get_spec("FEM/Harbor")
    A = spec.load(scale=spec.scale_for_nnz(min(cap_nnz, 120_000)))

    serial_cache = KernelPlanCache()
    t0 = time.perf_counter()
    serial = AutoTuner(GTX680, plan_cache=serial_cache).tune(A)
    t_serial = time.perf_counter() - t0

    parallel_cache = KernelPlanCache()

    def run_parallel():
        return AutoTuner(
            GTX680, plan_cache=parallel_cache, workers=workers
        ).tune(A)

    t0 = time.perf_counter()
    parallel = benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    t_parallel = time.perf_counter() - t0

    assert parallel.best_point == serial.best_point
    assert parallel.evaluated == serial.evaluated
    assert parallel.skipped == serial.skipped
    assert parallel.skip_reasons == serial.skip_reasons
    assert [(e.point, e.time_s) for e in parallel.history] == [
        (e.point, e.time_s) for e in serial.history
    ]
    assert (parallel_cache.hits, parallel_cache.misses) == (
        serial_cache.hits,
        serial_cache.misses,
    )
    assert (parallel.cache_hits, parallel.cache_misses) == (
        serial.cache_hits,
        serial.cache_misses,
    )

    speedup = t_serial / max(t_parallel, 1e-9)
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
        os.cpu_count() or 1
    )
    record_table(
        "autotune_parallel",
        f"Parallel tuning on FEM/Harbor ({serial.evaluated} evaluations): "
        f"serial {t_serial:.2f}s vs {workers} workers {t_parallel:.2f}s "
        f"= {speedup:.2f}x ({cores} cores available); results identical",
    )
    if cores >= 4 and workers >= 4:
        assert speedup >= 2.0
    elif cores >= 2 and workers >= 2:
        assert speedup >= 1.05


def test_atomic_ticket_overhead_under_2_percent(cap_nnz, benchmark):
    """Section 3.2.4's <2% claim for atomic logical workgroup ids."""
    spec = get_spec("FEM/Harbor")
    A = spec.load(scale=spec.scale_for_nnz(min(cap_nnz, 200_000)))
    x = np.ones(A.shape[1])
    from repro.formats import BCCOOMatrix
    from repro.kernels import YaSpMVConfig

    fmt = BCCOOMatrix.from_scipy(A, block_height=3, block_width=3)
    kernel = YaSpMVKernel()
    tm = TimingModel(GTX680)
    base_cfg = YaSpMVConfig()

    def overhead():
        t_in = tm.estimate(kernel.run(fmt, x, GTX680, config=base_cfg).stats).t_total
        t_at = tm.estimate(
            kernel.run(
                fmt, x, GTX680, config=base_cfg.with_overrides(workgroup_ids="atomic")
            ).stats
        ).t_total
        return t_at / t_in - 1.0

    ovh = benchmark.pedantic(overhead, rounds=1, iterations=1)
    assert ovh < 0.02


def test_model_driven_prefilter_matches_full_search(tuning_runs, benchmark):
    """Extension: the Choi-style cost-model pre-filter finds a winner
    within a few percent of the full pruned search at a fraction of the
    kernel executions."""
    from repro.tuning import ModelDrivenTuner

    name = list(tuning_runs)[1]
    A, full = tuning_runs[name]

    def run():
        return ModelDrivenTuner(GTX680, evaluate_fraction=0.15).tune(A)

    fast = benchmark.pedantic(run, rounds=1, iterations=1)
    assert fast.evaluated < full.evaluated / 2
    assert fast.best.time_s <= full.best.time_s * 1.15
    record_table(
        "autotune_model_driven",
        f"Model-driven pre-filter on {name}: {fast.evaluated} kernel runs "
        f"vs {full.evaluated} (full pruned), winner within "
        f"{(fast.best.time_s / full.best.time_s - 1) * 100:.1f}% "
        f"({fast.wall_seconds:.1f}s vs {full.wall_seconds:.1f}s wall)",
    )


def test_tuning_wall_time_is_seconds_not_minutes(tuning_runs, benchmark):
    """Order-of-magnitude check against the paper's 12.8 s average."""

    def avg():
        return float(np.mean([res.wall_seconds for _, res in tuning_runs.values()]))

    avg_wall = benchmark(avg)
    assert avg_wall < 60.0


def test_gtx480_device_preferences_exist(cap_nnz, benchmark):
    """The paper's GTX480 exceptions come from texture/transpose
    preferences; verify the knobs actually move time on GTX480."""
    spec = get_spec("Epidemiology")
    A = spec.load(scale=spec.scale_for_nnz(min(cap_nnz, 120_000)))
    x = np.ones(A.shape[1])
    from repro.formats import BCCOOMatrix
    from repro.kernels import YaSpMVConfig

    fmt = BCCOOMatrix.from_scipy(A)
    kernel = YaSpMVKernel()
    tm = TimingModel(GTX480)

    def delta():
        on = tm.estimate(kernel.run(fmt, x, GTX480, config=YaSpMVConfig()).stats)
        off = tm.estimate(
            kernel.run(
                fmt, x, GTX480, config=YaSpMVConfig(use_texture=False)
            ).stats
        )
        return abs(on.t_total - off.t_total) / on.t_total

    assert benchmark.pedantic(delta, rounds=1, iterations=1) >= 0.0
