"""Backend benchmark: the vectorized ``fast`` path vs the ``faithful``
workgroup interpreter, identity-gated.

The fast backend's whole reason to exist is *measured wall clock with
zero semantic drift*: every suite matrix is multiplied on both backends,
the outputs exact-compared (``np.array_equal``, not allclose), and the
per-matrix speedup recorded.  Both halves of the contract are asserted,
not just printed:

1. **Bit-identity everywhere.**  Any matrix where ``fast`` differs from
   ``faithful`` by even one ULP fails the run.
2. **fast is never slower**, and on medium matrices (>= 20k nnz, where
   interpreter overhead dominates) it must clear a 10x floor.

The report is snapshot to ``benchmarks/results/BENCH_kernels.json`` --
the same artifact the ``bench-kernels`` CI job and ``repro bench``
produce -- so a regression shows up as a reviewable JSON diff.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.backends import (
    MEDIUM_NNZ,
    run_backend_sweep,
    sweep_passed,
    write_sweep,
)
from repro.bench.report import render_table
from repro.matrices import load_suite

from conftest import bench_cap, bench_names, record_table

RESULTS_DIR = Path(__file__).parent / "results"

#: Acceptance floor: on matrices big enough that per-workgroup Python
#: overhead dominates the interpreter, vectorization must win by 10x.
MEDIUM_SPEEDUP_FLOOR = 10.0


@pytest.fixture(scope="module")
def sweep():
    cap = min(bench_cap(), 150_000)
    mats = load_suite(cap_nnz=cap)
    names = bench_names()
    if names:
        mats = {k: v for k, v in mats.items() if k in names}
    return run_backend_sweep(matrices=mats, cap_nnz=cap, repeats=3)


def test_backend_sweep(sweep):
    headers = ["matrix", "nnz", "faithful", "fast", "speedup", "identical"]
    rows = [
        [
            r["matrix"],
            str(r["nnz"]),
            f"{r['faithful_s'] * 1e3:.2f} ms",
            f"{r['fast_s'] * 1e3:.3f} ms",
            f"{r['speedup']:.1f}x",
            "yes" if r["bit_identical"] else "NO",
        ]
        for r in sweep["matrices"]
    ]
    rows.append([
        "geomean", "", "", "", f"{sweep['geomean_speedup']:.1f}x",
        "yes" if sweep["all_bit_identical"] else "NO",
    ])
    record_table(
        "bench_backends",
        render_table(headers, rows, title="fast backend vs faithful interpreter"),
    )
    write_sweep(sweep, RESULTS_DIR / "BENCH_kernels.json")

    passed, reasons = sweep_passed(sweep)
    assert passed, "; ".join(reasons)


def test_bit_identity_everywhere(sweep):
    broken = [r["matrix"] for r in sweep["matrices"] if not r["bit_identical"]]
    assert not broken, f"fast output drifted from faithful on: {broken}"


def test_medium_matrices_clear_speedup_floor(sweep):
    medium = [r for r in sweep["matrices"] if r["nnz"] >= MEDIUM_NNZ]
    assert medium, "no medium matrices in the sweep (cap too small?)"
    slowest = min(medium, key=lambda r: r["speedup"])
    assert slowest["speedup"] >= MEDIUM_SPEEDUP_FLOOR, (
        f"{slowest['matrix']}: fast is only {slowest['speedup']:.1f}x over "
        f"faithful (floor {MEDIUM_SPEEDUP_FLOOR:.0f}x, nnz {slowest['nnz']})"
    )
