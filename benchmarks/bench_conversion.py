"""Format-conversion cost (paper section 4, acceleration #1).

The paper GPU-accelerates COO-to-BCCOO conversion because the tuner
converts once per block-dimension candidate; conversion must stay
negligible next to kernel evaluation.  This benchmark measures our
(vectorized NumPy) conversion throughput across formats and asserts the
framework-level property that matters: tuning one matrix spends more
time evaluating kernels than converting formats.

It also measures the amortization story a user cares about: conversion
pays for itself after a handful of multiplies (SpMV is used inside
solvers that run hundreds).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.report import render_table
from repro.formats import (
    BCCOOMatrix,
    BCCOOPlusMatrix,
    CSRMatrix,
    ELLMatrix,
    HYBMatrix,
)
from repro.gpu import GTX680, TimingModel
from repro.kernels import YaSpMVConfig, YaSpMVKernel
from repro.matrices import get_spec

from conftest import record_table


@pytest.fixture(scope="module")
def matrix(cap_nnz):
    spec = get_spec("FEM/Harbor")
    return spec.load(scale=spec.scale_for_nnz(min(cap_nnz, 300_000)))


@pytest.fixture(scope="module")
def conversion_table(matrix):
    cases = [
        ("csr", lambda: CSRMatrix.from_scipy(matrix)),
        ("ell", lambda: ELLMatrix.from_scipy(matrix)),
        ("hyb", lambda: HYBMatrix.from_scipy(matrix)),
        ("bccoo 1x1", lambda: BCCOOMatrix.from_scipy(matrix)),
        (
            "bccoo 3x3",
            lambda: BCCOOMatrix.from_scipy(matrix, block_height=3, block_width=3),
        ),
        (
            "bccoo+ x4",
            lambda: BCCOOPlusMatrix.from_scipy(matrix, slice_count=4),
        ),
    ]
    rows = []
    timings = {}
    for label, build in cases:
        t0 = time.perf_counter()
        build()
        dt = time.perf_counter() - t0
        timings[label] = dt
        rate = matrix.nnz / dt / 1e6
        rows.append([label, f"{dt * 1e3:.1f}", f"{rate:.1f}"])
    record_table(
        "conversion",
        render_table(
            ["format", "convert (ms)", "Mnnz/s"],
            rows,
            title=f"Conversion cost (nnz={matrix.nnz})",
        ),
    )
    return timings


def test_bccoo_conversion_throughput(conversion_table, matrix, benchmark):
    """Conversion sustains at least a million non-zeros per second."""

    def rate():
        return matrix.nnz / conversion_table["bccoo 1x1"] / 1e6

    assert benchmark(rate) > 1.0


def test_conversion_amortizes_within_a_solve(matrix, benchmark):
    """Host conversion cost is bounded by a modest number of simulated
    multiplies -- prepare-once/multiply-many is the intended pattern."""
    t0 = time.perf_counter()
    fmt = BCCOOMatrix.from_scipy(matrix, block_height=3, block_width=3)
    convert_s = time.perf_counter() - t0

    kernel = YaSpMVKernel()
    x = np.ones(matrix.shape[1])

    def spmv_wall():
        t0 = time.perf_counter()
        kernel.run(fmt, x, GTX680, config=YaSpMVConfig())
        return time.perf_counter() - t0

    one_multiply = benchmark.pedantic(spmv_wall, rounds=3, iterations=1)
    # The host-side simulated kernel is itself ~ms; conversion should
    # cost at most a few dozen multiplies' worth of wall clock.
    assert convert_s < 100 * max(one_multiply, 1e-4)


def test_tuning_dominated_by_evaluation_not_conversion(matrix, benchmark):
    """Section 4's premise: with conversions cached per block dimension,
    kernel evaluation dominates the tuning loop."""
    from repro.tuning import AutoTuner

    res = AutoTuner(GTX680, keep_history=False).tune(matrix)

    def evals_per_conversion():
        # 4 block dims (+ possible slice variants) were converted; every
        # evaluation ran a kernel.
        return res.evaluated / 8.0

    assert benchmark(evals_per_conversion) > 10
