"""Figure 13: throughput comparison on the (simulated) GTX680.

yaSpMV (auto-tuned) vs CUSPARSE-best, CUSP, clSpMV best single and
clSpMV COCKTAIL, across the 20-matrix suite, reported in GFLOPS
(2*nnz/t) with the paper's harmonic-mean summary and speedups.

Paper's headline numbers on GTX680: +65% average / +229% max over
CUSPARSE; +70% average / +195% max over COCKTAIL.

The pytest-benchmark measurements time the library's actual hot paths:
one prepared yaSpMV execution and one comparator execution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import (
    harmonic_mean,
    render_comparison,
    render_speedups,
    run_suite_comparison,
)
from repro.core import SpMVEngine, run_cusparse_best
from repro.gpu import GTX680
from repro.matrices import get_spec

from conftest import bench_names, record_table

DEVICE = GTX680


@pytest.fixture(scope="module")
def comparison(cap_nnz):
    rows = run_suite_comparison(
        DEVICE, cap_nnz=cap_nnz, names=bench_names(), fast_tuning=True
    )
    text = render_comparison(rows, DEVICE.name, "Figure 13")
    text += "\n\n" + render_speedups(rows)
    record_table("fig13_gtx680", text)
    return rows


def test_fig13_yaspmv_beats_cusparse_on_average(comparison, benchmark):
    """The headline claim: higher H-mean throughput than CUSPARSE."""

    def hmeans():
        ya = harmonic_mean(r.scores["yaspmv"].gflops for r in comparison)
        cu = harmonic_mean(r.scores["cusparse"].gflops for r in comparison)
        return ya, cu

    ya, cu = benchmark(hmeans)
    assert ya > cu


def test_fig13_yaspmv_beats_cusp_everywhere(comparison, benchmark):
    """CUSP's COO kernel shares the balance but pays 2x the bytes."""

    def count_wins():
        return sum(
            1 for r in comparison if r.scores["yaspmv"].gflops > r.scores["cusp"].gflops
        )

    wins = benchmark(count_wins)
    assert wins >= int(0.9 * len(comparison))


def test_fig13_wins_majority_of_suite(comparison, benchmark):
    """yaSpMV should win most matrices (the paper loses only Dense)."""

    def wins():
        n = 0
        for r in comparison:
            best = max(r.scores.values(), key=lambda s: s.gflops)
            n += best.system == "yaspmv"
        return n

    count = benchmark(wins)
    assert count >= len(comparison) // 2


def test_yaspmv_execution_speed(benchmark, cap_nnz):
    """Wall-clock of one prepared simulated-yaSpMV execution."""
    spec = get_spec("FEM/Harbor")
    A = spec.load(scale=spec.scale_for_nnz(cap_nnz))
    x = np.ones(A.shape[1])
    eng = SpMVEngine(DEVICE)
    from repro.tuning import TuningPoint

    prep = eng.prepare(A, point=TuningPoint())
    benchmark(lambda: eng.multiply(prep, x))


def test_cusparse_selection_speed(benchmark, cap_nnz):
    """Wall-clock of the CUSPARSE-best comparator on one matrix."""
    spec = get_spec("Economics")
    A = spec.load(scale=spec.scale_for_nnz(min(cap_nnz, 50_000)))
    x = np.ones(A.shape[1])
    benchmark.pedantic(
        lambda: run_cusparse_best(A, x, DEVICE), rounds=3, iterations=1
    )
