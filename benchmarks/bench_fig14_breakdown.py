"""Figure 14: performance contribution of each optimization (GTX680).

The paper builds yaSpMV up in five steps and measures each:

1. ``COO``                       -- COO format + tree-based segmented sum
                                    (the CUSP-style kernel);
2. ``BCCOO``                     -- swap in the BCCOO format, keep the
                                    tree scan and the two-kernel
                                    cross-workgroup accumulation;
3. ``+ efficient seg sum/scan``  -- the matrix-based sequential-per-
                                    thread scan (still two kernels);
4. ``+ adjacent sync``           -- single kernel with the Grp_sum chain;
5. ``+ fine-grain opts``         -- short column indices + the early
                                    parallel-scan skip.

Each step reuses the same block dimensions (footprint-optimal) and a
fixed launch geometry so only the studied mechanism changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import render_table
from repro.core.baselines import run_cusp
from repro.formats import BCCOOMatrix, best_bccoo_footprint
from repro.gpu import GTX680, TimingModel
from repro.kernels import YaSpMVConfig, YaSpMVKernel
from repro.matrices import SUITE, get_spec

from conftest import bench_names, record_table

DEVICE = GTX680

#: The ablation ladder: label -> YaSpMVConfig overrides (None = CUSP COO).
STEPS: list[tuple[str, dict | None]] = [
    ("COO", None),
    ("BCCOO", dict(scan_mode="tree", cross_wg="second_kernel", fine_grain=False)),
    ("+seg-sum", dict(scan_mode="matrix", cross_wg="second_kernel", fine_grain=False)),
    ("+adj-sync", dict(scan_mode="matrix", cross_wg="adjacent", fine_grain=False)),
    ("+fine-grain", dict(scan_mode="matrix", cross_wg="adjacent", fine_grain=True)),
]

BASE = YaSpMVConfig(workgroup_size=256, strategy=2, tile_size=16)


def step_gflops(A, x) -> dict[str, float]:
    """GFLOPS of every Figure 14 step on one matrix."""
    timing = TimingModel(DEVICE)
    nnz = int(A.nnz)
    out: dict[str, float] = {}

    cusp = run_cusp(A, x, DEVICE)
    out["COO"] = cusp.gflops

    (h, w) = best_bccoo_footprint(A)[1]
    fmt = BCCOOMatrix.from_scipy(A, block_height=h, block_width=w)
    kernel = YaSpMVKernel()
    y_ref = A @ x
    for label, overrides in STEPS[1:]:
        cfg = BASE.with_overrides(**overrides)
        res = kernel.run(fmt, x, DEVICE, config=cfg)
        np.testing.assert_allclose(res.y, y_ref, rtol=1e-7, atol=1e-6)
        out[label] = timing.estimate(res.stats).gflops(nnz)
    return out


@pytest.fixture(scope="module")
def breakdown(cap_nnz):
    names = bench_names() or [s.name for s in SUITE]
    table = {}
    for name in names:
        spec = get_spec(name)
        A = spec.load(scale=spec.scale_for_nnz(cap_nnz))
        x = np.random.default_rng(7).standard_normal(A.shape[1])
        table[name] = step_gflops(A, x)

    labels = [label for label, _ in STEPS]
    rows = [
        [name] + [f"{table[name][label]:.2f}" for label in labels]
        for name in table
    ]
    text = render_table(
        ["Matrix"] + labels,
        rows,
        title="Figure 14: optimization breakdown (GFLOPS, gtx680)",
    )
    record_table("fig14_breakdown", text)
    return table


def test_fig14_bccoo_format_helps(breakdown, benchmark):
    """Step 2 vs step 1: the format change alone should usually win."""

    def frac_improved():
        wins = sum(1 for v in breakdown.values() if v["BCCOO"] > v["COO"])
        return wins / len(breakdown)

    assert benchmark(frac_improved) >= 0.6


def test_fig14_efficient_scan_helps(breakdown, benchmark):
    """Step 3 vs step 2: matrix-based scan beats the tree scan."""

    def frac_improved():
        wins = sum(1 for v in breakdown.values() if v["+seg-sum"] >= v["BCCOO"])
        return wins / len(breakdown)

    assert benchmark(frac_improved) >= 0.9


def test_fig14_adjacent_sync_helps(breakdown, benchmark):
    """Step 4 vs step 3: dropping the second kernel never hurts."""

    def frac_improved():
        wins = sum(
            1 for v in breakdown.values() if v["+adj-sync"] >= v["+seg-sum"]
        )
        return wins / len(breakdown)

    assert benchmark(frac_improved) >= 0.9


def test_fig14_full_stack_beats_coo(breakdown, benchmark):
    """Final step vs the COO start: the whole point of the paper."""

    def geomean_gain():
        gains = [v["+fine-grain"] / v["COO"] for v in breakdown.values()]
        return float(np.exp(np.mean(np.log(gains))))

    gain = benchmark(geomean_gain)
    assert gain > 1.3
