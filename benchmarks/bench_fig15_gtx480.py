"""Figure 15: throughput comparison on the (simulated) GTX480.

Same protocol as Figure 13 on the Fermi device model.  Paper's headline
numbers on GTX480: +42% average / +150% max over CUSPARSE; +40% average
/ +162% max over COCKTAIL; the paper's one loss here is Epidemiology
(ELL via CUSPARSE-HYB wins).

The extra shape assertion is the cross-device one: because Kepler's
FLOP/byte ratio is twice Fermi's, yaSpMV's *relative* advantage (which
comes from moving fewer bytes) should be at least as large on the
GTX680 as on the GTX480 -- exactly what the paper reports (65% vs 42%
over CUSPARSE).
"""

from __future__ import annotations

import pytest

from repro.bench import (
    harmonic_mean,
    render_comparison,
    render_speedups,
    run_suite_comparison,
)
from repro.gpu import GTX480, GTX680

from conftest import bench_names, record_table


@pytest.fixture(scope="module")
def comparison(cap_nnz):
    rows = run_suite_comparison(
        GTX480, cap_nnz=cap_nnz, names=bench_names(), fast_tuning=True
    )
    text = render_comparison(rows, GTX480.name, "Figure 15")
    text += "\n\n" + render_speedups(rows)
    record_table("fig15_gtx480", text)
    return rows


def test_fig15_yaspmv_beats_cusparse_on_average(comparison, benchmark):
    def hmeans():
        ya = harmonic_mean(r.scores["yaspmv"].gflops for r in comparison)
        cu = harmonic_mean(r.scores["cusparse"].gflops for r in comparison)
        return ya, cu

    ya, cu = benchmark(hmeans)
    assert ya > cu


def test_fig15_yaspmv_beats_cocktail_on_average(comparison, benchmark):
    def hmeans():
        ya = harmonic_mean(r.scores["yaspmv"].gflops for r in comparison)
        ct = harmonic_mean(r.scores["clspmv_cocktail"].gflops for r in comparison)
        return ya, ct

    ya, ct = benchmark(hmeans)
    assert ya > ct


def test_cross_device_advantage_shape(comparison, cap_nnz, benchmark):
    """yaSpMV's edge over CUSPARSE grows (or holds) from Fermi to Kepler."""
    names = [r.name for r in comparison]
    rows680 = run_suite_comparison(
        GTX680, cap_nnz=cap_nnz, names=names, fast_tuning=True
    )

    def advantage(rows):
        ya = harmonic_mean(r.scores["yaspmv"].gflops for r in rows)
        cu = harmonic_mean(r.scores["cusparse"].gflops for r in rows)
        return ya / cu

    adv480 = advantage(comparison)
    adv680 = benchmark.pedantic(lambda: advantage(rows680), rounds=1, iterations=1)
    assert adv680 >= adv480 * 0.9  # paper: 1.65 vs 1.42 (adv680 > adv480)
