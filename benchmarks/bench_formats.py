"""Format cocktail benchmark: who wins which matrix class.

One synthetic matrix per structural family, every first-class format
(BCCOO block-swept, merge-path CSR, RG-CSR) timed through the cost
model at the default kernel configuration, outputs exact-compared
across the ``fast``/``faithful`` backends and checked against scipy.
The sweep asserts the cocktail claim itself: **every format must win
at least one class** -- a cost-model change that lets one format
dominate everywhere fails here before it ships.

The report is snapshot to ``benchmarks/results/BENCH_formats.json``;
model times are deterministic, so the JSON diffs cleanly.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.formats import (
    EXPECTED_WINNERS,
    format_sweep_passed,
    run_format_sweep,
    write_sweep,
)
from repro.bench.report import render_table

from conftest import record_table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def sweep():
    return run_format_sweep()


def test_format_sweep(sweep):
    headers = ["class", "nnz", "bccoo", "merge_csr", "rgcsr", "winner"]
    rows = []
    for r in sweep["classes"]:
        e = r["entrants"]
        rows.append([
            r["class"],
            str(r["nnz"]),
            f"{e['bccoo']['time_us']:.2f}us ({e['bccoo']['block']})",
            f"{e['merge_csr']['time_us']:.2f}us",
            f"{e['rgcsr']['time_us']:.2f}us",
            r["winner"],
        ])
    record_table(
        "bench_formats",
        render_table(headers, rows, title="format cocktail: who wins per class"),
    )
    write_sweep(sweep, RESULTS_DIR / "BENCH_formats.json")

    passed, reasons = format_sweep_passed(sweep)
    assert passed, "; ".join(reasons)


def test_exact_outputs_everywhere(sweep):
    broken = [r["class"] for r in sweep["classes"] if not r["correct"]]
    assert not broken, f"wrong or backend-drifted output on: {broken}"


def test_every_format_wins_a_class(sweep):
    wins = sweep["wins_by_format"]
    missing = sorted(set(EXPECTED_WINNERS.values()) - set(wins))
    assert not missing, f"formats that win nothing: {missing} (wins: {wins})"
