"""Segmented-scan strategy comparison (paper sections 3.1 / 7).

The paper's argument for the matrix-based scan, quantified on our scan
substrate directly (no SpMV around it):

* Hillis-Steele (the classic GPU network) does ``n log n`` work;
* Blelloch/Sengupta (CUDPP) does ``O(n)`` work but twice the barrier
  stages with geometrically collapsing lane utilization;
* the matrix-based scan does exactly ``n`` sequential adds, perfectly
  balanced, plus a parallel scan over only ``threads`` elements --
  which the section 2.4 early check can skip entirely.

The benchmark prints the operation/stage/idle accounting for one
representative input and asserts the orderings the paper relies on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import render_table
from repro.scan import (
    blelloch_segmented_scan,
    matrix_segmented_scan,
    segmented_scan_inclusive,
    tree_segmented_scan,
)

from conftest import record_table

N = 8192
THREADS = 256


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(42)
    values = rng.standard_normal(N)
    starts = rng.random(N) < 0.05  # ~160 segments
    starts[0] = True
    return values, starts


@pytest.fixture(scope="module")
def accounting(workload):
    values, starts = workload
    reference = segmented_scan_inclusive(values, starts)

    out = {}
    got, hs = tree_segmented_scan(values, starts)
    np.testing.assert_allclose(got, reference, atol=1e-9)
    out["hillis-steele"] = dict(
        ops=hs.element_ops, stages=hs.steps, idle=hs.idle_fraction
    )

    got, bl = blelloch_segmented_scan(values, starts)
    np.testing.assert_allclose(got, reference, atol=1e-9)
    out["blelloch"] = dict(
        ops=bl.element_ops, stages=bl.steps, idle=bl.idle_fraction
    )

    got, mx = matrix_segmented_scan(values, starts, THREADS)
    np.testing.assert_allclose(got, reference, atol=1e-9)
    par = mx.parallel_scan
    out["matrix-based"] = dict(
        ops=mx.sequential_ops + (par.element_ops if par else 0),
        stages=(par.steps if par else 0),
        idle=(par.idle_fraction if par else 0.0) * (THREADS / N),
    )

    rows = [
        [name, str(d["ops"]), str(d["stages"]), f"{d['idle'] * 100:.1f}%"]
        for name, d in out.items()
    ]
    record_table(
        "scan_strategies",
        render_table(
            ["scan", "combine ops", "barrier stages", "idle lanes"],
            rows,
            title=f"Segmented-scan strategies on n={N} (threads={THREADS})",
        ),
    )
    return out


def test_matrix_scan_fewest_barriers(accounting, benchmark):
    def stages():
        return {k: v["stages"] for k, v in accounting.items()}

    s = benchmark(stages)
    assert s["matrix-based"] < s["hillis-steele"] < s["blelloch"]


def test_work_ordering(accounting, benchmark):
    def ops():
        return {k: v["ops"] for k, v in accounting.items()}

    o = benchmark(ops)
    # Matrix-based ~= n; Blelloch ~= 2n; Hillis-Steele ~= n log n.
    assert o["matrix-based"] < o["blelloch"] < o["hillis-steele"]


def test_matrix_scan_scales_with_threads_not_n(workload, benchmark):
    """The parallel portion touches `threads` elements, not n."""
    values, starts = workload

    def parallel_sizes():
        sizes = {}
        for threads in (64, 256, 1024):
            _, st = matrix_segmented_scan(values, starts, threads)
            sizes[threads] = st.parallel_scan.n if st.parallel_scan else 0
        return sizes

    sizes = benchmark.pedantic(parallel_sizes, rounds=1, iterations=1)
    for threads, n_par in sizes.items():
        assert n_par in (0, threads)


def test_early_skip_eliminates_parallel_scan(benchmark):
    """Dense stops: every tile has one, the parallel scan vanishes."""
    rng = np.random.default_rng(0)
    values = rng.standard_normal(N)
    starts = np.ones(N, dtype=bool)  # segment length 1 everywhere

    def run():
        _, st = matrix_segmented_scan(values, starts, THREADS)
        return st.parallel_scan_skipped

    assert benchmark(run)
