"""Serving-layer benchmark: micro-batched SpMM vs a per-vector loop.

The serving layer's performance claim has two halves:

1. **Batching wins.**  A coalesced ``run_multi`` dispatch reads the
   matrix stream once for the whole batch, so its simulated time is far
   below the sum of ``k`` sequential single-vector multiplies.  The
   table reports the speedup per matrix for a >= 8-vector batch.
2. **Caching wins.**  A cache hit serves straight from the prepared
   entry: zero ``engine.prepare`` spans (no tuning search, no format
   conversion) on the hot path.

Both halves are asserted, not just printed.

A third table sweeps the sharded fabric over {1, 2, 4} shards -- with a
seeded shard kill whenever more than one shard is live -- and snapshots
throughput / latency percentiles / failover counts to
``benchmarks/results/BENCH_serving.json``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro import Observer, ServeConfig, SpMVEngine, SpMVServer
from repro.bench.report import render_table
from repro.fault import fault_scope
from repro.matrices import load_suite
from repro.serve import ServeFabric, chaos_plan

from conftest import bench_cap, bench_names, record_table

BATCH_K = 8
SHARD_COUNTS = (1, 2, 4)
RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def suite():
    mats = load_suite(cap_nnz=min(bench_cap(), 150_000))
    names = bench_names()
    if names:
        mats = {k: v for k, v in mats.items() if k in names}
    # A representative spread is enough for the serving comparison.
    keep = list(mats)[:6]
    return {k: mats[k] for k in keep}


@pytest.fixture(scope="module")
def comparison(suite):
    """Per matrix: simulated time of k sequential multiplies vs one batch."""
    rows = []
    for name, A in suite.items():
        obs = Observer()
        engine = SpMVEngine(observer=obs)
        srv = SpMVServer(
            engine,
            ServeConfig(max_batch=BATCH_K, batch_window_s=0.0),
            observer=obs,
            start=False,
        )
        prepared = engine.prepare(A)
        k = min(BATCH_K, engine.max_batch_width(prepared))
        rng = np.random.default_rng(7)
        xs = [rng.standard_normal(A.shape[1]) for _ in range(k)]

        t_seq = sum(engine.multiply(prepared, x).breakdown.t_total for x in xs)

        futs = [srv.submit(prepared, x) for x in xs]
        srv.drain()
        responses = [f.result() for f in futs]
        for x, r in zip(xs, responses):
            np.testing.assert_allclose(r.y, A @ x, rtol=1e-9, atol=1e-9)
        assert all(r.batched and r.batch_size == k for r in responses)
        # One shared batch result: its simulated time is the batch cost.
        t_batch = responses[0].result.breakdown.t_total

        rows.append(
            dict(
                name=name,
                nnz=int(A.nnz),
                k=k,
                t_seq=t_seq,
                t_batch=t_batch,
                speedup=t_seq / t_batch,
            )
        )
        srv.close()
    return rows


def test_batched_spmm_beats_per_vector_loop(comparison):
    table_rows = [
        [
            r["name"],
            str(r["nnz"]),
            str(r["k"]),
            f"{r['t_seq'] * 1e6:.1f}",
            f"{r['t_batch'] * 1e6:.1f}",
            f"{r['speedup']:.2f}x",
        ]
        for r in comparison
    ]
    record_table(
        "serving_batching",
        render_table(
            ["matrix", "nnz", "k", "t_seq (us)", "t_batch (us)", "speedup"],
            table_rows,
            title=f"Micro-batched SpMM vs {BATCH_K} sequential SpMV dispatches "
            "(simulated time)",
        ),
    )
    for r in comparison:
        if r["k"] >= 8:
            assert r["speedup"] > 1.0, (
                f"{r['name']}: batched dispatch ({r['t_batch']:.3e}s) did not "
                f"beat {r['k']} sequential multiplies ({r['t_seq']:.3e}s)"
            )


def test_cache_hit_skips_prepare_entirely(suite):
    name, A = next(iter(suite.items()))
    obs = Observer()
    engine = SpMVEngine(observer=obs)
    srv = SpMVServer(
        engine, ServeConfig(batch_window_s=0.0), observer=obs, start=False
    )
    rng = np.random.default_rng(11)
    srv.multiply(A, rng.standard_normal(A.shape[1]))  # cold: tunes + converts
    prepares_cold = len(obs.tracer.find_all("engine.prepare"))
    assert prepares_cold >= 1

    hot = srv.multiply(A, rng.standard_normal(A.shape[1]))
    assert hot.cache_hit
    assert len(obs.tracer.find_all("engine.prepare")) == prepares_cold
    assert obs.metrics.get("serve.cache.hits").value() == 1
    record_table(
        "serving_cache",
        render_table(
            ["matrix", "cold prepares", "hot prepares", "cache"],
            [[name, str(prepares_cold), "0", "1 hit / 1 miss"]],
            title="Prepared-matrix cache: the hot path never re-tunes",
        ),
    )
    srv.close()


def _sweep_workload(suite, requests_per_matrix: int = 4):
    """(matrix, x) pairs; value refreshes spread keys across shards."""
    rng = np.random.default_rng(23)
    pairs = []
    for A in suite.values():
        for i in range(requests_per_matrix):
            B = A
            if i % 2 == 1:  # refreshed values -> a distinct serve key
                B = A.copy()
                B.data = B.data * 1.25
            pairs.append((B, rng.standard_normal(A.shape[1])))
    return pairs


@pytest.fixture(scope="module")
def shard_sweep(suite):
    """Closed-loop latency/throughput per shard count, kill included.

    For every shard count > 1 a seeded :func:`chaos_plan` kills one
    shard mid-workload, so the failover column measures the fabric
    actually re-routing -- not a clean-weather run.
    """
    workload = _sweep_workload(suite)
    rows = []
    for shards in SHARD_COUNTS:
        fabric = ServeFabric(
            shards,
            serve_config=ServeConfig(batch_window_s=0.0),
            start=False,
        )
        plan = chaos_plan(seed=13, kills=1) if shards > 1 else None
        latencies = []
        t_run = time.perf_counter()
        with fault_scope(plan) if plan is not None else _null():
            for A, x in workload:
                t0 = time.perf_counter()
                fut = fabric.submit(A, x)
                fabric.drain()
                resp = fut.result()
                latencies.append(time.perf_counter() - t0)
                np.testing.assert_allclose(resp.y, A @ x, rtol=1e-9, atol=1e-9)
        elapsed = time.perf_counter() - t_run
        stats = fabric.stats()
        fabric.close(drain=False)

        lat = np.asarray(latencies)
        rows.append(
            dict(
                shards=shards,
                requests=len(workload),
                elapsed_s=elapsed,
                throughput_rps=len(workload) / elapsed,
                p50_ms=float(np.percentile(lat, 50) * 1e3),
                p99_ms=float(np.percentile(lat, 99) * 1e3),
                failovers=stats["failovers"],
                shard_crashes=stats["shard_crashes"],
                live_shards=stats["live_shards"],
                cache_hits=stats["cache"]["hits"],
            )
        )
    return rows


def _null():
    import contextlib

    return contextlib.nullcontext()


def test_shard_sweep_survives_kills_and_snapshots(shard_sweep, suite):
    for r in shard_sweep:
        if r["shards"] > 1:
            # The seeded kill fired and the fabric re-routed; every
            # answer above already allclose-checked against scipy.
            assert r["shard_crashes"] == 1, r
            assert r["failovers"] >= 1, r
            assert r["live_shards"] == r["shards"] - 1, r
        else:
            assert r["shard_crashes"] == 0, r

    record_table(
        "serving_shards",
        render_table(
            ["shards", "requests", "throughput (req/s)", "p50 (ms)",
             "p99 (ms)", "failovers"],
            [
                [str(r["shards"]), str(r["requests"]),
                 f"{r['throughput_rps']:.1f}", f"{r['p50_ms']:.2f}",
                 f"{r['p99_ms']:.2f}", str(r["failovers"])]
                for r in shard_sweep
            ],
            title="Fabric shard sweep (closed loop, one seeded shard kill "
            "for every multi-shard run)",
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    snapshot = dict(
        kind="bench_serving",
        cap_nnz=min(bench_cap(), 150_000),
        matrices=sorted(suite),
        shard_sweep=shard_sweep,
    )
    path = RESULTS_DIR / "BENCH_serving.json"
    path.write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    assert json.loads(path.read_text())["shard_sweep"]
