"""Solver benchmark: iterations through the serve layer, identity-gated,
plus the incremental value-refresh speedup.

Three contracts, asserted rather than just printed:

1. **Served == direct, bit for bit.**  A CG/GMRES solve whose every
   iteration streams through an :class:`~repro.serve.SpMVServer` must
   match the in-process solve on every iterate, every residual and the
   final solution exactly (``np.array_equal``, not allclose).
2. **Both paths converge**, and their iterations/s plus the SpMV share
   of wall clock are recorded (the serve layer's overhead is visible,
   never semantic).
3. **Value refresh clears its floor.**  Swapping values into a prepared
   matrix (:meth:`~repro.SpMVEngine.update_values`) must beat a full
   re-prepare by ``REFRESH_SPEEDUP_FLOOR`` (5x) on the medium bench
   matrix, reusing the structural plan and migrating the fast path's
   cached plan instead of rebuilding it.

The report is snapshot to ``benchmarks/results/BENCH_solvers.json`` --
the same artifact the ``solver-smoke`` CI job checks -- so a regression
shows up as a reviewable JSON diff.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.bench.report import render_table
from repro.bench.solvers import (
    REFRESH_SPEEDUP_FLOOR,
    run_solver_bench,
    solver_bench_passed,
    write_solver_bench,
)

from conftest import bench_cap, record_table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="module")
def bench():
    cap = min(bench_cap(), 60_000)
    return run_solver_bench(cap_nnz=cap)


def test_solver_bench(bench):
    headers = [
        "method", "nnz", "iters", "direct it/s", "served it/s",
        "SpMV share", "identical",
    ]
    rows = [
        [
            r["method"],
            str(r["nnz"]),
            str(r["direct"]["iterations"]),
            f"{r['direct']['iterations_per_s']:.0f}",
            f"{r['served']['iterations_per_s']:.0f}",
            f"{r['direct']['spmv_share'] * 100:.0f}%",
            "yes" if r["bit_identical"] else "NO",
        ]
        for r in bench["solves"]
    ]
    refresh = bench["value_refresh"]
    rows.append([
        "value swap",
        str(refresh["matrix_nnz"]),
        "-",
        f"{refresh['swap_s'] * 1e3:.2f} ms",
        f"vs {refresh['full_prepare_s'] * 1e3:.0f} ms",
        f"{refresh['speedup']:.0f}x",
        "yes" if refresh["bit_identical"] else "NO",
    ])
    record_table(
        "bench_solvers",
        render_table(headers, rows, title="solvers: served vs direct"),
    )
    write_solver_bench(bench, RESULTS_DIR / "BENCH_solvers.json")

    passed, reasons = solver_bench_passed(bench)
    assert passed, "; ".join(reasons)


def test_served_solves_bit_identical(bench):
    broken = [r["method"] for r in bench["solves"] if not r["bit_identical"]]
    assert not broken, f"served solve drifted from direct on: {broken}"


def test_value_refresh_clears_floor(bench):
    refresh = bench["value_refresh"]
    assert refresh["structural_plan_reused"], (
        "update_values rebuilt the tuning point instead of reusing it"
    )
    assert refresh["plan_hits"] >= 1, (
        "the fast backend rebuilt its plan instead of migrating it"
    )
    assert refresh["speedup"] >= REFRESH_SPEEDUP_FLOOR, (
        f"value swap is only {refresh['speedup']:.1f}x faster than a full "
        f"re-prepare (floor {REFRESH_SPEEDUP_FLOOR:.0f}x, "
        f"nnz {refresh['matrix_nnz']})"
    )
