"""Table 3: memory footprint (MB) of formats across the 20-matrix suite.

Reproduces the paper's comparison COO / ELL / clSpMV-best-single /
COCKTAIL / BCCOO, at the benchmark scale (column ``scale``), plus the
paper's ratios: BCCOO vs COO (-40% in the paper), vs best single
(-31%) and vs COCKTAIL (-21%).

The pytest-benchmark measurements cover the real library operations the
table depends on: BCCOO conversion and footprint evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.report import render_table
from repro.formats import BCCOOMatrix, footprint_report
from repro.matrices import SUITE, get_spec

from conftest import bench_names, record_table


@pytest.fixture(scope="module")
def suite_matrices(cap_nnz):
    names = bench_names() or [s.name for s in SUITE]
    out = {}
    for name in names:
        spec = get_spec(name)
        out[name] = (spec, spec.load(scale=spec.scale_for_nnz(cap_nnz)))
    return out


@pytest.fixture(scope="module")
def table3(suite_matrices):
    rows = []
    reports = {}
    for name, (spec, A) in suite_matrices.items():
        rep = footprint_report(A, name=name)
        reports[name] = rep
        mb = lambda b: "N/A" if b is None else f"{b / 2**20:.2f}"
        rows.append(
            [
                name,
                f"{A.nnz}",
                mb(rep.coo),
                mb(rep.ell),
                f"{mb(rep.best_single)} ({rep.best_single_format})",
                mb(rep.cocktail),
                f"{mb(rep.bccoo)} ({rep.bccoo_block[0]}x{rep.bccoo_block[1]})",
            ]
        )

    def ratio(select):
        num = sum(r.bccoo for r in reports.values())
        den = sum(select(r) for r in reports.values() if select(r) is not None)
        return (1 - num / den) * 100

    summary = (
        f"BCCOO saves {ratio(lambda r: r.coo):.0f}% vs COO "
        f"(paper: 40%), {ratio(lambda r: r.best_single):.0f}% vs best single "
        f"(paper: 31%), {ratio(lambda r: r.cocktail):.0f}% vs COCKTAIL "
        f"(paper: 21%)"
    )
    text = render_table(
        ["Matrix", "nnz", "COO", "ELL", "Best single", "Cocktail", "BCCOO"],
        rows,
        title="Table 3: memory footprint (MB) at benchmark scale",
    )
    record_table("table3_footprint", text + "\n" + summary)
    return reports


def test_table3_bccoo_beats_coo_everywhere(table3, benchmark):
    """BCCOO's footprint must undercut COO on every suite matrix."""

    def check():
        return all(rep.bccoo < rep.coo for rep in table3.values())

    assert benchmark(check)


def test_table3_aggregate_savings_shape(table3, benchmark):
    """Aggregate savings must land in the paper's neighbourhood."""

    def ratios():
        coo = sum(r.coo for r in table3.values())
        single = sum(r.best_single for r in table3.values())
        bccoo = sum(r.bccoo for r in table3.values())
        return (1 - bccoo / coo, 1 - bccoo / single)

    vs_coo, vs_single = benchmark(ratios)
    assert 0.25 < vs_coo < 0.60  # paper: 0.40
    assert 0.05 < vs_single  # paper: 0.31


def test_bccoo_conversion_speed(suite_matrices, benchmark):
    """Wall-clock of one BCCOO conversion (the tuner's inner cost)."""
    _, A = suite_matrices[next(iter(suite_matrices))]
    benchmark(lambda: BCCOOMatrix.from_scipy(A, block_height=2, block_width=2))


def test_footprint_evaluation_speed(suite_matrices, benchmark):
    """Wall-clock of a footprint evaluation (pruning-heuristic cost)."""
    _, A = suite_matrices[next(iter(suite_matrices))]
    fmt = BCCOOMatrix.from_scipy(A)
    benchmark(fmt.footprint_bytes)
