"""Shared infrastructure for the figure/table benchmarks.

Each benchmark file reproduces one table or figure of the paper.  The
expensive computations (suite comparisons, tuning sweeps) run once in
session-scoped fixtures; rendered tables are registered via
:func:`record_table` and dumped in the terminal summary so a
``pytest benchmarks/ --benchmark-only | tee bench_output.txt`` run
captures them.  Artifacts are also written to ``benchmarks/results/``.

Environment knobs:

* ``REPRO_BENCH_CAP``      -- per-matrix nnz cap (default 300000; larger
  is more faithful to the paper's matrix sizes but slower).
* ``REPRO_BENCH_MATRICES`` -- comma-separated subset of Table 2 names.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

_TABLES: list[str] = []
_RESULTS_DIR = Path(__file__).parent / "results"


def bench_cap() -> int:
    return int(os.environ.get("REPRO_BENCH_CAP", "300000"))


def bench_names() -> list[str] | None:
    raw = os.environ.get("REPRO_BENCH_MATRICES", "").strip()
    if not raw:
        return None
    return [n.strip() for n in raw.split(",") if n.strip()]


def record_table(name: str, text: str) -> None:
    """Register a rendered table for the terminal summary + disk."""
    _TABLES.append(text)
    _RESULTS_DIR.mkdir(exist_ok=True)
    (_RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "paper reproduction tables")
    for text in _TABLES:
        terminalreporter.write_line("")
        for line in text.splitlines():
            terminalreporter.write_line(line)


@pytest.fixture(scope="session")
def cap_nnz() -> int:
    return bench_cap()
