"""A tour of the auto-tuning framework (paper section 4).

Shows what the tuner actually explores for one matrix: the pruned
Table 1 space, the winning configuration, the runner-up spread, the
compiled-kernel cache amortizing across a second matrix, and the
cross-device disagreement (GTX480 vs GTX680 genuinely prefer different
points -- the reason tuning is per-platform).

Run:  python examples/autotuning_tour.py
"""

import numpy as np

from repro.gpu import GTX480, GTX680
from repro.matrices import get_spec
from repro.tuning import AutoTuner, KernelPlanCache


def describe(point) -> str:
    k = point.kernel
    return (
        f"{point.format_name} {point.block_height}x{point.block_width} "
        f"word={point.bit_word} slices={point.slice_count} "
        f"strat={k.strategy} wg={k.workgroup_size} tile={k.effective_tile} "
        f"cache={k.result_cache_multiple if k.strategy == 2 else '-'}"
    )


def main() -> None:
    spec = get_spec("FEM/Harbor")
    A = spec.load(scale=spec.scale_for_nnz(120_000))
    print(f"tuning {spec.name} at {A.shape} / nnz {A.nnz}\n")

    cache = KernelPlanCache()
    tuner = AutoTuner(GTX680, plan_cache=cache)
    res = tuner.tune(A)

    print(f"pruned search: {res.evaluated} configurations evaluated, "
          f"{res.skipped} skipped (resource limits), "
          f"{res.wall_seconds:.1f}s wall")
    print(f"simulated OpenCL JIT paid: {res.simulated_compile_s:.0f}s "
          f"for {cache.misses} distinct kernels\n")

    print("top 5 configurations:")
    for i, ev in enumerate(res.top(5), 1):
        print(f"  {i}. {ev.gflops:6.2f} GFLOPS  {describe(ev.point)}")

    # --- The kernel cache pays off on the next matrix. --------------------
    spec2 = get_spec("FEM/Ship")
    B = spec2.load(scale=spec2.scale_for_nnz(120_000))
    hits_before = cache.hits
    res2 = AutoTuner(GTX680, plan_cache=cache).tune(B)
    print(f"\nsecond matrix ({spec2.name}): {res2.evaluated} evaluations, "
          f"{cache.hits - hits_before} kernel-cache hits "
          f"(JIT time saved: {cache.simulated_time_saved_s:.0f}s)")

    # --- Devices disagree; that's why tuning is per-platform. -------------
    res480 = AutoTuner(GTX480).tune(A)
    print(f"\nbest on GTX680: {describe(res.best_point)}")
    print(f"best on GTX480: {describe(res480.best_point)}")
    same = res.best_point.plan_key() == res480.best_point.plan_key()
    print("devices agree" if same else "devices pick different configurations")

    # Sanity: the tuned configuration really computes A @ x.
    from repro import SpMVEngine

    x = np.ones(A.shape[1])
    eng = SpMVEngine(GTX680)
    y = eng.multiply(eng.prepare(A, point=res.best_point), x).y
    assert np.allclose(y, A @ x)
    print("\ntuned configuration verified against scipy ✓")


if __name__ == "__main__":
    main()
