"""Conjugate-gradient solver with yaSpMV as the SpMV engine.

The workload the paper's introduction motivates: iterative linear
solvers spend nearly all their time in SpMV, so format conversion and
tuning amortize over hundreds of multiplies.  We assemble a 2-D Poisson
problem (5-point finite-difference stencil -- the FEM/stencil structural
class of Table 2), prepare it once, and drive CG to convergence.

Run:  python examples/cg_solver.py
"""

import numpy as np
from scipy import sparse

from repro import SpMVEngine


def poisson_2d(n: int) -> sparse.csr_matrix:
    """5-point Laplacian on an n x n grid (SPD, 4~5 nnz/row)."""
    main = 4.0 * np.ones(n * n)
    side = -np.ones(n * n - 1)
    side[np.arange(1, n * n) % n == 0] = 0.0  # no wrap across grid rows
    updown = -np.ones(n * n - n)
    return sparse.diags(
        [main, side, side, updown, updown], [0, 1, -1, n, -n]
    ).tocsr()


def conjugate_gradient(engine, prepared, b, tol=1e-10, max_iter=2000):
    """Standard CG; every A@p goes through the simulated yaSpMV kernel."""
    x = np.zeros_like(b)
    r = b - engine.multiply(prepared, x).y
    p = r.copy()
    rs = r @ r
    sim_time = 0.0
    for it in range(1, max_iter + 1):
        res = engine.multiply(prepared, p)
        sim_time += res.time_s
        Ap = res.y
        alpha = rs / (p @ Ap)
        x += alpha * p
        r -= alpha * Ap
        rs_new = r @ r
        if np.sqrt(rs_new) < tol:
            return x, it, sim_time
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, max_iter, sim_time


def main() -> None:
    n = 64
    A = poisson_2d(n)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(n * n)

    engine = SpMVEngine(device="gtx680")
    prepared = engine.prepare(A)
    point = prepared.point
    print(f"Poisson {n}x{n}: {A.shape[0]} unknowns, {A.nnz} non-zeros")
    print(f"tuned to {point.format_name} "
          f"{point.block_height}x{point.block_width}, "
          f"strategy {point.kernel.strategy}, "
          f"wg {point.kernel.workgroup_size}")

    x, iters, sim_time = conjugate_gradient(engine, prepared, b)
    residual = np.linalg.norm(A @ x - b)
    print(f"CG converged in {iters} iterations, ||Ax-b|| = {residual:.2e}")
    print(f"simulated GPU time across all SpMVs: {sim_time * 1e3:.2f} ms "
          f"({2 * A.nnz * iters / sim_time / 1e9:.2f} sustained GFLOPS)")
    assert residual < 1e-7


if __name__ == "__main__":
    main()
