"""Iterative solvers with yaSpMV as the SpMV engine.

The workload the paper's introduction motivates: iterative linear
solvers spend nearly all their time in SpMV, so format conversion and
tuning amortize over hundreds of multiplies.  We assemble a 2-D Poisson
problem (5-point finite-difference stencil -- the FEM/stencil structural
class of Table 2) and drive it through the solver API three ways:

1. ``solve(A, b, method="cg")`` -- the one-call surface;
2. a :class:`~repro.SolverSession` streaming every iteration through an
   :class:`~repro.serve.SpMVServer`, bit-identical to the direct solve;
3. a time-varying loop: swap new values into the prepared matrix
   (structure unchanged) and re-solve without re-tuning.

Run:  python examples/cg_solver.py
"""

import numpy as np
from scipy import sparse

from repro import SpMVServer, solve
from repro.solvers import SolverSession


def poisson_2d(n: int) -> sparse.csr_matrix:
    """5-point Laplacian on an n x n grid (SPD, 4~5 nnz/row)."""
    main = 4.0 * np.ones(n * n)
    side = -np.ones(n * n - 1)
    side[np.arange(1, n * n) % n == 0] = 0.0  # no wrap across grid rows
    updown = -np.ones(n * n - n)
    return sparse.diags(
        [main, side, side, updown, updown], [0, 1, -1, n, -n]
    ).tocsr()


def main() -> None:
    n = 64
    A = poisson_2d(n)
    rng = np.random.default_rng(0)
    b = rng.standard_normal(n * n)
    print(f"Poisson {n}x{n}: {A.shape[0]} unknowns, {A.nnz} non-zeros")

    # 1. One call: prepare (auto-tune) + CG, every A@p a simulated kernel.
    direct = solve(A, b, method="cg", tol=1e-10)
    residual = np.linalg.norm(A @ direct.x - b)
    print(f"direct : {direct.summary()}  ||Ax-b|| = {residual:.2e}")
    gflops = 2 * A.nnz * direct.spmv_count / direct.spmv_time_s / 1e9
    print(f"         sustained {gflops:.2f} GFLOPS over "
          f"{direct.spmv_count} SpMVs")
    assert direct.converged and residual < 1e-7

    # 2. Served: iterations stream through a server (admission control,
    # value-aware cache) and stay bit-identical to the direct solve.
    server = SpMVServer(start=False)  # threadless: deterministic pump
    try:
        served = solve(A, b, method="cg", server=server, tol=1e-10)
    finally:
        server.close()
    print(f"served : {served.summary()}")
    assert np.array_equal(direct.x, served.x)
    assert served.cache_hits == served.spmv_count  # primed before iter 1

    # 3. Time-varying system: same stencil structure, drifting
    # coefficients.  update_values swaps the value buffers and keeps the
    # tuning point, bit flags and fast-path plan -- no re-tune.
    session = SolverSession(A)
    session.solve(b, method="cg", tol=1e-10)
    A_t = (A * 1.25).tocsr()
    session.update_values(A_t)
    refreshed = session.solve(b, method="cg", tol=1e-10)
    residual = np.linalg.norm(A_t @ refreshed.x - b)
    print(f"refresh: {refreshed.summary()}  ||A'x-b|| = {residual:.2e} "
          f"(value swap, no re-tune)")
    assert refreshed.converged and residual < 1e-7


if __name__ == "__main__":
    main()
