"""Beyond the paper: the library's extension features.

Three capabilities the PPoPP'14 evaluation did not cover but a
downstream user of the framework would want:

1. **double precision** -- the cost model knows fp64 doubles the value
   bytes and collapses GeForce ALU peak (1/8 on Fermi, 1/24 on Kepler),
   yet SpMV stays memory-bound, so the slowdown is the byte ratio;
2. **model-driven tuning** -- a closed-form cost model (after Choi et
   al., the paper's reference [7]) ranks the pruned space and only the
   top fraction executes, cutting tuning time several-fold;
3. **OpenCL code generation** -- the specialized kernel source a real
   device would compile, rendered from the tuned configuration.

Run:  python examples/extensions_tour.py
"""

import numpy as np

from repro.codegen import generate_kernel_source, kernel_name
from repro.formats import BCCOOMatrix
from repro.gpu import GTX680, TimingModel
from repro.kernels import YaSpMVConfig, YaSpMVKernel
from repro.matrices import get_spec
from repro.tuning import AutoTuner, ModelDrivenTuner


def main() -> None:
    spec = get_spec("FEM/Accelerator")
    A = spec.load(scale=spec.scale_for_nnz(120_000))
    x = np.ones(A.shape[1])
    print(f"matrix: {spec.name} at {A.shape}, nnz {A.nnz}\n")

    # --- 1. double precision -------------------------------------------
    fmt = BCCOOMatrix.from_scipy(A, block_height=2, block_width=2)
    kernel = YaSpMVKernel()
    tm = TimingModel(GTX680)
    t32 = tm.estimate(kernel.run(fmt, x, GTX680, config=YaSpMVConfig()).stats)
    t64 = tm.estimate(
        kernel.run(fmt, x, GTX680, config=YaSpMVConfig(precision="fp64")).stats
    )
    print("precision (GTX680):")
    print(f"  fp32: {t32.t_total * 1e6:7.1f} us ({t32.bound}-bound)")
    print(f"  fp64: {t64.t_total * 1e6:7.1f} us "
          f"({t64.t_total / t32.t_total:.2f}x -- bytes, not the 24x ALU gap)")

    # --- 2. model-driven tuning ----------------------------------------
    full = AutoTuner(GTX680, keep_history=False).tune(A)
    fast = ModelDrivenTuner(GTX680, evaluate_fraction=0.15).tune(A)
    print("\ntuning:")
    print(f"  full pruned search : {full.evaluated:4d} kernel runs, "
          f"{full.wall_seconds:5.1f}s -> {full.best.gflops:.2f} GFLOPS")
    print(f"  model-driven (15%) : {fast.evaluated:4d} kernel runs, "
          f"{fast.wall_seconds:5.1f}s -> {fast.best.gflops:.2f} GFLOPS "
          f"({fast.best.time_s / full.best.time_s * 100 - 100:+.1f}% time vs optimum)")

    # --- 3. OpenCL code generation --------------------------------------
    point = full.best_point
    source = generate_kernel_source(point)
    print(f"\ngenerated kernel {kernel_name(point)}: "
          f"{len(source.splitlines())} lines of OpenCL")
    for line in source.splitlines()[:14]:
        print("  " + line)
    print("  ...")


if __name__ == "__main__":
    main()
