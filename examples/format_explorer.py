"""Format explorer: how each storage format prices a given matrix.

Reproduces one row of the paper's Table 3 for any matrix of the suite
(or your own ``.mtx`` file) and explains the structural statistics that
drive the numbers -- the tool you'd reach for before trusting the
auto-tuner's choice.

Run:  python examples/format_explorer.py [matrix-name | file.mtx]
      (default: Circuit)
"""

import sys

from repro.formats import (
    BCCOOMatrix,
    bccoo_block_candidates,
    footprint_report,
)
from repro.matrices import (
    get_spec,
    read_matrix_market,
    row_stats,
)


def load(arg: str):
    if arg.endswith(".mtx"):
        return arg, read_matrix_market(arg)
    spec = get_spec(arg)
    return spec.name, spec.load(scale=spec.scale_for_nnz(150_000))


def main() -> None:
    name, A = load(sys.argv[1] if len(sys.argv) > 1 else "Circuit")

    stats = row_stats(A)
    print(f"matrix {name}: {stats.nrows} x {stats.ncols}, nnz {stats.nnz}")
    print(f"  row lengths : mean {stats.mean:.1f}, max {stats.max}, "
          f"gini {stats.gini:.2f}")
    print(f"  ELL blow-up : {stats.ell_expansion:.1f}x padding if forced")
    print(f"  warp skew   : {stats.warp_divergence:.2f}x scalar-CSR divergence")

    rep = footprint_report(A, name=name)
    mb = lambda b: "   N/A" if b is None else f"{b / 2**20:6.2f}"
    print("\nfootprints (MB), one Table 3 row:")
    print(f"  COO          {mb(rep.coo)}")
    print(f"  ELL          {mb(rep.ell)}")
    print(f"  best single  {mb(rep.best_single)}  ({rep.best_single_format})")
    print(f"  cocktail     {mb(rep.cocktail)}  ({rep.cocktail_recipe})")
    print(f"  BCCOO        {mb(rep.bccoo)}  "
          f"(block {rep.bccoo_block[0]}x{rep.bccoo_block[1]})")

    print("\nBCCOO block-dimension candidates (the tuner's pruning step):")
    for h, w, nbytes in bccoo_block_candidates(A, keep=4):
        fmt = BCCOOMatrix.from_scipy(A, block_height=h, block_width=w)
        print(f"  {h}x{w}: {nbytes / 2**20:6.2f} MB, "
              f"fill ratio {fmt.fill_ratio:.2f}, "
              f"col storage {fmt.col_storage}")


if __name__ == "__main__":
    main()
