"""PageRank over a power-law web graph -- the irregular workload.

Web link matrices (Webbase, eu-2005, in-2004 in Table 2) are the
matrices that break row-based GPU kernels: Zipf-distributed degrees mean
one hub row can serialize a whole warp.  yaSpMV's equal-size thread
tiles are immune, which is where its largest wins come from.  This
example builds a Webbase-class synthetic graph, runs PageRank through
the engine, and shows the comparator gap on exactly this workload.

Run:  python examples/pagerank.py
"""

import numpy as np
from scipy import sparse

from repro import SpMVEngine, run_cusp, run_cusparse_best
from repro.gpu import GTX680
from repro.matrices import power_law, row_stats


def normalize_columns(A: sparse.csr_matrix) -> sparse.csr_matrix:
    """Column-stochastic link matrix (dangling columns left zero)."""
    out_degree = np.asarray(A.sum(axis=0)).ravel()
    scale = np.divide(
        1.0, out_degree, out=np.zeros_like(out_degree), where=out_degree > 0
    )
    return (A @ sparse.diags(scale)).tocsr()


def pagerank(engine, prepared, n, damping=0.85, tol=1e-10, max_iter=200):
    rank = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    for it in range(1, max_iter + 1):
        new_rank = damping * engine.multiply(prepared, rank).y + teleport
        # Redistribute the mass lost to dangling nodes.
        new_rank += (1.0 - new_rank.sum()) / n
        if np.abs(new_rank - rank).sum() < tol:
            return new_rank, it
        rank = new_rank
    return rank, max_iter


def main() -> None:
    n = 30_000
    graph = power_law(n, 150_000, alpha=1.9, seed=3)
    stats = row_stats(graph)
    print(f"web graph: {n} pages, {graph.nnz} links, "
          f"max in-degree {stats.max} (mean {stats.mean:.1f}, "
          f"gini {stats.gini:.2f})")

    M = normalize_columns(graph)
    engine = SpMVEngine(device="gtx680")
    prepared = engine.prepare(M)

    rank, iters = pagerank(engine, prepared, n)
    top = np.argsort(rank)[::-1][:5]
    print(f"PageRank converged in {iters} iterations")
    print("top pages:", ", ".join(f"#{p} ({rank[p]:.2e})" for p in top))

    # --- Why this matrix class is the paper's best case. -----------------
    x = rank  # a realistic multiplicand
    ours = engine.multiply(prepared, x)
    cusparse = run_cusparse_best(M, x, GTX680)
    cusp = run_cusp(M, x, GTX680)
    print("\nsimulated throughput on this graph (GTX680 model):")
    print(f"  yaSpMV        : {ours.gflops:6.2f} GFLOPS")
    print(f"  CUSPARSE best : {cusparse.gflops:6.2f} GFLOPS ({cusparse.variant})")
    print(f"  CUSP (COO)    : {cusp.gflops:6.2f} GFLOPS")
    assert ours.gflops > cusparse.gflops


if __name__ == "__main__":
    main()
