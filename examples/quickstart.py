"""Quickstart: auto-tuned SpMV in three lines, then a look under the hood.

Run:  python examples/quickstart.py
"""

import numpy as np
from scipy import sparse

from repro import SpMVEngine, yaspmv


def main() -> None:
    # A sparse matrix from anywhere scipy can express one.
    rng = np.random.default_rng(42)
    A = sparse.random(5000, 5000, density=0.002, random_state=7, format="csr")
    x = rng.standard_normal(5000)

    # --- One-shot: tune, convert, multiply. ------------------------------
    y = yaspmv(A, x, device="gtx680")
    assert np.allclose(y, A @ x)
    print(f"one-shot yaspmv: ||y - A@x|| = {np.abs(y - A @ x).max():.2e}")

    # --- Prepare once, multiply many (the solver-loop pattern). ----------
    engine = SpMVEngine(device="gtx680")
    prepared = engine.prepare(A)

    point = prepared.point
    print("\nauto-tuned configuration:")
    print(f"  format       : {point.format_name}")
    print(f"  block size   : {point.block_height}x{point.block_width}")
    print(f"  bit-flag word: {point.bit_word}")
    print(f"  col storage  : {prepared.fmt.col_storage}")
    print(f"  strategy     : {point.kernel.strategy}")
    print(f"  workgroup    : {point.kernel.workgroup_size} threads, "
          f"tile {point.kernel.effective_tile}")

    result = engine.multiply(prepared, x)
    br = result.breakdown
    print("\nsimulated execution profile (GTX680 model):")
    print(f"  time         : {br.t_total * 1e6:.1f} us "
          f"({result.gflops:.2f} GFLOPS, {br.bound}-bound)")
    print(f"  memory term  : {br.t_mem * 1e6:.1f} us")
    print(f"  launch+sync  : {(br.t_launch + br.t_sync) * 1e6:.1f} us")
    print(f"  DRAM read    : {result.stats.dram_read_bytes / 1e6:.2f} MB "
          f"(+{result.stats.cached_read_bytes / 1e6:.2f} MB from texture cache)")

    # --- The format itself is a first-class object. ----------------------
    fp = prepared.fmt.footprint()
    print("\nBCCOO device footprint:")
    for name, nbytes in sorted(fp.arrays.items()):
        print(f"  {name:18s} {nbytes / 1024:.1f} KiB")
    print(f"  {'total':18s} {fp.total / 1024:.1f} KiB "
          f"(COO would be {A.nnz * 12 / 1024:.1f} KiB)")


if __name__ == "__main__":
    main()
