"""repro -- a reproduction of *yaSpMV: Yet Another SpMV Framework on GPUs*
(Yan, Li, Zhang, Zhou; PPoPP 2014) in pure Python over a simulated SIMT
device.

The package implements the paper's three contributions -- the
BCCOO/BCCOO+ sparse formats, the customized matrix-based segmented
sum/scan SpMV kernel with adjacent synchronization, and the auto-tuning
framework -- together with every substrate and comparator the evaluation
needs: a format zoo (COO/CSR/ELL/DIA/HYB/BCSR/BELL/SELL), baseline
kernels (CUSPARSE-, CUSP- and clSpMV-style), a GTX480/GTX680 device
model with coalescing/cache/dispatch/timing components, and a synthetic
version of the paper's 20-matrix suite.

Entry points
------------
:func:`repro.yaspmv`
    One-shot auto-tuned SpMV.
:class:`repro.SpMVEngine`
    Prepare-once / multiply-many engine.
:func:`repro.solve` / :class:`repro.SolverSession`
    Iterative solvers (CG/BiCGSTAB/GMRES/Jacobi) whose iterations can
    stream through the serve layer.
:mod:`repro.formats`, :mod:`repro.kernels`, :mod:`repro.tuning`,
:mod:`repro.gpu`, :mod:`repro.matrices`, :mod:`repro.scan`
    The subsystems, individually usable.
"""

from . import backends, fault, formats, gpu, kernels, matrices, obs, scan, serve, solvers, tuning
from .backends import ExecutionBackend, available_backends, get_backend
from .core import (
    BaselineResult,
    PreparedMatrix,
    SpMVEngine,
    SpMVResult,
    run_clspmv_best_single,
    run_clspmv_cocktail,
    run_cusp,
    run_cusparse_best,
    yaspmv,
)
from .errors import (
    AdjacentSyncTimeout,
    CircuitOpenError,
    DeadlineExceeded,
    DeviceError,
    FaultInjectedError,
    FormatError,
    FormatNotApplicableError,
    KernelConfigError,
    MatrixGenerationError,
    QuotaExceededError,
    ReproError,
    ServeTimeout,
    ServerClosedError,
    ServerOverloadedError,
    ShardCrashError,
    TuningError,
    ValidationError,
    WorkerCrashError,
)
from .fault import CircuitBreaker, Deadline, FaultPlan, FaultSpec, RetryPolicy
from .obs import NullObserver, Observer, obs_scope
from .serve import ServeConfig, ServeFabric, SpMVServer, run_chaos_drill
from .solvers import SolveResult, SolverSession, solve

__version__ = "1.0.0"

__all__ = [
    "backends",
    "fault",
    "formats",
    "solvers",
    "gpu",
    "kernels",
    "matrices",
    "obs",
    "scan",
    "serve",
    "tuning",
    "NullObserver",
    "Observer",
    "obs_scope",
    "ExecutionBackend",
    "available_backends",
    "get_backend",
    "BaselineResult",
    "PreparedMatrix",
    "SpMVEngine",
    "SpMVResult",
    "run_clspmv_best_single",
    "run_clspmv_cocktail",
    "run_cusp",
    "run_cusparse_best",
    "yaspmv",
    "AdjacentSyncTimeout",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "DeadlineExceeded",
    "DeviceError",
    "FaultInjectedError",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "WorkerCrashError",
    "FormatError",
    "FormatNotApplicableError",
    "KernelConfigError",
    "MatrixGenerationError",
    "QuotaExceededError",
    "ReproError",
    "run_chaos_drill",
    "ServeConfig",
    "ServeFabric",
    "ServeTimeout",
    "ServerClosedError",
    "ServerOverloadedError",
    "ShardCrashError",
    "SolveResult",
    "SolverSession",
    "solve",
    "SpMVServer",
    "TuningError",
    "ValidationError",
    "__version__",
]
