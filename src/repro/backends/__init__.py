"""Execution backends: how a prepared format runs, never what it computes.

``faithful`` interprets workgroup-by-workgroup (the paper's dataflow and
every fault site), ``fast`` vectorizes across all workgroups at once,
``auto`` speculates on ``fast`` with differential fallback.  All three
produce bit-identical output; selection is an API surface
(``SpMVEngine(backend=...)``, ``multiply(..., backend=...)``, the serve
layer, the tuner, and ``--backend`` on the CLI).
"""

from .auto import AutoBackend
from .base import (
    DEFAULT_BACKEND,
    ExecutionBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from .faithful import FaithfulBackend
from .fast import FastBackend, FastPlan

__all__ = [
    "AutoBackend",
    "DEFAULT_BACKEND",
    "ExecutionBackend",
    "FaithfulBackend",
    "FastBackend",
    "FastPlan",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]
