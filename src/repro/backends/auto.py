"""The auto backend: speculative fast path with exact-checked fallback.

Runs ``fast``; when the caller supplies a CSR reference, the output is
validated (sampled rows + finiteness, the engine's standard check) and
any mismatch -- or any typed error out of the fast path -- reruns the
call on ``faithful`` and reports the fallback through the observer.
This is the Liu & Vinter speculative-segmented-sum discipline applied at
the backend boundary: speculate on the vectorized path, keep the exact
interpreter as the arbiter.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from ..fault.injection import active_plan
from ..fault.validation import verify_output
from ..gpu.device import DeviceSpec
from ..kernels.base import KernelResult
from ..obs import active_observer
from .base import ExecutionBackend, register_backend
from .faithful import FaithfulBackend
from .fast import FastBackend

__all__ = ["AutoBackend"]


@register_backend
class AutoBackend(ExecutionBackend):
    """``fast`` with automatic differential fallback to ``faithful``."""

    name = "auto"

    #: Sampled rows per validation (matches the engine's default).
    validation_samples = 64

    def __init__(self):
        self._fast = FastBackend()
        self._faithful = FaithfulBackend()

    def execute(
        self,
        fmt,
        x: np.ndarray,
        device: DeviceSpec,
        config=None,
        *,
        reference=None,
    ) -> KernelResult:
        return self._run(fmt, x, device, config, reference, multi=False)

    def execute_multi(
        self,
        fmt,
        X: np.ndarray,
        device: DeviceSpec,
        config=None,
        *,
        reference=None,
    ) -> KernelResult:
        return self._run(fmt, X, device, config, reference, multi=True)

    def _run(self, fmt, x, device, config, reference, *, multi) -> KernelResult:
        fast_call = self._fast.execute_multi if multi else self._fast.execute
        slow_call = self._faithful.execute_multi if multi else self._faithful.execute
        if active_plan() is not None:
            # Fault plans belong to the faithful interpreter wholesale.
            return slow_call(fmt, x, device, config, reference=reference)
        try:
            result = fast_call(fmt, x, device, config)
        except ReproError as exc:
            self._note_fallback(f"{type(exc).__name__}")
            return slow_call(fmt, x, device, config, reference=reference)
        if reference is not None:
            csr = reference() if callable(reference) else reference
            report = verify_output(
                csr, x, result.y, n_samples=self.validation_samples
            )
            if not report.ok:
                self._note_fallback("validator_mismatch")
                return slow_call(fmt, x, device, config, reference=reference)
        return result

    def refresh_values(self, old_fmt, new_fmt) -> int:
        """Migrate the fast path's cached plans (see ``FastBackend``)."""
        return self._fast.refresh_values(old_fmt, new_fmt)

    @staticmethod
    def _note_fallback(reason: str) -> None:
        obs = active_observer()
        if obs.enabled:
            obs.counter(
                "backend.auto_fallbacks",
                "auto-backend reruns on the faithful path",
            ).inc(reason=reason)

    def capabilities(self) -> dict:
        caps = super().capabilities()
        caps["vectorized"] = True
        caps["self_checking"] = True
        return caps
