"""Execution-backend protocol and registry.

A *backend* decides **how** a prepared format is executed; the format,
the launch configuration and the cost model stay identical across
backends, and so -- bit for bit -- does the output vector:

* ``faithful`` runs the workgroup-interpreting kernels exactly as the
  paper describes them (the correctness anchor);
* ``fast`` vectorizes across all workgroups at once (batched segmented
  sums over the bit-flag arrays, no per-workgroup Python) and is pinned
  bit-identical to ``faithful``;
* ``auto`` runs ``fast`` and falls back to ``faithful`` on any validator
  mismatch -- the speculative-with-exact-check discipline of Liu &
  Vinter's segmented sum.

Backends register by name, mirroring the kernel registry:
``resolve_backend`` is the single coercion point every API surface
(:class:`~repro.core.engine.SpMVEngine`, the serve layer, the tuner, the
CLI ``--backend`` flag) funnels through.
"""

from __future__ import annotations

import abc
from typing import Any, ClassVar

import numpy as np

from ..errors import BackendError
from ..gpu.device import DeviceSpec
from ..kernels.base import KernelResult

__all__ = [
    "ExecutionBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "resolve_backend",
    "DEFAULT_BACKEND",
]

#: The backend an engine uses when none is requested.
DEFAULT_BACKEND = "faithful"


class ExecutionBackend(abc.ABC):
    """How SpMV launches execute; output is backend-invariant.

    ``execute``/``execute_multi`` take the same ``(fmt, x/X, device,
    config)`` quadruple as the kernel run protocol.  ``reference`` is an
    optional CSR matrix (or zero-argument callable producing one) a
    self-checking backend (``auto``) may verify against; the others
    ignore it.
    """

    #: Registry key, e.g. ``"fast"``.
    name: ClassVar[str] = ""

    @abc.abstractmethod
    def execute(
        self,
        fmt,
        x: np.ndarray,
        device: DeviceSpec,
        config=None,
        *,
        reference=None,
    ) -> KernelResult:
        """Run ``y = A @ x`` on ``fmt``; exact result + cost profile."""

    @abc.abstractmethod
    def execute_multi(
        self,
        fmt,
        X: np.ndarray,
        device: DeviceSpec,
        config=None,
        *,
        reference=None,
    ) -> KernelResult:
        """Run ``Y = A @ X`` for ``X`` of shape ``(ncols, k)``."""

    def refresh_values(self, old_fmt, new_fmt) -> int:
        """Migrate cached execution state after a value-only rebuild.

        ``new_fmt`` shares ``old_fmt``'s structural arrays (see
        ``BCCOOMatrix.with_values``); a backend holding derived plans
        keyed on ``old_fmt`` may re-point the structural parts and swap
        only the value payload instead of re-deriving from scratch.
        Returns the number of plans migrated; the default (stateless
        backends) is a no-op.
        """
        return 0

    def capabilities(self) -> dict:
        """Introspection record for :meth:`SpMVEngine.capabilities`."""
        return {
            "name": self.name,
            "bit_identical": True,
            "self_checking": False,
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


_REGISTRY: dict[str, ExecutionBackend] = {}


def _ensure_builtins() -> None:
    """Import the built-in backend modules so their ``@register_backend``
    decorators have run -- callers that reach the registry through
    ``get_backend`` alone (tuner workers, bare ``repro.tuning`` imports)
    must not depend on package-``__init__`` import order."""
    if "faithful" not in _REGISTRY:
        from . import auto, faithful, fast  # noqa: F401


def register_backend(cls: type[ExecutionBackend]) -> type[ExecutionBackend]:
    """Class decorator: instantiate and register the backend."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate backend name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def get_backend(name: str) -> ExecutionBackend:
    """Look up a registered backend instance by name."""
    _ensure_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise BackendError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> dict[str, ExecutionBackend]:
    """Read-only view of the backend registry."""
    _ensure_builtins()
    return dict(_REGISTRY)


def resolve_backend(spec: Any | None) -> ExecutionBackend:
    """Coerce a ``backend=`` spec -- ``None`` (default), a name, or an
    :class:`ExecutionBackend` instance -- to a backend instance."""
    if spec is None:
        return get_backend(DEFAULT_BACKEND)
    if isinstance(spec, ExecutionBackend):
        return spec
    if isinstance(spec, str):
        return get_backend(spec)
    raise BackendError(
        f"backend must be a name or ExecutionBackend, got {type(spec).__name__}"
    )
