"""The faithful backend: the workgroup-interpreting kernels, unchanged.

This is the correctness anchor every other backend is pinned against.
It delegates straight to the per-format interpreter kernels --
:class:`repro.kernels.yaspmv.YaSpMVKernel` / ``YaSpMMKernel`` for
BCCOO/BCCOO+, :class:`repro.kernels.merge_path.MergePathKernel` for
merge-path CSR, :class:`repro.kernels.row_grouped.RowGroupedKernel` for
RG-CSR -- per-workgroup dataflow, fault-injection hooks, the Grp_sum
chain under sync-targeting fault plans -- so ``backend="faithful"`` is
exactly the engine's historical behaviour.
"""

from __future__ import annotations

import numpy as np

from ..formats.merge_csr import MergeCSRMatrix
from ..formats.rgcsr import RGCSRMatrix
from ..gpu.device import DeviceSpec
from ..kernels.base import KernelResult
from ..kernels.merge_path import MergePathKernel
from ..kernels.row_grouped import RowGroupedKernel
from ..kernels.yaspmv import YaSpMMKernel, YaSpMVKernel
from .base import ExecutionBackend, register_backend

__all__ = ["FaithfulBackend"]


@register_backend
class FaithfulBackend(ExecutionBackend):
    """Workgroup-by-workgroup interpretation (the paper's dataflow)."""

    name = "faithful"

    def __init__(self):
        self._kernel = YaSpMVKernel()
        self._kernel_multi = YaSpMMKernel()
        self._merge = MergePathKernel()
        self._rg = RowGroupedKernel()

    def execute(
        self,
        fmt,
        x: np.ndarray,
        device: DeviceSpec,
        config=None,
        *,
        reference=None,
    ) -> KernelResult:
        if isinstance(fmt, MergeCSRMatrix):
            return self._merge.run(fmt, x, device, config=config)
        if isinstance(fmt, RGCSRMatrix):
            return self._rg.run(fmt, x, device, config=config)
        return self._kernel.run(fmt, x, device, config=config)

    def execute_multi(
        self,
        fmt,
        X: np.ndarray,
        device: DeviceSpec,
        config=None,
        *,
        reference=None,
    ) -> KernelResult:
        if isinstance(fmt, MergeCSRMatrix):
            return self._merge.run_multi(fmt, X, device, config=config)
        if isinstance(fmt, RGCSRMatrix):
            return self._rg.run_multi(fmt, X, device, config=config)
        return self._kernel_multi.run_multi(fmt, X, device, config)

    def capabilities(self) -> dict:
        caps = super().capabilities()
        caps["vectorized"] = False
        caps["fault_sites"] = True
        return caps
