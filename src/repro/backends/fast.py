"""The fast backend: fully vectorized execution, bit-identical by design.

Instead of interpreting workgroup-by-workgroup, this backend runs the
whole launch as a handful of NumPy array passes:

* launch-time state (the padded BCCOO arrays, the vector-gather index
  map, the segment structure of the bit flags, the x-independent cost
  profile) is built **once** per ``(format, config, device)`` and cached
  on the format instance's lifetime (weak-keyed, so dropping the format
  drops the plan);
* per multiply, only the x-dependent work runs: one gather, one
  ``einsum`` (the *same* call on the *same* cached arrays the faithful
  kernel uses -- hence identical products), and one batched segmented
  sum (:func:`repro.scan.batched_segment_sums`, whose ``np.bincount``
  core adds the same weights into the same bins in the same element
  order as the reference ``np.add.at`` -- hence identical sums).

For 1x1 blocks (the default point and the most common tuned winner) the
gather/multiply/segment-sum pipeline collapses further into a single
SciPy CSR matvec over a plan-cached *remapped* matrix whose rows are
the flag segments: SciPy's kernel runs ``sum += data[j] * x[col[j]]``
sequentially per row -- the exact addition sequence of the bincount
path, fused into one memory pass.  That equivalence holds only when the
SciPy build does not contract the multiply-add into an FMA, so the
fused path is gated behind a one-time runtime probe
(:func:`_fused_matvec_exact`) and silently falls back to the
bincount pipeline when the probe fails.

Bit-identity therefore holds by construction *and is re-checked on this
interpreter*, not assumed; the differential suite pins it with
``np.array_equal``.

Fault plans perturb decode-time state *per launch* (corrupted flag
words, stale ``Grp_sum`` reads), which a cached plan cannot observe --
so under any active :func:`repro.fault.active_plan` this backend
delegates the whole call to ``faithful``, keeping every fault site's
behaviour (and the engine's fallback chain semantics) exactly as before.
"""

from __future__ import annotations

import threading
import weakref
from dataclasses import replace

import numpy as np

from ..errors import KernelConfigError, ValidationError
from ..fault.injection import active_plan
from ..formats.bccoo import BCCOOMatrix
from ..formats.bccoo_plus import BCCOOPlusMatrix
from ..formats.merge_csr import MergeCSRMatrix
from ..formats.rgcsr import RGCSRMatrix
from ..gpu.caches import vector_read_traffic
from ..gpu.device import DeviceSpec
from ..gpu.memory import stream_bytes
from ..kernels.base import KernelResult
from ..kernels.merge_path import MergePathKernel, merge_path_stats
from ..kernels.row_grouped import RowGroupedKernel, row_grouped_stats
from ..kernels.yaspmv import YaSpMMKernel, YaSpMVKernel
from ..kernels.yaspmv_common import prepare
from ..obs import active_observer
from ..scan.batched import SegmentPlan, batched_segment_sums
from .base import ExecutionBackend, register_backend
from .faithful import FaithfulBackend

__all__ = ["FastBackend", "FastPlan", "MergePlan", "RowGroupPlan"]

#: One-time probe result: does this SciPy build's CSR matvec reproduce
#: the reference accumulation bit for bit?  ``None`` until probed.
_FUSED_EXACT: bool | None = None


def _fused_matvec_exact() -> bool:
    """Probe whether SciPy's CSR matvec matches the bincount reference.

    SciPy's ``csr_matvec``/``csr_matvecs`` kernels accumulate
    ``sum += data[j] * x[col[j]]`` sequentially per row, which is the
    same sequence of rounded multiplies and adds as
    ``np.bincount(ids, weights=data * x[cols])`` -- *unless* the build's
    compiler contracted the multiply-add into an FMA (legal under
    ``-ffp-contract=fast``, and the product's rounding step disappears).
    Rather than assume a build flag, run both once on adversarial random
    data and compare exactly; cache the verdict for the process.
    """
    global _FUSED_EXACT
    if _FUSED_EXACT is None:
        import scipy.sparse as sp

        rng = np.random.default_rng(0x5EED)
        n, nseg, ncols, k = 4096, 64, 512, 3
        ids = np.sort(rng.integers(0, nseg, size=n))
        cols = rng.integers(0, ncols, size=n)
        data = rng.standard_normal(n)
        x = rng.standard_normal(ncols)
        X = rng.standard_normal((ncols, k))
        indptr = np.searchsorted(ids, np.arange(nseg + 1))
        S = sp.csr_matrix((data, cols, indptr), shape=(nseg, ncols))
        ref = np.bincount(ids, weights=data * x[cols], minlength=nseg)
        ok = np.array_equal(S @ x, ref)
        if ok:
            flat = (ids[:, None] * k + np.arange(k)).ravel()
            ref_multi = np.bincount(
                flat, weights=(data[:, None] * X[cols]).ravel(), minlength=nseg * k
            ).reshape(nseg, k)
            ok = np.array_equal(S @ X, ref_multi)
        _FUSED_EXACT = bool(ok)
    return _FUSED_EXACT


class FastPlan:
    """Cached x-independent launch state for one (format, config, device).

    Everything here is what the faithful kernel recomputes per call:
    the padded arrays, the gather map, the flag segment structure, the
    scatter row map, and (lazily) the cost profile.
    """

    __slots__ = (
        "padded",
        "safe",
        "invalid",
        "gather_flat",
        "segplan",
        "rows",
        "row_stop_mismatch",
        "fused",
        "_stats",
        "_multi_stats",
        "_lock",
    )

    def __init__(self, fmt: BCCOOMatrix, cfg, kernel: YaSpMVKernel):
        padded = prepare(fmt, cfg)
        w = fmt.block_width
        base = padded.cols * w
        gather = base[:, None] + np.arange(w, dtype=np.int64)[None, :]
        valid = gather < fmt.ncols
        self.padded = padded
        self.safe = np.where(valid, gather, 0)
        # Edge/padding blocks multiply zero values; when every gather is
        # in range (the common 1-wide-block case) skip the mask entirely.
        self.invalid = None if valid.all() else ~valid
        self.gather_flat = self.safe.ravel()
        self.segplan = SegmentPlan(padded.stops)
        n_closed = self.segplan.n_closed
        self.rows = fmt.nonempty_block_rows[:n_closed]
        self.row_stop_mismatch = n_closed != fmt.nonempty_block_rows.shape[0]
        # 1x1 blocks: fold gather+multiply+segment-sum into one CSR
        # matvec over a segment-rowed remap (see module docstring).
        self.fused = None
        if (
            fmt.block_height == 1
            and fmt.block_width == 1
            and _fused_matvec_exact()
        ):
            import scipy.sparse as sp

            data = np.ascontiguousarray(padded.values[:, 0, 0])
            if self.invalid is not None:
                # The faithful path multiplies these lanes by a zeroed
                # gather; zeroing the data keeps the products zero here.
                data = np.where(self.invalid.ravel(), 0.0, data)
            indptr = np.searchsorted(
                self.segplan.ids, np.arange(self.segplan.n_segments + 1)
            )
            self.fused = sp.csr_matrix(
                (data, self.gather_flat, indptr),
                shape=(self.segplan.n_segments, fmt.ncols),
            )
        self._stats = None
        self._multi_stats: dict[int, object] = {}
        self._lock = threading.Lock()

    def derive(self, new_fmt: BCCOOMatrix) -> "FastPlan":
        """Plan for a value-only rebuild of this plan's format.

        ``new_fmt`` shares the structural arrays (flags, columns, row
        map) with the original, so the gather map, segment plan, scatter
        rows and the x-independent cost profile all carry over by
        identity; only the padded value payload (and the fused CSR's
        data vector) is rebuilt -- the whole point of the incremental
        re-prepare path.
        """
        clone = object.__new__(FastPlan)
        values = np.zeros_like(self.padded.values)
        values[: new_fmt.nblocks_padded] = new_fmt.values
        clone.padded = replace(self.padded, values=values, fmt=new_fmt)
        clone.safe = self.safe
        clone.invalid = self.invalid
        clone.gather_flat = self.gather_flat
        clone.segplan = self.segplan
        clone.rows = self.rows
        clone.row_stop_mismatch = self.row_stop_mismatch
        clone.fused = None
        if self.fused is not None:
            import scipy.sparse as sp

            data = np.ascontiguousarray(values[:, 0, 0])
            if self.invalid is not None:
                data = np.where(self.invalid.ravel(), 0.0, data)
            clone.fused = sp.csr_matrix(
                (data, self.fused.indices, self.fused.indptr),
                shape=self.fused.shape,
            )
        # Cost profiles depend only on structure -- share them.
        clone._stats = self._stats
        clone._multi_stats = dict(self._multi_stats)
        clone._lock = threading.Lock()
        return clone

    def stats(self, kernel: YaSpMVKernel, device: DeviceSpec):
        """The (x-independent) cost profile, computed once, copied out."""
        if self._stats is None:
            with self._lock:
                if self._stats is None:
                    self._stats = kernel._stats(
                        self.padded, self.gather_flat, device, self.padded.config
                    )
        return replace(self._stats)

    def multi_stats(self, kernel: YaSpMVKernel, device: DeviceSpec, k: int):
        """SpMM cost profile for batch width ``k`` (cached per ``k``)."""
        cached = self._multi_stats.get(k)
        if cached is None:
            single = self.stats(kernel, device)
            cfg = self.padded.config
            vec_dram, vec_cached = vector_read_traffic(
                self.gather_flat,
                cfg.value_bytes * k,
                cache_bytes=device.tex_cache_bytes,
                line_bytes=device.tex_line_bytes,
                use_cache=cfg.use_texture,
            )
            base_vec_dram, base_vec_cached = vector_read_traffic(
                self.gather_flat,
                cfg.value_bytes,
                cache_bytes=device.tex_cache_bytes,
                line_bytes=device.tex_line_bytes,
                use_cache=cfg.use_texture,
            )
            n_stops = int(self.padded.stops.sum())
            h = self.padded.fmt.block_height
            write_delta = (k - 1) * stream_bytes(
                n_stops * h, cfg.value_bytes, device.transaction_bytes
            )
            single.dram_read_bytes += vec_dram - base_vec_dram
            single.cached_read_bytes += vec_cached - base_vec_cached
            single.dram_write_bytes += write_delta
            single.flops *= k
            single.shared_mem_per_workgroup *= k
            if single.shared_mem_per_workgroup > device.max_shared_mem_per_workgroup:
                raise KernelConfigError(
                    f"k={k} needs {single.shared_mem_per_workgroup} B shared "
                    f"memory per workgroup; {device.name} allows "
                    f"{device.max_shared_mem_per_workgroup}"
                )
            with self._lock:
                self._multi_stats[k] = single
            cached = single
        return replace(cached)


class MergePlan:
    """Cached x-independent launch state for one merge-path CSR format.

    The per-element row ids are the only derived array the faithful
    kernel recomputes per call; ``np.bincount`` over them adds the same
    products into the same rows in the same stream order as the team
    loop's ``np.add.at`` (both are strictly sequential), so the fused
    single pass is bit-identical by construction.
    """

    __slots__ = ("rows", "_stats", "_lock")

    def __init__(self, fmt: MergeCSRMatrix):
        self.rows = np.repeat(
            np.arange(fmt.nrows, dtype=np.int64), np.diff(fmt.row_ptr)
        )
        self._stats = {}
        self._lock = threading.Lock()

    def derive(self, new_fmt: MergeCSRMatrix) -> "MergePlan":
        """Plan for a value-only rebuild: everything carries over."""
        clone = object.__new__(MergePlan)
        clone.rows = self.rows
        clone._stats = dict(self._stats)
        clone._lock = threading.Lock()
        return clone

    def stats(self, fmt: MergeCSRMatrix, device: DeviceSpec, cfg):
        key = (cfg, device.name)
        cached = self._stats.get(key)
        if cached is None:
            with self._lock:
                cached = self._stats.get(key)
                if cached is None:
                    cached = merge_path_stats(fmt, device, cfg)
                    self._stats[key] = cached
        return replace(cached)


class RowGroupPlan:
    """Cached x-independent launch state for one RG-CSR format.

    ``order`` lists the valid lane slots in CSR element order (row by
    row, lane ascending); ``row_ids`` repeats each packed row's original
    index per element.  ``np.bincount(row_ids, weights=prods[order])``
    then folds every row's elements in lane order -- the exact addition
    sequence of the faithful kernel's per-group lane loop.
    """

    __slots__ = ("order", "row_ids", "_stats", "_lock")

    def __init__(self, fmt: RGCSRMatrix):
        chunks = []
        for g in range(fmt.n_groups):
            r0 = int(fmt.group_row_offsets[g])
            r1 = int(fmt.group_row_offsets[g + 1])
            n, w = r1 - r0, int(fmt.group_widths[g])
            base = int(fmt.group_data_offsets[g])
            grid = (
                base
                + np.arange(w, dtype=np.int64)[None, :] * n
                + np.arange(n, dtype=np.int64)[:, None]
            )
            mask = fmt.row_lengths[r0:r1, None] > np.arange(w)[None, :]
            chunks.append(grid[mask])
        self.order = (
            np.concatenate(chunks) if chunks else np.empty(0, dtype=np.int64)
        )
        self.row_ids = np.repeat(fmt.row_perm, fmt.row_lengths)
        self._stats = {}
        self._lock = threading.Lock()

    def derive(self, new_fmt: RGCSRMatrix) -> "RowGroupPlan":
        """Plan for a value-only rebuild: everything carries over."""
        clone = object.__new__(RowGroupPlan)
        clone.order = self.order
        clone.row_ids = self.row_ids
        clone._stats = dict(self._stats)
        clone._lock = threading.Lock()
        return clone

    def stats(self, fmt: RGCSRMatrix, device: DeviceSpec, cfg):
        key = (cfg, device.name)
        cached = self._stats.get(key)
        if cached is None:
            with self._lock:
                cached = self._stats.get(key)
                if cached is None:
                    cached = row_grouped_stats(fmt, device, cfg)
                    self._stats[key] = cached
        return replace(cached)


@register_backend
class FastBackend(ExecutionBackend):
    """All-workgroups-at-once vectorized execution."""

    name = "fast"

    def __init__(self):
        self._kernel = YaSpMVKernel()
        self._kernel_multi = YaSpMMKernel()
        self._merge = MergePathKernel()
        self._rg = RowGroupedKernel()
        self._faithful = FaithfulBackend()
        # fmt instance -> {(config, device.name): FastPlan}; weak-keyed
        # so plans die with their format.
        self._plans = weakref.WeakKeyDictionary()
        # fmt instance -> MergePlan / RowGroupPlan (config-independent).
        self._stream_plans = weakref.WeakKeyDictionary()
        self._plans_lock = threading.Lock()
        #: Plans migrated through :meth:`refresh_values` (value swaps
        #: that reused a gather/segment plan instead of re-deriving it).
        self.n_value_refreshes = 0

    # ------------------------------------------------------------------ #
    # Plan cache
    # ------------------------------------------------------------------ #

    def _plan_for(self, fmt: BCCOOMatrix, cfg, device: DeviceSpec) -> FastPlan:
        key = (cfg, device.name)
        try:
            per_fmt = self._plans.get(fmt)
        except TypeError:  # non-weakrefable format: build transient plan
            return FastPlan(fmt, cfg, self._kernel)
        if per_fmt is not None:
            plan = per_fmt.get(key)
            if plan is not None:
                return plan
        with self._plans_lock:
            per_fmt = self._plans.setdefault(fmt, {})
            plan = per_fmt.get(key)
            if plan is None:
                plan = FastPlan(fmt, cfg, self._kernel)
                per_fmt[key] = plan
        return plan

    def _stream_plan_for(self, fmt):
        try:
            plan = self._stream_plans.get(fmt)
        except TypeError:  # non-weakrefable: transient plan
            plan = None
            if isinstance(fmt, MergeCSRMatrix):
                return MergePlan(fmt)
            return RowGroupPlan(fmt)
        if plan is not None:
            return plan
        with self._plans_lock:
            plan = self._stream_plans.get(fmt)
            if plan is None:
                plan = (
                    MergePlan(fmt)
                    if isinstance(fmt, MergeCSRMatrix)
                    else RowGroupPlan(fmt)
                )
                self._stream_plans[fmt] = plan
        return plan

    def _kernel_for(self, fmt):
        """The interpreter kernel whose protocol this format speaks."""
        if isinstance(fmt, MergeCSRMatrix):
            return self._merge
        if isinstance(fmt, RGCSRMatrix):
            return self._rg
        return self._kernel

    def plan_count(self) -> int:
        """Live cached plans (introspection/tests)."""
        with self._plans_lock:
            return sum(len(d) for d in self._plans.values()) + len(
                self._stream_plans
            )

    def refresh_values(self, old_fmt, new_fmt) -> int:
        """Migrate cached plans from ``old_fmt`` to its value-swapped twin.

        Every plan cached for ``old_fmt`` is :meth:`FastPlan.derive`-d
        onto ``new_fmt`` -- the gather map, segment plan and cost
        profile carry over by identity, only the value payload is
        re-padded.  The next multiply on ``new_fmt`` then hits the plan
        cache instead of re-deriving the launch state.
        """
        if isinstance(old_fmt, BCCOOPlusMatrix) and isinstance(
            new_fmt, BCCOOPlusMatrix
        ):
            return self.refresh_values(old_fmt.stacked, new_fmt.stacked)
        if isinstance(old_fmt, (MergeCSRMatrix, RGCSRMatrix)):
            try:
                plan = self._stream_plans.get(old_fmt)
            except TypeError:
                return 0
            if plan is None:
                return 0
            with self._plans_lock:
                if new_fmt not in self._stream_plans:
                    self._stream_plans[new_fmt] = plan.derive(new_fmt)
                    self.n_value_refreshes += 1
                    return 1
            return 0
        try:
            per_fmt = self._plans.get(old_fmt)
        except TypeError:  # non-weakrefable format: nothing cached
            return 0
        if not per_fmt:
            return 0
        migrated = 0
        with self._plans_lock:
            dest = self._plans.setdefault(new_fmt, {})
            for key, plan in per_fmt.items():
                if key not in dest:
                    dest[key] = plan.derive(new_fmt)
                    migrated += 1
            self.n_value_refreshes += migrated
        return migrated

    # ------------------------------------------------------------------ #
    # SpMV
    # ------------------------------------------------------------------ #

    def execute(
        self,
        fmt,
        x: np.ndarray,
        device: DeviceSpec,
        config=None,
        *,
        reference=None,
    ) -> KernelResult:
        # A fault plan perturbs the decoded per-launch state -- invisible
        # to a cached plan, so route through the faithful interpreter.
        if active_plan() is not None:
            return self._faithful.execute(fmt, x, device, config, reference=reference)
        kern = self._kernel_for(fmt)
        cfg = kern._coerce_config(config)
        obs = active_observer()
        if not obs.enabled:
            return self._execute(fmt, x, device, cfg)
        with obs.span(
            "backend.fast", format=type(fmt).__name__, workgroup_size=cfg.workgroup_size
        ) as sp:
            result = self._execute(fmt, x, device, cfg)
            kern._observe(obs, sp, kern.name, result.stats)
        return result

    def _execute(self, fmt, x, device, cfg) -> KernelResult:
        if isinstance(fmt, MergeCSRMatrix):
            return self._execute_merge(fmt, x, device, cfg)
        if isinstance(fmt, RGCSRMatrix):
            return self._execute_rg(fmt, x, device, cfg)
        if isinstance(fmt, BCCOOPlusMatrix):
            inner = self._execute(fmt.stacked, x, device, cfg)
            stride = fmt.padded_rows_per_slice
            y_stacked = np.zeros(fmt.slice_count * stride, dtype=np.float64)
            y_stacked[: inner.y.shape[0]] = inner.y
            y = fmt.combine(y_stacked)
            combine = self._kernel._combine_stats(fmt, device)
            return KernelResult(y=y, stats=inner.stats.sequential(combine))
        if not isinstance(fmt, BCCOOMatrix):
            raise KernelConfigError(
                f"yaspmv kernel needs a BCCOO/BCCOO+ matrix, got {type(fmt).__name__}"
            )
        self._kernel._check_workgroup(cfg.workgroup_size, device)
        self._kernel._check_resources(fmt, device, cfg)
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != fmt.ncols:
            raise KernelConfigError(
                f"vector length {x.shape[0]} != matrix columns {fmt.ncols}"
            )
        plan = self._plan_for(fmt, cfg, device)
        if plan.row_stop_mismatch:
            raise ValidationError(
                f"bit flags encode {plan.segplan.n_closed} row stops but the "
                f"row map holds {fmt.nonempty_block_rows.shape[0]}",
                check="row_stop_count",
            )

        if plan.fused is not None:
            per_stop = (plan.fused @ x)[: plan.segplan.n_closed].reshape(-1, 1)
        else:
            xg = x[plan.safe]
            if plan.invalid is not None:
                xg[plan.invalid] = 0.0
            contribs = np.einsum("bhw,bw->bh", plan.padded.values, xg)
            per_stop = batched_segment_sums(contribs, plan.segplan)

        h = fmt.block_height
        y_full = np.zeros(fmt.n_block_rows * h, dtype=np.float64)
        if per_stop.shape[0]:
            y_full.reshape(-1, h)[plan.rows] = per_stop
        y = y_full[: fmt.nrows]
        return KernelResult(y=y, stats=plan.stats(self._kernel, device))

    def _check_vector(self, fmt, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != fmt.ncols:
            raise KernelConfigError(
                f"vector length {x.shape[0]} != matrix columns {fmt.ncols}"
            )
        return x

    def _execute_merge(self, fmt, x, device, cfg) -> KernelResult:
        """Merge-path CSR as one fused pass.

        ``prods`` is the identical elementwise expression the faithful
        team loop evaluates, and ``np.bincount`` adds those products in
        stream order -- the same addition sequence as the team-ordered
        ``np.add.at`` (carries included), hence bit-identical output.
        """
        self._merge._check_workgroup(cfg.workgroup_size, device)
        x = self._check_vector(fmt, x)
        plan = self._stream_plan_for(fmt)
        prods = fmt.values * x[fmt.col_index]
        y = np.bincount(plan.rows, weights=prods, minlength=fmt.nrows)
        return KernelResult(y=y, stats=plan.stats(fmt, device, cfg))

    def _execute_rg(self, fmt, x, device, cfg) -> KernelResult:
        """RG-CSR as one fused pass over the CSR-ordered lane stream.

        ``plan.order`` visits each row's valid lanes in ascending lane
        order, so the bincount folds every row exactly as the faithful
        kernel's per-group lane loop does.
        """
        self._rg._check_workgroup(cfg.workgroup_size, device)
        x = self._check_vector(fmt, x)
        plan = self._stream_plan_for(fmt)
        slots = plan.order
        prods = fmt.values[slots] * x[fmt.col_index[slots]]
        y = np.bincount(plan.row_ids, weights=prods, minlength=fmt.nrows)
        return KernelResult(y=y, stats=plan.stats(fmt, device, cfg))

    def _execute_stream_multi(self, fmt, X, device, cfg) -> KernelResult:
        """SpMM for the stream formats: one fused pass per column,
        stats chained exactly like the faithful ``run_multi`` loop."""
        kern = self._kernel_for(fmt)
        if X.shape[0] != fmt.ncols:
            raise KernelConfigError(
                f"X must have shape ({fmt.ncols}, k), got {X.shape}"
            )
        k = X.shape[1]
        limit = kern.max_batch_width(fmt, device, cfg)
        if k > limit:
            raise KernelConfigError(
                f"batch width {k} exceeds device limit {limit}"
            )
        Y = np.empty((fmt.nrows, k), dtype=np.float64)
        stats = None
        for j in range(k):
            res = self._execute(fmt, X[:, j], device, cfg)
            Y[:, j] = res.y
            stats = res.stats if stats is None else stats.sequential(res.stats)
        return KernelResult(y=Y, stats=stats)

    # ------------------------------------------------------------------ #
    # SpMM
    # ------------------------------------------------------------------ #

    def execute_multi(
        self,
        fmt,
        X: np.ndarray,
        device: DeviceSpec,
        config=None,
        *,
        reference=None,
    ) -> KernelResult:
        if active_plan() is not None:
            return self._faithful.execute_multi(
                fmt, X, device, config, reference=reference
            )
        kern = self._kernel_for(fmt)
        cfg = kern._coerce_config(config)
        obs = active_observer()
        if not obs.enabled:
            return self._execute_multi(fmt, X, device, cfg)
        with obs.span("backend.fast_multi", format=type(fmt).__name__) as sp:
            result = self._execute_multi(fmt, X, device, cfg)
            label = "yaspmm" if kern is self._kernel else kern.name
            kern._observe(obs, sp, label, result.stats)
        return result

    def _execute_multi(self, fmt, X, device, cfg) -> KernelResult:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise KernelConfigError(
                f"X must be 2-D (ncols, k), got shape {X.shape}"
            )
        k = X.shape[1]
        if k < 1:
            raise KernelConfigError("X needs at least one column")
        if isinstance(fmt, (MergeCSRMatrix, RGCSRMatrix)):
            return self._execute_stream_multi(fmt, X, device, cfg)
        if isinstance(fmt, BCCOOPlusMatrix):
            inner = self._execute_multi(fmt.stacked, X, device, cfg)
            stride = fmt.padded_rows_per_slice
            buf = np.zeros((fmt.slice_count * stride, k), dtype=np.float64)
            buf[: inner.y.shape[0]] = inner.y
            folded = buf.reshape(fmt.slice_count, stride, k).sum(axis=0)
            y = folded[: fmt.nrows]
            combine = self._kernel._combine_stats(fmt, device)
            combine.dram_read_bytes *= k
            combine.dram_write_bytes *= k
            combine.flops *= k
            return KernelResult(y=y, stats=inner.stats.sequential(combine))
        if not isinstance(fmt, BCCOOMatrix):
            raise KernelConfigError(
                f"yaspmm kernel needs a BCCOO/BCCOO+ matrix, got {type(fmt).__name__}"
            )
        if X.shape[0] != fmt.ncols:
            raise KernelConfigError(
                f"X has {X.shape[0]} rows, matrix has {fmt.ncols} columns"
            )
        self._kernel._check_workgroup(cfg.workgroup_size, device)
        self._kernel._check_resources(fmt, device, cfg)
        plan = self._plan_for(fmt, cfg, device)
        if plan.row_stop_mismatch:
            raise ValidationError(
                f"bit flags encode {plan.segplan.n_closed} row stops but the "
                f"row map holds {fmt.nonempty_block_rows.shape[0]}",
                check="row_stop_count",
            )
        # SpMM shared memory scales with k; surface the violation before
        # doing the arithmetic, exactly like the faithful kernel.
        stats = plan.multi_stats(self._kernel, device, k)

        h = fmt.block_height
        if plan.fused is not None:
            per_stop = (plan.fused @ X)[: plan.segplan.n_closed]
        else:
            Xg = X[plan.safe]  # (nb, w, k)
            if plan.invalid is not None:
                Xg[plan.invalid] = 0.0
            contribs = np.einsum("bhw,bwk->bhk", plan.padded.values, Xg)
            nb_p = plan.padded.nb_padded
            per_stop = batched_segment_sums(
                contribs.reshape(nb_p, h * k), plan.segplan
            )
        Y_full = np.zeros((fmt.n_block_rows * h, k), dtype=np.float64)
        if per_stop.shape[0]:
            Y_full.reshape(-1, h, k)[plan.rows] = per_stop.reshape(-1, h, k)
        y = Y_full[: fmt.nrows]
        return KernelResult(y=y, stats=stats)

    def capabilities(self) -> dict:
        caps = super().capabilities()
        caps["vectorized"] = True
        caps["fault_sites"] = "delegated"  # active plans run on faithful
        return caps
