"""Benchmark harness and report rendering."""

from .backends import run_backend_sweep, sweep_passed, write_sweep
from .compare import (
    CompareReport,
    MetricDelta,
    compare_snapshots,
    load_snapshot,
)
from .formats import format_sweep_passed, matrix_classes, run_format_sweep
from .solvers import run_solver_bench, solver_bench_passed, write_solver_bench
from .harness import (
    SYSTEMS,
    MatrixComparison,
    SystemScore,
    compare_systems,
    harmonic_mean,
    run_suite_comparison,
)
from .report import render_bars, render_comparison, render_speedups, render_table

__all__ = [
    "CompareReport",
    "MetricDelta",
    "compare_snapshots",
    "load_snapshot",
    "run_backend_sweep",
    "sweep_passed",
    "write_sweep",
    "run_format_sweep",
    "format_sweep_passed",
    "matrix_classes",
    "run_solver_bench",
    "solver_bench_passed",
    "write_solver_bench",
    "SYSTEMS",
    "MatrixComparison",
    "SystemScore",
    "compare_systems",
    "harmonic_mean",
    "run_suite_comparison",
    "render_bars",
    "render_comparison",
    "render_speedups",
    "render_table",
]
