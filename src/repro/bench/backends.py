"""Backend sweep: wall-clock ``fast`` vs ``faithful``, identity-gated.

The vectorized backend's contract is twofold -- *bit-identical* to the
workgroup interpreter and *much faster* (it exists to amortize the
interpreter's per-workgroup Python overhead).  This sweep measures both
on real wall clock: every suite matrix is prepared once, multiplied on
each backend, the outputs compared with ``np.array_equal`` (exact, not
approximate), and the per-matrix speedup recorded.

:func:`run_backend_sweep` returns a JSON-able report;
:func:`sweep_passed` applies the CI gate (any identity loss, or ``fast``
slower than ``faithful`` anywhere, fails).  ``repro bench`` and the
``benchmarks/bench_backends.py`` smoke job both funnel through here and
write ``benchmarks/results/BENCH_kernels.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np

from ..backends import get_backend
from ..core.engine import SpMVEngine
from ..gpu.device import get_device
from ..tuning.parameters import TuningPoint

__all__ = ["run_backend_sweep", "sweep_passed", "write_sweep"]

#: Matrices small enough that interpreter overhead dominates are not
#: meaningful speedup witnesses; the gate weighs matrices with at least
#: this many nonzeros ("medium" in the bench suite's terms).
MEDIUM_NNZ = 20_000


def _time_call(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall clock for one zero-argument call."""
    best = float("inf")
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_backend_sweep(
    device: str = "gtx680",
    matrices: dict | None = None,
    cap_nnz: int = 150_000,
    repeats: int = 3,
    point: TuningPoint | None = None,
) -> dict:
    """Time every backend on every matrix; exact-compare the outputs.

    ``matrices`` maps name -> CSR (defaults to the Table 2 suite capped
    at ``cap_nnz``).  ``point`` pins the format configuration (defaults
    to the 1x1 BCCOO baseline) so the sweep measures execution, not
    tuning.  Returns a JSON-able report; apply :func:`sweep_passed` for
    the pass/fail verdict.
    """
    if matrices is None:
        from ..matrices import load_suite

        matrices = load_suite(cap_nnz=cap_nnz)
    point = point if point is not None else TuningPoint()
    dev = get_device(device)
    engine = SpMVEngine(device=dev)
    faithful = get_backend("faithful")
    fast = get_backend("fast")

    rows = []
    for name, csr in matrices.items():
        prepared = engine.prepare(csr, point=point)
        x = np.random.default_rng(0).standard_normal(csr.shape[1])
        fmt, cfg = prepared.fmt, prepared.config
        # Warm-up builds the fast backend's cached plan and keeps the
        # one-time padding/gather construction out of the timings.
        y_faithful = faithful.execute(fmt, x, dev, cfg).y
        y_fast = fast.execute(fmt, x, dev, cfg).y
        t_faithful = _time_call(lambda: faithful.execute(fmt, x, dev, cfg), repeats)
        t_fast = _time_call(lambda: fast.execute(fmt, x, dev, cfg), repeats)
        rows.append(
            {
                "matrix": name,
                "shape": list(csr.shape),
                "nnz": int(csr.nnz),
                "medium": bool(csr.nnz >= MEDIUM_NNZ),
                "faithful_s": t_faithful,
                "fast_s": t_fast,
                "speedup": t_faithful / t_fast if t_fast > 0 else float("inf"),
                "bit_identical": bool(np.array_equal(y_fast, y_faithful)),
            }
        )

    speedups = [r["speedup"] for r in rows]
    medium = [r["speedup"] for r in rows if r["medium"]]
    return {
        "kind": "bench_kernels",
        "device": device,
        "repeats": repeats,
        "point": f"{point.format_name} {point.block_height}x{point.block_width}",
        "matrices": rows,
        "all_bit_identical": all(r["bit_identical"] for r in rows),
        "min_speedup": min(speedups) if speedups else None,
        "min_medium_speedup": min(medium) if medium else None,
        "geomean_speedup": (
            float(np.exp(np.mean(np.log(speedups)))) if speedups else None
        ),
    }


def sweep_passed(report: dict) -> tuple[bool, list[str]]:
    """The CI gate: bit-identity everywhere, ``fast`` never slower.

    Returns ``(passed, reasons)`` -- reasons name the offending matrices
    so the job log says *what* regressed, not just that something did.
    """
    reasons = []
    for row in report["matrices"]:
        if not row["bit_identical"]:
            reasons.append(f"{row['matrix']}: fast output is not bit-identical")
        if row["speedup"] < 1.0:
            reasons.append(
                f"{row['matrix']}: fast is slower than faithful "
                f"({row['fast_s']:.4f}s vs {row['faithful_s']:.4f}s)"
            )
    return (not reasons, reasons)


def write_sweep(report: dict, path) -> None:
    """Persist the report as pretty-printed JSON."""
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
