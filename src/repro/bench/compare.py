"""Benchmark regression gate: diff two ``BENCH_*.json`` snapshots.

The benchmark sweeps write JSON snapshots (``BENCH_kernels.json``,
``BENCH_serving.json``, ``BENCH_solvers.json``); this module turns a
pair of them into a pass/fail verdict so CI (and ``repro bench
--compare``) can refuse a change that quietly costs throughput.  A
*regression* is a metric moving in its bad direction by more than
``threshold`` (default 15% -- generous enough to ride out shared-runner
noise, tight enough to catch a lost fast path).

Only matching metrics are compared: a matrix present in one snapshot
but not the other is reported as ``added``/``removed`` context, never a
failure, so growing the suite doesn't trip the gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import ValidationError

__all__ = [
    "CompareReport",
    "MetricDelta",
    "compare_snapshots",
    "load_snapshot",
]

#: Default regression tolerance: fractional move in the bad direction.
DEFAULT_THRESHOLD = 0.15

#: metric suffix -> direction ("lower" or "higher" is better).
_DIRECTIONS = {
    "fast_s": "lower",
    "faithful_s": "lower",
    "p99_ms": "lower",
    "p50_ms": "lower",
    "throughput_rps": "higher",
    "iterations_per_s": "higher",
    "swap_s": "lower",
    "time_us": "lower",
}


@dataclass
class MetricDelta:
    """One metric compared across the two snapshots."""

    metric: str
    direction: str  # "lower" / "higher" (which way is better)
    baseline: float
    current: float
    #: Calibration offset subtracted from ``change`` before the verdict:
    #: the cohort's median drift, attributed to the runner, not the code.
    shift: float = 0.0

    @property
    def change(self) -> float:
        """Fractional move in the *bad* direction (negative = improved)."""
        if self.baseline == 0:
            return 0.0
        delta = (self.current - self.baseline) / abs(self.baseline)
        return delta if self.direction == "lower" else -delta

    @property
    def adjusted_change(self) -> float:
        """``change`` minus the calibration shift (zero when uncalibrated)."""
        return self.change - self.shift

    def regressed(self, threshold: float) -> bool:
        return self.adjusted_change > threshold

    def to_dict(self) -> dict:
        out = {
            "metric": self.metric,
            "direction": self.direction,
            "baseline": self.baseline,
            "current": self.current,
            "change": round(self.change, 4),
        }
        if self.shift:
            out["shift"] = round(self.shift, 4)
            out["adjusted_change"] = round(self.adjusted_change, 4)
        return out


@dataclass
class CompareReport:
    """Outcome of one snapshot diff (JSON-able)."""

    threshold: float
    deltas: list[MetricDelta] = field(default_factory=list)
    added: list[str] = field(default_factory=list)
    removed: list[str] = field(default_factory=list)
    #: Median cohort drift removed per direction when calibrated
    #: (``None`` = no calibration requested).
    calibration: dict[str, float] | None = None

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regressed(self.threshold)]

    @property
    def passed(self) -> bool:
        return not self.regressions

    def to_dict(self) -> dict:
        out = {
            "kind": "bench_compare",
            "passed": self.passed,
            "threshold": self.threshold,
            "deltas": [d.to_dict() for d in self.deltas],
            "regressions": [d.metric for d in self.regressions],
            "added": list(self.added),
            "removed": list(self.removed),
        }
        if self.calibration is not None:
            out["calibration"] = {
                k: round(v, 4) for k, v in self.calibration.items()
            }
        return out

    def summary(self) -> str:
        lines = [
            f"bench compare: {len(self.deltas)} metric(s), "
            f"threshold {self.threshold:.0%}"
        ]
        if self.calibration is not None:
            drift = ", ".join(
                f"{k}-is-better {v:+.1%}" for k, v in self.calibration.items()
            )
            lines.append(f"  runner calibration: median drift {drift} removed")
        for d in sorted(self.deltas, key=lambda d: -d.adjusted_change):
            verdict = "REGRESSED" if d.regressed(self.threshold) else "ok"
            lines.append(
                f"  {d.metric:40s} {d.baseline:12.6g} -> {d.current:12.6g} "
                f"({d.adjusted_change:+7.1%} worse) {verdict}"
            )
        if self.added:
            lines.append(f"  new metrics (not compared): {self.added}")
        if self.removed:
            lines.append(f"  dropped metrics           : {self.removed}")
        lines.append(
            f"  verdict: {'PASS' if self.passed else 'FAIL'}"
            + ("" if self.passed
               else f" ({len(self.regressions)} regression(s))")
        )
        return "\n".join(lines)


def load_snapshot(path) -> dict:
    """Load one ``BENCH_*.json`` snapshot; typed error on junk."""
    p = Path(path)
    if not p.exists():
        raise ValidationError(f"no benchmark snapshot at {p}")
    try:
        snap = json.loads(p.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{p} is not valid JSON: {exc}") from exc
    if not isinstance(snap, dict) or "kind" not in snap:
        raise ValidationError(
            f"{p} does not look like a benchmark snapshot (no 'kind' key)"
        )
    return snap


def _flatten(snap: dict) -> dict[str, float]:
    """Snapshot -> {metric path: value} for the comparable metrics.

    Knows the three snapshot kinds the sweeps write; unknown kinds
    yield nothing (forward compatibility) rather than raising.
    """
    kind = snap.get("kind")
    out: dict[str, float] = {}
    if kind == "bench_kernels":
        for row in snap.get("matrices", []):
            name = row.get("matrix", "?")
            for metric in ("fast_s", "faithful_s"):
                if metric in row:
                    out[f"kernels/{name}/{metric}"] = float(row[metric])
    elif kind == "bench_serving":
        for row in snap.get("shard_sweep", []):
            shards = row.get("shards", "?")
            for metric in ("throughput_rps", "p99_ms", "p50_ms"):
                if metric in row:
                    out[f"serving/shards={shards}/{metric}"] = float(row[metric])
    elif kind == "bench_solvers":
        for row in snap.get("solves", []):
            method = row.get("method", "?")
            for run in ("direct", "served"):
                rate = row.get(run, {}).get("iterations_per_s")
                if rate is not None:
                    out[f"solvers/{method}/{run}/iterations_per_s"] = float(rate)
        swap = snap.get("value_refresh", {}).get("swap_s")
        if swap is not None:
            out["solvers/value_refresh/swap_s"] = float(swap)
    elif kind == "bench_formats":
        for row in snap.get("classes", []):
            name = row.get("class", "?")
            for entrant, entry in row.get("entrants", {}).items():
                if "time_us" in entry:
                    out[f"formats/{name}/{entrant}/time_us"] = float(
                        entry["time_us"]
                    )
    return out


def _direction(metric: str) -> str:
    return _DIRECTIONS.get(metric.rsplit("/", 1)[-1], "lower")


def compare_snapshots(
    baseline: dict,
    current: dict,
    *,
    threshold: float = DEFAULT_THRESHOLD,
    calibrate: bool = False,
) -> CompareReport:
    """Diff two snapshots of the same kind; see the module docstring.

    ``baseline``/``current`` are loaded snapshot dicts
    (:func:`load_snapshot`).  Comparing snapshots of different kinds is
    a caller error.

    With ``calibrate=True`` the median fractional drift across each
    direction cohort is attributed to the machine and subtracted from
    every metric's change before the threshold is applied.  This is the
    cross-runner mode: a CI box that is uniformly 40% slower than the
    machine that wrote the committed baseline passes untouched, while a
    *relative* regression -- one matrix losing its fast path while the
    rest hold -- still trips the gate.  The shift is recorded in the
    report, never silently applied.
    """
    if threshold <= 0:
        raise ValidationError(f"threshold must be > 0, got {threshold}")
    if baseline.get("kind") != current.get("kind"):
        raise ValidationError(
            f"snapshot kinds differ: baseline is {baseline.get('kind')!r}, "
            f"current is {current.get('kind')!r}"
        )
    base = _flatten(baseline)
    cur = _flatten(current)
    report = CompareReport(threshold=threshold)
    for metric in sorted(base.keys() & cur.keys()):
        report.deltas.append(MetricDelta(
            metric=metric,
            direction=_direction(metric),
            baseline=base[metric],
            current=cur[metric],
        ))
    report.added = sorted(cur.keys() - base.keys())
    report.removed = sorted(base.keys() - cur.keys())
    if calibrate:
        report.calibration = {}
        for direction in ("lower", "higher"):
            cohort = [d for d in report.deltas if d.direction == direction]
            if not cohort:
                continue
            changes = sorted(d.change for d in cohort)
            mid = len(changes) // 2
            median = (
                changes[mid]
                if len(changes) % 2
                else (changes[mid - 1] + changes[mid]) / 2.0
            )
            for d in cohort:
                d.shift = median
            report.calibration[direction] = median
    return report
