"""Who-wins-per-matrix-class sweep over the first-class formats.

The cocktail thesis (and the reason merge-path CSR and RG-CSR exist as
first-class formats next to BCCOO) is that *no single format wins
everywhere*: each one's byte economics and scheduling discipline own a
different structural family.  This sweep makes that claim executable --
one synthetic matrix per family, every format timed through the cost
model at the **default** kernel configuration (BCCOO additionally
sweeps its block dimensions, the knob its footprint heuristic already
owns), and the winner recorded per class:

* ``stencil_band``    -- long banded rows, columns adjacent: CSR's raw
  streams are already compact and merge-path's equal-work teams remove
  the only remaining cost, so **merge_csr** wins.
* ``dense_rows_uniform`` -- thousands of identical mid-length strided
  rows over a narrow column space: RG-CSR's short columns and
  lane-major gather order beat BCCOO's flag/aux overhead, so
  **rgcsr** wins.
* ``blocked_banded``  -- dense 4x4 blocks on a band: BCCOO's blocking
  collapses the column stream by 16x, nothing else comes close, so
  **bccoo** wins.

Every entrant's output is exact-compared across the ``fast`` and
``faithful`` backends (``np.array_equal``) and checked against the
scipy product, so a format that got fast by being wrong fails the
sweep rather than winning it.  Model times are deterministic -- the
snapshot (``BENCH_formats.json``) diffs cleanly across commits.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..backends import get_backend
from ..formats.bccoo import BCCOOMatrix
from ..formats.merge_csr import MergeCSRMatrix
from ..formats.rgcsr import RGCSRMatrix
from ..gpu.device import get_device
from ..gpu.timing import TimingModel
from ..kernels.config import YaSpMVConfig
from .backends import write_sweep

__all__ = [
    "BCCOO_BLOCKS",
    "matrix_classes",
    "run_format_sweep",
    "format_sweep_passed",
    "write_sweep",
]

#: Block dimensions the BCCOO entrant may pick from -- the same
#: footprint-driven shortlist the tuner's pruning keeps.
BCCOO_BLOCKS = ((1, 1), (1, 2), (2, 1), (2, 2), (4, 1), (1, 4), (4, 4))

#: Class name -> the format expected to win it (the acceptance claim).
EXPECTED_WINNERS = {
    "stencil_band": "merge_csr",
    "dense_rows_uniform": "rgcsr",
    "blocked_banded": "bccoo",
}


def _stencil_band(n: int = 4000) -> _sp.csr_matrix:
    """Pentadiagonal band: every row 5 adjacent columns."""
    diags = [
        np.ones(n - 2), np.ones(n - 1), 2.0 * np.ones(n),
        np.ones(n - 1), np.ones(n - 2),
    ]
    return (_sp.diags(diags, (-2, -1, 0, 1, 2), format="csr") * 1.0).tocsr()


def _dense_rows_uniform(
    nr: int = 24000, nc: int = 3000, row_len: int = 48
) -> _sp.csr_matrix:
    """Uniform mid-length strided rows over a narrow column space."""
    cols = np.sort(
        (np.arange(nr)[:, None] * 7 + np.arange(row_len)[None, :] * 61) % nc,
        axis=1,
    )
    rows = np.repeat(np.arange(nr), row_len)
    vals = np.random.default_rng(0).standard_normal(nr * row_len)
    A = _sp.coo_matrix((vals, (rows, cols.ravel())), shape=(nr, nc)).tocsr()
    A.sum_duplicates()
    return A


def _blocked_banded(n_blocks: int = 1000, bs: int = 4) -> _sp.csr_matrix:
    """Dense ``bs x bs`` blocks on a tridiagonal block pattern."""
    tri = _sp.diags(
        [np.ones(n_blocks - 1), np.ones(n_blocks), np.ones(n_blocks - 1)],
        (-1, 0, 1),
    )
    return (_sp.kron(tri, np.ones((bs, bs)), format="csr") * 1.0).tocsr()


def matrix_classes() -> dict[str, _sp.csr_matrix]:
    """One representative matrix per structural family."""
    return {
        "stencil_band": _stencil_band(),
        "dense_rows_uniform": _dense_rows_uniform(),
        "blocked_banded": _blocked_banded(),
    }


def _bccoo_entrant(csr, dev, cfg, faithful, fast, x, tm):
    """Best default-config BCCOO over the block shortlist."""
    best = None
    for h, w in BCCOO_BLOCKS:
        try:
            fmt = BCCOOMatrix.from_scipy(csr, block_height=h, block_width=w)
        except Exception:
            continue
        res = faithful.execute(fmt, x, dev, cfg)
        t = tm.estimate(res.stats).t_total
        if best is None or t < best[0]:
            best = (t, fmt, res.y, (h, w))
    assert best is not None
    t, fmt, y, block = best
    y_fast = fast.execute(fmt, x, dev, cfg).y
    return {
        "time_us": t * 1e6,
        "block": f"{block[0]}x{block[1]}",
        "bit_identical": bool(np.array_equal(y, y_fast)),
    }, y


def _plain_entrant(fmt, dev, cfg, faithful, fast, x, tm):
    res = faithful.execute(fmt, x, dev, cfg)
    y_fast = fast.execute(fmt, x, dev, cfg).y
    return {
        "time_us": tm.estimate(res.stats).t_total * 1e6,
        "bit_identical": bool(np.array_equal(res.y, y_fast)),
    }, res.y


def run_format_sweep(
    device: str = "gtx480", classes: dict | None = None
) -> dict:
    """Time every format on every matrix class; exact-check outputs.

    Returns a JSON-able report; apply :func:`format_sweep_passed` for
    the pass/fail verdict.
    """
    if classes is None:
        classes = matrix_classes()
    dev = get_device(device)
    tm = TimingModel(dev)
    cfg = YaSpMVConfig()
    faithful = get_backend("faithful")
    fast = get_backend("fast")

    rows = []
    for name, csr in classes.items():
        x = np.random.default_rng(1).standard_normal(csr.shape[1])
        reference = np.asarray(csr @ x).ravel()
        entrants = {}
        correct = True
        for label, builder in (
            ("bccoo", None),
            ("merge_csr", MergeCSRMatrix),
            ("rgcsr", RGCSRMatrix),
        ):
            if builder is None:
                entry, y = _bccoo_entrant(csr, dev, cfg, faithful, fast, x, tm)
            else:
                fmt = builder.from_scipy(csr)
                entry, y = _plain_entrant(fmt, dev, cfg, faithful, fast, x, tm)
            entry["correct"] = bool(np.allclose(y, reference, atol=1e-9))
            correct = correct and entry["correct"] and entry["bit_identical"]
            entrants[label] = entry
        winner = min(entrants, key=lambda k: entrants[k]["time_us"])
        rows.append(
            {
                "class": name,
                "shape": list(csr.shape),
                "nnz": int(csr.nnz),
                "entrants": entrants,
                "winner": winner,
                "expected_winner": EXPECTED_WINNERS.get(name),
                "correct": correct,
            }
        )

    wins: dict[str, int] = {}
    for row in rows:
        wins[row["winner"]] = wins.get(row["winner"], 0) + 1
    return {
        "kind": "bench_formats",
        "device": device,
        "config": "default",
        "classes": rows,
        "wins_by_format": wins,
        "all_correct": all(r["correct"] for r in rows),
    }


def format_sweep_passed(report: dict) -> tuple[bool, list[str]]:
    """The CI gate: exact outputs everywhere, each format wins its class.

    Returns ``(passed, reasons)``; reasons name the offending class so
    the job log says *what* broke.
    """
    reasons = []
    for row in report["classes"]:
        if not row["correct"]:
            bad = [
                k for k, e in row["entrants"].items()
                if not (e["correct"] and e["bit_identical"])
            ]
            reasons.append(f"{row['class']}: wrong/drifted output from {bad}")
        expected = row.get("expected_winner")
        if expected and row["winner"] != expected:
            reasons.append(
                f"{row['class']}: expected {expected} to win, "
                f"got {row['winner']}"
            )
    return (not reasons, reasons)
