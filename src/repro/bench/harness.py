"""Benchmark harness: runs the paper's comparisons on the simulated device.

The figure/table benchmarks under ``benchmarks/`` are thin wrappers over
this module so the same comparisons are scriptable from user code::

    from repro.bench import run_suite_comparison
    rows = run_suite_comparison("gtx680", cap_nnz=150_000)
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.baselines import (
    run_clspmv_best_single,
    run_clspmv_cocktail,
    run_cusp,
    run_cusparse_best,
)
from ..core.engine import SpMVEngine
from ..gpu.device import DeviceSpec, get_device
from ..matrices.suite import SUITE, get_spec
from ..tuning.cache import KernelPlanCache

__all__ = [
    "SystemScore",
    "MatrixComparison",
    "compare_systems",
    "run_suite_comparison",
    "harmonic_mean",
    "SYSTEMS",
]

#: Column order of Figures 13 / 15.
SYSTEMS: tuple[str, ...] = (
    "cusparse",
    "cusp",
    "clspmv_single",
    "clspmv_cocktail",
    "yaspmv",
)


@dataclass
class SystemScore:
    """One system's result on one matrix."""

    system: str
    variant: str
    gflops: float
    time_s: float


@dataclass
class MatrixComparison:
    """One matrix's Figure 13/15 row."""

    name: str
    nrows: int
    ncols: int
    nnz: int
    scale: float
    scores: dict[str, SystemScore] = field(default_factory=dict)

    def speedup(self, over: str, of: str = "yaspmv") -> float:
        """``of``'s throughput relative to ``over``'s (1.0 = parity)."""
        denom = self.scores[over].gflops
        return self.scores[of].gflops / denom if denom > 0 else float("inf")


def harmonic_mean(values) -> float:
    """The paper's average-throughput metric (H-mean over matrices)."""
    vals = np.asarray(list(values), dtype=np.float64)
    vals = vals[vals > 0]
    if vals.size == 0:
        return 0.0
    return float(vals.size / np.sum(1.0 / vals))


def compare_systems(
    matrix,
    device: DeviceSpec | str,
    x: np.ndarray | None = None,
    engine: SpMVEngine | None = None,
) -> dict[str, SystemScore]:
    """Run yaSpMV (auto-tuned) and all comparators on one matrix.

    Numerical agreement across systems is asserted -- a benchmark that
    produces wrong answers should fail loudly, not report GFLOPS.
    """
    dev = get_device(device) if isinstance(device, str) else device
    if x is None:
        x = np.ones(matrix.shape[1], dtype=np.float64)
    eng = engine if engine is not None else SpMVEngine(dev)

    prepared = eng.prepare(matrix)
    ours = eng.multiply(prepared, x)

    runners = {
        "cusparse": run_cusparse_best,
        "cusp": run_cusp,
        "clspmv_single": run_clspmv_best_single,
        "clspmv_cocktail": run_clspmv_cocktail,
    }
    scores: dict[str, SystemScore] = {}
    y_ref = None
    for name, runner in runners.items():
        res = runner(matrix, x, dev)
        if y_ref is None:
            y_ref = res.y
        else:
            np.testing.assert_allclose(res.y, y_ref, rtol=1e-7, atol=1e-6)
        scores[name] = SystemScore(
            system=name, variant=res.variant, gflops=res.gflops, time_s=res.time_s
        )
    assert y_ref is not None
    np.testing.assert_allclose(ours.y, y_ref, rtol=1e-7, atol=1e-6)
    if prepared.point.base_format == "bccoo":
        variant = (
            f"{prepared.point.format_name}-"
            f"{prepared.point.block_height}x{prepared.point.block_width}-"
            f"s{prepared.config.strategy}"
        )
    else:
        # The related-work formats have no blocking or strategy axes;
        # the launch geometry is the whole configuration.
        variant = (
            f"{prepared.point.format_name}-wg{prepared.config.workgroup_size}"
        )
    scores["yaspmv"] = SystemScore(
        system="yaspmv",
        variant=variant,
        gflops=ours.gflops,
        time_s=ours.time_s,
    )
    return scores


def run_suite_comparison(
    device: DeviceSpec | str,
    cap_nnz: int = 150_000,
    names: list[str] | None = None,
    seed: int = 1234,
    fast_tuning: bool = False,
) -> list[MatrixComparison]:
    """Figure 13/15: the full suite comparison on one device.

    A shared kernel-plan cache is threaded through the engine so tuning
    cost amortizes across matrices exactly as in the paper's framework.
    ``fast_tuning`` trims the pruned search (2 block-dimension
    candidates, 2 workgroup sizes, 1 bit-word type) so a 20-matrix run
    finishes in minutes; the quality loss is small because those axes
    are shallow near the optimum.
    """
    dev = get_device(device) if isinstance(device, str) else device
    tuning_kwargs = {}
    if fast_tuning:
        tuning_kwargs = dict(
            pruned_kwargs=dict(
                keep_block_dims=2,
                workgroup_sizes=(64, 256),
                bit_words=("uint8",),
            )
        )
    eng = SpMVEngine(
        dev, plan_cache=KernelPlanCache(), tuning_kwargs=tuning_kwargs
    )
    wanted = names if names is not None else [s.name for s in SUITE]

    rows: list[MatrixComparison] = []
    for name in wanted:
        spec = get_spec(name)
        scale = spec.scale_for_nnz(cap_nnz)
        A = spec.load(scale=scale, seed=seed)
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(A.shape[1])
        scores = compare_systems(A, dev, x=x, engine=eng)
        rows.append(
            MatrixComparison(
                name=name,
                nrows=A.shape[0],
                ncols=A.shape[1],
                nnz=int(A.nnz),
                scale=scale,
                scores=scores,
            )
        )
    return rows
