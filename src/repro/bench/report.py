"""Plain-text report rendering for the benchmark harness.

Formats the Figure 13/15 comparison and the Table 3 footprint table the
way the paper presents them: one row per matrix, systems as columns,
harmonic-mean summary, and yaSpMV speedups over each comparator.
"""

from __future__ import annotations

from .harness import SYSTEMS, MatrixComparison, harmonic_mean

__all__ = ["render_comparison", "render_speedups", "render_table", "render_bars"]

_LABELS = {
    "cusparse": "CUSPARSE",
    "cusp": "CUSP",
    "clspmv_single": "clSpMV-best",
    "clspmv_cocktail": "COCKTAIL",
    "yaspmv": "yaSpMV",
}


def render_table(headers: list[str], rows: list[list[str]], title: str = "") -> str:
    """Generic fixed-width text table."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_bars(
    series: dict[str, float], width: int = 48, unit: str = "GFLOPS"
) -> str:
    """Horizontal ASCII bars (the paper's figures are bar charts)."""
    if not series:
        return ""
    top = max(series.values())
    label_w = max(len(k) for k in series)
    lines = []
    for name, value in series.items():
        bar = "#" * max(int(width * value / top), 1) if top > 0 else ""
        lines.append(f"{name.ljust(label_w)} |{bar} {value:.2f} {unit}")
    return "\n".join(lines)


def render_comparison(
    rows: list[MatrixComparison], device_name: str, figure: str
) -> str:
    """The GFLOPS-per-system table plus H-mean row (Figures 13/15)."""
    headers = ["Matrix", "nnz", "scale"] + [_LABELS[s] for s in SYSTEMS] + ["winner"]
    body = []
    for row in rows:
        gflops = {s: row.scores[s].gflops for s in SYSTEMS}
        winner = max(gflops, key=gflops.__getitem__)
        body.append(
            [
                row.name,
                str(row.nnz),
                f"{row.scale:.4f}",
                *(f"{gflops[s]:.2f}" for s in SYSTEMS),
                _LABELS[winner],
            ]
        )
    hmeans = {
        s: harmonic_mean(r.scores[s].gflops for r in rows) for s in SYSTEMS
    }
    body.append(
        ["H-mean", "", "", *(f"{hmeans[s]:.2f}" for s in SYSTEMS), ""]
    )
    table = render_table(
        headers, body, title=f"{figure}: SpMV throughput (GFLOPS) on {device_name}"
    )
    bars = render_bars({_LABELS[s]: hmeans[s] for s in SYSTEMS})
    return table + "\n\nH-mean throughput:\n" + bars


def render_speedups(rows: list[MatrixComparison]) -> str:
    """yaSpMV speedup over each comparator: average (H-mean based) + max."""
    lines = ["yaSpMV speedup over comparators (from H-means / per-matrix max):"]
    ya = harmonic_mean(r.scores["yaspmv"].gflops for r in rows)
    for s in SYSTEMS:
        if s == "yaspmv":
            continue
        base = harmonic_mean(r.scores[s].gflops for r in rows)
        avg = (ya / base - 1.0) * 100 if base > 0 else float("inf")
        per = [(r.speedup(over=s) - 1.0) * 100 for r in rows]
        best_i = max(range(len(per)), key=per.__getitem__)
        lines.append(
            f"  vs {_LABELS[s]:12s}: avg {avg:+7.1f}%   "
            f"max {per[best_i]:+7.1f}% (on {rows[best_i].name})"
        )
    return "\n".join(lines)
