"""Solver bench: served vs direct iteration streams, identity-gated,
plus the incremental value-refresh speedup.

Two contracts are measured and asserted:

1. **Serving is transparent.**  A CG/GMRES solve whose every iteration
   streams through an :class:`~repro.serve.SpMVServer` must be
   *bit-identical*, iterate for iterate, to the in-process solve --
   the serve layer may add latency, never semantics.  Iterations/s and
   the SpMV share of wall clock are recorded for both paths.
2. **Value refresh beats re-prepare.**  For a time-varying system,
   :meth:`~repro.SpMVEngine.update_values` (structural plan reused,
   value buffers swapped) must be at least :data:`REFRESH_SPEEDUP_FLOOR`
   times faster than a full :meth:`~repro.SpMVEngine.prepare` of the
   new matrix on the medium bench matrix, with a bit-identical product
   and a migrated (not rebuilt) fast-path plan.

:func:`run_solver_bench` returns a JSON-able report;
:func:`solver_bench_passed` applies the CI gate.  The
``benchmarks/bench_solvers.py`` job and the ``solver-smoke`` CI lane
both funnel through here and write
``benchmarks/results/BENCH_solvers.json``.
"""

from __future__ import annotations

import json
import time

import numpy as np
from scipy import sparse

from ..backends import get_backend
from ..core.engine import SpMVEngine
from ..serve.server import ServeConfig, SpMVServer
from ..solvers.session import SolverSession

__all__ = [
    "REFRESH_SPEEDUP_FLOOR",
    "run_solver_bench",
    "solver_bench_passed",
    "write_solver_bench",
]

#: Acceptance floor: swapping values must beat re-preparing (which
#: re-tunes and rebuilds the format) by at least this factor.
REFRESH_SPEEDUP_FLOOR = 5.0


def _solver_systems(cap_nnz: int) -> dict:
    """Deterministic solvable systems sized to roughly ``cap_nnz``.

    CG gets an SPD tridiagonal (the 1-D Poisson stencil, shifted); GMRES
    a seeded random sparse matrix made strongly diagonally dominant.
    """
    n_tri = max(min(cap_nnz // 3, 200_000), 50)
    tri = sparse.diags(
        [-1.0, 4.0, -1.0], [-1, 0, 1], shape=(n_tri, n_tri), format="csr"
    )
    density = 0.05
    n_rand = max(int(np.sqrt(cap_nnz / density)), 50)
    rand = sparse.random(
        n_rand, n_rand, density=density,
        random_state=np.random.default_rng(7), format="csr",
    )
    rand = (rand + sparse.eye(n_rand) * 10.0).tocsr()
    return {"cg": tri, "gmres": rand}


def _run_one(session: SolverSession, b, method: str, tol: float,
             max_iter: int) -> tuple[dict, object]:
    t0 = time.perf_counter()
    res = session.solve(b, method=method, tol=tol, max_iter=max_iter,
                        keep_iterates=True)
    wall = time.perf_counter() - t0
    row = {
        "converged": bool(res.converged),
        "iterations": int(res.iterations),
        "wall_s": wall,
        "iterations_per_s": res.iterations / wall if wall > 0 else None,
        "spmv_count": int(res.spmv_count),
        "spmv_time_s": float(res.spmv_time_s),
        "spmv_wall_s": float(res.spmv_wall_s),
        "spmv_share": res.spmv_wall_s / wall if wall > 0 else None,
        "cache_hits": int(res.cache_hits),
        "residual_norm": float(res.residual_norm),
    }
    return row, res


def run_solver_bench(
    device: str = "gtx680",
    cap_nnz: int = 60_000,
    methods: tuple = ("cg", "gmres"),
    tol: float = 1e-10,
    max_iter: int = 2_000,
) -> dict:
    """Benchmark served vs direct solves plus the value-refresh path."""
    systems = _solver_systems(cap_nnz)
    fast = get_backend("fast")

    solver_rows = []
    for method in methods:
        A = systems[method]
        b = np.ones(A.shape[0])
        # One engine, one prepare: both paths solve the same
        # PreparedMatrix, so the comparison isolates the serve layer.
        eng = SpMVEngine(device=device, backend="fast")
        prep = eng.prepare(A)

        direct_sess = SolverSession(prep, engine=eng)
        direct_row, direct = _run_one(direct_sess, b, method, tol, max_iter)

        server = SpMVServer(eng, ServeConfig(batch_window_s=0.0), start=False)
        try:
            served_sess = SolverSession(prep, engine=eng, server=server)
            served_row, served = _run_one(served_sess, b, method, tol, max_iter)
        finally:
            server.close()

        bit_identical = bool(
            np.array_equal(direct.x, served.x)
            and direct.history == served.history
            and len(direct.iterates) == len(served.iterates)
            and all(
                np.array_equal(d, s)
                for d, s in zip(direct.iterates, served.iterates)
            )
        )
        solver_rows.append(
            {
                "method": method,
                "shape": list(A.shape),
                "nnz": int(A.nnz),
                "direct": direct_row,
                "served": served_row,
                "bit_identical": bit_identical,
                "serve_overhead": (
                    served_row["wall_s"] / direct_row["wall_s"]
                    if direct_row["wall_s"] > 0 else None
                ),
            }
        )

    # ----- incremental value refresh vs full re-prepare ----- #
    A = systems["cg"]
    eng = SpMVEngine(device=device, backend="fast")
    prep = eng.prepare(A)
    x = np.random.default_rng(0).standard_normal(A.shape[1])
    eng.multiply(prep, x)  # materialize the fast path's cached plan
    A2 = (A * 1.5).tocsr()

    refreshes_before = fast.n_value_refreshes
    t0 = time.perf_counter()
    refreshed = eng.update_values(prep, A2)
    t_swap = time.perf_counter() - t0
    migrated = fast.n_value_refreshes - refreshes_before

    t0 = time.perf_counter()
    fresh = eng.prepare(A2)
    t_full = time.perf_counter() - t0

    y_refreshed = eng.multiply(refreshed, x).y
    y_fresh = eng.multiply(fresh, x).y
    refresh = {
        "matrix_nnz": int(A.nnz),
        "swap_s": t_swap,
        "full_prepare_s": t_full,
        "speedup": t_full / t_swap if t_swap > 0 else float("inf"),
        "plan_hits": int(migrated),
        "plan_hit_rate": float(migrated >= 1),
        "structural_plan_reused": bool(refreshed.point is prep.point),
        "bit_identical": bool(np.array_equal(y_refreshed, y_fresh)),
    }

    return {
        "kind": "bench_solvers",
        "device": device,
        "cap_nnz": cap_nnz,
        "tol": tol,
        "solves": solver_rows,
        "value_refresh": refresh,
        "all_bit_identical": (
            all(r["bit_identical"] for r in solver_rows)
            and refresh["bit_identical"]
        ),
        "refresh_speedup_floor": REFRESH_SPEEDUP_FLOOR,
    }


def solver_bench_passed(report: dict) -> tuple[bool, list[str]]:
    """The CI gate: identity, convergence, and the refresh floor."""
    reasons = []
    for row in report["solves"]:
        if not row["bit_identical"]:
            reasons.append(
                f"{row['method']}: served solve is not bit-identical "
                f"to the direct solve"
            )
        for path in ("direct", "served"):
            if not row[path]["converged"]:
                reasons.append(f"{row['method']}: {path} solve did not converge")
    refresh = report["value_refresh"]
    if not refresh["bit_identical"]:
        reasons.append("value refresh: refreshed product differs from re-prepare")
    if not refresh["structural_plan_reused"]:
        reasons.append("value refresh: tuning point was rebuilt, not reused")
    if refresh["speedup"] < report["refresh_speedup_floor"]:
        reasons.append(
            f"value refresh: swap is only {refresh['speedup']:.1f}x faster "
            f"than re-prepare (floor {report['refresh_speedup_floor']}x)"
        )
    return (not reasons, reasons)


def write_solver_bench(report: dict, path) -> None:
    """Persist the report as pretty-printed JSON."""
    from pathlib import Path

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
