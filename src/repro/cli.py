"""Command-line interface: ``python -m repro <command>``.

Gives the library's main workflows a shell entry point:

* ``info``      -- list devices, formats, kernels and the matrix suite;
* ``tune``      -- auto-tune a matrix (suite name or ``.mtx`` file) and
  print the winning configuration, optionally the generated OpenCL;
  ``--trace out.jsonl`` dumps the tuning trace as JSON lines;
* ``multiply``  -- run one simulated SpMV and report the profile;
* ``profile``   -- run the full prepare/tune/convert/execute pipeline
  under an :class:`~repro.obs.Observer` and print the span tree plus
  the metrics table (``--json out.jsonl`` dumps the raw trace);
* ``serve``     -- replay a JSON-lines request workload through the
  concurrent serving layer (micro-batching + prepared-matrix cache) and
  print the serving report; ``--shards N`` serves through the sharded
  fabric (consistent hashing + health-aware failover) instead of a
  single server;
* ``chaos``     -- differential chaos drill: replay a workload through
  the sharded fabric while a seeded fault plan kills/slows/corrupts
  shards, and diff every response against a single pristine server
  (non-zero exit on any bit difference or a vacuous run);
* ``solve``     -- run an iterative solver (CG/BiCGSTAB/GMRES/Jacobi)
  on a matrix; ``--shards N`` streams every iteration's SpMV through
  the sharded fabric and ``--compare-direct`` requires the served solve
  to be bit-identical, iterate for iterate, to the in-process one
  (non-zero exit on any difference or non-convergence);
* ``footprint`` -- print the Table 3 row for a matrix;
* ``compare``   -- run the full comparator panel on a matrix;
* ``verify``    -- validate format invariants and check the kernel
  output against the full CSR reference (non-zero exit on mismatch);
* ``bench``     -- time the ``fast`` backend against ``faithful`` on
  the suite, exact-compare every output, and write
  ``benchmarks/results/BENCH_kernels.json`` (non-zero exit if ``fast``
  loses bit-identity or is slower anywhere).

``profile`` and ``verify`` accept ``--fault SPEC`` (e.g.
``stale_grp_sum:p=0.5,seed=7``) to run under an injected fault plan.

Every command that constructs an engine accepts ``--backend
{faithful,fast,auto}`` (see :mod:`repro.backends`): ``faithful``
interprets workgroups exactly like the paper's kernels, ``fast`` is the
bit-identical vectorized path, ``auto`` runs fast with a differential
fallback.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def _load_matrix(arg: str, cap: int):
    from .matrices import get_spec, read_matrix_market

    if arg.endswith(".mtx"):
        return arg, read_matrix_market(arg)
    spec = get_spec(arg)
    return spec.name, spec.load(scale=spec.scale_for_nnz(cap))


def _cmd_info(args) -> int:
    from .formats import available_formats
    from .gpu import available_devices
    from .kernels import available_kernels
    from .matrices import SUITE

    print("devices :", ", ".join(sorted(available_devices())))
    print("formats :", ", ".join(sorted(available_formats())))
    print("kernels :", ", ".join(sorted(available_kernels())))
    print("suite   :")
    for spec in SUITE:
        print(
            f"  {spec.name:16s} {spec.rows}x{spec.cols}  "
            f"nnz={spec.nnz}  nnz/row={spec.nnz_per_row}  [{spec.family}]"
        )
    return 0


def _cmd_tune(args) -> int:
    from .codegen import generate_kernel_source
    from .gpu import get_device
    from .tuning import AutoTuner, TuningResult

    name, A = _load_matrix(args.matrix, args.cap)
    store = None
    if args.store:
        from .tuning import TuningStore

        store = TuningStore(args.store)
        cached = store.get(A, args.device)
        if cached is not None:
            res = TuningResult.from_store(cached)
            print(f"{name}: warm start from {args.store}")
            print(res.summary())
            if args.emit_opencl:
                print("\n" + generate_kernel_source(res.best_point))
            return 0
    observer = None
    if args.trace:
        from .obs import Observer

        observer = Observer()
    retry = None
    if args.max_retries is not None:
        from .fault import RetryPolicy

        retry = RetryPolicy(max_attempts=args.max_retries + 1)
    checkpoint = None
    if args.checkpoint:
        from .tuning import TuningCheckpoint

        checkpoint = TuningCheckpoint(args.checkpoint, resume=args.resume)
    plan_scope = None
    if args.fault:
        from .fault import FaultPlan
        from .fault.injection import fault_scope

        plan_scope = fault_scope(FaultPlan.parse(args.fault))
    tuner = AutoTuner(
        get_device(args.device),
        mode=args.mode,
        workers=args.workers,
        executor=args.executor,
        observer=observer,
        deadline=args.deadline if args.deadline > 0 else None,
        checkpoint=checkpoint,
        retry=retry,
        backend=args.backend,
        share_operand=args.share_operand,
    )
    if plan_scope is not None:
        with plan_scope:
            res = tuner.tune(A)
    else:
        res = tuner.tune(A)
    bp = res.best_point
    if store is not None:
        store.put(A, args.device, bp)
        print(f"saved configuration to {args.store}")
    print(f"{name}:")
    print(res.summary())
    if observer is not None:
        from .obs import write_jsonl

        n = write_jsonl(observer, args.trace)
        print(f"wrote {n} spans to {args.trace}")
    if args.emit_opencl:
        print("\n" + generate_kernel_source(bp))
    return 0


def _cmd_multiply(args) -> int:
    from .core import SpMVEngine
    from .gpu import TimingModel, get_device
    from .tuning import TuningStore

    name, A = _load_matrix(args.matrix, args.cap)
    x = np.random.default_rng(args.seed).standard_normal(A.shape[1])
    store = TuningStore(args.store) if args.store else None
    eng = SpMVEngine(device=args.device, plan_store=store, backend=args.backend)
    res = eng.multiply(eng.prepare(A), x)
    err = np.abs(res.y - A @ x).max()
    print(f"{name}:")
    print(TimingModel(get_device(args.device)).explain(res.stats, nnz=res.nnz))
    print(f"max |y - A@x| = {err:.2e}")
    return 0 if err < 1e-6 else 1


def _cmd_profile(args) -> int:
    from .core import SpMVEngine
    from .obs import Observer, console_report, write_jsonl
    from .tuning import TuningStore

    from .fault import CircuitBreaker, RetryPolicy

    name, A = _load_matrix(args.matrix, args.cap)
    x = np.random.default_rng(args.seed).standard_normal(A.shape[1])
    store = TuningStore(args.store) if args.store else None
    obs = Observer()
    # ``validate=True`` + permissive policy routes the multiply through
    # the resilience chain, so the fallback counters show up even on a
    # healthy run (``fallback.stage_used{stage="tuned"}``).  The explicit
    # retry policy and breaker materialize the containment metrics
    # (``retry.attempts``, ``watchdog.timeouts``, ``breaker.state``) in
    # the profile output.
    eng = SpMVEngine(
        device=args.device,
        plan_store=store,
        observer=obs,
        validate=True,
        policy="permissive",
        fault_plan=args.fault or None,
        retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.0),
        breaker=CircuitBreaker(failure_threshold=3, cooldown_s=30.0),
        backend=args.backend,
    )
    prepared = eng.prepare(A)
    res = eng.multiply(prepared, x)
    print(console_report(obs, title=f"{name}: {res.summary()}"))
    if args.json:
        n = write_jsonl(obs, args.json)
        print(f"wrote {n} spans to {args.json}")
    return 0


def _cmd_serve(args) -> int:
    from .core import SpMVEngine
    from .obs import Observer, console_report
    from .errors import ValidationError
    from .serve import (
        ServeConfig,
        ServeFabric,
        SpMVServer,
        load_requests,
        run_replay,
    )

    obs = Observer()
    config = ServeConfig(
        max_batch=args.max_batch,
        batch_window_s=args.window,
        queue_depth=args.queue_depth,
        cache_budget_bytes=(
            None if args.budget_mb <= 0 else int(args.budget_mb * 2**20)
        ),
    )
    try:
        specs = load_requests(args.requests)
    except (OSError, ValidationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    def make_engine(_index=0):
        return SpMVEngine(device=args.device, fault_plan=args.fault or None,
                          policy="permissive" if args.fault else "strict",
                          backend=args.backend)

    if args.shards > 1:
        server = ServeFabric(
            args.shards,
            device=args.device,
            engine_factory=make_engine,
            serve_config=config,
            observer=obs,
            start=not args.sync,
        )
    else:
        server = SpMVServer(
            make_engine(), config, observer=obs, start=not args.sync
        )
    try:
        report = run_replay(specs, server)
    finally:
        server.close()
    print(report.summary())
    if args.shards > 1:
        stats = report.stats
        print(f"shards   : {stats.get('live_shards', args.shards)}/"
              f"{args.shards} live, {stats.get('failovers', 0)} failovers, "
              f"{stats.get('quota_rejections', 0)} quota rejections")
    if args.verbose:
        print()
        print(console_report(obs, title="serving profile"))
    return 0 if report.failed == 0 and report.max_abs_err < 1e-6 else 1


def _cmd_chaos(args) -> int:
    from .serve import run_chaos_drill

    report = run_chaos_drill(
        shards=args.shards,
        seed=args.seed,
        cap_nnz=args.cap,
        requests_per_matrix=args.requests_per_matrix,
        kills=args.kills,
        slows=args.slows,
        corrupt_shards=args.corrupt,
        device=args.device,
        backend=args.backend,
        processes=args.processes,
        worker_hangs=args.worker_hangs,
        reply_timeout_s=args.reply_timeout,
    )
    print(report.summary())
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(f"wrote report to {args.json}")
    return 0 if report.passed else 1


def _cmd_solve(args) -> int:
    from scipy import sparse

    from .serve import ServeFabric
    from .solvers import solve
    from .util import as_csr

    name, A = _load_matrix(args.matrix, args.cap)
    A = as_csr(A)
    if A.shape[0] != A.shape[1]:
        print(f"error: {name} is {A.shape[0]}x{A.shape[1]}; "
              f"solvers need a square system", file=sys.stderr)
        return 2
    if args.shift:
        # Diagonal boost: makes suite matrices solvable by Jacobi/CG
        # without changing their sparsity structure.
        A = as_csr(A + sparse.eye(A.shape[0]) * args.shift)
    n = A.shape[0]
    if args.rhs == "ones":
        b = np.ones(n)
    else:
        b = np.random.default_rng(args.seed).standard_normal(n)

    common = dict(
        method=args.method, tol=args.tol, max_iter=args.max_iter,
        restart=args.restart, keep_iterates=args.shards > 0,
    )
    direct = None
    if args.shards == 0 or args.compare_direct:
        direct = solve(A, b, backend=args.backend, **common)
        print(f"{name} direct : {direct.summary()}")

    served = None
    if args.shards > 0:
        plan_scope = None
        if args.fault:
            from .fault import FaultPlan
            from .fault.injection import fault_scope

            plan_scope = fault_scope(FaultPlan.parse(args.fault))
        # Threadless fabric: deterministic scheduling, so a seeded fault
        # plan injects the same failovers on every run.
        fabric = ServeFabric(
            args.shards, device=args.device, backend=args.backend,
            start=False,
        )
        try:
            if plan_scope is not None:
                with plan_scope:
                    served = solve(A, b, server=fabric, **common)
            else:
                served = solve(A, b, server=fabric, **common)
        finally:
            fabric.close()
        print(f"{name} served : {served.summary()}")

    ok = all(r.converged for r in (direct, served) if r is not None)
    if direct is not None and served is not None:
        identical = (
            np.array_equal(direct.x, served.x)
            and direct.history == served.history
            and len(direct.iterates) == len(served.iterates)
            and all(
                np.array_equal(d, s)
                for d, s in zip(direct.iterates, served.iterates)
            )
        )
        print(f"bit-identical: {identical}")
        ok = ok and identical
    return 0 if ok else 1


def _cmd_footprint(args) -> int:
    from .formats import footprint_report

    name, A = _load_matrix(args.matrix, args.cap)
    rep = footprint_report(A, name=name)
    mb = lambda b: "N/A" if b is None else f"{b / 2**20:.2f} MB"
    print(f"{name} ({A.shape[0]}x{A.shape[1]}, nnz {A.nnz}):")
    print(f"  COO         {mb(rep.coo)}")
    print(f"  ELL         {mb(rep.ell)}")
    print(f"  best single {mb(rep.best_single)} ({rep.best_single_format})")
    print(f"  cocktail    {mb(rep.cocktail)}")
    print(f"  BCCOO       {mb(rep.bccoo)} "
          f"(block {rep.bccoo_block[0]}x{rep.bccoo_block[1]})")
    return 0


def _cmd_compare(args) -> int:
    from .bench import compare_systems
    from .gpu import get_device

    name, A = _load_matrix(args.matrix, args.cap)
    scores = compare_systems(A, get_device(args.device))
    print(f"{name} on {args.device}:")
    for sys_name, score in sorted(
        scores.items(), key=lambda kv: -kv[1].gflops
    ):
        print(f"  {sys_name:16s} {score.gflops:7.2f} GFLOPS  ({score.variant})")
    return 0


def _cmd_verify(args) -> int:
    from .core import SpMVEngine
    from .fault.validation import validate_format, verify_output
    from .tuning import TuningStore

    name, A = _load_matrix(args.matrix, args.cap)
    x = np.random.default_rng(args.seed).standard_normal(A.shape[1])
    store = TuningStore(args.store) if args.store else None
    # With an injected fault plan, run permissive so the fallback chain
    # recovers and the reference check below still decides the verdict
    # (strict would abort with FaultInjectedError before reporting).
    eng = SpMVEngine(
        device=args.device,
        plan_store=store,
        fault_plan=args.fault or None,
        policy="permissive" if args.fault else "strict",
        validate="auto" if not args.fault else True,
        backend=args.backend,
    )
    prepared = eng.prepare(A)

    fmt_report = validate_format(prepared.fmt)
    print(fmt_report.summary())

    res = eng.multiply(prepared, x)
    if res.failure is not None:
        print(f"fallback: {res.failure.fallback_used} "
              f"({len(res.failure.attempts)} attempt(s))")
    out_report = verify_output(
        prepared.reference_csr(), x, res.y, n_samples=None
    )
    print(out_report.summary())
    ok = fmt_report.ok and out_report.ok
    print(f"{name}: {'VERIFIED' if ok else 'MISMATCH'}")
    return 0 if ok else 1


def _cmd_bench(args) -> int:
    from .bench.backends import run_backend_sweep, sweep_passed, write_sweep

    baseline = None
    if args.compare:
        from .bench.compare import load_snapshot
        from .errors import ValidationError

        baseline_path = args.baseline or args.out
        try:
            # Load *before* the sweep runs: --out usually points at the
            # same file the sweep will overwrite.
            baseline = load_snapshot(baseline_path)
        except ValidationError as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2

    report = run_backend_sweep(
        device=args.device, cap_nnz=args.cap, repeats=args.repeats
    )
    for row in report["matrices"]:
        print(
            f"  {row['matrix']:16s} nnz={row['nnz']:8d} "
            f"faithful={row['faithful_s'] * 1e3:8.2f}ms "
            f"fast={row['fast_s'] * 1e3:7.3f}ms "
            f"x{row['speedup']:6.1f} "
            f"{'identical' if row['bit_identical'] else 'MISMATCH'}"
        )
    print(
        f"geomean speedup {report['geomean_speedup']:.1f}x, "
        f"min {report['min_speedup']:.1f}x, "
        f"bit-identical: {report['all_bit_identical']}"
    )
    if args.out:
        write_sweep(report, args.out)
        print(f"wrote report to {args.out}")
    passed, reasons = sweep_passed(report)
    for reason in reasons:
        print(f"FAIL: {reason}", file=sys.stderr)
    if baseline is not None:
        from .bench.compare import compare_snapshots

        cmp = compare_snapshots(
            baseline, report,
            threshold=args.threshold,
            calibrate=args.calibrate,
        )
        print()
        print(cmp.summary())
        if not cmp.passed:
            for delta in cmp.regressions:
                print(
                    f"FAIL: {delta.metric} regressed "
                    f"{delta.adjusted_change:+.1%} "
                    f"(threshold {args.threshold:.0%})",
                    file=sys.stderr,
                )
            passed = False
    return 0 if passed else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="yaSpMV reproduction CLI"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared by every subcommand that constructs an engine/tuner --
    # ``parents=[backend_parent]`` keeps the flag's name, choices and
    # help text identical everywhere.
    backend_parent = argparse.ArgumentParser(add_help=False)
    backend_parent.add_argument(
        "--backend", default="faithful",
        choices=["faithful", "fast", "auto"],
        help="execution backend: 'faithful' interprets workgroups like "
             "the paper's kernels, 'fast' is the bit-identical "
             "vectorized path, 'auto' is fast with differential "
             "fallback (see docs/backends.md)")

    sub.add_parser("info", help="list devices, formats, kernels, suite")

    def matrix_args(p):
        p.add_argument("matrix", help="Table 2 name or a .mtx file")
        p.add_argument("--device", default="gtx680", choices=["gtx680", "gtx480"])
        p.add_argument("--cap", type=int, default=150_000,
                       help="nnz cap for suite matrices (scale)")
        p.add_argument("--store", default="",
                       help="JSON tuning store: reuse/persist tuned configs")

    p_tune = sub.add_parser(
        "tune", help="auto-tune a matrix", parents=[backend_parent]
    )
    matrix_args(p_tune)
    p_tune.add_argument("--mode", default="pruned", choices=["pruned", "exhaustive"])
    p_tune.add_argument("--workers", type=int, default=1,
                        help="parallel tuning workers (results are "
                             "identical to serial; only faster)")
    p_tune.add_argument("--executor", default="process",
                        choices=["process", "thread"],
                        help="pool kind for --workers > 1")
    p_tune.add_argument("--emit-opencl", action="store_true",
                        help="print the generated OpenCL kernel source")
    p_tune.add_argument("--trace", default="",
                        help="write the tuning trace to this JSON-lines file")
    p_tune.add_argument("--deadline", type=float, default=0.0,
                        help="wall-clock budget in seconds (0 = unlimited); "
                             "on expiry the best-so-far wins and the result "
                             "is marked partial")
    p_tune.add_argument("--max-retries", type=int, default=None,
                        help="pool rebuilds after a worker crash before "
                             "falling back to serial evaluation")
    p_tune.add_argument("--checkpoint", default="",
                        help="crash-safe journal: completed candidates are "
                             "appended here as they finish")
    p_tune.add_argument("--resume", action="store_true",
                        help="with --checkpoint: skip candidates already "
                             "journaled by a previous matching run")
    p_tune.add_argument("--fault", default="",
                        help="fault-plan spec, e.g. "
                             "tuner.worker_crash:p=1.0,count=1,seed=3")
    p_tune.add_argument("--share-operand", action="store_true",
                        help="with --workers > 1: publish the operand "
                             "matrix once in POSIX shared memory; workers "
                             "map it zero-copy instead of unpickling a "
                             "copy each")

    p_mul = sub.add_parser(
        "multiply", help="run one simulated SpMV", parents=[backend_parent]
    )
    matrix_args(p_mul)
    p_mul.add_argument("--seed", type=int, default=0)

    p_prof = sub.add_parser(
        "profile",
        help="prepare/tune/convert/execute under an observer; print the "
             "span tree and metrics table",
        parents=[backend_parent],
    )
    matrix_args(p_prof)
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--fault", default="",
                        help="fault-plan spec, e.g. stale_grp_sum:p=0.5,seed=7")
    p_prof.add_argument("--json", default="",
                        help="also write the trace to this JSON-lines file")

    p_srv = sub.add_parser(
        "serve",
        help="replay a JSON-lines request workload through the serving "
             "layer (micro-batching + prepared-matrix cache)",
        parents=[backend_parent],
    )
    p_srv.add_argument("--requests", required=True,
                       help="JSON-lines workload; each line e.g. "
                            '{"matrix": "QCD", "count": 16, "seed": 0}')
    p_srv.add_argument("--device", default="gtx680",
                       choices=["gtx680", "gtx480"])
    p_srv.add_argument("--max-batch", type=int, default=32,
                       help="largest SpMM coalescing batch")
    p_srv.add_argument("--window", type=float, default=0.002,
                       help="batch window in seconds (0 = only coalesce "
                            "what is already queued)")
    p_srv.add_argument("--queue-depth", type=int, default=256,
                       help="admission-control queue bound")
    p_srv.add_argument("--budget-mb", type=float, default=256.0,
                       help="prepared-matrix cache byte budget in MiB "
                            "(<= 0 = unbounded)")
    p_srv.add_argument("--sync", action="store_true",
                       help="threadless replay (deterministic batching)")
    p_srv.add_argument("--fault", default="",
                       help="fault-plan spec injected under the engine, "
                            "e.g. stale_grp_sum:p=0.5,seed=7")
    p_srv.add_argument("--verbose", action="store_true",
                       help="also print the serve.* span tree and metrics")
    p_srv.add_argument("--shards", type=int, default=1,
                       help="> 1 serves through the sharded fabric "
                            "(consistent hashing + health-aware failover)")

    p_chaos = sub.add_parser(
        "chaos",
        help="differential chaos drill: faulted fabric vs one pristine "
             "server, bit-identical or non-zero exit",
        parents=[backend_parent],
    )
    p_chaos.add_argument("--shards", type=int, default=3,
                         help="fabric shard count")
    p_chaos.add_argument("--seed", type=int, default=7,
                         help="seeds the fault plan and the workload")
    p_chaos.add_argument("--device", default="gtx680",
                         choices=["gtx680", "gtx480"])
    p_chaos.add_argument("--cap", type=int, default=4_000,
                         help="nnz cap for the drill's suite matrices")
    p_chaos.add_argument("--requests-per-matrix", type=int, default=3,
                         help="requests per (matrix, value refresh)")
    p_chaos.add_argument("--kills", type=int, default=1,
                         help="serve.shard_crash budget (shards killed "
                              "mid-flight)")
    p_chaos.add_argument("--slows", type=int, default=0,
                         help="serve.shard_slow budget (shards slowed)")
    p_chaos.add_argument("--processes", action="store_true",
                         help="run shards as forked worker processes: kills "
                              "become real SIGKILLs the supervisor must "
                              "recover from, plus an autoscale up/down "
                              "cycle and a shared-memory leak check")
    p_chaos.add_argument("--worker-hangs", type=int, default=0,
                         help="seeded worker-hang budget (process mode): "
                              "workers that go silent until the heartbeat "
                              "or reply timeout SIGKILLs them")
    p_chaos.add_argument("--reply-timeout", type=float, default=15.0,
                         help="seconds a process shard waits on its worker "
                              "before declaring it hung")
    p_chaos.add_argument("--corrupt", type=int, default=0,
                         help="shards whose dispatches are detected-corrupt")
    p_chaos.add_argument("--json", default="",
                         help="also write the report to this JSON file")

    p_solve = sub.add_parser(
        "solve",
        help="iterative solve (cg/bicgstab/gmres/jacobi); --shards N "
             "streams every iteration through the sharded fabric and "
             "--compare-direct diffs it against the in-process solve",
        parents=[backend_parent],
    )
    matrix_args(p_solve)
    p_solve.add_argument("--method", default="bicgstab",
                         choices=["cg", "bicgstab", "gmres", "jacobi"])
    p_solve.add_argument("--tol", type=float, default=1e-10,
                         help="residual-norm convergence threshold")
    p_solve.add_argument("--max-iter", type=int, default=10_000)
    p_solve.add_argument("--restart", type=int, default=30,
                         help="GMRES restart length (ignored elsewhere)")
    p_solve.add_argument("--rhs", default="ones", choices=["ones", "random"],
                         help="right-hand side: all-ones or seeded gaussian")
    p_solve.add_argument("--seed", type=int, default=0,
                         help="seed for --rhs random")
    p_solve.add_argument("--shift", type=float, default=0.0,
                         help="add shift*I before solving (diagonal boost "
                              "for suite matrices)")
    p_solve.add_argument("--shards", type=int, default=0,
                         help="> 0 solves through a threadless sharded "
                              "fabric (every iteration a served request)")
    p_solve.add_argument("--fault", default="",
                         help="fault-plan spec active during the served "
                              "solve, e.g. serve.shard_crash:p=0.5,count=1,"
                              "seed=7")
    p_solve.add_argument("--compare-direct", action="store_true",
                         help="with --shards: also run the in-process "
                              "solve and require bit-identical iterates")

    p_fp = sub.add_parser("footprint", help="Table 3 row for a matrix")
    matrix_args(p_fp)

    p_cmp = sub.add_parser("compare", help="yaSpMV vs all comparators")
    matrix_args(p_cmp)

    p_ver = sub.add_parser(
        "verify", help="validate format invariants + full reference check",
        parents=[backend_parent],
    )
    matrix_args(p_ver)
    p_ver.add_argument("--seed", type=int, default=0)
    p_ver.add_argument("--fault", default="",
                       help="fault-plan spec, e.g. stale_grp_sum:p=0.5,seed=7")

    p_bench = sub.add_parser(
        "bench",
        help="time fast vs faithful on the suite; exact-compare outputs; "
             "non-zero exit if fast loses bit-identity or is slower",
    )
    p_bench.add_argument("--device", default="gtx680",
                         choices=["gtx680", "gtx480"])
    p_bench.add_argument("--cap", type=int, default=150_000,
                         help="nnz cap for suite matrices (scale)")
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="best-of-N timing repeats per backend")
    p_bench.add_argument("--compare", action="store_true",
                         help="diff this sweep against a previous snapshot "
                              "and exit non-zero on any metric regressing "
                              "past --threshold")
    p_bench.add_argument("--baseline", default="",
                         help="baseline snapshot for --compare (default: "
                              "the existing file at --out)")
    p_bench.add_argument("--threshold", type=float, default=0.15,
                         help="fractional regression tolerance for "
                              "--compare (default 0.15 = 15%%)")
    p_bench.add_argument("--calibrate", action="store_true",
                         help="remove the median cross-runner drift before "
                              "applying --threshold (for comparing against "
                              "a baseline recorded on another machine)")
    p_bench.add_argument("--out",
                         default="benchmarks/results/BENCH_kernels.json",
                         help="write the JSON report here ('' to skip)")

    return parser


_COMMANDS = {
    "info": _cmd_info,
    "tune": _cmd_tune,
    "multiply": _cmd_multiply,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "chaos": _cmd_chaos,
    "solve": _cmd_solve,
    "footprint": _cmd_footprint,
    "compare": _cmd_compare,
    "verify": _cmd_verify,
    "bench": _cmd_bench,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
