"""OpenCL source generation from tuned configurations."""

from .opencl import generate_kernel_source, kernel_name, source_fingerprint

__all__ = ["generate_kernel_source", "kernel_name", "source_fingerprint"]
