"""Public engine API and comparator systems."""

from .baselines import (
    BaselineResult,
    run_clspmv_best_single,
    run_clspmv_cocktail,
    run_cusp,
    run_cusparse_best,
)
from .engine import PreparedMatrix, SpMVEngine, SpMVResult, yaspmv

__all__ = [
    "BaselineResult",
    "run_clspmv_best_single",
    "run_clspmv_cocktail",
    "run_cusp",
    "run_cusparse_best",
    "PreparedMatrix",
    "SpMVEngine",
    "SpMVResult",
    "yaspmv",
]
