"""Comparator systems: CUSPARSE, CUSP and clSpMV stand-ins.

The paper compares yaSpMV against (section 5):

* **CUSPARSE V5.0** with its three formats -- CSR, HYB (ELL row width
  manually searched) and BCSR (block size searched); the best of them
  per matrix is reported.
* **CUSP** -- the COO segmented-reduction kernel.
* **clSpMV best single** -- the best of clSpMV's nine single formats per
  matrix.
* **clSpMV COCKTAIL** -- the best per-partition mix of formats.

Each runner here reproduces that selection discipline on our simulated
device: it converts the matrix to every admissible format, executes the
corresponding kernels, and returns the fastest, so the comparison in
Figures 13/15 is against comparators that were themselves tuned.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FormatNotApplicableError, KernelConfigError
from ..formats.bcsr import BCSRMatrix
from ..formats.bell import BELLMatrix
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.dia import DIAMatrix
from ..formats.ell import ELLMatrix
from ..formats.hyb import HYBMatrix
from ..formats.sell import SELLMatrix
from ..gpu.device import DeviceSpec
from ..gpu.timing import TimingBreakdown, TimingModel
from ..kernels.base import get_kernel
from ..util import as_csr

__all__ = [
    "BaselineResult",
    "run_cusparse_best",
    "run_cusp",
    "run_clspmv_best_single",
    "run_clspmv_cocktail",
]


@dataclass
class BaselineResult:
    """One comparator's best configuration on one matrix."""

    system: str
    variant: str
    y: np.ndarray
    time_s: float
    gflops: float
    breakdown: TimingBreakdown


def _evaluate(candidates, x, device, nnz) -> BaselineResult | None:
    """Run (variant, format, kernel_name) candidates; return the fastest."""
    timing = TimingModel(device)
    best: BaselineResult | None = None
    for variant, fmt, kernel_name in candidates:
        try:
            res = get_kernel(kernel_name).run(fmt, x, device)
        except KernelConfigError:
            continue
        br = timing.estimate(res.stats)
        cand = BaselineResult(
            system="",
            variant=variant,
            y=res.y,
            time_s=br.t_total,
            gflops=br.gflops(nnz),
            breakdown=br,
        )
        if best is None or cand.time_s < best.time_s:
            best = cand
    return best


def _try_format(cls, matrix, **kw):
    try:
        return cls.from_scipy(matrix, **kw)
    except FormatNotApplicableError:
        return None


def run_cusparse_best(matrix, x, device: DeviceSpec) -> BaselineResult:
    """CUSPARSE: best of CSR (scalar/vector), tuned HYB, searched BCSR."""
    csr_like = as_csr(matrix)
    nnz = int(csr_like.nnz)
    candidates = []
    csr = CSRMatrix.from_scipy(csr_like)
    candidates.append(("csr-scalar", csr, "csr_scalar"))
    candidates.append(("csr-vector", csr, "csr_vector"))
    hyb = _try_format(HYBMatrix, csr_like)  # footprint-tuned ELL width
    if hyb is not None:
        candidates.append((f"hyb-k{hyb.K}", hyb, "hyb"))
    for h, w in ((2, 2), (4, 4), (2, 4)):
        bcsr = _try_format(BCSRMatrix, csr_like, block_height=h, block_width=w)
        if bcsr is not None:
            candidates.append((f"bcsr-{h}x{w}", bcsr, "bcsr"))
    best = _evaluate(candidates, x, device, nnz)
    assert best is not None  # CSR always runs
    best.system = "cusparse"
    return best


def run_cusp(matrix, x, device: DeviceSpec) -> BaselineResult:
    """CUSP: the COO segmented-reduction kernel."""
    csr_like = as_csr(matrix)
    coo = COOMatrix.from_scipy(csr_like)
    best = _evaluate([("coo", coo, "coo_segmented")], x, device, int(csr_like.nnz))
    assert best is not None
    best.system = "cusp"
    return best


def run_clspmv_best_single(matrix, x, device: DeviceSpec) -> BaselineResult:
    """clSpMV best single format: best of the single-format zoo."""
    csr_like = as_csr(matrix)
    nnz = int(csr_like.nnz)
    candidates = []
    csr = CSRMatrix.from_scipy(csr_like)
    candidates.append(("csr-scalar", csr, "csr_scalar"))
    candidates.append(("csr-vector", csr, "csr_vector"))
    candidates.append(("coo", COOMatrix.from_scipy(csr_like), "coo_segmented"))
    ell = _try_format(ELLMatrix, csr_like)
    if ell is not None:
        candidates.append(("ell", ell, "ell"))
    dia = _try_format(DIAMatrix, csr_like)
    if dia is not None:
        candidates.append(("dia", dia, "dia"))
    for sh in (32, 64):
        sell = _try_format(SELLMatrix, csr_like, slice_height=sh)
        if sell is not None:
            candidates.append((f"sell-{sh}", sell, "sell"))
    for h, w in ((2, 2), (4, 4)):
        bcsr = _try_format(BCSRMatrix, csr_like, block_height=h, block_width=w)
        if bcsr is not None:
            candidates.append((f"bcsr-{h}x{w}", bcsr, "bcsr"))
        bell = _try_format(BELLMatrix, csr_like, block_height=h, block_width=w)
        if bell is not None:
            candidates.append((f"bell-{h}x{w}", bell, "bell"))
    best = _evaluate(candidates, x, device, nnz)
    assert best is not None
    best.system = "clspmv-single"
    return best


def run_clspmv_cocktail(matrix, x, device: DeviceSpec) -> BaselineResult:
    """clSpMV COCKTAIL: best two-partition row split, or best single.

    Rows sorted by length are split at several quantiles; the short-row
    head runs the best regular-format kernel, the long-row tail the best
    irregular one, each as its own kernel launch (times add).  The best
    split -- including "no split" -- wins, emulating clSpMV's per-
    partition format assignment.
    """
    csr_like = as_csr(matrix)
    nnz = int(csr_like.nnz)
    single = run_clspmv_best_single(matrix, x, device)
    best = BaselineResult(
        system="clspmv-cocktail",
        variant=f"single:{single.variant}",
        y=single.y,
        time_s=single.time_s,
        gflops=single.gflops,
        breakdown=single.breakdown,
    )

    lengths = np.diff(csr_like.indptr)
    order = np.argsort(lengths, kind="stable")
    nrows = csr_like.shape[0]
    timing = TimingModel(device)
    for frac in (0.7, 0.9, 0.97):
        cut = int(nrows * frac)
        if cut in (0, nrows):
            continue
        head_mask = np.zeros(nrows, dtype=bool)
        head_mask[order[:cut]] = True

        # Partitions keep original row ids (kernels write disjoint rows).
        head = _select_rows(csr_like, head_mask)
        tail = _select_rows(csr_like, ~head_mask)
        if head.nnz == 0 or tail.nnz == 0:
            continue

        head_res = _partition_best(head, x, device, regular=True)
        tail_res = _partition_best(tail, x, device, regular=False)
        if head_res is None or tail_res is None:
            continue
        total = head_res.time_s + tail_res.time_s
        if total < best.time_s:
            y = head_res.y + tail_res.y
            br = head_res.breakdown  # representative component
            best = BaselineResult(
                system="clspmv-cocktail",
                variant=f"{head_res.variant}+{tail_res.variant}@{frac:.2f}",
                y=y,
                time_s=total,
                gflops=2.0 * nnz / total / 1e9 if total > 0 else 0.0,
                breakdown=br,
            )
    return best


def _select_rows(csr, row_mask: np.ndarray):
    """Zero out the rows where ``row_mask`` is False, keeping the shape."""
    import scipy.sparse as _sp

    lengths = np.diff(csr.indptr)
    keep = np.repeat(row_mask, lengths)
    new_lengths = np.where(row_mask, lengths, 0)
    indptr = np.concatenate(([0], np.cumsum(new_lengths)))
    return _sp.csr_matrix(
        (csr.data[keep], csr.indices[keep], indptr), shape=csr.shape
    )


def _partition_best(part, x, device, regular: bool) -> BaselineResult | None:
    nnz = int(part.nnz)
    candidates = []
    if regular:
        ell = _try_format(ELLMatrix, part)
        if ell is not None:
            candidates.append(("ell", ell, "ell"))
        for sh in (32,):
            sell = _try_format(SELLMatrix, part, slice_height=sh)
            if sell is not None:
                candidates.append((f"sell-{sh}", sell, "sell"))
    csr = CSRMatrix.from_scipy(part)
    candidates.append(("csr-vector", csr, "csr_vector"))
    candidates.append(("coo", COOMatrix.from_scipy(part), "coo_segmented"))
    return _evaluate(candidates, x, device, max(nnz, 1))
