"""High-level public API: the yaSpMV engine.

Typical use::

    from repro import SpMVEngine

    engine = SpMVEngine(device="gtx680")
    prepared = engine.prepare(A)          # auto-tune + convert once
    result = engine.multiply(prepared, x)  # run many times
    print(result.gflops, result.breakdown.t_total)

or the one-shot convenience :func:`yaspmv`.  ``prepare`` runs the
section 4 auto-tuner (pruned search by default), builds the selected
BCCOO/BCCOO+ instance, and caches it; ``multiply`` executes the
simulated kernel, returning the exact product plus the simulated timing.
"""

from __future__ import annotations

import threading
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..backends.base import (
    ExecutionBackend,
    available_backends,
    resolve_backend,
)
from ..errors import FaultInjectedError, ReproError, ValidationError
from ..fault.injection import FaultPlan, fault_scope
from ..fault.resilience import AttemptRecord, FailureReport
from ..fault.retry import CircuitBreaker, RetryPolicy
from ..fault.validation import ValidationReport, verify_output
from ..formats.bccoo import BCCOOMatrix
from ..formats.bccoo_plus import BCCOOPlusMatrix
from ..formats.csr import CSRMatrix
from ..formats.merge_csr import MergeCSRMatrix
from ..formats.rgcsr import RGCSRMatrix
from ..gpu.counters import KernelStats
from ..gpu.device import DeviceSpec, get_device
from ..gpu.timing import TimingBreakdown, TimingModel
from ..kernels.base import get_kernel
from ..kernels.config import YaSpMVConfig
from ..kernels.yaspmv import YaSpMMKernel, YaSpMVKernel
from ..obs import NULL_OBSERVER, obs_scope
from ..tuning.cache import KernelPlanCache
from ..tuning.persistence import TuningStore
from ..tuning.parameters import TuningPoint
from ..tuning.tuner import AutoTuner, TuningResult
from ..util import as_csr

__all__ = ["PreparedMatrix", "SpMVResult", "SpMVEngine", "yaspmv"]


@dataclass
class PreparedMatrix:
    """An auto-tuned, converted matrix ready for repeated multiplies."""

    fmt: BCCOOMatrix | BCCOOPlusMatrix | MergeCSRMatrix | RGCSRMatrix
    point: TuningPoint
    tuning: TuningResult | None
    nnz: int
    #: CSR source retained for the resilience layer (reference checks
    #: and the fallback chain); ``None`` for hand-built instances, in
    #: which case it is lazily reconstructed from ``fmt``.
    csr: object | None = None
    #: Shared-memory arena backing the buffers after :meth:`share`;
    #: ``None`` for plain in-process (owned) storage.
    arena: object | None = field(default=None, repr=False, compare=False)
    #: Guards the lazy decode -- ``multiply_many``/``multiply`` may hit
    #: one PreparedMatrix from several threads concurrently.
    _csr_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    @property
    def config(self) -> YaSpMVConfig:
        return self.point.kernel

    @property
    def shared(self) -> bool:
        """Whether the buffers live in ``multiprocessing.shared_memory``."""
        return self.arena is not None

    def reference_csr(self):
        """The trusted CSR operand (lazily decoded from ``fmt`` if needed).

        Thread-safe: concurrent first calls decode once; every caller
        sees the same object, and the instance is never observed
        half-initialized.
        """
        if self.csr is None:
            with self._csr_lock:
                if self.csr is None:
                    self.csr = self.fmt.to_scipy()
        return self.csr

    # -- incremental value refresh ------------------------------------- #

    def with_values(self, new_values) -> "PreparedMatrix":
        """A new prepared instance sharing this one's structural plan.

        ``new_values`` is either a 1-D array replacing the CSR data
        vector in place (same sparsity pattern, canonical order), or a
        full matrix with the identical pattern.  The tuned point, the
        tuning record, the bit flags and the compressed column arrays
        are all shared by identity -- only the value buffers are rebuilt,
        which is why this is orders of magnitude cheaper than a fresh
        :meth:`SpMVEngine.prepare`.

        Structural drift (different nnz/shape/pattern, or a value of
        exactly ``0.0``, which canonicalization eliminates) raises
        :class:`~repro.errors.ValidationError`.
        """
        from scipy import sparse as _sp

        csr = self.reference_csr()
        new_values = (
            np.asarray(new_values)
            if not _sp.issparse(new_values)
            else new_values
        )
        if isinstance(new_values, np.ndarray) and new_values.ndim == 1:
            if new_values.shape[0] != csr.data.shape[0]:
                raise ValidationError(
                    f"with_values expected {csr.data.shape[0]} values "
                    f"(one per stored non-zero), got {new_values.shape[0]}"
                )
            new_csr = _sp.csr_matrix(
                (
                    np.asarray(new_values, dtype=np.float64),
                    csr.indices,
                    csr.indptr,
                ),
                shape=csr.shape,
            )
        else:
            new_csr = as_csr(new_values)
            if new_csr.shape != csr.shape:
                raise ValidationError(
                    f"with_values shape mismatch: prepared matrix is "
                    f"{csr.shape}, new matrix is {new_csr.shape}"
                )
        fmt = self.fmt.with_values(new_csr)
        return PreparedMatrix(
            fmt=fmt,
            point=self.point,
            tuning=self.tuning,
            nnz=int(new_csr.nnz),
            csr=new_csr,
        )

    # -- zero-copy shared storage ------------------------------------- #

    def share(self) -> "PreparedMatrix":
        """Move the buffers into one shared-memory segment (idempotent).

        After this, pickling ships a small descriptor instead of the
        arrays: worker processes attach the same physical pages
        (:class:`repro.core.shm.SharedArena`) and rebuild zero-copy
        views.  Call :meth:`release_shared` when done; the owning
        process's release unlinks the segment.
        """
        if self.arena is not None:
            return self
        from .shm import SharedArena

        csr = self.reference_csr()
        if hasattr(self.fmt, "share_arrays"):
            # Formats speaking the generic protocol (merge-path CSR,
            # RG-CSR) name their own buffers.
            arrays = dict(self.fmt.share_arrays())
        else:
            inner = (
                self.fmt.stacked
                if isinstance(self.fmt, BCCOOPlusMatrix)
                else self.fmt
            )
            arrays = {
                "flags.words": inner.flags.words,
                "col_block": inner.col_block,
                "values": inner.values,
                "row_map": inner.nonempty_block_rows,
            }
            if inner.delta is not None:
                arrays["delta.deltas"] = inner.delta.deltas
                arrays["delta.start_cols"] = inner.delta.start_cols
                arrays["delta.fallback"] = inner.delta.fallback
        arrays["csr.data"] = csr.data
        arrays["csr.indices"] = csr.indices
        arrays["csr.indptr"] = csr.indptr
        arena = SharedArena.create(arrays)
        self._adopt_views(arena, csr.shape)
        return self

    def _adopt_views(self, arena, csr_shape) -> None:
        """Point fmt/csr at the arena's zero-copy views."""
        from scipy import sparse as _sp

        if hasattr(self.fmt, "from_shared"):
            views = {k: arena.view(k) for k in self.fmt.share_arrays()}
            self.fmt = type(self.fmt).from_shared(self.fmt.shm_meta(), views)
        else:
            inner = (
                self.fmt.stacked
                if isinstance(self.fmt, BCCOOPlusMatrix)
                else self.fmt
            )
            inner.flags.words = arena.view("flags.words")
            inner.col_block = arena.view("col_block")
            inner.values = arena.view("values")
            inner.nonempty_block_rows = arena.view("row_map")
            if inner.delta is not None:
                inner.delta.deltas = arena.view("delta.deltas")
                inner.delta.start_cols = arena.view("delta.start_cols")
                inner.delta.fallback = arena.view("delta.fallback")
        self.csr = _sp.csr_matrix(
            (
                arena.view("csr.data"),
                arena.view("csr.indices"),
                arena.view("csr.indptr"),
            ),
            shape=csr_shape,
            copy=False,
        )
        self.arena = arena

    def release_shared(self) -> None:
        """Drop this process's reference to the shared segment.

        Refcounted: the owner's final release unlinks the segment;
        attached workers only unmap.  No-op for owned storage.
        """
        if self.arena is not None:
            self.arena.close()
            self.arena = None

    # -- pickling (shared: ship the descriptor, not the arrays) -------- #

    def __getstate__(self):
        state = {
            "point": self.point,
            "tuning": self.tuning,
            "nnz": self.nnz,
        }
        if self.arena is None:
            state["fmt"] = self.fmt
            state["csr"] = self.csr
            return state
        state["arena_descriptor"] = self.arena.descriptor()
        state["csr_shape"] = tuple(self.csr.shape)
        if hasattr(self.fmt, "shm_meta"):
            # Generic-protocol formats carry their own scalar metadata
            # (including a "format" discriminator for __setstate__).
            state["fmt_meta"] = self.fmt.shm_meta()
            return state
        inner = self.fmt.stacked if isinstance(self.fmt, BCCOOPlusMatrix) else self.fmt
        meta = {
            "shape": tuple(inner.shape),
            "block_height": inner.block_height,
            "block_width": inner.block_width,
            "col_storage": inner.col_storage,
            "nnz": inner.nnz,
            "flags_nbits": inner.flags.nbits,
            "flags_n_valid": inner.flags.n_valid,
            "delta_tile_size": (
                inner.delta.tile_size if inner.delta is not None else None
            ),
        }
        if isinstance(self.fmt, BCCOOPlusMatrix):
            meta["plus"] = {
                "shape": tuple(self.fmt.shape),
                "slice_count": self.fmt.slice_count,
                "slice_width": self.fmt.slice_width,
            }
        state["fmt_meta"] = meta
        return state

    def __setstate__(self, state):
        self.point = state["point"]
        self.tuning = state["tuning"]
        self.nnz = state["nnz"]
        self.arena = None
        self._csr_lock = threading.Lock()
        if "arena_descriptor" not in state:
            self.fmt = state["fmt"]
            self.csr = state["csr"]
            return
        from ..formats.bitflags import BitFlagArray
        from ..formats.delta import DeltaColumns
        from .shm import SharedArena

        arena = SharedArena.attach(state["arena_descriptor"])
        meta = state["fmt_meta"]
        if "format" in meta:
            from ..formats import get_format

            cls = get_format(meta["format"])
            views = {k: arena.view(k) for k in arena.keys() if not k.startswith("csr.")}
            self.fmt = cls.from_shared(meta, views)
            self._adopt_views(arena, state["csr_shape"])
            return
        flags = BitFlagArray(
            words=arena.view("flags.words"),
            nbits=meta["flags_nbits"],
            n_valid=meta["flags_n_valid"],
        )
        delta = None
        if meta["delta_tile_size"] is not None:
            delta = DeltaColumns(
                deltas=arena.view("delta.deltas"),
                start_cols=arena.view("delta.start_cols"),
                fallback=arena.view("delta.fallback"),
                tile_size=meta["delta_tile_size"],
            )
        inner = BCCOOMatrix(
            meta["shape"],
            meta["block_height"],
            meta["block_width"],
            flags,
            arena.view("col_block"),
            arena.view("values"),
            arena.view("row_map"),
            meta["col_storage"],
            delta,
            meta["nnz"],
        )
        plus = meta.get("plus")
        if plus is not None:
            self.fmt = BCCOOPlusMatrix(
                plus["shape"], inner, plus["slice_count"], plus["slice_width"]
            )
        else:
            self.fmt = inner
        self._adopt_views(arena, state["csr_shape"])

    # -- the shared result protocol (see SpMVResult / TuningResult) ---- #

    def to_dict(self) -> dict:
        """JSON-able snapshot matching the result-protocol shape."""
        point = self.point
        return {
            "kind": "prepared_matrix",
            "nnz": int(self.nnz),
            "shape": [int(s) for s in self.fmt.shape],
            "format": point.format_name,
            "block": f"{point.block_height}x{point.block_width}",
            "slices": int(point.slice_count),
            "shared": self.shared,
            "shared_bytes": int(self.arena.nbytes) if self.arena is not None else 0,
            "tuning": None if self.tuning is None else self.tuning.to_dict(),
        }

    def summary(self) -> str:
        """One-line human description of the prepared instance."""
        point = self.point
        line = (
            f"{point.format_name} {point.block_height}x{point.block_width}"
            f" (slices={point.slice_count}, nnz={self.nnz})"
        )
        if self.shared:
            line += f" [shared: {self.arena.nbytes} B]"
        return line


@dataclass
class SpMVResult:
    """Product vector plus simulated execution profile."""

    y: np.ndarray
    stats: KernelStats
    breakdown: TimingBreakdown
    nnz: int
    #: Degradation trail; ``None`` when the tuned path succeeded outright
    #: (always ``None`` outside resilient mode).
    failure: FailureReport | None = None

    @property
    def time_s(self) -> float:
        return self.breakdown.t_total

    @property
    def gflops(self) -> float:
        return self.breakdown.gflops(self.nnz)

    @property
    def degraded(self) -> bool:
        return self.failure is not None and self.failure.degraded

    # -- the shared result protocol (see TuningResult for the other half)

    def to_dict(self) -> dict:
        """JSON-able snapshot -- the exporters' and CLI's interchange
        form, so callers stop reaching into dataclass internals."""
        return {
            "kind": "spmv_result",
            "nnz": int(self.nnz),
            "time_s": float(self.time_s),
            "gflops": float(self.gflops),
            "bound": self.breakdown.bound,
            "degraded": self.degraded,
            "fallback_used": None if self.failure is None else self.failure.fallback_used,
            "breakdown": asdict(self.breakdown),
            "stats": {
                "flops": float(self.stats.flops),
                "dram_read_bytes": float(self.stats.dram_read_bytes),
                "dram_write_bytes": float(self.stats.dram_write_bytes),
                "cached_read_bytes": float(self.stats.cached_read_bytes),
                "n_workgroups": int(self.stats.n_workgroups),
                "n_launches": int(self.stats.n_launches),
                "atomics": int(self.stats.atomics),
            },
        }

    def summary(self) -> str:
        """One-line human description of the execution."""
        line = (
            f"{self.gflops:.2f} GFLOPS ({self.time_s * 1e6:.1f} us, "
            f"{self.breakdown.bound}-bound, nnz={self.nnz})"
        )
        if self.failure is not None:
            line += f" [fallback: {self.failure.fallback_used}]"
        return line


class SpMVEngine:
    """Auto-tuning SpMV engine over the simulated device.

    Parameters
    ----------
    device:
        Device name (``"gtx680"``, ``"gtx480"``) or a
        :class:`DeviceSpec`.
    tuning_mode:
        ``"pruned"`` (default) or ``"exhaustive"``.
    plan_cache:
        Optional shared :class:`KernelPlanCache`; the engine creates one
        otherwise (kernel plans are reused across matrices, paper
        section 4).
    plan_store:
        Optional :class:`repro.tuning.TuningStore` consulted by every
        :meth:`prepare`: a persisted configuration for this matrix
        structure and device skips the search entirely (the returned
        ``PreparedMatrix.tuning`` has ``store_hit=True`` and
        ``evaluated == 0``), and a fresh search result is written back.
    tuning_workers:
        Pool width for the auto-tuner's candidate fan-out (default 1 =
        serial).  Any value returns bit-identical tuning results; only
        the wall clock changes.
    tuning_executor:
        ``"process"`` (default) or ``"thread"`` -- the pool kind used
        when ``tuning_workers > 1``.
    policy:
        ``"strict"`` (default) raises a typed error on the first
        validation failure; ``"permissive"`` degrades gracefully down
        the fallback chain (tuned -> bounded retry -> logical-id repair
        -> untuned default point -> CSR reference) and reports the trail
        in :attr:`SpMVResult.failure`.
    fault_plan:
        Optional :class:`repro.fault.FaultPlan` installed around every
        kernel execution -- the fault-injection harness.  A spec string
        (e.g. ``"stale_grp_sum:p=0.01,seed=7"``) is parsed with
        :meth:`repro.fault.FaultPlan.parse`.  ``None`` (the default)
        leaves the hot path untouched and results bit-identical to the
        plain engine.
    observer:
        Optional :class:`repro.obs.Observer` receiving spans and metrics
        from every ``prepare``/``multiply``/``multiply_many`` (and,
        through the ambient scope, from the tuner, kernels, timing model
        and fallback chain).  ``None`` (the default) installs the no-op
        null observer -- no measurable overhead.
    validate:
        ``"auto"`` (validate kernel output only when a fault plan is
        active), ``True`` (always) or ``False`` (never).
    max_retries:
        Bounded same-stage retries for transient faults (a plan whose
        injection budget runs out recovers here).
    retry_policy:
        Optional :class:`repro.fault.RetryPolicy` governing the tuned
        retries: its ``retries`` count replaces ``max_retries`` and its
        (deterministic, seeded) backoff schedule is slept between
        attempts.  ``None`` keeps the legacy immediate-retry behavior.
    breaker:
        Optional :class:`repro.fault.CircuitBreaker` keyed by kernel
        family (the prepared point's format name).  Under the
        ``"permissive"`` policy, a family whose tuned path keeps failing
        trips its circuit: subsequent multiplies skip straight to the
        repair/fallback stages (recorded as a ``CircuitOpenError``
        attempt) until the cooldown's half-open probe succeeds.  The
        per-family state is exported through the ``breaker.state``
        gauge.  ``None`` (default) disables breaking.
    validation_samples:
        Rows sampled by the per-multiply reference check (``None`` =
        every row).
    backend:
        Execution backend name (``"faithful"``, ``"fast"``, ``"auto"``)
        or :class:`repro.backends.ExecutionBackend` instance; the
        default is ``"faithful"``.  Every ``multiply``/``multiply_many``
        runs on it unless overridden per call; all backends are
        bit-identical, so the choice only moves the wall clock.
    """

    _POLICIES = ("strict", "permissive")

    def __init__(
        self,
        device: str | DeviceSpec = "gtx680",
        tuning_mode: str = "pruned",
        plan_cache: KernelPlanCache | None = None,
        plan_store: TuningStore | None = None,
        tuning_workers: int = 1,
        tuning_executor: str = "process",
        tuning_kwargs: dict | None = None,
        policy: str = "strict",
        fault_plan: FaultPlan | str | None = None,
        validate: bool | str = "auto",
        max_retries: int = 1,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        validation_samples: int | None = 64,
        validation_rtol: float = 1e-9,
        validation_atol: float = 1e-12,
        observer=None,
        backend: str | ExecutionBackend | None = None,
    ):
        if policy not in self._POLICIES:
            raise ValidationError(
                f"policy must be one of {self._POLICIES}, got {policy!r}"
            )
        if validate not in (True, False, "auto"):
            raise ValidationError(
                f"validate must be True, False or 'auto', got {validate!r}"
            )
        self.device = get_device(device) if isinstance(device, str) else device
        self.tuning_mode = tuning_mode
        self.plan_cache = plan_cache if plan_cache is not None else KernelPlanCache()
        self.plan_store = plan_store
        self.tuning_workers = tuning_workers
        self.tuning_executor = tuning_executor
        #: Extra AutoTuner constructor arguments (e.g. ``pruned_kwargs``
        #: to trim the search for time-boxed runs).
        self.tuning_kwargs = tuning_kwargs or {}
        self.policy = policy
        self.fault_plan = FaultPlan.coerce(fault_plan)
        self.validate = validate
        self.observer = observer if observer is not None else NULL_OBSERVER
        self.max_retries = max(int(max_retries), 0)
        if retry_policy is not None and not isinstance(retry_policy, RetryPolicy):
            raise ValidationError(
                f"retry_policy must be a RetryPolicy or None, "
                f"got {type(retry_policy).__name__}"
            )
        self.retry_policy = retry_policy
        if breaker is not None and not isinstance(breaker, CircuitBreaker):
            raise ValidationError(
                f"breaker must be a CircuitBreaker or None, "
                f"got {type(breaker).__name__}"
            )
        self.breaker = breaker
        self.validation_samples = validation_samples
        self.validation_rtol = validation_rtol
        self.validation_atol = validation_atol
        self.backend = resolve_backend(backend)
        self._kernel = YaSpMVKernel()
        self._kernel_multi = YaSpMMKernel()
        self._timing = TimingModel(self.device)
        #: Backoff sleep between tuned retries; tests inject a recorder.
        self._sleep = time.sleep

    @property
    def backend(self) -> ExecutionBackend:
        """The engine-default execution backend (see ``backend=``)."""
        return self._backend

    @backend.setter
    def backend(self, spec) -> None:
        # Accepts a name, an instance, or None (the registry default) so
        # callers can install a backend the way they install observers.
        self._backend = resolve_backend(spec)

    @property
    def _resilient(self) -> bool:
        """Whether multiplies go through the validating fallback chain."""
        if self.validate is True:
            return True
        # A permissive breaker must see every multiply: an open circuit
        # has to short-circuit clean runs too, and the half-open probe
        # only closes if its success is observed and recorded.
        breaking = self.breaker is not None and self.policy == "permissive"
        if self.validate is False:
            return self.fault_plan is not None or breaking
        return self.fault_plan is not None or breaking

    # ------------------------------------------------------------------ #

    def prepare(
        self,
        matrix,
        point: TuningPoint | None = None,
        keep_history: bool = False,
        store=None,
        deadline=None,
        checkpoint=None,
        share: bool = False,
    ) -> PreparedMatrix:
        """Tune (unless ``point`` is given) and convert ``matrix``.

        Pass an explicit :class:`TuningPoint` to skip tuning -- used by
        the ablation benchmarks and by callers replaying a saved
        configuration.  The engine's ``plan_store`` (or a per-call
        ``store`` override) provides persistent warm starts: a stored
        entry for this matrix structure and device skips the search --
        observable as ``tuning.store_hit`` with ``evaluated == 0`` --
        and a fresh search result is written back.

        ``deadline`` (seconds or a :class:`repro.fault.Deadline`) bounds
        the search wall clock -- on expiry the best-so-far wins and
        ``tuning.partial`` is set.  ``checkpoint`` (a path or
        :class:`repro.tuning.TuningCheckpoint`) journals every completed
        candidate so a crashed or expired search resumes where it
        stopped, with a bit-identical final result.

        ``share=True`` moves the resulting buffers (and, when the search
        fans out, the tuner workers' CSR operand) into
        ``multiprocessing.shared_memory`` -- see
        :meth:`PreparedMatrix.share`.
        """
        obs = self.observer
        with obs_scope(obs), obs.span(
            "engine.prepare", device=self.device.name
        ) as prep_span:
            csr = as_csr(matrix)
            prep_span.set(nnz=int(csr.nnz), shape=f"{csr.shape[0]}x{csr.shape[1]}")
            store = store if store is not None else self.plan_store
            tuning: TuningResult | None = None
            store_checked = False
            invalidations0 = store.invalidations if store is not None else 0
            if point is None and store is not None:
                store_checked = True
                t0 = time.perf_counter()
                with obs.span("store.lookup") as store_span:
                    cached = store.get(csr, self.device)
                    store_span.set(hit=cached is not None)
                obs.counter(
                    "engine.plan_store.hits", "persistent tuning-store hits"
                ).inc(int(cached is not None))
                obs.counter(
                    "engine.plan_store.misses", "persistent tuning-store misses"
                ).inc(int(cached is None))
                if cached is not None:
                    point = cached
                    tuning = TuningResult.from_store(
                        cached,
                        wall_seconds=time.perf_counter() - t0,
                        invalidations=store.invalidations - invalidations0,
                    )
            if point is None:
                tuner = AutoTuner(
                    self.device,
                    mode=self.tuning_mode,
                    plan_cache=self.plan_cache,
                    keep_history=keep_history,
                    workers=self.tuning_workers,
                    executor=self.tuning_executor,
                    observer=obs,
                    deadline=deadline,
                    checkpoint=checkpoint,
                    retry=self.retry_policy,
                    backend=self.backend.name,
                    share_operand=share,
                    **self.tuning_kwargs,
                )
                tuning = tuner.tune(csr)
                point = tuning.best_point
                if store is not None:
                    store.put(csr, self.device, point)
                tuning.store_checked = store_checked
                if store is not None:
                    tuning.store_invalidations = store.invalidations - invalidations0
            # The tuner adds the real plan-cache deltas itself; this only
            # materializes the counters for warm-started / explicit-point
            # prepares so the metrics table always shows them.
            obs.counter("tuner.plan_cache.hits", "kernel-plan cache hits").inc(0)
            obs.counter("tuner.plan_cache.misses", "kernel-plan cache misses").inc(0)

            with obs.span(
                "format.convert", format=point.format_name
            ) as conv_span:
                fmt = self._build_format(csr, point)
                conv_span.set(
                    block=f"{point.block_height}x{point.block_width}",
                    slices=point.slice_count,
                )
            obs.counter("engine.prepares", "prepare() calls").inc()
            prep_span.set(
                format=point.format_name,
                store_hit=bool(tuning is not None and tuning.store_hit),
            )
            prepared = PreparedMatrix(
                fmt=fmt, point=point, tuning=tuning, nnz=int(csr.nnz), csr=csr
            )
            if share:
                prepared.share()
                obs.counter(
                    "engine.shared_prepares", "prepare(share=True) calls"
                ).inc()
            return prepared

    def multiply(
        self,
        prepared: PreparedMatrix | object,
        x: np.ndarray,
        *,
        backend: str | ExecutionBackend | None = None,
    ) -> SpMVResult:
        """Execute one SpMV: ``y = A @ x``.

        ``prepared`` is normally a :class:`PreparedMatrix` from
        :meth:`prepare` (amortizes tuning over repeated multiplies), but
        any sparse matrix is accepted as a documented one-shot overload
        -- it is prepared (auto-tuned, warm-started from ``plan_store``
        when set) and multiplied in one call.

        ``backend`` overrides the engine's backend for this call only
        (same bit-identical output, different execution strategy).

        With no fault plan and validation off (the default), this is the
        plain tuned execution.  Otherwise the multiply runs through the
        resilience layer: injection scope, output validation, and --
        under the ``"permissive"`` policy -- the graceful-degradation
        fallback chain (see ``docs/robustness.md``).
        """
        if not isinstance(prepared, PreparedMatrix):
            prepared = self.prepare(prepared)
        bk = self._backend if backend is None else resolve_backend(backend)
        obs = self.observer
        with obs_scope(obs), obs.span(
            "engine.multiply",
            nnz=prepared.nnz,
            resilient=self._resilient,
            backend=bk.name,
        ) as sp:
            if not self._resilient:
                result = bk.execute(
                    prepared.fmt,
                    x,
                    self.device,
                    prepared.config,
                    reference=prepared.reference_csr,
                )
                breakdown = self._timing.estimate(result.stats)
                out = SpMVResult(
                    y=result.y,
                    stats=result.stats,
                    breakdown=breakdown,
                    nnz=prepared.nnz,
                )
            else:
                out = self._multiply_resilient(prepared, x, bk)
            self._observe_result(sp, out, bk)
            return out

    # ------------------------------------------------------------------ #
    # Resilience layer
    # ------------------------------------------------------------------ #

    def _multiply_resilient(
        self, prepared: PreparedMatrix, x: np.ndarray, backend: ExecutionBackend
    ) -> SpMVResult:
        """Validating multiply with bounded retry and fallback chain.

        Handles both the vector (1-D ``x``) and the multi-RHS (2-D ``x``)
        cases; the fallback stages and validation are shared.  The tuned
        stages run on ``backend``; the deep fallbacks (untuned rebuild,
        CSR reference) always run on the faithful interpreter -- the
        degraded path optimizes for trust, not speed.
        """
        plan = self.fault_plan
        csr = prepared.reference_csr()
        report = FailureReport()
        x = np.asarray(x, dtype=np.float64)
        n_rhs = x.shape[1] if x.ndim == 2 else 1
        obs = self.observer

        # Materialize the containment counters so `repro profile` always
        # shows them, even when nothing retried or timed out this run.
        obs.counter(
            "retry.attempts", "same-stage retries of the tuned kernel"
        ).inc(0)
        obs.counter(
            "watchdog.timeouts", "adjacent-sync spin watchdog expiries"
        ).inc(0)

        family = prepared.point.format_name
        breaker = self.breaker if self.policy == "permissive" else None
        retry = self.retry_policy
        n_retries = retry.retries if retry is not None else self.max_retries

        stages: list[tuple[str, object, YaSpMVConfig | None, bool]] = []
        tuned_allowed = True
        if breaker is not None and not breaker.allow(family):
            # Circuit open: don't re-probe a family that keeps failing --
            # jump straight to the repair/fallback stages.  The skip is
            # recorded so the degradation trail stays complete.
            tuned_allowed = False
            report.attempts.append(
                AttemptRecord(
                    stage="tuned",
                    ok=False,
                    error=(
                        f"circuit for kernel family {family!r} is open; "
                        "tuned stages skipped until the cooldown probe"
                    ),
                    error_type="CircuitOpenError",
                )
            )
            obs.counter(
                "breaker.short_circuits",
                "multiplies that skipped tuned stages on an open circuit",
            ).inc(family=family)
        if tuned_allowed:
            stages.append(("tuned", prepared.fmt, prepared.config, True))
            for _ in range(n_retries):
                stages.append(("tuned-retry", prepared.fmt, prepared.config, True))
        if (
            plan is not None
            and plan.targets("dispatch.")
            and prepared.config.workgroup_ids != "atomic"
        ):
            # Targeted repair: out-of-order dispatch is exactly what the
            # logical-id atomic fallback neutralizes (section 3.2.4).
            stages.append(
                (
                    "logical-ids",
                    prepared.fmt,
                    prepared.config.with_overrides(workgroup_ids="atomic"),
                    True,
                )
            )
        stages.append(("untuned", None, YaSpMVConfig(), True))
        stages.append(("csr-reference", None, None, False))

        tuned_attempt = 0
        for depth, (stage, fmt, config, with_plan) in enumerate(stages):
            if stage == "tuned-retry":
                tuned_attempt += 1
                obs.counter(
                    "retry.attempts", "same-stage retries of the tuned kernel"
                ).inc()
                if retry is not None:
                    delay = retry.delay_s(tuned_attempt)
                    if delay > 0:
                        self._sleep(delay)
            with obs.span("fallback.attempt", stage=stage, depth=depth) as stage_span:
                result, record = self._attempt(
                    stage, fmt, config, with_plan, prepared, csr, x, plan, backend
                )
                stage_span.set(ok=record.ok, injected=len(record.injected))
                if record.error:
                    stage_span.set(error=record.error_type)
            for event in record.injected:
                obs.counter(
                    "fault.injections", "fault events caught per site"
                ).inc(site=event.site)
            report.attempts.append(record)
            if result is not None:
                report.fallback_used = stage
                if breaker is not None and tuned_allowed:
                    # The tuned path either proved itself or was walked
                    # past: feed the circuit so persistent failures trip
                    # it and a half-open probe's success closes it.
                    if stage in ("tuned", "tuned-retry"):
                        breaker.record_success(family)
                    else:
                        breaker.record_failure(family)
                if breaker is not None:
                    obs.gauge(
                        "breaker.state",
                        "per-family circuit state "
                        "(0=closed, 1=half-open, 2=open)",
                    ).set(breaker.state_value(family), family=family)
                obs.counter(
                    "fallback.stage_used", "winning fallback stage"
                ).inc(stage=stage)
                obs.histogram(
                    "fallback.depth",
                    "attempts walked before success",
                    buckets=(1, 2, 3, 4, 5),
                ).observe(len(report.attempts))
                breakdown = self._timing.estimate(result.stats)
                return SpMVResult(
                    y=result.y,
                    stats=result.stats,
                    breakdown=breakdown,
                    nnz=prepared.nnz * n_rhs,
                    failure=report,
                )
            obs.counter(
                "fallback.stage_failed", "failed fallback attempts"
            ).inc(stage=stage)
            if self.policy == "strict":
                self._raise_strict(record, plan)
        # Unreachable in practice: the CSR reference stage cannot fail
        # validation against itself; guard against silent wrong answers.
        raise ValidationError(
            "every fallback stage failed validation:\n" + report.summary()
        )

    def _attempt(
        self,
        stage: str,
        fmt,
        config: YaSpMVConfig | None,
        with_plan: bool,
        prepared: PreparedMatrix,
        csr,
        x: np.ndarray,
        plan: FaultPlan | None,
        backend: ExecutionBackend,
    ):
        """Run one fallback stage; returns ``(KernelResult | None, record)``."""
        active = plan if with_plan else None
        multi = np.asarray(x).ndim == 2
        try:
            with fault_scope(active):
                if stage == "csr-reference":
                    # Trusted last resort: host-side CSR kernel, fault
                    # injection explicitly disabled.
                    kernel_result = self._csr_reference(csr, x)
                elif fmt is None:
                    # Untuned default point, rebuilt from the CSR source;
                    # always faithful -- the degraded path stays on the
                    # interpreter the fault model instruments.
                    rebuilt = BCCOOMatrix.from_scipy(csr)
                    if multi:
                        kernel_result = self._kernel_multi.run_multi(
                            rebuilt, x, self.device, config=config
                        )
                    else:
                        kernel_result = self._kernel.run(
                            rebuilt, x, self.device, config=config
                        )
                elif multi:
                    # The engine's own verify_output below is the arbiter,
                    # so no reference is passed down (an auto backend
                    # would only validate twice).
                    kernel_result = backend.execute_multi(
                        fmt, x, self.device, config
                    )
                else:
                    kernel_result = backend.execute(
                        fmt, x, self.device, config
                    )
        except ReproError as exc:
            injected = active.drain_events() if active is not None else []
            return None, AttemptRecord(
                stage=stage,
                ok=False,
                error=str(exc),
                error_type=type(exc).__name__,
                injected=injected,
            )
        injected = active.drain_events() if active is not None else []

        if self.validate is False:
            validation: ValidationReport | None = None
            ok = True
        else:
            operand = np.asarray(x, dtype=np.float64)
            validation = verify_output(
                csr,
                operand if multi else operand.ravel(),
                kernel_result.y,
                n_samples=self.validation_samples,
                rtol=self.validation_rtol,
                atol=self.validation_atol,
            )
            ok = validation.ok
        record = AttemptRecord(
            stage=stage, ok=ok, validation=validation, injected=injected
        )
        if not ok:
            first = validation.failures[0]
            record.error = f"{first.name}: {first.detail}"
            record.error_type = "ValidationError"
            return None, record
        return kernel_result, record

    def _csr_reference(self, csr, x: np.ndarray):
        """Trusted host-side CSR execution, vector or multi-RHS."""
        kernel = get_kernel("csr_vector")
        fmt = CSRMatrix.from_scipy(csr)
        x = np.asarray(x, dtype=np.float64)
        if x.ndim != 2:
            return kernel.run(fmt, x, self.device)
        # Column-by-column reference; stats chain with ``sequential`` so
        # the timing model sees k full passes (no SpMM amortization --
        # this is the degraded path, honesty beats optimism).
        from ..kernels.base import KernelResult

        columns = []
        stats = None
        for j in range(x.shape[1]):
            res = kernel.run(fmt, x[:, j], self.device)
            columns.append(res.y)
            stats = res.stats if stats is None else stats.sequential(res.stats)
        return KernelResult(y=np.stack(columns, axis=1), stats=stats)

    def _raise_strict(self, record: AttemptRecord, plan: FaultPlan | None):
        """Strict policy: surface the first failure as a typed error."""
        if record.injected:
            event = record.injected[0]
            detail = dict(event.detail)
            raise FaultInjectedError(
                f"injected fault at {event.site} detected in stage "
                f"{record.stage!r}: {record.error}",
                site=event.site,
                seed=plan.seed if plan is not None else None,
                workgroup=detail.get("workgroup"),
            )
        if record.validation is not None and not record.validation.ok:
            record.validation.raise_if_failed()
        raise ValidationError(
            f"stage {record.stage!r} failed: {record.error_type}: {record.error}"
        )

    @staticmethod
    def _coerce_rhs(X) -> np.ndarray:
        """Normalize a multi-RHS operand to a 2-D ``(ncols, k)`` array.

        Accepts either the 2-D column block directly or a *sequence of
        1-D vectors* (the serving layer's batch shape).  A conforming
        sequence -- every member 1-D, same length, numeric -- is column-
        stacked so the whole batch rides one ``run_multi`` dispatch;
        each stacked column is a bit-exact copy of its source vector,
        so batching never perturbs the numerics.
        """
        if isinstance(X, (list, tuple)):
            if not X:
                raise ValidationError("multiply_many needs at least one vector")
            vecs = [np.asarray(v, dtype=np.float64) for v in X]
            bad = [v.shape for v in vecs if v.ndim != 1]
            if bad:
                raise ValidationError(
                    f"a vector sequence must contain 1-D vectors only, "
                    f"got shapes {bad[:3]}"
                )
            lengths = {v.shape[0] for v in vecs}
            if len(lengths) != 1:
                raise ValidationError(
                    f"all vectors in a batch must share a length, "
                    f"got {sorted(lengths)}"
                )
            return np.column_stack(vecs)
        return np.asarray(X)

    def multiply_many(
        self,
        prepared: PreparedMatrix | object,
        X: np.ndarray,
        *,
        backend: str | ExecutionBackend | None = None,
    ) -> SpMVResult:
        """SpMM extension: ``Y = A @ X`` for ``X`` of shape ``(ncols, k)``.

        The matrix stream is read once for all ``k`` right-hand sides,
        so the simulated time grows far slower than ``k`` sequential
        multiplies -- the block-Krylov use case.  ``result.nnz`` counts
        ``nnz * k`` so ``gflops`` stays the throughput of useful work.

        ``X`` may also be a *sequence of 1-D vectors* sharing a length
        (the serving layer's request-batch shape): the batch is column-
        stacked and executed as **one** ``run_multi`` SpMM dispatch, and
        every output column is bit-identical to a sequential
        :meth:`multiply` of the corresponding vector.

        Accepts a raw matrix as a one-shot overload (like
        :meth:`multiply`) and runs under the same resilience/validation
        policy: with a fault plan or validation enabled, SpMM goes
        through the identical fallback chain and produces the same
        :class:`FailureReport` trail.
        """
        if not isinstance(prepared, PreparedMatrix):
            prepared = self.prepare(prepared)
        X = self._coerce_rhs(X)
        bk = self._backend if backend is None else resolve_backend(backend)
        obs = self.observer
        with obs_scope(obs), obs.span(
            "engine.multiply_many",
            nnz=prepared.nnz,
            n_rhs=int(np.asarray(X).shape[1]) if np.asarray(X).ndim == 2 else 1,
            resilient=self._resilient,
            backend=bk.name,
        ) as sp:
            if not self._resilient:
                result = bk.execute_multi(
                    prepared.fmt,
                    X,
                    self.device,
                    prepared.config,
                    reference=prepared.reference_csr,
                )
                breakdown = self._timing.estimate(result.stats)
                out = SpMVResult(
                    y=result.y,
                    stats=result.stats,
                    breakdown=breakdown,
                    nnz=prepared.nnz * int(np.asarray(X).shape[1]),
                )
            else:
                out = self._multiply_resilient(prepared, X, bk)
            self._observe_result(sp, out, bk)
            return out

    def update_values(
        self, prepared: PreparedMatrix, new_values
    ) -> PreparedMatrix:
        """Incremental re-prepare: swap value buffers, keep the plan.

        Returns a new :class:`PreparedMatrix` built by
        :meth:`PreparedMatrix.with_values` (structural arrays, tuned
        point and tuning record shared by identity), then asks the
        engine's backend to migrate any derived execution plans (the
        fast backend re-pads the value payload under the existing
        gather/segment plan instead of re-deriving it).  The refreshed
        CSR carries a new value digest, so the serving layer's
        value-aware cache/batch key changes with it.
        """
        if not isinstance(prepared, PreparedMatrix):
            raise ValidationError(
                f"update_values needs a PreparedMatrix from prepare(), "
                f"got {type(prepared).__name__}"
            )
        obs = self.observer
        with obs_scope(obs), obs.span(
            "engine.update_values", nnz=prepared.nnz
        ) as sp:
            refreshed = prepared.with_values(new_values)
            migrated = self._backend.refresh_values(prepared.fmt, refreshed.fmt)
            obs.counter(
                "engine.value_refreshes", "update_values() calls"
            ).inc()
            obs.counter(
                "engine.value_refresh.plan_hits",
                "backend plans migrated instead of re-derived",
            ).inc(migrated)
            sp.set(plan_hits=migrated)
            return refreshed

    def capabilities(self, prepared: PreparedMatrix | None = None) -> dict:
        """One JSON-able dict describing what this engine can do.

        Covers the available/selected backends, the SpMM batch bound
        (for ``prepared`` when given, else the default-config estimate),
        and the active resilience configuration (policy, validation,
        retry, breaker, fault plan) -- the introspection protocol's
        engine-level entry, next to ``PreparedMatrix.to_dict()`` and
        ``SpMVResult.to_dict()``.
        """
        if prepared is not None:
            batch_width = self.max_batch_width(prepared)
        else:
            # Default-config estimate: the SpMM shared-memory formula
            # needs only the block height (1 for the default point).
            import types

            shim = types.SimpleNamespace(block_height=1)
            shm_one = self._kernel._shared_mem(shim, YaSpMVConfig())
            batch_width = max(
                1, self.device.max_shared_mem_per_workgroup // max(shm_one, 1)
            )
        retry = self.retry_policy
        breaker = self.breaker
        return {
            "kind": "engine_capabilities",
            "device": self.device.name,
            "backend": self._backend.name,
            "backends": {
                name: bk.capabilities()
                for name, bk in sorted(available_backends().items())
            },
            "max_batch_width": int(batch_width),
            "policy": self.policy,
            "validate": self.validate,
            "resilient": self._resilient,
            "fault_plan": (
                None if self.fault_plan is None else sorted(self.fault_plan.specs)
            ),
            "retry": {
                "max_retries": self.max_retries,
                "policy": None if retry is None else {
                    "retries": retry.retries,
                    "backoff": type(retry).__name__,
                },
            },
            "breaker": None if breaker is None else {"kind": type(breaker).__name__},
            "validation": {
                "samples": self.validation_samples,
                "rtol": self.validation_rtol,
                "atol": self.validation_atol,
            },
            "tuning": {
                "mode": self.tuning_mode,
                "workers": self.tuning_workers,
                "executor": self.tuning_executor,
            },
        }

    def max_batch_width(self, prepared: PreparedMatrix) -> int:
        """Widest multi-RHS block :meth:`multiply_many` runs as one SpMM.

        Delegates to the engine's own SpMM kernel instance (the one
        every :meth:`multiply_many` dispatch uses) so the bound always
        matches real execution on this engine's device.
        """
        if not isinstance(prepared, PreparedMatrix):
            raise ValidationError(
                f"max_batch_width needs a PreparedMatrix from prepare(), "
                f"got {type(prepared).__name__}"
            )
        fmt = prepared.fmt
        if isinstance(fmt, MergeCSRMatrix):
            kernel = get_kernel("merge_csr")
        elif isinstance(fmt, RGCSRMatrix):
            kernel = get_kernel("rgcsr")
        else:
            kernel = self._kernel_multi
        return kernel.max_batch_width(fmt, self.device, prepared.config)

    def _observe_result(
        self, sp, result: SpMVResult, backend: ExecutionBackend
    ) -> None:
        """Feed one multiply's profile to the observer (span + metrics)."""
        obs = self.observer
        br = result.breakdown
        sp.set(
            sim_time_s=br.t_total,
            sim_gflops=result.gflops,
            bound=br.bound,
            sim_t_mem=br.t_mem,
            sim_t_compute=br.t_compute,
            sim_t_sync=br.t_sync,
            imbalance=br.imbalance_factor,
            degraded=result.degraded,
        )
        obs.counter(
            "engine.multiplies", "multiply()/multiply_many() calls"
        ).inc(backend=backend.name)
        obs.histogram(
            "engine.sim_time_s", "simulated execution time per multiply"
        ).observe(br.t_total)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_format(csr, point: TuningPoint):
        if point.base_format == "merge_csr":
            return MergeCSRMatrix.from_scipy(csr)
        if point.base_format == "rgcsr":
            return RGCSRMatrix.from_scipy(csr)
        kwargs = dict(
            block_height=point.block_height,
            block_width=point.block_width,
            bit_word_dtype=point.bit_word_dtype,
            col_storage="auto" if point.col_compress else "int32",
            delta_tile_size=point.kernel.effective_tile,
        )
        if point.slice_count > 1:
            return BCCOOPlusMatrix.from_scipy(
                csr, slice_count=point.slice_count, **kwargs
            )
        return BCCOOMatrix.from_scipy(csr, **kwargs)


def yaspmv(
    matrix, x, device: str | DeviceSpec = "gtx680", backend=None
) -> np.ndarray:
    """One-shot convenience: auto-tuned SpMV, returns ``y = A @ x``."""
    return SpMVEngine(device=device, backend=backend).multiply(matrix, x).y
