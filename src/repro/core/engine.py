"""High-level public API: the yaSpMV engine.

Typical use::

    from repro import SpMVEngine

    engine = SpMVEngine(device="gtx680")
    prepared = engine.prepare(A)          # auto-tune + convert once
    result = engine.multiply(prepared, x)  # run many times
    print(result.gflops, result.breakdown.t_total)

or the one-shot convenience :func:`yaspmv`.  ``prepare`` runs the
section 4 auto-tuner (pruned search by default), builds the selected
BCCOO/BCCOO+ instance, and caches it; ``multiply`` executes the
simulated kernel, returning the exact product plus the simulated timing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.bccoo import BCCOOMatrix
from ..formats.bccoo_plus import BCCOOPlusMatrix
from ..gpu.counters import KernelStats
from ..gpu.device import DeviceSpec, get_device
from ..gpu.timing import TimingBreakdown, TimingModel
from ..kernels.config import YaSpMVConfig
from ..kernels.yaspmv import YaSpMVKernel
from ..tuning.cache import KernelPlanCache
from ..tuning.parameters import TuningPoint
from ..tuning.tuner import AutoTuner, TuningResult
from ..util import as_csr

__all__ = ["PreparedMatrix", "SpMVResult", "SpMVEngine", "yaspmv"]


@dataclass
class PreparedMatrix:
    """An auto-tuned, converted matrix ready for repeated multiplies."""

    fmt: BCCOOMatrix | BCCOOPlusMatrix
    point: TuningPoint
    tuning: TuningResult | None
    nnz: int

    @property
    def config(self) -> YaSpMVConfig:
        return self.point.kernel


@dataclass
class SpMVResult:
    """Product vector plus simulated execution profile."""

    y: np.ndarray
    stats: KernelStats
    breakdown: TimingBreakdown
    nnz: int

    @property
    def time_s(self) -> float:
        return self.breakdown.t_total

    @property
    def gflops(self) -> float:
        return self.breakdown.gflops(self.nnz)


class SpMVEngine:
    """Auto-tuning SpMV engine over the simulated device.

    Parameters
    ----------
    device:
        Device name (``"gtx680"``, ``"gtx480"``) or a
        :class:`DeviceSpec`.
    tuning_mode:
        ``"pruned"`` (default) or ``"exhaustive"``.
    plan_cache:
        Optional shared :class:`KernelPlanCache`; the engine creates one
        otherwise (kernel plans are reused across matrices, paper
        section 4).
    """

    def __init__(
        self,
        device: str | DeviceSpec = "gtx680",
        tuning_mode: str = "pruned",
        plan_cache: KernelPlanCache | None = None,
        tuning_kwargs: dict | None = None,
    ):
        self.device = get_device(device) if isinstance(device, str) else device
        self.tuning_mode = tuning_mode
        self.plan_cache = plan_cache if plan_cache is not None else KernelPlanCache()
        #: Extra AutoTuner constructor arguments (e.g. ``pruned_kwargs``
        #: to trim the search for time-boxed runs).
        self.tuning_kwargs = tuning_kwargs or {}
        self._kernel = YaSpMVKernel()
        self._timing = TimingModel(self.device)

    # ------------------------------------------------------------------ #

    def prepare(
        self,
        matrix,
        point: TuningPoint | None = None,
        keep_history: bool = False,
        store=None,
    ) -> PreparedMatrix:
        """Tune (unless ``point`` is given) and convert ``matrix``.

        Pass an explicit :class:`TuningPoint` to skip tuning -- used by
        the ablation benchmarks and by callers replaying a saved
        configuration.  Pass a :class:`repro.tuning.TuningStore` as
        ``store`` to consult/update persisted configurations: a stored
        entry for this matrix structure and device skips the search,
        and a fresh search result is written back.
        """
        csr = as_csr(matrix)
        tuning: TuningResult | None = None
        if point is None and store is not None:
            point = store.get(csr, self.device)
        if point is None:
            tuner = AutoTuner(
                self.device,
                mode=self.tuning_mode,
                plan_cache=self.plan_cache,
                keep_history=keep_history,
                **self.tuning_kwargs,
            )
            tuning = tuner.tune(csr)
            point = tuning.best_point
            if store is not None:
                store.put(csr, self.device, point)

        fmt = self._build_format(csr, point)
        return PreparedMatrix(fmt=fmt, point=point, tuning=tuning, nnz=int(csr.nnz))

    def multiply(self, prepared: PreparedMatrix, x: np.ndarray) -> SpMVResult:
        """Execute one SpMV on a prepared matrix."""
        result = self._kernel.run(
            prepared.fmt, x, self.device, config=prepared.config
        )
        breakdown = self._timing.estimate(result.stats)
        return SpMVResult(
            y=result.y, stats=result.stats, breakdown=breakdown, nnz=prepared.nnz
        )

    def multiply_many(self, prepared: PreparedMatrix, X: np.ndarray) -> SpMVResult:
        """SpMM extension: ``Y = A @ X`` for ``X`` of shape ``(ncols, k)``.

        The matrix stream is read once for all ``k`` right-hand sides,
        so the simulated time grows far slower than ``k`` sequential
        multiplies -- the block-Krylov use case.  ``result.nnz`` counts
        ``nnz * k`` so ``gflops`` stays the throughput of useful work.
        """
        from ..kernels.yaspmv import YaSpMMKernel

        result = YaSpMMKernel().run_multi(
            prepared.fmt, X, self.device, config=prepared.config
        )
        breakdown = self._timing.estimate(result.stats)
        return SpMVResult(
            y=result.y,
            stats=result.stats,
            breakdown=breakdown,
            nnz=prepared.nnz * int(np.asarray(X).shape[1]),
        )

    def multiply_matrix(self, matrix, x: np.ndarray) -> SpMVResult:
        """One-shot: prepare (tuned) and multiply."""
        return self.multiply(self.prepare(matrix), x)

    # ------------------------------------------------------------------ #

    @staticmethod
    def _build_format(csr, point: TuningPoint):
        kwargs = dict(
            block_height=point.block_height,
            block_width=point.block_width,
            bit_word_dtype=point.bit_word_dtype,
            col_storage="auto" if point.col_compress else "int32",
            delta_tile_size=point.kernel.effective_tile,
        )
        if point.slice_count > 1:
            return BCCOOPlusMatrix.from_scipy(
                csr, slice_count=point.slice_count, **kwargs
            )
        return BCCOOMatrix.from_scipy(csr, **kwargs)


def yaspmv(matrix, x, device: str | DeviceSpec = "gtx680") -> np.ndarray:
    """One-shot convenience: auto-tuned SpMV, returns ``y = A @ x``."""
    return SpMVEngine(device=device).multiply_matrix(matrix, x).y
