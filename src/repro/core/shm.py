"""Zero-copy prepared-matrix buffers over ``multiprocessing.shared_memory``.

A :class:`SharedArena` packs a set of named ndarrays into **one**
shared-memory segment.  The owning process creates it; any process can
:meth:`attach` from the picklable :meth:`descriptor` and map the same
physical pages as zero-copy ndarray views -- the point being that
parallel tuner workers and out-of-process serve shards read one copy of
a prepared matrix instead of each deserializing its own.

Lifecycle (the refcounted-unlink contract):

* ``create`` copies the arrays in once and registers the arena in a
  per-process table keyed by segment name.
* ``attach`` in the *same* process dedups through that table (refcount
  up); in a *different* process it maps the segment read-write and
  unregisters it from that process's ``resource_tracker`` -- attaching
  must never cause a tracker to unlink a segment the owner still serves
  (the well-known multi-process ``SharedMemory`` footgun).
* ``close`` drops one reference.  At zero the mapping is closed (a
  ``BufferError`` from still-live views is tolerated -- the views keep
  the mapping alive until they are collected) and, in the owning process
  only, the segment is unlinked.  Unlinking removes the name; processes
  already attached keep valid mappings until they exit.

Module counters (:func:`shm_stats`) account segments, bytes, attaches
and unlinks so tests can assert "one copy, N mappers" instead of
trusting the plumbing.
"""

from __future__ import annotations

import os
import re
import secrets
import threading
from multiprocessing import shared_memory

import numpy as np

from ..errors import ReproError

__all__ = ["SharedArena", "shm_stats", "reset_shm_stats", "reap_orphans"]

#: 64-byte alignment for every array inside a segment (cache-line clean).
_ALIGN = 64

#: Segment names embed the creating pid -- ``reproshm-<pid>-<token>`` --
#: so :func:`reap_orphans` can tell a dead owner's leak from a live
#: owner's working set without any side-channel bookkeeping.
_NAME_PREFIX = "reproshm"
_NAME_RE = re.compile(rf"^{_NAME_PREFIX}-(\d+)-[0-9a-f]+$")

_lock = threading.Lock()
#: Per-process registry: segment name -> live SharedArena (refcount dedup).
_arenas: dict[str, "SharedArena"] = {}
_stats = {
    "segments_created": 0,
    "bytes_shared": 0,
    "attaches": 0,
    "unlinks": 0,
    "reaped": 0,
}


def shm_stats() -> dict:
    """Snapshot of this process's shared-memory accounting counters."""
    with _lock:
        return dict(_stats)


def reset_shm_stats() -> None:
    """Zero the counters (test isolation helper)."""
    with _lock:
        for key in _stats:
            _stats[key] = 0


def _round_up(n: int, multiple: int) -> int:
    return ((n + multiple - 1) // multiple) * multiple


def _segment_name() -> str:
    return f"{_NAME_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` currently names a live process."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists but not ours
        return True
    return True


def reap_orphans(shm_dir: str = "/dev/shm") -> list[str]:
    """Unlink arena segments whose owning process is gone.

    An owner that dies by SIGKILL never runs :meth:`SharedArena.close`,
    so its segments outlive it as ``/dev/shm`` files.  Because segment
    names embed the creator's pid, a scan can attribute each leak: any
    ``reproshm-<pid>-*`` entry whose pid no longer exists is an orphan
    and is unlinked here.  Segments of live processes -- including this
    one -- are never touched.  Returns the reaped segment names;
    ``shm_stats()['reaped']`` counts them.  The supervisor calls this
    after detecting worker death; it is also safe to call at any time.
    """
    reaped: list[str] = []
    try:
        entries = os.listdir(shm_dir)
    except OSError:  # pragma: no cover - non-Linux / no tmpfs
        return reaped
    for entry in entries:
        match = _NAME_RE.match(entry)
        if match is None:
            continue
        pid = int(match.group(1))
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, entry))
        except OSError:  # pragma: no cover - raced another reaper
            continue
        reaped.append(entry)
    if reaped:
        with _lock:
            _stats["reaped"] += len(reaped)
    return reaped


def _open_untracked(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without resource-tracker registration.

    Python 3.13 grew ``SharedMemory(..., track=False)`` for exactly
    this; on older interpreters registration is suppressed for the
    duration of the open (under the module lock, so concurrent arena
    operations cannot slip a real registration into the window).
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - exercised on < 3.13
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shm(rname, rtype):
        if rtype != "shared_memory":
            original(rname, rtype)

    with _lock:
        resource_tracker.register = _skip_shm
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class SharedArena:
    """One shared-memory segment holding a set of named ndarrays.

    Never constructed directly -- use :meth:`create` (owner) or
    :meth:`attach` (mapper).
    """

    def __init__(self, shm, layout: dict, owner: bool):
        self._shm = shm
        #: key -> (dtype_str, shape_tuple, offset)
        self._layout = layout
        self._owner = owner
        #: Ownership is pid-scoped: a fork-inherited copy of an owning
        #: arena must never unlink the segment the real owner serves.
        self._pid = os.getpid()
        self._refs = 1
        self._closed = False

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "SharedArena":
        """Pack ``arrays`` (copied once) into a fresh segment."""
        if not arrays:
            raise ReproError("SharedArena.create needs at least one array")
        layout: dict[str, tuple[str, tuple, int]] = {}
        offset = 0
        for key, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            layout[key] = (arr.dtype.str, tuple(arr.shape), offset)
            offset += _round_up(max(arr.nbytes, 1), _ALIGN)
        while True:
            try:
                shm = shared_memory.SharedMemory(
                    name=_segment_name(), create=True, size=max(offset, 1)
                )
                break
            except FileExistsError:  # pragma: no cover - 32-bit token clash
                continue
        arena = cls(shm, layout, owner=True)
        for key, arr in arrays.items():
            view = arena.view(key)
            view[...] = np.ascontiguousarray(arr)
        with _lock:
            _arenas[shm.name] = arena
            _stats["segments_created"] += 1
            _stats["bytes_shared"] += int(shm.size)
        return arena

    @classmethod
    def attach(cls, descriptor: dict) -> "SharedArena":
        """Map the segment a :meth:`descriptor` names.

        Same-process attaches dedup onto the existing arena (refcount
        up); cross-process attaches open a new mapping and detach it
        from this process's ``resource_tracker`` so a mapper exiting (or
        its tracker cleaning up) can never unlink a segment the owner
        still serves.
        """
        name = descriptor["name"]
        with _lock:
            existing = _arenas.get(name)
            if (
                existing is not None
                and not existing._closed
                and existing._pid == os.getpid()
            ):
                existing._refs += 1
                _stats["attaches"] += 1
                return existing
        # A non-owning mapper must not let its resource tracker unlink
        # (or even track) the segment -- ownership stays with `create`.
        # Registration is suppressed during the open rather than undone
        # after it: register/unregister pairs from sibling workers race
        # in the shared tracker's name *set* (CPython bpo-39959) and
        # spray KeyError tracebacks.
        shm = _open_untracked(name)
        layout = {
            key: (dtype, tuple(shape), int(off))
            for key, (dtype, shape, off) in descriptor["layout"].items()
        }
        arena = cls(shm, layout, owner=False)
        with _lock:
            _arenas[name] = arena
            _stats["attaches"] += 1
        return arena

    # ------------------------------------------------------------------ #
    # Introspection / views
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def nbytes(self) -> int:
        return int(self._shm.size)

    @property
    def owner(self) -> bool:
        return self._owner

    def keys(self) -> list[str]:
        return list(self._layout)

    def descriptor(self) -> dict:
        """Picklable handle another process attaches from."""
        return {
            "name": self._shm.name,
            "layout": {
                key: (dtype, list(shape), off)
                for key, (dtype, shape, off) in self._layout.items()
            },
        }

    def view(self, key: str) -> np.ndarray:
        """Zero-copy ndarray view of one packed array."""
        if self._closed:
            raise ReproError(f"arena {self.name} is closed")
        try:
            dtype, shape, off = self._layout[key]
        except KeyError:
            raise ReproError(
                f"arena {self.name} holds no array {key!r}; "
                f"known: {sorted(self._layout)}"
            ) from None
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=off)

    def owns(self, arr: np.ndarray) -> bool:
        """Whether ``arr`` is (a view of) memory inside this segment."""
        base = arr
        while base.base is not None and isinstance(base.base, np.ndarray):
            base = base.base
        try:
            return base.__array_interface__["data"][0] in self._span()
        except Exception:
            return False

    def _span(self) -> range:
        start = np.frombuffer(self._shm.buf, dtype=np.uint8).__array_interface__[
            "data"
        ][0]
        return range(start, start + self._shm.size)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Drop one reference; at zero, unmap (and unlink when owner)."""
        with _lock:
            if self._closed:
                return
            self._refs -= 1
            if self._refs > 0:
                return
            self._closed = True
            if _arenas.get(self._shm.name) is self:
                _arenas.pop(self._shm.name, None)
            unlink = self._owner and self._pid == os.getpid()
            if unlink:
                _stats["unlinks"] += 1
        try:
            self._shm.close()
        except BufferError:
            # Live views still export the buffer; they keep the mapping
            # alive and the OS reclaims it when they are collected.
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            if not self._closed:
                self._refs = 1
                self.close()
        except Exception:
            pass
