"""Exception hierarchy for the yaSpMV reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of :mod:`repro` with a single ``except`` clause
while still being able to distinguish failure classes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class FormatError(ReproError):
    """A sparse-matrix format was constructed from inconsistent arrays.

    Raised, for example, when index arrays and value arrays disagree on the
    number of stored entries, when a block size does not divide into the
    declared padded dimensions, or when a bit-flag array encodes more row
    stops than the matrix has non-empty block rows.
    """


class FormatNotApplicableError(FormatError):
    """A format cannot represent the given matrix within its resource limits.

    The canonical example is ELL on a matrix whose maximum row length makes
    the padded array exceed the configured expansion budget -- the situation
    Table 3 of the paper marks as ``N/A``.
    """


class KernelConfigError(ReproError):
    """A kernel was launched with an invalid or unsupported configuration.

    Examples: a workgroup size that is not a multiple of the warp size, a
    thread-level tile size of zero, or a shared-memory request exceeding the
    device's per-workgroup limit.
    """


class BackendError(ReproError):
    """An execution backend was requested that does not exist.

    Raised by :func:`repro.backends.resolve_backend` when a ``backend=``
    spec names no registered backend; the message lists the available
    names so callers can self-correct.
    """


class DeviceError(ReproError):
    """A simulated-device constraint was violated.

    Raised when a kernel requests more shared memory, registers, or threads
    than the :class:`repro.gpu.device.DeviceSpec` provides.
    """


class TuningError(ReproError):
    """The auto-tuner was asked to search an empty or inconsistent space."""


class MatrixGenerationError(ReproError):
    """A synthetic matrix generator received unsatisfiable parameters."""


class ValidationError(ReproError):
    """A runtime invariant or output check failed.

    Raised by the :mod:`repro.fault` validators when a format instance
    violates a structural invariant (e.g. the bit flags encode more row
    stops than the non-empty-row map holds) or when a kernel's output
    disagrees with the sampled CSR reference beyond tolerance.

    ``check`` names the failed check; ``detail`` carries a free-form
    diagnostic string.  Both survive pickling (the message is the sole
    positional argument; extra context lives in the instance dict).
    """

    def __init__(self, message: str = "", *, check: str | None = None,
                 detail: str | None = None):
        super().__init__(message)
        self.check = check
        self.detail = detail


class DeadlineExceeded(ReproError):
    """A wall-clock budget (:class:`repro.fault.Deadline`) ran out.

    ``label`` names the operation that hit the budget; ``budget_s`` is
    the configured budget in seconds.  Both survive pickling (message is
    the sole positional argument).
    """

    def __init__(self, message: str = "", *, label: str | None = None,
                 budget_s: float | None = None):
        super().__init__(message)
        self.label = label
        self.budget_s = budget_s


class CircuitOpenError(ReproError):
    """A circuit breaker refused an attempt because its circuit is open.

    ``family`` names the kernel family whose circuit tripped.
    """

    def __init__(self, message: str = "", *, family: str | None = None):
        super().__init__(message)
        self.family = family


class WorkerCrashError(ReproError):
    """A tuning pool worker died (or simulated dying) mid-chunk.

    Raised in-process by the ``tuner.worker_crash`` fault site when the
    executor cannot actually be killed (thread pools, serial fallback);
    real process deaths surface as ``BrokenProcessPool`` instead and are
    normalized to lost chunks by :func:`repro.tuning.parallel.run_parallel`.
    """


class CheckpointError(ReproError):
    """A tuning checkpoint file could not be used (wrong run, bad schema)."""


class AdjacentSyncTimeout(ReproError):
    """The adjacent-synchronization spin watchdog expired.

    A workgroup waited on an unpublished ``Grp_sum`` slot for more than
    the configured spin cap -- the bounded-wait version of the deadlock
    the paper warns about for out-of-order dispatch (section 3.2.4).
    ``workgroup`` is the waiting workgroup; ``spins`` the exhausted cap.
    """

    def __init__(self, message: str = "", *, workgroup: int | None = None,
                 spins: int | None = None):
        super().__init__(message)
        self.workgroup = workgroup
        self.spins = spins


class FaultInjectedError(ReproError):
    """An injected fault was detected and surfaced under strict policy.

    Carries the structured context needed to reproduce the failure:
    ``site`` (the fault-injection site identifier), ``seed`` (the
    :class:`repro.fault.FaultPlan` seed) and ``workgroup`` (the affected
    workgroup id, when the fault is localized to one).
    """

    def __init__(self, message: str = "", *, site: str | None = None,
                 seed: int | None = None, workgroup: int | None = None):
        super().__init__(message)
        self.site = site
        self.seed = seed
        self.workgroup = workgroup


class ServerOverloadedError(ReproError):
    """The serving layer shed a request under admission control.

    Raised by :meth:`repro.serve.SpMVServer.submit` when the bounded
    request queue is full (backpressure) -- callers should retry with
    backoff or route the request elsewhere.  ``queue_depth`` is the
    configured bound; ``pending`` the queue occupancy observed at
    admission time.  Both survive pickling (the message is the sole
    positional argument).
    """

    def __init__(self, message: str = "", *, queue_depth: int | None = None,
                 pending: int | None = None):
        super().__init__(message)
        self.queue_depth = queue_depth
        self.pending = pending


class ServerClosedError(ReproError):
    """A request was submitted to a server that is shut (or shutting) down."""


class ServeTimeout(ReproError, TimeoutError):
    """A :meth:`repro.serve.ServeFuture.result` wait ran out of patience.

    Distinct from :class:`DeadlineExceeded` (the *request's* budget
    expired server-side) and from a shard failure: the request may still
    complete later -- only this caller stopped waiting.  Subclasses
    :class:`TimeoutError` for drop-in compatibility with stdlib-style
    callers.  ``waited_s`` is the wait that elapsed.  Survives pickling
    (the message is the sole positional argument).
    """

    def __init__(self, message: str = "", *, waited_s: float | None = None):
        super().__init__(message)
        self.waited_s = waited_s


class ShardCrashError(ReproError):
    """A serving-fabric shard died with requests in flight.

    Raised into the futures of every request queued on the crashed
    shard (the ``serve.shard_crash`` fault site, the serving analogue of
    ``tuner.worker_crash``); the fabric catches it and replays the
    request on the successor shard under the retry/deadline budget.
    ``shard`` names the dead shard.  Survives pickling (the message is
    the sole positional argument).
    """

    def __init__(self, message: str = "", *, shard: str | None = None):
        super().__init__(message)
        self.shard = shard


class RemoteWorkerError(ReproError):
    """A worker-process exception that could not cross the pipe as itself.

    Everything a shard worker normally raises is picklable (the sweep in
    ``tests/serve/test_pickle_errors.py`` holds the line), but arbitrary
    third-party exceptions -- or anything carrying an unpicklable
    payload -- must never degrade into an opaque ``PicklingError`` on
    the parent side.  The worker wraps such exceptions into this class,
    preserving the original type name (``original_type``) and the full
    remote traceback text (``remote_traceback``).  Survives pickling
    (the message is the sole positional argument).
    """

    def __init__(self, message: str = "", *, original_type: str | None = None,
                 remote_traceback: str | None = None):
        super().__init__(message)
        self.original_type = original_type
        self.remote_traceback = remote_traceback


class WorkerRestartError(ReproError):
    """A shard worker could not be respawned within the retry budget.

    Raised by :class:`repro.serve.ShardSupervisor` bookkeeping when every
    restart attempt failed and no degraded in-process fallback was
    possible; ``shard`` names the worker, ``attempts`` how many respawns
    were tried.  Survives pickling (the message is the sole positional
    argument).
    """

    def __init__(self, message: str = "", *, shard: str | None = None,
                 attempts: int | None = None):
        super().__init__(message)
        self.shard = shard
        self.attempts = attempts


class QuotaExceededError(ReproError):
    """A tenant exceeded its admission quota on the serving fabric.

    Per-tenant backpressure: unlike :class:`ServerOverloadedError` (the
    whole queue is full) this rejection is scoped to one tenant, so a
    noisy neighbour cannot starve the rest.  ``tenant`` is the rejected
    tenant, ``limit`` its configured quota and ``pending`` its queued +
    in-flight occupancy at admission time.  Survives pickling (the
    message is the sole positional argument).
    """

    def __init__(self, message: str = "", *, tenant: str | None = None,
                 limit: int | None = None, pending: int | None = None):
        super().__init__(message)
        self.tenant = tenant
        self.limit = limit
        self.pending = pending
