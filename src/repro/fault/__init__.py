"""Fault injection, runtime validation and graceful degradation.

The resilience layer of the reproduction: :class:`FaultPlan` perturbs
the simulated execution at the paper's fragile points (adjacent
synchronization, bit-flag/delta compression, tile partial sums),
:func:`validate_format` / :func:`verify_output` make the broken
invariants *detectable*, and :class:`FailureReport` records how the
engine degraded around them.  See ``docs/robustness.md``.
"""

from .injection import (
    FAULT_SITES,
    FaultEvent,
    FaultPlan,
    FaultSpec,
    active_plan,
    fault_scope,
    resolve_site,
)
from .resilience import FALLBACK_STAGES, AttemptRecord, FailureReport
from .retry import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BREAKER_STATE_VALUES,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)
from .validation import (
    CheckResult,
    ValidationReport,
    validate_format,
    verify_output,
)

__all__ = [
    "FAULT_SITES",
    "FaultEvent",
    "FaultPlan",
    "FaultSpec",
    "active_plan",
    "fault_scope",
    "resolve_site",
    "FALLBACK_STAGES",
    "AttemptRecord",
    "FailureReport",
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BREAKER_STATE_VALUES",
    "CheckResult",
    "ValidationReport",
    "validate_format",
    "verify_output",
]
