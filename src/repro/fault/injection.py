"""Deterministic fault injection for the simulated SpMV engine.

The paper's correctness story rests on invariants that real deployments
cannot take on faith: adjacent synchronization (section 3.2.4) assumes
in-order workgroup dispatch, and the bit-flag/delta compressions
(sections 2.1-2.2) silently produce a wrong ``y`` if a single word is
corrupted.  This module perturbs the *simulated* execution at those
exact weak points so the validation layer and the engine's fallback
chain can be exercised end to end.

Design:

* A :class:`FaultPlan` is a composition of :class:`FaultSpec` entries,
  one per *site* (see :data:`FAULT_SITES`).  Every random decision draws
  from a per-site ``numpy`` generator seeded from ``(plan seed, site)``,
  so a plan is deterministic and its per-site behaviour is independent
  of which other sites are enabled.
* Each spec carries an injection *budget* (``count``); once spent, the
  site goes quiet.  A budget of 1 models a transient fault -- the
  engine's bounded retry then succeeds on the second attempt --
  while ``count=None`` models a persistent fault that forces the
  fallback chain all the way down.
* Instrumented code (``kernels.yaspmv_common``, ``kernels.yaspmv``)
  consults :func:`active_plan`; with no plan installed every hook is a
  no-op and the hot path is byte-for-byte the un-instrumented
  computation.

Injection never mutates a format instance: perturbations apply to the
*decoded copies* a kernel launch reads, exactly like a corrupted device
buffer would.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import numpy as np

from ..errors import ReproError

__all__ = [
    "FAULT_SITES",
    "FaultSpec",
    "FaultEvent",
    "FaultPlan",
    "fault_scope",
    "active_plan",
    "resolve_site",
]

#: Every instrumented injection site.
FAULT_SITES: tuple[str, ...] = (
    # Adjacent synchronization: a workgroup's Grp_sum read returns the
    # initialization value instead of the predecessor's published sum.
    "sync.stale_grp_sum",
    # Workgroups arrive out of id order (the in-order-dispatch assumption
    # breaks); harmless iff the logical-id atomic fallback is active.
    "dispatch.out_of_order",
    # One bit of the bit-flag stream flips (a corrupted flag word read).
    "format.bitflag_flip",
    # The delta-compressed column-index stream is truncated: indices past
    # a cut point decode to the last good value.
    "format.column_truncate",
    # Tile partial sums are corrupted with NaN / Inf.
    "kernel.nan_partial",
    "kernel.inf_partial",
    # A parallel-tuning pool worker dies mid-chunk (SIGKILL'd container,
    # OOM-killed process); the parent sees a broken pool / lost chunk.
    "tuner.worker_crash",
    # The persistent tuning store's JSON file is truncated/garbled on
    # disk (torn write by another process, bit rot).
    "store.corruption",
    # A serving-fabric shard dies with requests in flight (the serving
    # analogue of tuner.worker_crash: decided parent-side, budgeted).
    "serve.shard_crash",
    # A serving-fabric shard turns slow: every dispatch on it carries
    # `fraction` seconds of extra simulated latency until the health
    # tracker ejects it.
    "serve.shard_slow",
    # An out-of-process shard worker is SIGKILL'd for real: the child
    # process dies, in-flight futures fail, and the supervisor must
    # detect the exit code and respawn (or degrade) the worker.
    "serve.worker_kill",
    # An out-of-process shard worker goes silent: the child stops
    # reading its pipe, so heartbeats miss and the reply timeout trips;
    # the supervisor SIGKILLs and restarts it.
    "serve.worker_hang",
    # The shared-memory arena backing a worker's warm cache keys is
    # unlinked before a restart re-prime: re-attachment fails and the
    # supervisor falls back to shipping CSR arrays for deterministic
    # re-preparation in the child.
    "serve.arena_lost",
)


def resolve_site(name: str) -> str:
    """Resolve a full site name or an unambiguous suffix of one.

    ``"stale_grp_sum"`` -> ``"sync.stale_grp_sum"``; ambiguous or
    unknown names raise a :class:`~repro.errors.ReproError` listing the
    candidates.
    """
    if name in FAULT_SITES:
        return name
    matches = [s for s in FAULT_SITES if s.endswith("." + name) or s.split(".", 1)[1] == name]
    if len(matches) == 1:
        return matches[0]
    if matches:
        raise ReproError(f"ambiguous fault site {name!r}: matches {matches}")
    raise ReproError(f"unknown fault site {name!r}; known: {FAULT_SITES}")


@dataclass(frozen=True)
class FaultSpec:
    """One site's injection policy.

    Attributes
    ----------
    site:
        One of :data:`FAULT_SITES`.
    probability:
        Chance the site fires at each opportunity (one kernel launch is
        one opportunity).
    count:
        Injection budget; ``None`` = unbounded (persistent fault).
    fraction:
        Site-specific intensity knob: fraction of blocks corrupted
        (``kernel.*``) or the relative cut position (``format.column_truncate``).
    """

    site: str
    probability: float = 1.0
    count: int | None = 1
    fraction: float = 0.25

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ReproError(
                f"unknown fault site {self.site!r}; known: {FAULT_SITES}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ReproError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if self.count is not None and self.count < 1:
            raise ReproError(f"count must be >= 1 or None, got {self.count}")
        if not 0.0 < self.fraction <= 1.0:
            raise ReproError(f"fraction must be in (0, 1], got {self.fraction}")


@dataclass(frozen=True)
class FaultEvent:
    """Record of one injection that actually happened."""

    site: str
    detail: tuple = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extra = ", ".join(f"{k}={v}" for k, v in self.detail)
        return f"{self.site}({extra})" if extra else self.site


class FaultPlan:
    """A seeded, composable set of fault specs.

    ``reset()`` rewinds every per-site generator and budget, so the same
    plan object replays identically -- tests and the CLI rely on that.
    """

    def __init__(self, specs: Iterable[FaultSpec], seed: int = 0):
        self.seed = int(seed)
        self.specs: dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.site in self.specs:
                raise ReproError(f"duplicate fault spec for site {spec.site!r}")
            self.specs[spec.site] = spec
        self.events: list[FaultEvent] = []
        self._rng: dict[str, np.random.Generator] = {}
        self._budget: dict[str, int | None] = {}
        self.reset()

    # ------------------------------------------------------------------ #

    @classmethod
    def single(cls, site: str, seed: int = 0, **kw) -> "FaultPlan":
        """Plan with one spec -- the common test/CLI shape."""
        return cls([FaultSpec(site=resolve_site(site), **kw)], seed=seed)

    @classmethod
    def parse(cls, spec: str, seed: int | None = None) -> "FaultPlan":
        """Build a plan from a compact spec string -- the one factory
        behind the CLI ``--fault`` flag, ``SpMVEngine(fault_plan="...")``
        and test fixtures.

        Grammar (whitespace-tolerant)::

            spec  := entry (';' entry)*
            entry := site [':' opt (',' opt)*]
            opt   := ('p'|'prob'|'probability') '=' float
                   | 'count' '=' (int | 'inf')
                   | ('f'|'fraction') '=' float
                   | 'seed' '=' int          # plan-wide

        ``site`` is a full :data:`FAULT_SITES` name or any unambiguous
        suffix of one (``"stale_grp_sum"`` -> ``"sync.stale_grp_sum"``).
        Examples::

            FaultPlan.parse("stale_grp_sum:p=0.01,seed=7")
            FaultPlan.parse("nan_partial:count=1;bitflag_flip:count=inf")

        An explicit ``seed=`` argument overrides any ``seed=`` option in
        the string.
        """
        if not isinstance(spec, str) or not spec.strip():
            raise ReproError(f"empty fault spec {spec!r}")
        specs: list[FaultSpec] = []
        parsed_seed: int | None = None
        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            site_part, _, opts_part = entry.partition(":")
            kwargs: dict = {"site": resolve_site(site_part.strip())}
            for opt in filter(None, (o.strip() for o in opts_part.split(","))):
                key, eq, value = opt.partition("=")
                key, value = key.strip(), value.strip()
                if not eq or not value:
                    raise ReproError(
                        f"malformed fault option {opt!r} in {entry!r} "
                        "(expected key=value)"
                    )
                try:
                    if key in ("p", "prob", "probability"):
                        kwargs["probability"] = float(value)
                    elif key == "count":
                        kwargs["count"] = (
                            None if value.lower() in ("inf", "none") else int(value)
                        )
                    elif key in ("f", "fraction"):
                        kwargs["fraction"] = float(value)
                    elif key == "seed":
                        parsed_seed = int(value)
                    else:
                        raise ReproError(
                            f"unknown fault option {key!r} in {entry!r}; "
                            "known: p/probability, count, f/fraction, seed"
                        )
                except ValueError as exc:
                    raise ReproError(
                        f"bad value for fault option {opt!r} in {entry!r}: {exc}"
                    ) from None
            specs.append(FaultSpec(**kwargs))
        if not specs:
            raise ReproError(f"fault spec {spec!r} names no sites")
        if seed is None:
            seed = parsed_seed if parsed_seed is not None else 0
        return cls(specs, seed=seed)

    @classmethod
    def coerce(cls, plan: "FaultPlan | str | None") -> "FaultPlan | None":
        """Pass plans through, :meth:`parse` strings, keep ``None``."""
        if plan is None or isinstance(plan, FaultPlan):
            return plan
        if isinstance(plan, str):
            return cls.parse(plan)
        raise ReproError(
            f"fault_plan must be a FaultPlan, a spec string or None, "
            f"got {type(plan).__name__}"
        )

    def reset(self) -> None:
        """Rewind generators, budgets and the event log."""
        self.events = []
        for i, site in enumerate(FAULT_SITES):
            if site in self.specs:
                self._rng[site] = np.random.default_rng([self.seed, i])
                self._budget[site] = self.specs[site].count
        # Drop state of sites no longer spec'd (defensive; specs are fixed).
        for site in list(self._rng):
            if site not in self.specs:
                del self._rng[site], self._budget[site]

    def targets(self, prefix: str) -> bool:
        """True if any spec'd site starts with ``prefix`` (budget or not).

        Used by kernels to choose the instrumented execution path; the
        path itself stays exact when budgets are exhausted.
        """
        return any(site.startswith(prefix) for site in self.specs)

    def drain_events(self) -> list[FaultEvent]:
        """Return and clear the events recorded since the last drain."""
        out, self.events = self.events, []
        return out

    # ------------------------------------------------------------------ #
    # Firing machinery
    # ------------------------------------------------------------------ #

    def _fire(self, site: str) -> FaultSpec | None:
        """Draw the site's trigger; consumes budget only when it fires."""
        spec = self.specs.get(site)
        if spec is None:
            return None
        budget = self._budget[site]
        if budget is not None and budget <= 0:
            return None
        if spec.probability < 1.0 and self._rng[site].random() >= spec.probability:
            return None
        if budget is not None:
            self._budget[site] = budget - 1
        return spec

    def _record(self, site: str, **detail) -> None:
        self.events.append(FaultEvent(site=site, detail=tuple(detail.items())))

    # ------------------------------------------------------------------ #
    # Site hooks (called by instrumented code; copy-on-write)
    # ------------------------------------------------------------------ #

    def perturb_partials(self, contribs: np.ndarray) -> np.ndarray:
        """NaN/Inf corruption of per-block partial sums (``kernel.*``)."""
        out = contribs
        for site, value in (
            ("kernel.nan_partial", np.nan),
            ("kernel.inf_partial", np.inf),
        ):
            spec = self._fire(site)
            if spec is None or out.shape[0] == 0:
                continue
            n = out.shape[0]
            k = max(int(round(n * spec.fraction)), 1)
            idx = self._rng[site].choice(n, size=min(k, n), replace=False)
            if out is contribs:
                out = contribs.copy()
            out[idx] = value
            self._record(site, blocks=int(idx.shape[0]))
        return out

    def perturb_stops(self, stops: np.ndarray, n_valid: int) -> np.ndarray:
        """Flip one valid bit of the stop mask (``format.bitflag_flip``)."""
        spec = self._fire("format.bitflag_flip")
        if spec is None or n_valid == 0:
            return stops
        pos = int(self._rng["format.bitflag_flip"].integers(n_valid))
        out = stops.copy()
        out[pos] = ~out[pos]
        self._record("format.bitflag_flip", bit=pos, was_stop=bool(stops[pos]))
        return out

    def perturb_columns(self, cols: np.ndarray, n_valid: int) -> np.ndarray:
        """Truncate the column stream (``format.column_truncate``):
        indices past the cut decode to the last value before it, the
        signature of a delta stream whose tail went missing."""
        spec = self._fire("format.column_truncate")
        if spec is None or n_valid < 2:
            return cols
        cut = int(n_valid * (1.0 - spec.fraction))
        cut = min(max(cut, 1), n_valid - 1)
        out = cols.copy()
        out[cut:n_valid] = out[cut - 1]
        self._record("format.column_truncate", cut=cut, n_valid=n_valid)
        return out

    def dispatch_order(self, n_workgroups: int) -> np.ndarray | None:
        """Out-of-order arrival permutation, or ``None`` when quiet."""
        spec = self._fire("dispatch.out_of_order")
        if spec is None or n_workgroups < 2:
            return None
        order = self._rng["dispatch.out_of_order"].permutation(n_workgroups)
        # Guarantee genuine disorder (a sampled identity would silently
        # make the fault a no-op).
        if np.array_equal(order, np.arange(n_workgroups)):
            order[[0, -1]] = order[[-1, 0]]
        self._record("dispatch.out_of_order", n_workgroups=n_workgroups)
        return order

    def worker_crash(self, n_candidates: int) -> int | None:
        """Candidate count after which a pool worker dies mid-chunk
        (``tuner.worker_crash``), or ``None`` when quiet.

        Decided in the *parent* process at chunk-dispatch time so the
        draw is deterministic regardless of worker scheduling; the
        returned position is ``fraction`` of the way through the chunk
        (at least 1 candidate survives, so the crash is genuinely
        mid-chunk and the lost work is observable).
        """
        spec = self._fire("tuner.worker_crash")
        if spec is None or n_candidates < 1:
            return None
        after = int(round(n_candidates * spec.fraction))
        after = min(max(after, 1), n_candidates)
        self._record(
            "tuner.worker_crash", after=after, n_candidates=n_candidates
        )
        return after

    def shard_crash(self, n_live: int) -> bool:
        """Whether a serving shard dies this scheduling round
        (``serve.shard_crash``).

        Like :meth:`worker_crash`, the draw happens in the *parent* (the
        fabric's pump loop) so it is deterministic regardless of shard
        scheduling.  The fabric picks the victim itself -- the busiest
        live shard -- so a seeded drill reliably kills a shard with
        requests in flight; this hook only decides *when*.  Never fires
        with a single live shard left (killing the last replica would
        make every outcome an error instead of a failover).
        """
        spec = self._fire("serve.shard_crash")
        if spec is None or n_live < 2:
            return False
        self._record("serve.shard_crash", n_live=n_live)
        return True

    def shard_slow(self, n_live: int) -> float | None:
        """Extra per-dispatch latency for a shard turning slow
        (``serve.shard_slow``), or ``None`` when quiet.

        The returned delay is ``fraction`` seconds of *simulated*
        latency -- the fabric feeds it to the victim shard's health
        window rather than sleeping, so drills stay fast and
        deterministic.
        """
        spec = self._fire("serve.shard_slow")
        if spec is None or n_live < 2:
            return None
        self._record("serve.shard_slow", n_live=n_live, delay_s=spec.fraction)
        return float(spec.fraction)

    def worker_kill(self, n_live: int) -> bool:
        """Whether an out-of-process shard worker is SIGKILL'd this
        scheduling round (``serve.worker_kill``).

        Parent-side draw, same contract as :meth:`shard_crash`: the
        fabric picks the victim (the busiest live worker) so a seeded
        drill reliably kills a worker with requests in flight, and never
        fires with a single live replica left.  Unlike ``shard_crash``
        the shard is *not* marked dead -- the supervisor is expected to
        detect the exit and respawn it.
        """
        spec = self._fire("serve.worker_kill")
        if spec is None or n_live < 2:
            return False
        self._record("serve.worker_kill", n_live=n_live)
        return True

    def worker_hang(self, n_live: int) -> bool:
        """Whether an out-of-process shard worker goes silent this round
        (``serve.worker_hang``).

        The victim worker stops reading its request pipe; detection is
        the parent's job (reply timeout / heartbeat miss budget), after
        which the supervisor SIGKILLs and restarts it.  Never fires with
        a single live replica left.
        """
        spec = self._fire("serve.worker_hang")
        if spec is None or n_live < 2:
            return False
        self._record("serve.worker_hang", n_live=n_live)
        return True

    def arena_lost(self) -> bool:
        """Whether a restarting worker's shared arena has vanished
        (``serve.arena_lost``).

        Drawn by the supervisor just before re-priming a respawned
        worker's warm cache keys: on fire, the arena segment is unlinked
        first, so the child's attach fails and the CSR-reship fallback
        path is exercised end to end.
        """
        spec = self._fire("serve.arena_lost")
        if spec is None:
            return False
        self._record("serve.arena_lost")
        return True

    def corrupt_store_text(self, text: str) -> str | None:
        """Garbled replacement for a tuning-store file
        (``store.corruption``), or ``None`` when quiet.

        Models a torn write: the tail ``fraction`` of the file is cut
        and replaced by bytes that cannot parse as JSON, so the store's
        corruption-quarantine path is exercised end to end.
        """
        spec = self._fire("store.corruption")
        if spec is None:
            return None
        cut = max(int(len(text) * (1.0 - spec.fraction)), 0)
        self._record("store.corruption", cut=cut, length=len(text))
        return text[:cut] + '\x00{"torn":'

    def stale_mask(self, n_workgroups: int) -> np.ndarray | None:
        """Mask of workgroups whose Grp_sum read is stale, or ``None``."""
        spec = self._fire("sync.stale_grp_sum")
        if spec is None or n_workgroups < 2:
            return None
        # Workgroup 0 has no predecessor to read.
        wg = int(self._rng["sync.stale_grp_sum"].integers(1, n_workgroups))
        mask = np.zeros(n_workgroups, dtype=bool)
        mask[wg] = True
        self._record("sync.stale_grp_sum", workgroup=wg)
        return mask


# ---------------------------------------------------------------------- #
# Active-plan scope
# ---------------------------------------------------------------------- #

_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The plan installed by the innermost :func:`fault_scope`, if any."""
    return _ACTIVE


@contextlib.contextmanager
def fault_scope(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Install ``plan`` as the active fault plan for the dynamic extent.

    ``fault_scope(None)`` is an explicit no-op scope, letting callers
    write one code path for both injected and clean runs.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = plan
    try:
        yield plan
    finally:
        _ACTIVE = previous
