"""Failure bookkeeping for the engine's graceful-degradation chain.

When :class:`repro.core.SpMVEngine` runs in *permissive* policy it walks
a fallback chain -- tuned BCCOO+/BCCOO, a logical-id repair retry,
the untuned default point, and finally the trusted CSR reference
kernel -- until an attempt validates.  Every attempt is recorded as an
:class:`AttemptRecord`, and the full trail ships with the result as a
:class:`FailureReport` so callers can observe *that* something degraded
and *why*, instead of silently getting a slower (but correct) answer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .injection import FaultEvent
from .validation import ValidationReport

__all__ = ["AttemptRecord", "FailureReport", "FALLBACK_STAGES"]

#: The engine's fallback chain, in order.
FALLBACK_STAGES: tuple[str, ...] = (
    "tuned",          # the prepared (auto-tuned) BCCOO/BCCOO+ instance
    "tuned-retry",    # bounded re-run: recovers transient faults
    "logical-ids",    # same format, workgroup_ids="atomic" (out-of-order repair)
    "untuned",        # default-point BCCOO rebuilt from the CSR source
    "csr-reference",  # trusted host-side CSR kernel, injection disabled
)


@dataclass
class AttemptRecord:
    """One failed (or finally successful) stage of the fallback chain."""

    stage: str
    ok: bool
    error: str = ""
    error_type: str = ""
    validation: ValidationReport | None = None
    injected: list[FaultEvent] = field(default_factory=list)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "ok" if self.ok else "FAILED"
        msg = f"{self.stage}: {mark}"
        if self.error:
            msg += f" ({self.error_type}: {self.error})"
        if self.injected:
            msg += " injected=[" + ", ".join(map(str, self.injected)) + "]"
        return msg


@dataclass
class FailureReport:
    """Degradation trail attached to :class:`repro.core.SpMVResult`.

    ``attempts`` lists every stage tried (failures first, the winning
    stage last); ``fallback_used`` names the stage that produced the
    returned ``y`` (``None`` only when nothing succeeded, which the
    engine treats as a hard error).
    """

    attempts: list[AttemptRecord] = field(default_factory=list)
    fallback_used: str | None = None

    @property
    def degraded(self) -> bool:
        """True when the returned result did not come from the tuned path."""
        return self.fallback_used not in (None, "tuned")

    @property
    def injected_events(self) -> list[FaultEvent]:
        return [e for a in self.attempts for e in a.injected]

    @property
    def failed_stages(self) -> list[str]:
        return [a.stage for a in self.attempts if not a.ok]

    def summary(self) -> str:
        lines = [
            f"fallback_used={self.fallback_used!r} "
            f"({len(self.failed_stages)} failed attempt(s))"
        ]
        lines.extend(f"  {a}" for a in self.attempts)
        return "\n".join(lines)
