"""Failure-containment policies: retry, deadlines, circuit breakers.

Long-running tuning and serving must contain failures instead of
amplifying them: a hung candidate should cost a bounded wait, a flaky
worker a few retries with backoff, and a kernel family that keeps
getting quarantined should be short-circuited instead of re-probed on
every call.  This module holds the three policy objects the engine and
tuner thread through their hot paths:

* :class:`RetryPolicy` -- bounded attempts with exponential backoff and
  *deterministic seeded jitter* (two runs with the same seed produce the
  same delay schedule, so tests and distributed replicas stay
  reproducible while still decorrelating against each other via seeds);
* :class:`Deadline` -- a wall-clock budget created once and threaded
  down through tuner -> chunk -> candidate; expiry is a typed
  :class:`~repro.errors.DeadlineExceeded` (or a cooperative early stop
  where partial progress is the better outcome);
* :class:`CircuitBreaker` -- per-key (kernel-family) failure circuit:
  ``closed`` until N consecutive failures, then ``open`` for a cooldown,
  then ``half-open`` for a single probe that either closes it again or
  re-opens it.

Everything is clock-injectable (``clock=``) so tests never sleep, and
state changes can be observed through the ambient :mod:`repro.obs`
observer (``retry.attempts``, ``breaker.state``).
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass

import numpy as np

from ..errors import CircuitOpenError, DeadlineExceeded, ReproError

__all__ = [
    "RetryPolicy",
    "Deadline",
    "CircuitBreaker",
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "BREAKER_STATE_VALUES",
]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and seeded jitter.

    Attributes
    ----------
    max_attempts:
        Total attempts including the first one (``1`` = never retry).
    base_delay_s:
        Backoff before the first retry; ``0`` disables sleeping
        entirely (the common in-process/test configuration).
    multiplier:
        Exponential growth factor per retry.
    max_delay_s:
        Backoff ceiling.
    jitter:
        Relative jitter amplitude: the delay for retry ``k`` is scaled
        by a factor drawn uniformly from ``[1 - jitter, 1 + jitter]``.
    seed:
        Seeds the jitter draws -- ``delay_s(k)`` is a pure function of
        ``(policy, k)``, so a replayed run backs off identically.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.0
    multiplier: float = 2.0
    max_delay_s: float = 30.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ReproError("delays must be >= 0")
        if self.multiplier < 1.0:
            raise ReproError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter < 1.0:
            raise ReproError(f"jitter must be in [0, 1), got {self.jitter}")

    @property
    def retries(self) -> int:
        """Retries after the first attempt."""
        return self.max_attempts - 1

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based), jitter included.

        Deterministic: the jitter factor for attempt ``k`` is drawn from
        a generator seeded on ``(seed, k)``, independent of every other
        attempt's draw.
        """
        if attempt < 1:
            raise ReproError(f"attempt must be >= 1, got {attempt}")
        raw = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if raw <= 0.0:
            return 0.0
        if self.jitter:
            u = np.random.default_rng([self.seed, attempt]).random()
            raw *= 1.0 + self.jitter * (2.0 * u - 1.0)
        return float(raw)

    def delays(self) -> list[float]:
        """The full backoff schedule (one entry per retry)."""
        return [self.delay_s(k) for k in range(1, self.max_attempts)]

    def call(
        self,
        fn,
        *,
        retry_on: tuple = (ReproError,),
        sleep=time.sleep,
        deadline: "Deadline | None" = None,
        on_retry=None,
    ):
        """Run ``fn()`` under this policy.

        Retries on ``retry_on`` exceptions, sleeping the (deterministic)
        backoff between attempts and respecting ``deadline`` (expiry
        re-raises as :class:`DeadlineExceeded` instead of sleeping past
        the budget).  ``on_retry(attempt, exc)`` is invoked before each
        retry -- the hook the engine uses to bump ``retry.attempts``.
        """
        last: BaseException | None = None
        for attempt in range(1, self.max_attempts + 1):
            if deadline is not None:
                deadline.check(label=f"retry attempt {attempt}")
            try:
                return fn()
            except retry_on as exc:  # type: ignore[misc]
                last = exc
                if attempt == self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                delay = self.delay_s(attempt)
                if deadline is not None and delay >= deadline.remaining():
                    raise DeadlineExceeded(
                        f"backoff of {delay:.3f}s exceeds the remaining "
                        f"budget after attempt {attempt}",
                        label="retry backoff",
                        budget_s=deadline.seconds,
                    ) from exc
                if delay > 0:
                    sleep(delay)
        raise last  # pragma: no cover - loop always returns or raises


class Deadline:
    """A wall-clock budget, started at construction.

    ``Deadline(None)`` never expires (so call sites can thread one
    unconditionally).  The clock is injectable for tests; workers in
    other processes receive ``remaining()`` seconds and rebuild a local
    deadline rather than pickling this object.
    """

    __slots__ = ("seconds", "_t0", "_clock")

    def __init__(self, seconds: float | None, *, clock=time.monotonic):
        if seconds is not None and seconds < 0:
            raise ReproError(f"deadline seconds must be >= 0, got {seconds}")
        self.seconds = None if seconds is None else float(seconds)
        self._clock = clock
        self._t0 = clock()

    @classmethod
    def coerce(cls, value: "Deadline | float | None") -> "Deadline | None":
        """Pass deadlines through, wrap numbers, keep ``None``."""
        if value is None or isinstance(value, Deadline):
            return value
        if isinstance(value, (int, float)):
            return cls(float(value))
        raise ReproError(
            f"deadline must be a Deadline, seconds or None, "
            f"got {type(value).__name__}"
        )

    def elapsed(self) -> float:
        return self._clock() - self._t0

    def remaining(self) -> float:
        """Seconds left; ``math.inf`` for an unlimited deadline."""
        if self.seconds is None:
            return math.inf
        return self.seconds - self.elapsed()

    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def check(self, label: str = "") -> None:
        """Raise :class:`DeadlineExceeded` if the budget ran out."""
        if self.expired():
            what = f" during {label}" if label else ""
            raise DeadlineExceeded(
                f"wall-clock budget of {self.seconds:.3f}s exhausted{what}",
                label=label or None,
                budget_s=self.seconds,
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.seconds is None:
            return "Deadline(unlimited)"
        return f"Deadline({self.seconds:.3f}s, remaining={self.remaining():.3f}s)"


# ---------------------------------------------------------------------- #
# Circuit breaker
# ---------------------------------------------------------------------- #

BREAKER_CLOSED = "closed"
BREAKER_HALF_OPEN = "half-open"
BREAKER_OPEN = "open"

#: Numeric encoding used for the ``breaker.state`` gauge.
BREAKER_STATE_VALUES = {
    BREAKER_CLOSED: 0,
    BREAKER_HALF_OPEN: 1,
    BREAKER_OPEN: 2,
}


class _Circuit:
    """State of one breaker key."""

    __slots__ = (
        "state",
        "consecutive_failures",
        "opened_at",
        "probe_in_flight",
        "probe_claimed_at",
    )

    def __init__(self):
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_in_flight = False
        self.probe_claimed_at = 0.0


class CircuitBreaker:
    """Per-key failure circuit (keys are kernel families in the engine).

    Semantics (per key):

    * ``closed``: attempts flow; ``failure_threshold`` *consecutive*
      failures trip the circuit to ``open``.
    * ``open``: :meth:`allow` returns ``False`` until ``cooldown_s`` has
      elapsed, at which point the circuit moves to ``half-open``.
    * ``half-open``: one probe attempt is allowed; success closes the
      circuit, failure re-opens it (and restarts the cooldown).

    Thread-safe.  State transitions are visible via :meth:`state` /
    :meth:`state_value` (fed to the ``breaker.state`` metrics gauge by
    the engine) and :meth:`snapshot`.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 30.0,
        *,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ReproError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._circuits: dict[str, _Circuit] = {}
        self._lock = threading.Lock()
        #: Lifetime transition counters (observability / tests).
        self.trips = 0
        self.probes = 0
        self.recoveries = 0

    def _circuit(self, key: str) -> _Circuit:
        circuit = self._circuits.get(key)
        if circuit is None:
            circuit = self._circuits[key] = _Circuit()
        return circuit

    def _refresh(self, circuit: _Circuit) -> None:
        """Apply the time-driven ``open`` -> ``half-open`` transition."""
        if (
            circuit.state == BREAKER_OPEN
            and self._clock() - circuit.opened_at >= self.cooldown_s
        ):
            circuit.state = BREAKER_HALF_OPEN
            circuit.probe_in_flight = False
        if (
            circuit.state == BREAKER_HALF_OPEN
            and circuit.probe_in_flight
            and self._clock() - circuit.probe_claimed_at >= self.cooldown_s
        ):
            # A probe that never reported back (its caller died or an
            # unexpected exception skipped record_*) must not wedge the
            # circuit in half-open forever: release the slot after one
            # cooldown so the next caller can probe again.
            circuit.probe_in_flight = False

    def state(self, key: str) -> str:
        with self._lock:
            circuit = self._circuit(key)
            self._refresh(circuit)
            return circuit.state

    def state_value(self, key: str) -> int:
        """Numeric state for the ``breaker.state`` gauge."""
        return BREAKER_STATE_VALUES[self.state(key)]

    def allow(self, key: str) -> bool:
        """Whether an attempt on ``key`` may proceed right now.

        In ``half-open``, exactly one caller is granted the probe slot
        -- concurrent racers are refused until :meth:`record_success` /
        :meth:`record_failure` resolves the probe (or a full cooldown
        elapses without a report, which releases the slot).
        """
        with self._lock:
            circuit = self._circuit(key)
            self._refresh(circuit)
            if circuit.state == BREAKER_OPEN:
                return False
            if circuit.state == BREAKER_HALF_OPEN:
                if circuit.probe_in_flight:
                    return False
                circuit.probe_in_flight = True
                circuit.probe_claimed_at = self._clock()
                self.probes += 1
            return True

    def check(self, key: str) -> None:
        """Raise :class:`CircuitOpenError` when ``allow`` would refuse."""
        if not self.allow(key):
            raise CircuitOpenError(
                f"circuit for {key!r} is open "
                f"(>= {self.failure_threshold} consecutive failures; "
                f"probing again after {self.cooldown_s:.1f}s)",
                family=key,
            )

    def record_success(self, key: str) -> None:
        with self._lock:
            circuit = self._circuit(key)
            if circuit.state != BREAKER_CLOSED:
                self.recoveries += 1
            circuit.state = BREAKER_CLOSED
            circuit.consecutive_failures = 0
            circuit.probe_in_flight = False

    def record_failure(self, key: str) -> None:
        with self._lock:
            circuit = self._circuit(key)
            self._refresh(circuit)
            circuit.consecutive_failures += 1
            circuit.probe_in_flight = False
            if circuit.state == BREAKER_HALF_OPEN or (
                circuit.state == BREAKER_CLOSED
                and circuit.consecutive_failures >= self.failure_threshold
            ):
                circuit.state = BREAKER_OPEN
                circuit.opened_at = self._clock()
                self.trips += 1

    def trip(self, key: str) -> None:
        """Force the circuit for ``key`` open right now.

        The wiring the serving fabric's health tracker uses: a shard
        whose rolling error/latency window turns sick is *ejected* by
        tripping its circuit, regardless of the consecutive-failure
        count.  The normal cooldown -> half-open -> probe lifecycle then
        governs readmission.  Idempotent while already open (the
        cooldown is NOT restarted, so a flapping health signal cannot
        postpone the probe forever).
        """
        with self._lock:
            circuit = self._circuit(key)
            self._refresh(circuit)
            if circuit.state == BREAKER_OPEN:
                return
            circuit.state = BREAKER_OPEN
            circuit.opened_at = self._clock()
            circuit.probe_in_flight = False
            self.trips += 1

    def snapshot(self) -> dict[str, str]:
        """Current state per key (cooldown transitions applied)."""
        with self._lock:
            for circuit in self._circuits.values():
                self._refresh(circuit)
            return {k: c.state for k, c in self._circuits.items()}
