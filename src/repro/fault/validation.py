"""Runtime invariant checking and kernel-output verification.

Two layers:

* :func:`validate_format` walks the structural invariants a
  BCCOO/BCCOO+ instance must satisfy for the kernels to be correct --
  the row-stop count vs. the non-empty-row map, column ranges, delta
  round-trip, slice consistency.  These are exactly the invariants the
  bit-flag compression makes *implicit*: a corrupted flag word breaks
  them silently, so production use needs them checkable on demand.
* :func:`verify_output` compares a kernel's ``y`` against a sampled CSR
  reference with tolerance (plus a full finiteness sweep) -- cheap
  enough to run per multiply when a fault plan is active.

Both return a :class:`ValidationReport`; ``raise_if_failed`` converts a
failed report into a typed :class:`repro.errors.ValidationError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ValidationError

__all__ = [
    "CheckResult",
    "ValidationReport",
    "validate_format",
    "verify_output",
]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one named invariant check."""

    name: str
    ok: bool
    detail: str = ""


@dataclass
class ValidationReport:
    """Aggregate of all checks run against one format or output."""

    subject: str
    checks: list[CheckResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.ok]

    def add(self, name: str, ok: bool, detail: str = "") -> None:
        self.checks.append(CheckResult(name=name, ok=bool(ok), detail=detail))

    def merge(self, other: "ValidationReport") -> None:
        self.checks.extend(other.checks)

    def raise_if_failed(self) -> None:
        """Raise :class:`ValidationError` describing the first failure."""
        if self.ok:
            return
        first = self.failures[0]
        raise ValidationError(
            f"{self.subject}: check {first.name!r} failed: {first.detail}"
            + (f" (+{len(self.failures) - 1} more)" if len(self.failures) > 1 else ""),
            check=first.name,
            detail=first.detail,
        )

    def summary(self) -> str:
        lines = [f"{self.subject}: {'OK' if self.ok else 'FAILED'}"]
        for c in self.checks:
            mark = "ok " if c.ok else "FAIL"
            lines.append(f"  [{mark}] {c.name}" + (f": {c.detail}" if c.detail else ""))
        return "\n".join(lines)


# ---------------------------------------------------------------------- #
# Format invariants
# ---------------------------------------------------------------------- #


def _validate_bccoo(fmt, report: ValidationReport) -> None:
    nb = fmt.nblocks
    n_stops = fmt.flags.n_row_stops
    n_map = int(fmt.nonempty_block_rows.shape[0])
    report.add(
        "row_stop_count",
        n_stops == n_map,
        f"bit flags encode {n_stops} row stops, row map holds {n_map}",
    )

    rows = fmt.nonempty_block_rows
    sorted_ok = bool(np.all(np.diff(rows) > 0)) if rows.size > 1 else True
    in_range = bool(rows.size == 0 or (rows[0] >= 0 and rows[-1] < fmt.n_block_rows))
    report.add(
        "row_map_sorted_in_range",
        sorted_ok and in_range,
        f"{n_map} entries over {fmt.n_block_rows} block rows",
    )

    stops = fmt.stops()
    pad_open = bool(not stops[nb:].any())
    report.add(
        "padding_keeps_segment_open",
        pad_open,
        "padding bits past the valid blocks must be continue flags",
    )

    cols = fmt.columns()[:nb]
    cols_ok = bool(cols.size == 0 or (cols.min() >= 0 and cols.max() < fmt.n_block_cols))
    report.add(
        "columns_in_range",
        cols_ok,
        f"block columns must lie in [0, {fmt.n_block_cols})",
    )

    if fmt.col_storage == "delta" and fmt.delta is not None:
        from ..formats.delta import decompress_columns

        round_trip = decompress_columns(fmt.delta)
        report.add(
            "delta_roundtrip",
            bool(np.array_equal(round_trip, fmt.delta.fallback)),
            "delta decompression must reproduce the uncompressed indices",
        )

    report.add(
        "values_finite",
        bool(np.isfinite(fmt.values).all()),
        "stored block values contain NaN/Inf",
    )
    report.add(
        "array_lengths",
        fmt.col_block.shape[0] == fmt.nblocks_padded
        and fmt.values.shape[0] == fmt.nblocks_padded,
        f"col/value arrays must cover {fmt.nblocks_padded} padded blocks",
    )


def _validate_bccoo_plus(fmt, report: ValidationReport) -> None:
    _validate_bccoo(fmt.stacked, report)
    report.add(
        "slice_cover",
        fmt.slice_count * fmt.slice_width >= fmt.ncols,
        f"{fmt.slice_count} slices of width {fmt.slice_width} must cover "
        f"{fmt.ncols} columns",
    )
    report.add(
        "stacked_rows_consistent",
        fmt.stacked.nrows == fmt.slice_count * fmt.padded_rows_per_slice,
        f"stacked matrix has {fmt.stacked.nrows} rows, expected "
        f"{fmt.slice_count} * {fmt.padded_rows_per_slice}",
    )
    nb = fmt.stacked.nblocks
    cols = fmt.stacked.columns()[:nb]
    from ..util import round_up

    n_block_cols = round_up(fmt.ncols, fmt.block_width) // fmt.block_width
    report.add(
        "slice_columns_original",
        bool(cols.size == 0 or (cols.min() >= 0 and cols.max() < n_block_cols)),
        "stacked column indices must address the original matrix",
    )


def _validate_merge_csr(fmt, report: ValidationReport) -> None:
    ptr = fmt.row_ptr
    monotone = bool(ptr[0] == 0 and ptr[-1] == fmt.nnz and np.all(np.diff(ptr) >= 0))
    report.add(
        "row_ptr_monotone",
        monotone,
        f"row_ptr must ascend from 0 to nnz={fmt.nnz}",
    )

    cols = fmt.col_index
    cols_ok = bool(
        cols.size == 0 or (cols.min() >= 0 and cols.max() < fmt.ncols)
    )
    report.add(
        "columns_in_range", cols_ok, f"columns must lie in [0, {fmt.ncols})"
    )

    if monotone:
        # The load-balancing-search output must agree with the row
        # pointers: team t's coordinate is the row containing non-zero
        # t * team_nnz.  A mutated team_rows (or row_ptr) breaks this.
        starts = fmt.team_starts()
        expect = np.searchsorted(ptr, starts, side="right") - 1
        report.add(
            "team_coordinates",
            bool(np.array_equal(fmt.team_rows, expect)),
            "team_rows must equal the load-balancing search over row_ptr",
        )
        # row_stops() indexes by row_ptr values, so it is only safe to
        # derive once the pointers themselves checked out.
        report.add(
            "row_stop_count",
            int(fmt.row_stops().sum()) == fmt.row_map().shape[0],
            "end-of-row markers must match the non-empty-row map",
        )
    report.add(
        "values_finite",
        bool(np.isfinite(fmt.values).all()),
        "stored values contain NaN/Inf",
    )


def _validate_rgcsr(fmt, report: ValidationReport) -> None:
    row_off = fmt.group_row_offsets
    data_off = fmt.group_data_offsets
    row_ok = bool(
        row_off[0] == 0
        and row_off[-1] == fmt.n_packed_rows
        and np.all(np.diff(row_off) >= 0)
    )
    report.add(
        "group_row_offsets",
        row_ok,
        f"group row offsets must ascend from 0 to {fmt.n_packed_rows}",
    )
    extents_ok = bool(
        data_off[0] == 0
        and data_off[-1] == fmt.padded_slots
        and np.array_equal(
            np.diff(data_off), np.diff(row_off) * fmt.group_widths
        )
    )
    report.add(
        "group_data_extents",
        extents_ok,
        "per-group lane extents must equal rows x adaptive width",
    )

    perm = fmt.row_perm
    perm_ok = bool(
        perm.size == np.unique(perm).size
        and (perm.size == 0 or (perm.min() >= 0 and perm.max() < fmt.nrows))
    )
    report.add(
        "row_perm_bijective",
        perm_ok,
        f"row permutation must be unique rows in [0, {fmt.nrows})",
    )

    if not (row_ok and extents_ok):
        # The remaining checks slice by the offsets; deriving them from
        # corrupted offsets would raise instead of reporting.
        report.add(
            "values_finite",
            bool(np.isfinite(fmt.values).all()),
            "stored values contain NaN/Inf",
        )
        return

    lens_ok = True
    for g in range(fmt.n_groups):
        seg = fmt.row_lengths[row_off[g] : row_off[g + 1]]
        if seg.size and (seg.min() < 1 or seg.max() > fmt.group_widths[g]):
            lens_ok = False
            break
    report.add(
        "lengths_within_group_width",
        lens_ok,
        "every row length must lie in [1, group width]",
    )

    mask = fmt.lane_mask()
    cols = fmt.col_index[mask]
    report.add(
        "columns_in_range",
        bool(cols.size == 0 or (cols.min() >= 0 and cols.max() < fmt.ncols)),
        f"valid-lane columns must lie in [0, {fmt.ncols})",
    )
    report.add(
        "padding_lanes_zero",
        bool(not fmt.values[~mask].any()),
        "padding lanes must hold zero values",
    )
    report.add(
        "values_finite",
        bool(np.isfinite(fmt.values).all()),
        "stored values contain NaN/Inf",
    )


def validate_format(fmt) -> ValidationReport:
    """Run every applicable invariant check against a format instance."""
    # Imported here: repro.formats imports this module lazily and vice
    # versa; function-level imports break the cycle.
    from ..formats.bccoo import BCCOOMatrix
    from ..formats.bccoo_plus import BCCOOPlusMatrix
    from ..formats.merge_csr import MergeCSRMatrix
    from ..formats.rgcsr import RGCSRMatrix

    report = ValidationReport(subject=f"{type(fmt).__name__}")
    if isinstance(fmt, BCCOOPlusMatrix):
        _validate_bccoo_plus(fmt, report)
    elif isinstance(fmt, BCCOOMatrix):
        _validate_bccoo(fmt, report)
    elif isinstance(fmt, MergeCSRMatrix):
        _validate_merge_csr(fmt, report)
    elif isinstance(fmt, RGCSRMatrix):
        _validate_rgcsr(fmt, report)
    else:
        shape = getattr(fmt, "shape", None)
        report.add(
            "has_shape",
            isinstance(shape, tuple) and len(shape) == 2,
            f"unsupported format {type(fmt).__name__}: only shape checked",
        )
    return report


# ---------------------------------------------------------------------- #
# Output verification
# ---------------------------------------------------------------------- #


def verify_output(
    csr,
    x: np.ndarray,
    y: np.ndarray,
    n_samples: int | None = 64,
    rtol: float = 1e-9,
    atol: float = 1e-12,
    seed: int = 0,
) -> ValidationReport:
    """Check ``y`` against ``csr @ x`` on sampled rows, plus finiteness.

    ``n_samples=None`` compares every row (the CLI's ``repro verify``
    does this); the engine's per-multiply check samples.  Sampling is
    deterministic in ``seed``.

    A 2-D ``x`` of shape ``(ncols, k)`` verifies a multi-RHS product
    ``Y = A @ X`` with the same checks (shape, finiteness, global
    checksum, sampled rows across all ``k`` columns).
    """
    x = np.asarray(x)
    if x.ndim == 2:
        return _verify_output_multi(csr, x, y, n_samples, rtol, atol, seed)
    y = np.asarray(y)
    report = ValidationReport(subject="kernel output")
    report.add(
        "output_length",
        y.shape[0] == csr.shape[0],
        f"y has {y.shape[0]} entries, matrix has {csr.shape[0]} rows",
    )
    if not report.ok:
        return report

    finite = bool(np.isfinite(y).all())
    report.add("output_finite", finite, "y contains NaN/Inf")

    # Global checksum: sum(y) must equal (colsums . x).  O(nnz) without
    # forming the full product, and it catches corruption localized to
    # rows the sample below happens to miss (e.g. a wrong cross-
    # workgroup carry touches only the rows at workgroup boundaries).
    if finite:
        colsums = np.asarray(abs(csr).sum(axis=0)).ravel()
        scale = float(colsums @ np.abs(x))
        expect = float(np.asarray(csr.sum(axis=0)).ravel() @ x)
        got_sum = float(y.sum())
        # Summation-order slack: nnz partial sums can each lose ~eps of
        # the magnitude scale, so widen the row-level rtol accordingly.
        tol = atol + max(rtol, 64 * np.finfo(np.float64).eps) * max(scale, 1.0)
        report.add(
            "checksum",
            abs(got_sum - expect) <= tol,
            f"sum(y)={got_sum!r} vs reference {expect!r} (tol {tol:.3g})",
        )

    nrows = csr.shape[0]
    if n_samples is None or n_samples >= nrows:
        rows = np.arange(nrows)
    else:
        rows = np.random.default_rng(seed).choice(nrows, size=n_samples, replace=False)
        rows.sort()
    ref = csr[rows] @ x
    got = y[rows]
    with np.errstate(invalid="ignore"):
        close = np.isclose(got, ref, rtol=rtol, atol=atol)
    n_bad = int((~close).sum())
    if n_bad:
        worst = int(np.argmax(np.where(close, 0.0, np.abs(got - ref))))
        detail = (
            f"{n_bad}/{rows.shape[0]} sampled rows off; worst row "
            f"{int(rows[worst])}: got {got[worst]!r}, want {ref[worst]!r}"
        )
    else:
        detail = f"{rows.shape[0]} rows sampled"
    report.add("sampled_reference", n_bad == 0, detail)
    return report


def _verify_output_multi(
    csr,
    X: np.ndarray,
    Y: np.ndarray,
    n_samples: int | None,
    rtol: float,
    atol: float,
    seed: int,
) -> ValidationReport:
    """Multi-RHS variant of :func:`verify_output` (``Y = A @ X``)."""
    Y = np.asarray(Y)
    k = X.shape[1]
    report = ValidationReport(subject="kernel output")
    report.add(
        "output_shape",
        Y.ndim == 2 and Y.shape == (csr.shape[0], k),
        f"Y has shape {Y.shape}, expected ({csr.shape[0]}, {k})",
    )
    if not report.ok:
        return report

    finite = bool(np.isfinite(Y).all())
    report.add("output_finite", finite, "Y contains NaN/Inf")

    if finite:
        colsums = np.asarray(abs(csr).sum(axis=0)).ravel()
        scale = float(colsums @ np.abs(X).sum(axis=1))
        expect = float((np.asarray(csr.sum(axis=0)).ravel() @ X).sum())
        got_sum = float(Y.sum())
        tol = atol + max(rtol, 64 * np.finfo(np.float64).eps) * max(scale, 1.0)
        report.add(
            "checksum",
            abs(got_sum - expect) <= tol,
            f"sum(Y)={got_sum!r} vs reference {expect!r} (tol {tol:.3g})",
        )

    nrows = csr.shape[0]
    if n_samples is None or n_samples >= nrows:
        rows = np.arange(nrows)
    else:
        rows = np.random.default_rng(seed).choice(nrows, size=n_samples, replace=False)
        rows.sort()
    ref = csr[rows] @ X
    got = Y[rows]
    with np.errstate(invalid="ignore"):
        close = np.isclose(got, ref, rtol=rtol, atol=atol)
    n_bad = int((~close).sum())
    if n_bad:
        flat = int(np.argmax(np.where(close, 0.0, np.abs(got - ref))))
        i, j = np.unravel_index(flat, got.shape)
        detail = (
            f"{n_bad}/{close.size} sampled entries off; worst row "
            f"{int(rows[i])} col {int(j)}: got {got[i, j]!r}, want {ref[i, j]!r}"
        )
    else:
        detail = f"{rows.shape[0]} rows x {k} columns sampled"
    report.add("sampled_reference", n_bad == 0, detail)
    return report
