"""Sparse-matrix storage formats.

The zoo of classical formats (COO, CSR, ELL, DIA, HYB, BCSR, BELL, SELL)
plus the paper's contributions: :class:`BCCOOMatrix` and
:class:`BCCOOPlusMatrix`.  Every format registers itself in
:func:`available_formats` and satisfies the :class:`SparseFormat`
interface (lossless scipy round trip, byte-accurate footprint, reference
multiply).
"""

from .base import (
    FP32,
    FP64,
    ByteSizes,
    Footprint,
    SparseFormat,
    available_formats,
    get_format,
    register_format,
)
from .bccoo import BCCOOMatrix
from .bccoo_plus import BCCOOPlusMatrix
from .bcsr import BCSRMatrix
from .cocktail import CocktailMatrix
from .bell import BELLMatrix
from .bitflags import BitFlagArray
from .blocking import BlockLayout, extract_blocks
from .coo import COOMatrix
from .csr import CSRMatrix
from .delta import DeltaColumns, compress_columns, decompress_columns
from .dia import DIAMatrix
from .ell import ELLMatrix
from .footprint import (
    FootprintReport,
    bccoo_block_candidates,
    best_bccoo_footprint,
    best_single_footprint,
    cocktail_footprint,
    footprint_report,
)
from .hyb import HYBMatrix
from .layout import device_order_indices, from_device_order, to_device_order
from .merge_csr import MergeCSRMatrix, cal_vectors
from .rgcsr import RGCSRMatrix
from .sell import SELLMatrix

__all__ = [
    "FP32",
    "FP64",
    "ByteSizes",
    "Footprint",
    "SparseFormat",
    "available_formats",
    "get_format",
    "register_format",
    "BCCOOMatrix",
    "BCCOOPlusMatrix",
    "BCSRMatrix",
    "CocktailMatrix",
    "BELLMatrix",
    "BitFlagArray",
    "BlockLayout",
    "extract_blocks",
    "COOMatrix",
    "CSRMatrix",
    "DeltaColumns",
    "compress_columns",
    "decompress_columns",
    "DIAMatrix",
    "ELLMatrix",
    "FootprintReport",
    "bccoo_block_candidates",
    "best_bccoo_footprint",
    "best_single_footprint",
    "cocktail_footprint",
    "footprint_report",
    "HYBMatrix",
    "MergeCSRMatrix",
    "cal_vectors",
    "RGCSRMatrix",
    "SELLMatrix",
    "device_order_indices",
    "from_device_order",
    "to_device_order",
]
