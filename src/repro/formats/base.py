"""Abstract base class and registry for sparse-matrix storage formats.

Every format in :mod:`repro.formats` models what the corresponding GPU
format stores in device memory:

* construction from a :class:`scipy.sparse` matrix (``from_scipy``),
* lossless reconstruction (``to_scipy``) -- *lossless* meaning the
  reconstructed matrix equals the original; explicit fill-in zeros
  introduced by blocked/padded formats are dropped on reconstruction,
* a byte-accurate **memory footprint** (``footprint``), which is the
  quantity Table 3 of the paper compares across formats,
* a reference ``multiply`` used by tests (kernels in
  :mod:`repro.kernels` implement the simulated-device versions).

Footprints are computed with the paper's sizes: 4-byte ``float`` values
(the GPU kernels ran in single precision), 4-byte ``int`` indices and
2-byte ``short`` indices.  The numerical payload kept on the host side is
``float64`` -- byte accounting and numerics are deliberately decoupled.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import ClassVar, Mapping

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatError

__all__ = [
    "ByteSizes",
    "Footprint",
    "SparseFormat",
    "register_format",
    "get_format",
    "available_formats",
    "FP32",
    "FP64",
]


@dataclass(frozen=True)
class ByteSizes:
    """Per-element byte sizes used for footprint accounting.

    ``value`` is the size of a matrix value, ``index`` of a full-width
    (row/column) index, ``short`` of a compressed 16-bit index, and
    ``byte`` of a single-byte quantity (bit-flag words are counted via
    their own word size).
    """

    value: int = 4
    index: int = 4
    short: int = 2
    byte: int = 1


#: The paper's accounting: fp32 values, int32 indices.
FP32 = ByteSizes(value=4)
#: Double-precision accounting, for completeness.
FP64 = ByteSizes(value=8)


@dataclass
class Footprint:
    """Byte-level storage breakdown of one format instance.

    ``arrays`` maps a device-array name (e.g. ``"col_index"``) to its size
    in bytes.  ``total`` sums them.  The breakdown is what the footprint
    benchmark prints so deviations from Table 3 can be attributed to a
    specific array.
    """

    arrays: dict[str, int] = field(default_factory=dict)

    def add(self, name: str, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"negative array size for {name!r}: {nbytes}")
        self.arrays[name] = self.arrays.get(name, 0) + int(nbytes)

    @property
    def total(self) -> int:
        return sum(self.arrays.values())

    @property
    def total_mb(self) -> float:
        return self.total / (1024.0 * 1024.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.arrays.items()))
        return f"Footprint(total={self.total}B; {parts})"


class SparseFormat(abc.ABC):
    """Base class for all sparse storage formats.

    Subclasses must set :attr:`name` and implement the abstract interface.
    ``shape`` is the logical (unpadded) matrix shape; formats that pad to a
    block multiple keep the logical shape and slice on reconstruction.
    """

    #: Registry key, e.g. ``"bccoo"``.  Set by each subclass.
    name: ClassVar[str] = ""

    def __init__(self, shape: tuple[int, int]):
        rows, cols = int(shape[0]), int(shape[1])
        if rows <= 0 or cols <= 0:
            raise FormatError(f"matrix shape must be positive, got {shape}")
        self.shape: tuple[int, int] = (rows, cols)

    # ------------------------------------------------------------------ #
    # Abstract interface
    # ------------------------------------------------------------------ #

    @classmethod
    @abc.abstractmethod
    def from_scipy(cls, matrix, **params) -> "SparseFormat":
        """Build the format from any scipy-sparse (or dense) matrix."""

    @abc.abstractmethod
    def to_scipy(self) -> _sp.csr_matrix:
        """Reconstruct the stored matrix as canonical CSR (lossless)."""

    @abc.abstractmethod
    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        """Device-memory footprint under the given byte sizes."""

    @abc.abstractmethod
    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Reference (host) SpMV ``y = A @ x`` for correctness tests."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #

    @property
    def nrows(self) -> int:
        return self.shape[0]

    @property
    def ncols(self) -> int:
        return self.shape[1]

    def _check_x(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != self.ncols:
            raise FormatError(
                f"vector length {x.shape[0]} does not match matrix columns {self.ncols}"
            )
        return x

    def footprint_bytes(self, sizes: ByteSizes = FP32) -> int:
        """Convenience: total footprint in bytes."""
        return self.footprint(sizes).total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(shape={self.shape})"


_REGISTRY: dict[str, type[SparseFormat]] = {}


def register_format(cls: type[SparseFormat]) -> type[SparseFormat]:
    """Class decorator adding a format to the global registry."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate format name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def get_format(name: str) -> type[SparseFormat]:
    """Look up a format class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise FormatError(
            f"unknown format {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_formats() -> Mapping[str, type[SparseFormat]]:
    """Read-only view of the format registry."""
    return dict(_REGISTRY)
