"""Blocked Compressed Common Coordinate (BCCOO) -- the paper's new format.

BCCOO = blocked COO (section 2.2, Figure 2) with two compressions:

1. the per-block **row-index array becomes a bit-flag array** (one bit per
   block, ``0`` = row stop), a 32x reduction over ``int32`` row indices;
2. the per-block **column-index array** is stored as ``unsigned short``
   when the matrix is narrow enough (section 4), or delta-compressed to
   ``int16`` with a fallback sentinel (section 2.2), or kept as ``int32``.

The value payload is dense per block; for block height ``h > 1`` each
intra-block row conceptually lives in its own value array (Figure 2's two
value rows) -- we store ``(nblocks, h, w)`` and let the device layer pick
the physical interleaving (the online/offline transpose tuning knob).

All arrays are padded to a multiple of ``pad_multiple`` (the workgroup
working set) with zero blocks and continue flags so kernels never branch
on array ends (section 2.2).

Empty block rows are handled with a ``nonempty_block_rows`` map from stop
ordinal to actual block row; it is the identity (and is not stored) when
every block row is occupied.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatError, ValidationError
from ..util import as_coo_sorted, round_up
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format
from .bitflags import (
    BitFlagArray,
    first_result_entries,
    pack,
    reconstruct_row_ordinals,
    stops_from_block_rows,
)
from .blocking import BlockLayout, blocks_to_coo_arrays, extract_blocks
from .delta import DeltaColumns, compress_columns, decompress_columns

__all__ = ["BCCOOMatrix", "COL_STORAGE_MODES"]

#: Valid column-index storage modes.
COL_STORAGE_MODES = ("auto", "int32", "ushort", "delta")

#: Matrices narrower than this use raw unsigned-short column indices
#: (paper section 4: "if the width of a sparse matrix is less than 65535").
USHORT_LIMIT = 65535


@register_format
class BCCOOMatrix(SparseFormat):
    """The paper's BCCOO format.

    Parameters are normally supplied through :meth:`from_scipy`; the raw
    constructor is for tests and internal use.
    """

    name = "bccoo"

    def __init__(
        self,
        shape,
        block_height: int,
        block_width: int,
        flags: BitFlagArray,
        col_block: np.ndarray,
        values: np.ndarray,
        nonempty_block_rows: np.ndarray,
        col_storage: str,
        delta: DeltaColumns | None,
        nnz: int,
    ):
        super().__init__(shape)
        self.block_height = int(block_height)
        self.block_width = int(block_width)
        self.flags = flags
        self.col_block = np.asarray(col_block, dtype=np.int32)
        self.values = np.asarray(values, dtype=np.float64)
        self.nonempty_block_rows = np.asarray(nonempty_block_rows, dtype=np.int64)
        self.col_storage = col_storage
        self.delta = delta
        self._nnz = int(nnz)
        self._validate()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_scipy(
        cls,
        matrix,
        block_height: int = 1,
        block_width: int = 1,
        bit_word_dtype=np.uint32,
        pad_multiple: int = 1,
        col_storage: str = "auto",
        delta_tile_size: int = 16,
        **params,
    ) -> "BCCOOMatrix":
        """Convert any matrix to BCCOO.

        Parameters
        ----------
        block_height, block_width:
            Non-zero block dimensions (Table 1: height 1-4, width 1/2/4).
        bit_word_dtype:
            Word type packing the bit flags (Table 1: u8/u16/u32).
        pad_multiple:
            Pad all arrays to this multiple -- kernels pass the workgroup
            working set (threads x tile size).
        col_storage:
            ``"auto"`` picks ``ushort`` for narrow matrices else ``delta``;
            explicit modes override.
        delta_tile_size:
            Segment length for delta compression (the thread-level tile
            size, so reconstruction stays thread-local).
        """
        if col_storage not in COL_STORAGE_MODES:
            raise FormatError(
                f"col_storage must be one of {COL_STORAGE_MODES}, got {col_storage!r}"
            )
        layout = extract_blocks(matrix, block_height, block_width)
        return cls.from_block_layout(
            layout,
            bit_word_dtype=bit_word_dtype,
            pad_multiple=pad_multiple,
            col_storage=col_storage,
            delta_tile_size=delta_tile_size,
        )

    @classmethod
    def from_block_layout(
        cls,
        layout: BlockLayout,
        bit_word_dtype=np.uint32,
        pad_multiple: int = 1,
        col_storage: str = "auto",
        delta_tile_size: int = 16,
        shape: tuple[int, int] | None = None,
        col_override: np.ndarray | None = None,
    ) -> "BCCOOMatrix":
        """Build BCCOO from an already-extracted :class:`BlockLayout`.

        ``shape`` / ``col_override`` exist for BCCOO+: the stacked matrix
        supplies its own logical shape while column indices refer to the
        *original* matrix (paper section 2.3).
        """
        if col_storage not in COL_STORAGE_MODES:
            raise FormatError(
                f"col_storage must be one of {COL_STORAGE_MODES}, got {col_storage!r}"
            )
        nb = layout.nblocks
        stops = stops_from_block_rows(layout.block_row)
        flags = pack(stops, bit_word_dtype, pad_multiple=max(pad_multiple, 1))
        nb_padded = flags.nbits

        col_block = np.zeros(nb_padded, dtype=np.int32)
        source_cols = layout.block_col if col_override is None else col_override
        col_block[:nb] = source_cols

        h, w = layout.block_height, layout.block_width
        values = np.zeros((nb_padded, h, w), dtype=np.float64)
        values[:nb] = layout.values

        nonempty = np.unique(layout.block_row).astype(np.int64)

        logical_shape = layout.shape if shape is None else shape
        n_block_cols_limit = round_up(logical_shape[1], w) // w
        mode = col_storage
        if mode == "auto":
            if n_block_cols_limit <= USHORT_LIMIT:
                mode = "ushort"
            else:
                # Wide matrix: delta-compress only when it actually
                # compresses (Table 1's "Col_index compress" decision);
                # scattered columns fall back to raw indices.
                tile = max(delta_tile_size, 1)
                probe_pad = round_up(max(nb, 1), tile)
                probe = np.zeros(probe_pad, dtype=np.int64)
                probe[:nb] = source_cols
                trial = compress_columns(probe, tile)
                # Break-even: streaming shorts (2 B) plus the touched
                # fraction of the int32 fallback array must undercut
                # streaming raw int32 (4 B).  A 128 B transaction holds
                # 32 indices, so the touched fraction is
                # 1 - (1-p)^32 and delta wins only for p below ~2%.
                p = trial.fallback_fraction
                touched = 1.0 - (1.0 - min(p, 1.0)) ** 32
                mode = "delta" if 2.0 + 4.0 * touched < 4.0 else "int32"
        if mode == "ushort" and n_block_cols_limit > USHORT_LIMIT:
            raise FormatError(
                f"ushort column storage needs <= {USHORT_LIMIT} block columns, "
                f"matrix has {n_block_cols_limit}"
            )
        delta = None
        if mode == "delta":
            if delta_tile_size < 1:
                raise FormatError(
                    f"delta_tile_size must be >= 1, got {delta_tile_size}"
                )
            tile = delta_tile_size
            if nb_padded % tile != 0:
                # Compression segments must tile the padded array exactly;
                # fall back to a divisor of the padded length.
                while nb_padded % tile != 0:
                    tile -= 1
            delta = compress_columns(col_block, tile)

        return cls(
            logical_shape,
            h,
            w,
            flags,
            col_block,
            values,
            nonempty,
            mode,
            delta,
            layout.nnz,
        )

    # ------------------------------------------------------------------ #
    # Incremental value refresh
    # ------------------------------------------------------------------ #

    def with_values(self, matrix) -> "BCCOOMatrix":
        """Rebuild only the value payload from a structurally identical matrix.

        The bit flags, column indices (compressed or not), row map and
        padding are shared with ``self`` by identity -- only the dense
        per-block value array is rebuilt.  ``matrix`` must have the same
        shape and sparsity pattern; any structural drift (different nnz,
        an entry outside the existing blocks, a value that cancels to an
        explicit zero) raises :class:`~repro.errors.ValidationError`.
        """
        coo = as_coo_sorted(matrix)
        if coo.shape != self.shape:
            raise ValidationError(
                f"with_values shape mismatch: format is {self.shape}, "
                f"new matrix is {coo.shape}"
            )
        if int(coo.nnz) != self._nnz:
            raise ValidationError(
                f"with_values nnz mismatch: format holds {self._nnz} "
                f"non-zeros, new matrix has {coo.nnz} (structure must be "
                f"identical; zeros are eliminated during canonicalization)"
            )
        h, w = self.block_height, self.block_width
        rows = coo.row.astype(np.int64)
        cols = coo.col.astype(np.int64)
        keys = (rows // h) * self.n_block_cols + cols // w
        values = self._scatter_values(keys, rows % h, cols % w, coo.data)
        return BCCOOMatrix(
            self.shape,
            h,
            w,
            self.flags,
            self.col_block,
            values,
            self.nonempty_block_rows,
            self.col_storage,
            self.delta,
            self._nnz,
        )

    def _scatter_values(
        self,
        keys: np.ndarray,
        in_r: np.ndarray,
        in_c: np.ndarray,
        data: np.ndarray,
    ) -> np.ndarray:
        """Scatter entries keyed by ``brow * n_block_cols + bcol`` into a
        fresh value array shaped like ``self.values``.

        Valid blocks are strictly row-major by ``(block_row, block_col)``,
        so the flattened keys are strictly ascending and a searchsorted
        lookup maps each entry to its block slot.
        """
        nb = self.nblocks
        h, w = self.block_height, self.block_width
        fmt_keys = (
            self.block_rows().astype(np.int64) * self.n_block_cols
            + self.columns()[:nb].astype(np.int64)
        )
        idx = np.searchsorted(fmt_keys, keys)
        if keys.size and (
            idx.max(initial=0) >= nb or not np.array_equal(fmt_keys[idx], keys)
        ):
            raise ValidationError(
                "with_values structure mismatch: the new matrix has an "
                "entry outside the format's non-zero blocks"
            )
        values = np.zeros_like(self.values)
        flat = idx * (h * w) + in_r.astype(np.int64) * w + in_c.astype(np.int64)
        values.reshape(-1)[flat] = data
        return values

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def nblocks(self) -> int:
        """Number of real (unpadded) non-zero blocks."""
        return self.flags.n_valid

    @property
    def nblocks_padded(self) -> int:
        return self.flags.nbits

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def stored_values(self) -> int:
        """Value slots stored, fill-in and padding included."""
        return self.nblocks_padded * self.block_height * self.block_width

    @property
    def fill_ratio(self) -> float:
        return self.stored_values / self.nnz if self.nnz else 1.0

    @property
    def n_block_rows(self) -> int:
        return round_up(self.nrows, self.block_height) // self.block_height

    @property
    def n_block_cols(self) -> int:
        return round_up(self.ncols, self.block_width) // self.block_width

    @property
    def has_empty_block_rows(self) -> bool:
        return self.nonempty_block_rows.shape[0] < self.n_block_rows

    def stops(self) -> np.ndarray:
        """Boolean row-stop mask over the padded blocks."""
        return self.flags.stops()

    def block_rows(self) -> np.ndarray:
        """Reconstructed per-block block-row indices (valid blocks only).

        This is the lossless inverse of the bit-flag compression: stop
        ordinals mapped through ``nonempty_block_rows``.
        """
        stops = self.stops()[: self.nblocks]
        ordinals = reconstruct_row_ordinals(stops)
        if ordinals.size and ordinals.max() >= self.nonempty_block_rows.shape[0]:
            raise FormatError("bit flags encode more rows than the row map holds")
        return self.nonempty_block_rows[ordinals] if ordinals.size else ordinals

    def columns(self) -> np.ndarray:
        """Per-block column indices over the padded array (decompressed)."""
        if self.col_storage == "delta":
            assert self.delta is not None
            return decompress_columns(self.delta).astype(np.int32)
        return self.col_block

    def auxiliary(self, tile_size: int) -> dict[str, np.ndarray]:
        """Section 2.4 auxiliary info for a given thread-level tile size.

        Returns ``first_result_entry`` (the result-row ordinal of each
        thread's first partial sum) and ``tile_has_stop`` (per-tile early
        check that lets the kernel skip the workgroup parallel scan).
        """
        stops = self.stops()
        if stops.shape[0] % tile_size != 0:
            raise FormatError(
                f"tile size {tile_size} does not divide padded block count "
                f"{stops.shape[0]}; rebuild with pad_multiple=workgroup working set"
            )
        return {
            "first_result_entry": first_result_entries(stops, tile_size),
            "tile_has_stop": stops.reshape(-1, tile_size).any(axis=1),
        }

    def validate(self):
        """Run the runtime invariant checkers over this instance.

        Returns a :class:`repro.fault.ValidationReport`; call its
        ``raise_if_failed()`` to convert failures into a typed
        :class:`repro.errors.ValidationError`.
        """
        from ..fault.validation import validate_format

        return validate_format(self)

    # ------------------------------------------------------------------ #
    # SparseFormat interface
    # ------------------------------------------------------------------ #

    def to_scipy(self) -> _sp.csr_matrix:
        layout = BlockLayout(
            shape=(
                self.n_block_rows * self.block_height,
                self.n_block_cols * self.block_width,
            ),
            block_height=self.block_height,
            block_width=self.block_width,
            block_row=self.block_rows().astype(np.int32),
            block_col=self.columns()[: self.nblocks],
            values=self.values[: self.nblocks],
        )
        rows, cols, data = blocks_to_coo_arrays(layout)
        keep = (rows < self.nrows) & (cols < self.ncols)
        return _sp.coo_matrix(
            (data[keep], (rows[keep], cols[keep])), shape=self.shape
        ).tocsr()

    def footprint(
        self, sizes: ByteSizes = FP32, tile_size: int | None = None
    ) -> Footprint:
        """Device footprint; pass ``tile_size`` to include section 2.4 aux.

        Column indexing is charged at the *hot* representation the kernel
        streams: ``short`` bytes for ushort/delta modes, full index bytes
        for int32 -- matching how Table 3 counts BCCOO.  (In delta mode
        the uncompressed fallback array also exists but is touched only at
        sentinel positions, so it contributes bandwidth, not footprint,
        exactly as the paper accounts it.)
        """
        fp = Footprint()
        fp.add("values", self.stored_values * sizes.value)
        if self.col_storage == "int32":
            fp.add("col_index", self.nblocks_padded * sizes.index)
        else:
            fp.add("col_index", self.nblocks_padded * sizes.short)
            if self.col_storage == "delta" and self.delta is not None:
                fp.add("tile_start_cols", self.delta.n_tiles * sizes.index)
        fp.add("bit_flags", self.flags.nbytes)
        if self.has_empty_block_rows:
            fp.add(
                "row_map", self.nonempty_block_rows.shape[0] * sizes.index
            )
        if tile_size is not None:
            aux = self.auxiliary(tile_size)
            fp.add(
                "first_result_entry",
                aux["first_result_entry"].shape[0] * sizes.index,
            )
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV going through the full decode path.

        Deliberately exercises bit-flag reconstruction and column
        decompression so tests validate the encoded arrays, not a cached
        copy of the input.
        """
        x = self._check_x(x)
        h, w = self.block_height, self.block_width
        nb = self.nblocks
        y = np.zeros(self.n_block_rows * h, dtype=np.float64)
        if nb:
            cols = self.columns()[:nb].astype(np.int64)
            base_c = cols * w
            xg = np.zeros((nb, w), dtype=np.float64)
            for j in range(w):
                cidx = base_c + j
                valid = cidx < self.ncols
                xg[valid, j] = x[cidx[valid]]
            contrib = np.einsum("bhw,bw->bh", self.values[:nb], xg)
            np.add.at(y.reshape(-1, h), self.block_rows().astype(np.intp), contrib)
        return y[: self.nrows]

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        nbp = self.nblocks_padded
        if self.col_block.shape != (nbp,):
            raise FormatError(
                f"col_block length {self.col_block.shape[0]} != padded blocks {nbp}"
            )
        if self.values.shape != (nbp, self.block_height, self.block_width):
            raise FormatError(
                f"values shape {self.values.shape} != "
                f"({nbp}, {self.block_height}, {self.block_width})"
            )
        if self.col_storage not in ("int32", "ushort", "delta"):
            raise FormatError(f"invalid col_storage {self.col_storage!r}")
        if self.col_storage == "delta" and self.delta is None:
            raise FormatError("delta col_storage requires a DeltaColumns payload")
        n_stops = self.flags.n_row_stops
        if n_stops != self.nonempty_block_rows.shape[0]:
            raise FormatError(
                f"bit flags encode {n_stops} row stops but the row map has "
                f"{self.nonempty_block_rows.shape[0]} entries"
            )
