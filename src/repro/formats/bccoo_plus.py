"""BCCOO+ -- vertically sliced BCCOO (paper section 2.3).

The matrix is cut into ``slice_count`` vertical slices which are stacked
top-down into a tall matrix ``B`` (Figure 4a); BCCOO is then applied to
``B``, **except** that column indices keep their coordinates in the
*original* matrix so the kernel can index the multiplied vector directly.

The win: all blocks of slice ``s`` read only the vector window
``x[s*W : (s+1)*W]``, so vector accesses gain locality (texture-cache hit
rate).  The cost: each slice produces its own partial result vector, so a
temporary buffer of ``slice_count * nrows`` values and an extra *combine*
kernel are needed (Figure 5) -- which is why the auto-tuner picks BCCOO+
only when the locality win dominates (the paper's tuner selects it for a
single matrix, LP).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatError, ValidationError
from ..util import as_coo_sorted, as_csr, ceil_div
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format
from .bccoo import BCCOOMatrix
from .blocking import BlockLayout, extract_blocks

__all__ = ["BCCOOPlusMatrix"]


@register_format
class BCCOOPlusMatrix(SparseFormat):
    """Vertical-slice-stacked BCCOO with original-matrix column indices.

    Attributes
    ----------
    stacked:
        The :class:`BCCOOMatrix` of the stacked matrix ``B``.  Its shape is
        ``(slice_count * padded_rows, original_cols)`` and its column
        indices are original-matrix block columns.
    slice_count, slice_width:
        Number of vertical slices and each slice's width in elements
        (a multiple of the block width).
    """

    name = "bccoo+"

    def __init__(self, shape, stacked: BCCOOMatrix, slice_count: int, slice_width: int):
        super().__init__(shape)
        self.stacked = stacked
        self.slice_count = int(slice_count)
        self.slice_width = int(slice_width)
        if self.slice_count < 1:
            raise FormatError(f"slice_count must be >= 1, got {slice_count}")

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_scipy(
        cls,
        matrix,
        slice_count: int = 2,
        block_height: int = 1,
        block_width: int = 1,
        bit_word_dtype=np.uint32,
        pad_multiple: int = 1,
        col_storage: str = "auto",
        delta_tile_size: int = 16,
        **params,
    ) -> "BCCOOPlusMatrix":
        csr = as_csr(matrix)
        nrows, ncols = csr.shape
        if slice_count < 1:
            raise FormatError(f"slice_count must be >= 1, got {slice_count}")

        # Slice width: cover all columns, aligned to the block width so a
        # block never straddles a slice boundary.
        width_blocks = ceil_div(ceil_div(ncols, block_width), slice_count)
        slice_width = max(width_blocks, 1) * block_width

        padded_block_rows = ceil_div(nrows, block_height)

        parts: list[BlockLayout] = []
        col_orig: list[np.ndarray] = []
        row_stacked: list[np.ndarray] = []
        for s in range(slice_count):
            c0 = s * slice_width
            c1 = min(c0 + slice_width, ncols)
            if c0 >= ncols:
                break
            sub = csr[:, c0:c1]
            if sub.nnz == 0:
                continue
            layout = extract_blocks(sub, block_height, block_width)
            parts.append(layout)
            # Column indices in the ORIGINAL matrix (paper: "the column
            # index array is generated based on the block coordinates in
            # the original matrix").
            col_orig.append(layout.block_col + c0 // block_width)
            row_stacked.append(layout.block_row + s * padded_block_rows)

        if parts:
            merged = BlockLayout(
                shape=(
                    slice_count * padded_block_rows * block_height,
                    ncols,
                ),
                block_height=block_height,
                block_width=block_width,
                block_row=np.concatenate(row_stacked).astype(np.int32),
                block_col=np.concatenate(
                    [p.block_col for p in parts]
                ).astype(np.int32),
                values=np.concatenate([p.values for p in parts]),
            )
            override = np.concatenate(col_orig).astype(np.int32)
        else:
            merged = BlockLayout(
                shape=(slice_count * padded_block_rows * block_height, ncols),
                block_height=block_height,
                block_width=block_width,
                block_row=np.empty(0, dtype=np.int32),
                block_col=np.empty(0, dtype=np.int32),
                values=np.empty((0, block_height, block_width), dtype=np.float64),
            )
            override = np.empty(0, dtype=np.int32)

        stacked = BCCOOMatrix.from_block_layout(
            merged,
            bit_word_dtype=bit_word_dtype,
            pad_multiple=pad_multiple,
            col_storage=col_storage,
            delta_tile_size=delta_tile_size,
            shape=(merged.shape[0], ncols),
            col_override=override,
        )
        return cls((nrows, ncols), stacked, slice_count, slice_width)

    # ------------------------------------------------------------------ #
    # Incremental value refresh
    # ------------------------------------------------------------------ #

    def with_values(self, matrix) -> "BCCOOPlusMatrix":
        """Value-only rebuild; see :meth:`BCCOOMatrix.with_values`.

        Entries are mapped into the stacked coordinate system (slice ``s``
        shifts block rows by ``s * padded_block_rows`` while column indices
        stay in the original matrix) and scattered through the stacked
        format's structural arrays.
        """
        coo = as_coo_sorted(matrix)
        if coo.shape != self.shape:
            raise ValidationError(
                f"with_values shape mismatch: format is {self.shape}, "
                f"new matrix is {coo.shape}"
            )
        if int(coo.nnz) != self.nnz:
            raise ValidationError(
                f"with_values nnz mismatch: format holds {self.nnz} "
                f"non-zeros, new matrix has {coo.nnz}"
            )
        h, w = self.block_height, self.block_width
        rows = coo.row.astype(np.int64)
        cols = coo.col.astype(np.int64)
        pbr = self.padded_rows_per_slice // h
        s = cols // self.slice_width
        stacked_brow = rows // h + s * pbr
        keys = stacked_brow * self.stacked.n_block_cols + cols // w
        values = self.stacked._scatter_values(keys, rows % h, cols % w, coo.data)
        stacked = BCCOOMatrix(
            self.stacked.shape,
            h,
            w,
            self.stacked.flags,
            self.stacked.col_block,
            values,
            self.stacked.nonempty_block_rows,
            self.stacked.col_storage,
            self.stacked.delta,
            self.stacked.nnz,
        )
        return BCCOOPlusMatrix(self.shape, stacked, self.slice_count, self.slice_width)

    # ------------------------------------------------------------------ #
    # Introspection / combine
    # ------------------------------------------------------------------ #

    @property
    def block_height(self) -> int:
        return self.stacked.block_height

    @property
    def block_width(self) -> int:
        return self.stacked.block_width

    @property
    def nblocks(self) -> int:
        return self.stacked.nblocks

    @property
    def nnz(self) -> int:
        return self.stacked.nnz

    @property
    def padded_rows_per_slice(self) -> int:
        """Stacked-row stride of one slice, in element rows."""
        return ceil_div(self.nrows, self.block_height) * self.block_height

    @property
    def temp_buffer_rows(self) -> int:
        """Rows of the intermediate result buffer the combine kernel reads."""
        return self.slice_count * self.padded_rows_per_slice

    def combine(self, y_stacked: np.ndarray) -> np.ndarray:
        """Host reference of the combine kernel: sum slice partials (Figure 5)."""
        stride = self.padded_rows_per_slice
        if y_stacked.shape[0] != self.slice_count * stride:
            raise FormatError(
                f"stacked result length {y_stacked.shape[0]} != "
                f"{self.slice_count} * {stride}"
            )
        folded = y_stacked.reshape(self.slice_count, stride).sum(axis=0)
        return folded[: self.nrows]

    def validate(self):
        """Run the runtime invariant checkers (stacked + slice checks).

        Returns a :class:`repro.fault.ValidationReport`.
        """
        from ..fault.validation import validate_format

        return validate_format(self)

    # ------------------------------------------------------------------ #
    # SparseFormat interface
    # ------------------------------------------------------------------ #

    def to_scipy(self) -> _sp.csr_matrix:
        b = self.stacked.to_scipy().tocoo()
        stride = self.padded_rows_per_slice
        rows = b.row % stride
        keep = rows < self.nrows
        return _sp.coo_matrix(
            (b.data[keep], (rows[keep], b.col[keep])), shape=self.shape
        ).tocsr()

    def footprint(
        self, sizes: ByteSizes = FP32, tile_size: int | None = None
    ) -> Footprint:
        """Stacked BCCOO footprint plus the temporary slice-result buffer."""
        fp = self.stacked.footprint(sizes, tile_size=tile_size)
        fp.add("slice_temp_buffer", self.temp_buffer_rows * sizes.value)
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        x = self._check_x(x)
        y_stacked = self.stacked.multiply(x)
        # stacked.multiply returns stacked.nrows values already.
        return self.combine(y_stacked)
