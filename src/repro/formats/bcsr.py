"""Blocked CSR (BCSR) format.

BCSR is CSR over non-zero blocks: a block-row pointer array, one column
index per block and dense ``h x w`` payloads.  It is CUSPARSE's blocked
baseline (the paper searched its block size per matrix) and, together
with BELL, the main prior art BCCOO's bit-flag compression improves on:
BCSR still spends a full pointer array on row information where BCCOO
spends one bit per block.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatError
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format
from .blocking import BlockLayout, blocks_to_coo_arrays, extract_blocks

__all__ = ["BCSRMatrix"]


@register_format
class BCSRMatrix(SparseFormat):
    """Block-row pointers + per-block column indices + dense blocks."""

    name = "bcsr"

    def __init__(self, shape, block_height, block_width, block_row_ptr, block_col, values):
        super().__init__(shape)
        self.block_height = int(block_height)
        self.block_width = int(block_width)
        self.block_row_ptr = np.asarray(block_row_ptr, dtype=np.int64)
        self.block_col = np.asarray(block_col, dtype=np.int32)
        self.values = np.asarray(values, dtype=np.float64)
        nb = self.block_col.shape[0]
        if self.values.shape != (nb, self.block_height, self.block_width):
            raise FormatError(
                f"values shape {self.values.shape} != "
                f"({nb}, {self.block_height}, {self.block_width})"
            )

    @property
    def nblocks(self) -> int:
        return int(self.block_col.shape[0])

    @property
    def n_block_rows(self) -> int:
        return int(self.block_row_ptr.shape[0] - 1)

    @property
    def nnz(self) -> int:
        return int(np.count_nonzero(self.values))

    def _layout(self) -> BlockLayout:
        lengths = np.diff(self.block_row_ptr)
        block_row = np.repeat(
            np.arange(self.n_block_rows, dtype=np.int32), lengths
        )
        return BlockLayout(
            shape=self.shape,
            block_height=self.block_height,
            block_width=self.block_width,
            block_row=block_row,
            block_col=self.block_col,
            values=self.values,
        )

    @classmethod
    def from_scipy(cls, matrix, block_height: int = 2, block_width: int = 2, **params):
        layout = extract_blocks(matrix, block_height, block_width)
        counts = np.bincount(layout.block_row, minlength=layout.n_block_rows)
        ptr = np.concatenate(([0], np.cumsum(counts)))
        return cls(
            layout.shape,
            block_height,
            block_width,
            ptr,
            layout.block_col,
            layout.values,
        )

    def to_scipy(self) -> _sp.csr_matrix:
        rows, cols, data = blocks_to_coo_arrays(self._layout())
        return _sp.coo_matrix((data, (rows, cols)), shape=self.shape).tocsr()

    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        fp = Footprint()
        fp.add("block_row_ptr", (self.n_block_rows + 1) * sizes.index)
        fp.add("block_col", self.nblocks * sizes.index)
        fp.add(
            "values",
            self.nblocks * self.block_height * self.block_width * sizes.value,
        )
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        x = self._check_x(x)
        layout = self._layout()
        h, w = self.block_height, self.block_width
        y = np.zeros(layout.n_block_rows * h, dtype=np.float64)
        if self.nblocks:
            base_c = layout.block_col.astype(np.int64) * w
            xg = np.zeros((self.nblocks, w), dtype=np.float64)
            for j in range(w):
                cols = base_c + j
                valid = cols < self.ncols
                xg[valid, j] = x[cols[valid]]
            contrib = np.einsum("bhw,bw->bh", self.values, xg)
            np.add.at(
                y.reshape(-1, h), layout.block_row.astype(np.intp), contrib
            )
        return y[: self.nrows]
