"""Blocked ELLPACK (BELL) format.

BELL pads every *block row* to the width (in blocks) of the widest block
row -- ELL lifted to blocks.  Like ELL it gives perfectly regular access
and suffers the same padding blow-up on skewed matrices, with the same
expansion budget guard.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatError, FormatNotApplicableError
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format
from .blocking import extract_blocks

__all__ = ["BELLMatrix"]

#: Padding marker in the block-column array.
PAD_BCOL: int = -1


@register_format
class BELLMatrix(SparseFormat):
    """Uniform-width blocked ELL.

    ``block_col`` is ``(K, n_block_rows)`` slot-major; ``values`` is
    ``(K, n_block_rows, h, w)``.  Unused slots carry ``PAD_BCOL`` / zeros.
    """

    name = "bell"

    DEFAULT_MAX_EXPANSION: float = 20.0

    def __init__(self, shape, block_height, block_width, block_col, values, nnz):
        super().__init__(shape)
        self.block_height = int(block_height)
        self.block_width = int(block_width)
        self.block_col = np.asarray(block_col, dtype=np.int32)
        self.values = np.asarray(values, dtype=np.float64)
        self._nnz = int(nnz)
        K, nbr = self.block_col.shape
        if self.values.shape != (K, nbr, self.block_height, self.block_width):
            raise FormatError(
                f"values shape {self.values.shape} != "
                f"({K}, {nbr}, {self.block_height}, {self.block_width})"
            )

    @property
    def K(self) -> int:
        return int(self.block_col.shape[0])

    @property
    def n_block_rows(self) -> int:
        return int(self.block_col.shape[1])

    @property
    def nnz(self) -> int:
        return self._nnz

    @classmethod
    def from_scipy(
        cls,
        matrix,
        block_height: int = 2,
        block_width: int = 2,
        max_expansion: float | None = None,
        **params,
    ):
        layout = extract_blocks(matrix, block_height, block_width)
        nbr = layout.n_block_rows
        counts = np.bincount(layout.block_row, minlength=nbr)
        K = int(counts.max()) if counts.size else 0
        budget = cls.DEFAULT_MAX_EXPANSION if max_expansion is None else max_expansion
        stored = K * nbr * block_height * block_width
        if layout.nnz and stored > budget * layout.nnz:
            raise FormatNotApplicableError(
                f"BELL padding stores {stored} slots for nnz={layout.nnz}; "
                f"matrix too skewed for BELL at {block_height}x{block_width}"
            )
        block_col = np.full((K, nbr), PAD_BCOL, dtype=np.int32)
        values = np.zeros((K, nbr, block_height, block_width), dtype=np.float64)
        if layout.nblocks:
            slots = (
                np.arange(layout.nblocks)
                - np.repeat(np.concatenate(([0], np.cumsum(counts[:-1]))), counts)
            )
            block_col[slots, layout.block_row] = layout.block_col
            values[slots, layout.block_row] = layout.values
        return cls(layout.shape, block_height, block_width, block_col, values, layout.nnz)

    def to_scipy(self) -> _sp.csr_matrix:
        h, w = self.block_height, self.block_width
        slots, brows = np.nonzero(self.block_col != PAD_BCOL)
        if slots.size == 0:
            return _sp.csr_matrix(self.shape)
        bcols = self.block_col[slots, brows].astype(np.int64)
        blocks = self.values[slots, brows]  # (n, h, w)
        in_r, in_c = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")
        rows = (brows.astype(np.int64)[:, None, None] * h + in_r[None]).ravel()
        cols = (bcols[:, None, None] * w + in_c[None]).ravel()
        data = blocks.ravel()
        mask = data != 0.0
        return _sp.coo_matrix(
            (data[mask], (rows[mask], cols[mask])), shape=self.shape
        ).tocsr()

    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        fp = Footprint()
        nslots = self.K * self.n_block_rows
        fp.add("block_col", nslots * sizes.index)
        fp.add(
            "values",
            nslots * self.block_height * self.block_width * sizes.value,
        )
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        x = self._check_x(x)
        h, w = self.block_height, self.block_width
        y = np.zeros(self.n_block_rows * h, dtype=np.float64)
        for k in range(self.K):
            bcols = self.block_col[k].astype(np.int64)
            active = bcols != PAD_BCOL
            if not active.any():
                continue
            xg = np.zeros((self.n_block_rows, w), dtype=np.float64)
            base_c = bcols[active] * w
            for j in range(w):
                cols = base_c + j
                valid = cols < self.ncols
                idx = np.flatnonzero(active)[valid]
                xg[idx, j] = x[cols[valid]]
            contrib = np.einsum("bhw,bw->bh", self.values[k], xg)
            y += contrib.ravel()
        return y[: self.nrows]
