"""Bit-flag compression of the row-index array (the heart of BCCOO).

The paper replaces the per-block row-index array of blocked COO with one
bit per block:

* bit ``1``  -- the block is **not** the last non-zero block of its block
  row ("continue"),
* bit ``0``  -- the block **is** the last one: a *row stop*.

The row index of block ``i`` is then the number of row stops among blocks
``0 .. i-1`` -- i.e. an exclusive scan over the bitwise inverse of the
flags (exactly the auxiliary computation of paper section 2.4).  The array
is padded with ``1`` bits to a multiple of the workgroup working set so
kernels never bounds-check (section 2.2); padding extends the final open
segment with zero-valued blocks and never closes it.

Empty block rows cannot be expressed by the flags alone (a stop ordinal
counts only *non-empty* rows), so formats additionally keep the sorted
list of non-empty block rows and scatter results through it; with no empty
rows that list is the identity and costs nothing.

Internally we manipulate flags as a boolean ``stops`` array
(``stops[i] == True`` <=> paper bit ``0``) because NumPy boolean masks are
the natural vectorized representation; :func:`pack` / :func:`unpack`
convert to and from the device bit packing with a selectable word type
(``uint8``/``uint16``/``uint32`` -- a Table 1 tuning parameter, since the
word type sets both the footprint and how many loads a thread tile needs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FormatError
from ..util import check_1d, round_up

__all__ = [
    "BitFlagArray",
    "stops_from_block_rows",
    "pack",
    "unpack",
    "reconstruct_row_ordinals",
    "first_result_entries",
    "WORD_DTYPES",
]

#: Bit-flag word types the auto-tuner may select (Table 1).
WORD_DTYPES: tuple[np.dtype, ...] = (
    np.dtype(np.uint8),
    np.dtype(np.uint16),
    np.dtype(np.uint32),
)


@dataclass
class BitFlagArray:
    """Packed bit flags plus the metadata needed to interpret them.

    Attributes
    ----------
    words:
        Packed flag words, LSB-first within each word, paper bit
        convention (``1`` = continue, ``0`` = row stop).
    nbits:
        Logical (padded) number of flags.
    n_valid:
        Number of real blocks; flags ``n_valid .. nbits-1`` are padding
        and are always ``1``.
    """

    words: np.ndarray
    nbits: int
    n_valid: int

    @property
    def word_dtype(self) -> np.dtype:
        return self.words.dtype

    @property
    def bits_per_word(self) -> int:
        return self.words.dtype.itemsize * 8

    @property
    def nbytes(self) -> int:
        """Device bytes occupied by the packed words."""
        return int(self.words.nbytes)

    @property
    def n_row_stops(self) -> int:
        """Number of zero bits among the valid flags."""
        return int(np.count_nonzero(unpack(self)[: self.n_valid]))

    def stops(self) -> np.ndarray:
        """Boolean stop mask over all ``nbits`` (padding included)."""
        return unpack(self)


def stops_from_block_rows(block_row: np.ndarray) -> np.ndarray:
    """Derive the boolean row-stop mask from a sorted block-row array.

    ``stops[i]`` is True when block ``i`` is the last block of its block
    row.  The final block is always a stop.  ``block_row`` must be
    non-decreasing (row-major block order).
    """
    block_row = check_1d("block_row", block_row)
    n = block_row.shape[0]
    stops = np.empty(n, dtype=bool)
    if n == 0:
        return stops
    diffs = np.diff(block_row)
    if np.any(diffs < 0):
        raise FormatError("block_row must be non-decreasing")
    stops[:-1] = diffs != 0
    stops[-1] = True
    return stops


def pack(
    stops: np.ndarray,
    word_dtype=np.uint32,
    pad_multiple: int = 1,
) -> BitFlagArray:
    """Pack a boolean stop mask into paper-convention bit-flag words.

    Parameters
    ----------
    stops:
        ``stops[i]`` True <=> row stop (paper bit 0).
    word_dtype:
        One of :data:`WORD_DTYPES`.
    pad_multiple:
        The flag array is first padded with continue bits to a multiple
        of this (the workgroup working-set size), then to a whole number
        of words.
    """
    word_dtype = np.dtype(word_dtype)
    if word_dtype not in WORD_DTYPES:
        raise FormatError(
            f"bit-flag word dtype must be one of {[d.name for d in WORD_DTYPES]}, "
            f"got {word_dtype.name}"
        )
    if pad_multiple < 1:
        raise FormatError(f"pad_multiple must be >= 1, got {pad_multiple}")
    stops = check_1d("stops", stops).astype(bool)
    n_valid = stops.shape[0]

    bits_per_word = word_dtype.itemsize * 8
    nbits = round_up(max(n_valid, 1), pad_multiple)
    nbits = round_up(nbits, bits_per_word)

    # Paper convention: continue = 1, stop = 0; padding = 1.
    bits = np.ones(nbits, dtype=np.uint8)
    bits[:n_valid] = ~stops

    # np.packbits packs MSB-first per byte; we want LSB-first so that flag
    # i lives at bit (i % bits_per_word) of word (i // bits_per_word), the
    # layout a GPU kernel would index with shifts.
    packed_bytes = np.packbits(bits.reshape(-1, 8)[:, ::-1], axis=1).ravel()
    if word_dtype != np.uint8:
        words = packed_bytes.copy().view(word_dtype.newbyteorder("<"))
        words = words.astype(word_dtype)
    else:
        words = packed_bytes.copy()
    return BitFlagArray(words=words, nbits=nbits, n_valid=n_valid)


def unpack(flags: BitFlagArray) -> np.ndarray:
    """Unpack to the boolean stop mask over all ``nbits`` positions."""
    little = flags.words.astype(flags.word_dtype.newbyteorder("<"), copy=False)
    raw = little.view(np.uint8)
    # np.unpackbits is MSB-first per byte; reverse each byte's bits to
    # recover the LSB-first layout used by pack().
    bits = np.unpackbits(raw).reshape(-1, 8)[:, ::-1].ravel()
    stops = bits[: flags.nbits] == 0
    return stops


def reconstruct_row_ordinals(stops: np.ndarray) -> np.ndarray:
    """Row *ordinal* (index among non-empty block rows) of every block.

    This is the exclusive prefix sum over the stop mask -- the paper's
    "scan on the bitwise inverse of the bit flag array".  With no empty
    block rows the ordinal equals the block row index.
    """
    stops = check_1d("stops", stops).astype(np.int64)
    ordinals = np.empty(stops.shape[0], dtype=np.int64)
    if stops.shape[0] == 0:
        return ordinals
    ordinals[0] = 0
    np.cumsum(stops[:-1], out=ordinals[1:])
    return ordinals


def first_result_entries(stops: np.ndarray, tile_size: int) -> np.ndarray:
    """Paper section 2.4: the result-row ordinal of each thread's first output.

    With every thread processing ``tile_size`` consecutive blocks, thread
    ``t``'s first partial sum belongs to the row whose ordinal equals the
    number of row stops in blocks ``0 .. t*tile_size - 1``.

    ``stops`` must already be padded to a multiple of ``tile_size``.
    """
    stops = check_1d("stops", stops)
    if tile_size < 1:
        raise FormatError(f"tile_size must be >= 1, got {tile_size}")
    if stops.shape[0] % tile_size != 0:
        raise FormatError(
            f"stop mask length {stops.shape[0]} is not a multiple of tile size {tile_size}"
        )
    per_tile = stops.reshape(-1, tile_size).sum(axis=1, dtype=np.int64)
    entries = np.empty(per_tile.shape[0], dtype=np.int64)
    if entries.shape[0]:
        entries[0] = 0
        np.cumsum(per_tile[:-1], out=entries[1:])
    return entries
