"""Non-zero block extraction shared by all blocked formats.

A *non-zero block* of size ``h x w`` is an aligned tile of the matrix that
contains at least one non-zero.  Blocked formats (BCOO/BCCOO, BCSR, BELL)
store every such tile densely, so a block containing zeros pays *fill-in*:
explicitly stored zeros.  The trade-off the paper's auto-tuner explores is
exactly fill-in (more value bytes) against index compression (one
row/column index per block instead of per non-zero).

The extractor is fully vectorized: one pass of integer arithmetic over the
COO triplets, one ``np.unique`` for block discovery, and one scatter for
the dense payload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FormatError
from ..util import as_coo_sorted, ceil_div

__all__ = ["BlockLayout", "extract_blocks", "blocks_to_coo_arrays"]


@dataclass
class BlockLayout:
    """Dense storage of the non-zero blocks of a matrix.

    Blocks are ordered row-major by ``(block_row, block_col)`` -- the order
    every blocked format in this package assumes.

    Attributes
    ----------
    shape:
        Logical (unpadded) matrix shape.
    block_height, block_width:
        Tile dimensions ``h`` and ``w``.
    block_row, block_col:
        Per-block coordinates in units of blocks, ``int32``.
    values:
        ``(nblocks, h, w)`` float64 array; positions that were zero in the
        source matrix hold explicit ``0.0`` (fill-in).
    """

    shape: tuple[int, int]
    block_height: int
    block_width: int
    block_row: np.ndarray
    block_col: np.ndarray
    values: np.ndarray

    @property
    def nblocks(self) -> int:
        return int(self.block_row.shape[0])

    @property
    def n_block_rows(self) -> int:
        return ceil_div(self.shape[0], self.block_height)

    @property
    def n_block_cols(self) -> int:
        return ceil_div(self.shape[1], self.block_width)

    @property
    def stored_values(self) -> int:
        """Number of value slots stored, including fill-in zeros."""
        return self.nblocks * self.block_height * self.block_width

    @property
    def nnz(self) -> int:
        """True non-zero count (fill-in excluded)."""
        return int(np.count_nonzero(self.values))

    @property
    def fill_ratio(self) -> float:
        """Stored slots divided by true non-zeros (>= 1; 1 = no fill-in)."""
        nnz = self.nnz
        return self.stored_values / nnz if nnz else 1.0

    def validate(self) -> None:
        """Check internal consistency; raises :class:`FormatError`."""
        nb = self.nblocks
        if self.block_col.shape != (nb,):
            raise FormatError("block_row/block_col length mismatch")
        if self.values.shape != (nb, self.block_height, self.block_width):
            raise FormatError(
                f"values shape {self.values.shape} != "
                f"({nb}, {self.block_height}, {self.block_width})"
            )
        if nb:
            key = self.block_row.astype(np.int64) * self.n_block_cols + self.block_col
            if np.any(np.diff(key) <= 0):
                raise FormatError("blocks are not strictly row-major ordered")
            if self.block_row.min() < 0 or self.block_row.max() >= self.n_block_rows:
                raise FormatError("block_row out of range")
            if self.block_col.min() < 0 or self.block_col.max() >= self.n_block_cols:
                raise FormatError("block_col out of range")


def extract_blocks(matrix, block_height: int, block_width: int) -> BlockLayout:
    """Extract the aligned ``h x w`` non-zero blocks of ``matrix``.

    Parameters
    ----------
    matrix:
        Anything :func:`repro.util.as_coo_sorted` accepts.
    block_height, block_width:
        Tile dimensions; must be positive.

    Returns
    -------
    BlockLayout
        Blocks in row-major order with dense fill-in payload.
    """
    if block_height < 1 or block_width < 1:
        raise FormatError(
            f"block dimensions must be >= 1, got {block_height}x{block_width}"
        )
    coo = as_coo_sorted(matrix)
    rows = coo.row.astype(np.int64)
    cols = coo.col.astype(np.int64)
    data = coo.data.astype(np.float64)

    n_block_cols = ceil_div(coo.shape[1], block_width)

    brow = rows // block_height
    bcol = cols // block_width
    key = brow * n_block_cols + bcol

    unique_keys, inverse = np.unique(key, return_inverse=True)
    nblocks = unique_keys.shape[0]

    values = np.zeros((nblocks, block_height, block_width), dtype=np.float64)
    in_r = (rows % block_height).astype(np.intp)
    in_c = (cols % block_width).astype(np.intp)
    # Duplicates were already merged by as_coo_sorted; plain assignment works,
    # but np.add.at keeps the function safe if callers bypass canonicalization.
    np.add.at(values, (inverse.astype(np.intp), in_r, in_c), data)

    layout = BlockLayout(
        shape=(int(coo.shape[0]), int(coo.shape[1])),
        block_height=int(block_height),
        block_width=int(block_width),
        block_row=(unique_keys // n_block_cols).astype(np.int32),
        block_col=(unique_keys % n_block_cols).astype(np.int32),
        values=values,
    )
    layout.validate()
    return layout


def blocks_to_coo_arrays(
    layout: BlockLayout,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Expand a :class:`BlockLayout` back to element COO triplets.

    Fill-in zeros are dropped, making the round trip lossless with respect
    to the original matrix.

    Returns ``(rows, cols, data)``.
    """
    h, w = layout.block_height, layout.block_width
    nb = layout.nblocks
    if nb == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), np.empty(0, dtype=np.float64)

    base_r = layout.block_row.astype(np.int64) * h
    base_c = layout.block_col.astype(np.int64) * w
    in_r, in_c = np.meshgrid(np.arange(h), np.arange(w), indexing="ij")

    rows = (base_r[:, None, None] + in_r[None]).ravel()
    cols = (base_c[:, None, None] + in_c[None]).ravel()
    data = layout.values.ravel()

    mask = data != 0.0
    return rows[mask], cols[mask], data[mask]
