"""COCKTAIL: clSpMV's partitioned multi-format matrix (Su & Keutzer [16]).

The paper's main prior-art comparator "uses different formats to
represent different partitions of a matrix".  This module makes that a
first-class :class:`SparseFormat`: rows are partitioned by length, each
partition stored in the single format whose footprint prices it best
(regular formats for the dense head, CSR/COO for the irregular tail),
with every partition kept at the full matrix shape over disjoint rows so
partial products combine by addition.

The figure benchmarks use the *time-based* selection in
:mod:`repro.core.baselines` (clSpMV selects by benchmarked speed); this
class is the storage-level counterpart -- footprint-driven, inspectable,
and reusable as a normal format.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatError, FormatNotApplicableError
from ..util import as_csr
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format
from .coo import COOMatrix
from .csr import CSRMatrix
from .dia import DIAMatrix
from .ell import ELLMatrix
from .merge_csr import MergeCSRMatrix
from .rgcsr import RGCSRMatrix
from .sell import SELLMatrix

__all__ = ["CocktailMatrix"]

#: Quantiles at which the head/tail split is tried.
_SPLITS = (0.5, 0.7, 0.9, 0.97)

#: Row-length skew (max over mean of the non-empty rows) beyond which
#: the long-row partition is stored merge-path instead of the cheapest
#: irregular format: a row-parallel CSR kernel is imbalance-bound there,
#: and merge-path's extra team coordinates (~one index per 16-32
#: non-zeros) are a rounding error next to the stalled warps.
_MERGE_SKEW = 8.0


def _select_rows(csr, row_mask: np.ndarray):
    """Keep only masked rows (shape preserved, other rows empty)."""
    lengths = np.diff(csr.indptr)
    keep = np.repeat(row_mask, lengths)
    new_lengths = np.where(row_mask, lengths, 0)
    indptr = np.concatenate(([0], np.cumsum(new_lengths)))
    return _sp.csr_matrix(
        (csr.data[keep], csr.indices[keep], indptr), shape=csr.shape
    )


def _best_head(part, sizes: ByteSizes):
    """Cheapest regular format for the short-row partition."""
    best = None
    for cls, kw, label in (
        (DIAMatrix, {}, "dia"),
        (ELLMatrix, {}, "ell"),
        (SELLMatrix, {"slice_height": 32}, "sell32"),
        (RGCSRMatrix, {}, "rgcsr"),
    ):
        try:
            fmt = cls.from_scipy(part, **kw)
        except FormatNotApplicableError:
            continue
        nbytes = fmt.footprint_bytes(sizes)
        if best is None or nbytes < best[0]:
            best = (nbytes, fmt, label)
    return best


def _best_tail(part, sizes: ByteSizes):
    """Cheapest irregular format for the long-row partition.

    Footprint decides, with one load-balance exception: when the
    partition's non-empty row lengths are skewed past ``_MERGE_SKEW``,
    the merge-path storage is selected although its team coordinates
    cost a few extra bytes -- the partition kernel's time is dominated
    by warp stalls that equal-work teams remove.
    """
    lengths = np.diff(part.indptr)
    nonzero = lengths[lengths > 0]
    if nonzero.size and float(nonzero.max()) >= _MERGE_SKEW * float(
        nonzero.mean()
    ):
        fmt = MergeCSRMatrix.from_scipy(part)
        return (fmt.footprint_bytes(sizes), fmt, "merge_csr")
    best = None
    for cls, label in ((CSRMatrix, "csr"), (COOMatrix, "coo")):
        fmt = cls.from_scipy(part)
        nbytes = fmt.footprint_bytes(sizes)
        if best is None or nbytes < best[0]:
            best = (nbytes, fmt, label)
    return best


@register_format
class CocktailMatrix(SparseFormat):
    """Row-partitioned multi-format storage.

    Attributes
    ----------
    partitions:
        ``[(label, format_instance)]``; every instance covers the full
        matrix shape with disjoint non-empty rows.
    recipe:
        Human-readable description, e.g. ``"ell@0.90+csr"`` or
        ``"single:csr"`` when no split paid off.
    """

    name = "cocktail"

    def __init__(self, shape, partitions, recipe: str, nnz: int):
        super().__init__(shape)
        if not partitions:
            raise FormatError("cocktail needs at least one partition")
        self.partitions = list(partitions)
        self.recipe = recipe
        self._nnz = int(nnz)

    @property
    def nnz(self) -> int:
        return self._nnz

    @classmethod
    def from_scipy(cls, matrix, sizes: ByteSizes = FP32, **params) -> "CocktailMatrix":
        csr = as_csr(matrix)
        nrows = csr.shape[0]
        lengths = np.diff(csr.indptr)
        order = np.argsort(lengths, kind="stable")

        # Baseline: the best single irregular format.
        single = _best_tail(csr, sizes)
        assert single is not None
        best_total, best_parts, best_recipe = (
            single[0],
            [(single[2], single[1])],
            f"single:{single[2]}",
        )
        single_regular = _best_head(csr, sizes)
        if single_regular is not None and single_regular[0] < best_total:
            best_total = single_regular[0]
            best_parts = [(single_regular[2], single_regular[1])]
            best_recipe = f"single:{single_regular[2]}"

        for frac in _SPLITS:
            cut = int(nrows * frac)
            if cut in (0, nrows):
                continue
            head_mask = np.zeros(nrows, dtype=bool)
            head_mask[order[:cut]] = True
            head = _select_rows(csr, head_mask)
            tail = _select_rows(csr, ~head_mask)
            if head.nnz == 0 or tail.nnz == 0:
                continue
            h = _best_head(head, sizes)
            if h is None:
                continue
            t = _best_tail(tail, sizes)
            total = h[0] + t[0] + nrows * sizes.index  # + partition map
            if total < best_total:
                best_total = total
                best_parts = [(h[2], h[1]), (t[2], t[1])]
                best_recipe = f"{h[2]}@{frac:.2f}+{t[2]}"

        return cls(csr.shape, best_parts, best_recipe, int(csr.nnz))

    def to_scipy(self) -> _sp.csr_matrix:
        total = None
        for _, fmt in self.partitions:
            part = fmt.to_scipy()
            total = part if total is None else total + part
        out = as_csr(total)
        return out

    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        fp = Footprint()
        for label, fmt in self.partitions:
            for name, nbytes in fmt.footprint(sizes).arrays.items():
                fp.add(f"{label}_{name}", nbytes)
        if len(self.partitions) > 1:
            fp.add("partition_map", self.nrows * sizes.index)
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        x = self._check_x(x)
        y = np.zeros(self.nrows, dtype=np.float64)
        for _, fmt in self.partitions:
            y += fmt.multiply(x)
        return y
