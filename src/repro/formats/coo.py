"""Common coordinate (COO) format -- the baseline BCCOO builds on.

COO stores an explicit ``(row, col, value)`` triplet per non-zero.  As the
paper notes it is immune to load imbalance (segmented reduction
parallelizes over non-zeros, not rows) but has the worst memory footprint:
eight index bytes per four value bytes.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..util import as_coo_sorted
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format

__all__ = ["COOMatrix"]


@register_format
class COOMatrix(SparseFormat):
    """Row-major sorted coordinate storage."""

    name = "coo"

    def __init__(self, shape, row, col, data):
        super().__init__(shape)
        self.row = np.asarray(row, dtype=np.int32)
        self.col = np.asarray(col, dtype=np.int32)
        self.data = np.asarray(data, dtype=np.float64)
        if not (self.row.shape == self.col.shape == self.data.shape):
            from ..errors import FormatError

            raise FormatError("row/col/data arrays must have equal length")

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    @classmethod
    def from_scipy(cls, matrix, **params) -> "COOMatrix":
        coo = as_coo_sorted(matrix)
        return cls(coo.shape, coo.row, coo.col, coo.data)

    def to_scipy(self) -> _sp.csr_matrix:
        return _sp.coo_matrix(
            (self.data, (self.row, self.col)), shape=self.shape
        ).tocsr()

    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        fp = Footprint()
        fp.add("row_index", self.nnz * sizes.index)
        fp.add("col_index", self.nnz * sizes.index)
        fp.add("values", self.nnz * sizes.value)
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        x = self._check_x(x)
        y = np.zeros(self.nrows, dtype=np.float64)
        np.add.at(y, self.row, self.data * x[self.col])
        return y
