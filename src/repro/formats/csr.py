"""Compressed sparse row (CSR) format.

CSR compresses COO's row-index array into an ``nrows + 1`` pointer array.
It is the default format of CUSPARSE and the substrate for the row-based
GPU kernels (scalar-CSR: one thread per row; vector-CSR: one warp per
row) whose load imbalance the paper's segmented-scan approach removes.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..util import as_csr
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format

__all__ = ["CSRMatrix"]


@register_format
class CSRMatrix(SparseFormat):
    """Canonical CSR: ``row_ptr``, ``col_index``, ``values``."""

    name = "csr"

    def __init__(self, shape, row_ptr, col_index, data):
        super().__init__(shape)
        self.row_ptr = np.asarray(row_ptr, dtype=np.int64)
        self.col_index = np.asarray(col_index, dtype=np.int32)
        self.data = np.asarray(data, dtype=np.float64)
        if self.row_ptr.shape[0] != self.nrows + 1:
            from ..errors import FormatError

            raise FormatError(
                f"row_ptr length {self.row_ptr.shape[0]} != nrows+1 {self.nrows + 1}"
            )
        if self.col_index.shape != self.data.shape:
            from ..errors import FormatError

            raise FormatError("col_index/data length mismatch")

    @property
    def nnz(self) -> int:
        return int(self.data.shape[0])

    def row_lengths(self) -> np.ndarray:
        """Per-row non-zero counts (drives imbalance in row-based kernels)."""
        return np.diff(self.row_ptr)

    @classmethod
    def from_scipy(cls, matrix, **params) -> "CSRMatrix":
        csr = as_csr(matrix)
        return cls(csr.shape, csr.indptr, csr.indices, csr.data)

    def to_scipy(self) -> _sp.csr_matrix:
        return _sp.csr_matrix(
            (self.data, self.col_index, self.row_ptr), shape=self.shape
        )

    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        fp = Footprint()
        fp.add("row_ptr", (self.nrows + 1) * sizes.index)
        fp.add("col_index", self.nnz * sizes.index)
        fp.add("values", self.nnz * sizes.value)
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        x = self._check_x(x)
        products = self.data * x[self.col_index]
        # reduceat needs non-empty input; guard the all-empty matrix.
        if self.nnz == 0:
            return np.zeros(self.nrows, dtype=np.float64)
        y = np.zeros(self.nrows, dtype=np.float64)
        lengths = self.row_lengths()
        nonempty = lengths > 0
        starts = self.row_ptr[:-1][nonempty]
        y[nonempty] = np.add.reduceat(products, starts)
        return y
