"""Column-index delta compression (paper section 2.2, last paragraph).

The column-index array of BCCOO is compressed with a *segmented difference*
whose segments are the per-thread working sets (thread-level tiles), so a
thread reconstructs its own columns with a sequential prefix sum and no
inter-thread dependency.  Differences are stored as signed 16-bit values.
A difference outside the ``int16`` range is replaced by the sentinel
``-1``, meaning "fetch this index from the uncompressed array".

Implementation notes:

* The paper literally uses ``-1`` as the sentinel.  A genuine difference
  of ``-1`` therefore also takes the fallback path -- which is *correct by
  construction* (the uncompressed array always holds the truth), merely
  costing one extra uncompressed read.  We reproduce that behaviour.
* Each tile's *starting* column is kept absolute in a dedicated
  ``start_cols`` array (one ``int32`` per thread tile, a contiguous
  stream costing ``4/tile`` bytes per block).  Encoding the start as a
  difference from zero would overflow ``int16`` for every block past
  column 32767 and poison wide matrices with one forced fallback per
  tile; a per-tile base keeps the paper's thread-locality property
  while letting the in-tile deltas carry the compression.

When the matrix has fewer than 65536 columns the framework instead stores
the raw indices as ``unsigned short`` and skips delta compression
entirely (paper section 4); that choice lives in the BCCOO constructor,
not here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import FormatError
from ..util import check_1d

__all__ = ["DeltaColumns", "compress_columns", "decompress_columns"]

#: Sentinel stored when a difference does not fit in int16 (paper: -1).
SENTINEL: int = -1
_INT16_MIN = -32768
_INT16_MAX = 32767


@dataclass
class DeltaColumns:
    """Delta-compressed column indices.

    Attributes
    ----------
    deltas:
        ``int16`` per-block in-tile differences, with :data:`SENTINEL`
        marking fallback entries.  The entry at each tile start is 0 by
        construction (the absolute base lives in ``start_cols``).
    start_cols:
        ``int32`` absolute column of each tile's first block.
    fallback:
        The full uncompressed ``int32`` column array.  On a real device
        it is only *read* at sentinel positions; it must still be
        resident, so the bandwidth model (not the footprint model) is
        where compression pays -- matching the paper, which counts the
        col-index array at ``short`` size in Table 3.
    tile_size:
        The segment length used for the segmented difference.
    """

    deltas: np.ndarray
    start_cols: np.ndarray
    fallback: np.ndarray
    tile_size: int

    @property
    def n(self) -> int:
        return int(self.deltas.shape[0])

    @property
    def n_tiles(self) -> int:
        return int(self.start_cols.shape[0])

    @property
    def n_fallbacks(self) -> int:
        """How many entries require the uncompressed-array read."""
        return int(np.count_nonzero(self.deltas == SENTINEL))

    @property
    def fallback_fraction(self) -> float:
        return self.n_fallbacks / self.n if self.n else 0.0


def compress_columns(col_index: np.ndarray, tile_size: int) -> DeltaColumns:
    """Segmented-difference compress ``col_index`` with ``tile_size`` segments.

    ``col_index`` length must be a multiple of ``tile_size`` (BCCOO pads
    its arrays to the workgroup working set before compressing).
    """
    col_index = check_1d("col_index", col_index).astype(np.int64)
    if tile_size < 1:
        raise FormatError(f"tile_size must be >= 1, got {tile_size}")
    if col_index.shape[0] % tile_size != 0:
        raise FormatError(
            f"column array length {col_index.shape[0]} is not a multiple of "
            f"tile size {tile_size}"
        )
    if col_index.size and col_index.min() < 0:
        raise FormatError("column indices must be non-negative")

    n = col_index.shape[0]
    diffs = np.zeros(n, dtype=np.int64)
    starts = np.arange(0, n, tile_size)
    if n:
        diffs[1:] = col_index[1:] - col_index[:-1]
        # Tile starts carry delta 0; their absolute base is start_cols.
        diffs[starts] = 0

    out_of_range = (diffs < _INT16_MIN) | (diffs > _INT16_MAX)
    # A true difference equal to the sentinel is indistinguishable from a
    # fallback marker, so it must take the fallback path too.
    collides = diffs == SENTINEL
    deltas = diffs.copy()
    deltas[out_of_range | collides] = SENTINEL

    return DeltaColumns(
        deltas=deltas.astype(np.int16),
        start_cols=col_index[starts].astype(np.int32) if n else np.empty(0, np.int32),
        fallback=col_index.astype(np.int32),
        tile_size=int(tile_size),
    )


def decompress_columns(dc: DeltaColumns) -> np.ndarray:
    """Reconstruct the exact column-index array (``int32``).

    Mirrors what a device thread does: start from its tile's base
    column, run a sequential prefix sum over its deltas, and re-fetch
    from the fallback array (re-basing the running value) at sentinels.
    """
    n = dc.n
    if n == 0:
        return np.empty(0, dtype=np.int32)

    deltas = dc.deltas.astype(np.int64)
    is_sentinel = deltas == SENTINEL

    tiles = deltas.reshape(-1, dc.tile_size).copy()
    sent_tiles = is_sentinel.reshape(-1, dc.tile_size)
    fb_tiles = dc.fallback.astype(np.int64).reshape(-1, dc.tile_size)

    # Seed each tile with its absolute base, then fix sentinel positions
    # so a plain per-tile cumsum reproduces the sequential walk: replace
    # each sentinel delta with (true_value - prefix_before_it).
    tiles[:, 0] = dc.start_cols.astype(np.int64)
    cums = np.cumsum(tiles, axis=1)
    rows_with_sent = np.flatnonzero(sent_tiles.any(axis=1))
    for r in rows_with_sent:
        row = tiles[r]
        for p in np.flatnonzero(sent_tiles[r]):
            prefix = row[:p].sum()
            row[p] = fb_tiles[r, p] - prefix
        cums[r] = np.cumsum(row)

    return cums.ravel().astype(np.int32)
