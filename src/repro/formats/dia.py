"""Diagonal (DIA) format.

DIA stores whole (off-)diagonals densely plus one offset per stored
diagonal.  It is the most compact format for stencil-structured matrices
(QCD, Epidemiology classes) and inapplicable for matrices whose non-zeros
scatter across many diagonals -- reproduced, like ELL, with an expansion
budget.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatNotApplicableError
from ..util import as_coo_sorted
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format

__all__ = ["DIAMatrix"]


@register_format
class DIAMatrix(SparseFormat):
    """Dense-diagonal storage: ``offsets`` plus a ``(ndiags, nrows)`` band.

    Entry ``(i, i + offsets[d])`` lives at ``bands[d, i]``.  Slots whose
    column falls outside the matrix are zero padding.
    """

    name = "dia"

    #: Stored band slots may not exceed this multiple of nnz.
    DEFAULT_MAX_EXPANSION: float = 20.0

    def __init__(self, shape, offsets, bands, nnz):
        super().__init__(shape)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.bands = np.asarray(bands, dtype=np.float64)
        self._nnz = int(nnz)
        if self.bands.shape != (self.offsets.shape[0], self.nrows):
            from ..errors import FormatError

            raise FormatError(
                f"bands shape {self.bands.shape} != "
                f"({self.offsets.shape[0]}, {self.nrows})"
            )

    @property
    def ndiags(self) -> int:
        return int(self.offsets.shape[0])

    @property
    def nnz(self) -> int:
        return self._nnz

    @classmethod
    def from_scipy(cls, matrix, max_expansion: float | None = None, **params):
        coo = as_coo_sorted(matrix)
        offs = np.unique(coo.col.astype(np.int64) - coo.row.astype(np.int64))
        budget = cls.DEFAULT_MAX_EXPANSION if max_expansion is None else max_expansion
        if coo.nnz and offs.shape[0] * coo.shape[0] > budget * coo.nnz:
            raise FormatNotApplicableError(
                f"DIA would store {offs.shape[0]} diagonals x {coo.shape[0]} rows "
                f"for nnz={coo.nnz}; matrix is not diagonal-structured"
            )
        bands = np.zeros((offs.shape[0], coo.shape[0]), dtype=np.float64)
        diag_of = np.searchsorted(offs, coo.col.astype(np.int64) - coo.row)
        bands[diag_of, coo.row] = coo.data
        return cls(coo.shape, offs, bands, coo.nnz)

    def to_scipy(self) -> _sp.csr_matrix:
        rows_list = []
        cols_list = []
        data_list = []
        row_idx = np.arange(self.nrows, dtype=np.int64)
        for d, off in enumerate(self.offsets):
            cols = row_idx + off
            valid = (cols >= 0) & (cols < self.ncols)
            vals = self.bands[d]
            keep = valid & (vals != 0.0)
            rows_list.append(row_idx[keep])
            cols_list.append(cols[keep])
            data_list.append(vals[keep])
        if not rows_list:
            return _sp.csr_matrix(self.shape)
        return _sp.coo_matrix(
            (
                np.concatenate(data_list),
                (np.concatenate(rows_list), np.concatenate(cols_list)),
            ),
            shape=self.shape,
        ).tocsr()

    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        fp = Footprint()
        fp.add("offsets", self.ndiags * sizes.index)
        fp.add("bands", self.ndiags * self.nrows * sizes.value)
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        x = self._check_x(x)
        y = np.zeros(self.nrows, dtype=np.float64)
        row_idx = np.arange(self.nrows, dtype=np.int64)
        for d, off in enumerate(self.offsets):
            cols = row_idx + off
            valid = (cols >= 0) & (cols < self.ncols)
            y[valid] += self.bands[d, valid] * x[cols[valid]]
        return y
