"""ELLPACK (ELL) format.

ELL pads every row to the length of the longest row, producing two dense
``nrows x K`` arrays (columns and values) stored column-major so a
one-thread-per-row GPU kernel reads them fully coalesced.  It is ideal for
regular matrices (the paper's Epidemiology, 4 non-zeros per row) and
catastrophic for skewed ones -- Table 3 marks several web/circuit matrices
``N/A`` because ``K`` explodes.  We reproduce that with an expansion
budget: construction raises :class:`FormatNotApplicableError` when the
padded size exceeds ``max_expansion`` times the non-zero count.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatNotApplicableError
from ..util import as_csr
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format

__all__ = ["ELLMatrix"]

#: Padding column index marking an unused slot.
PAD_COL: int = -1


@register_format
class ELLMatrix(SparseFormat):
    """Column-major padded storage with uniform row width ``K``.

    Attributes
    ----------
    col_index, values:
        ``(K, nrows)`` arrays (slot-major, i.e. transposed relative to the
        logical row layout) -- the coalesced device layout.  Unused slots
        have ``col_index == PAD_COL`` and ``values == 0``.
    """

    name = "ell"

    #: Default padding budget: stored slots may not exceed this multiple
    #: of nnz.  20x generously admits every Table 2 matrix the paper's
    #: Table 3 reports a number for while rejecting the N/A ones.
    DEFAULT_MAX_EXPANSION: float = 20.0

    def __init__(self, shape, col_index, values, nnz):
        super().__init__(shape)
        self.col_index = np.asarray(col_index, dtype=np.int32)
        self.values = np.asarray(values, dtype=np.float64)
        self._nnz = int(nnz)
        if self.col_index.shape != self.values.shape:
            from ..errors import FormatError

            raise FormatError("col_index/values shape mismatch")
        if self.col_index.ndim != 2 or self.col_index.shape[1] != self.nrows:
            from ..errors import FormatError

            raise FormatError(
                f"expected (K, nrows={self.nrows}) arrays, got {self.col_index.shape}"
            )

    @property
    def K(self) -> int:
        """Uniform padded row width."""
        return int(self.col_index.shape[0])

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def stored_slots(self) -> int:
        return self.K * self.nrows

    @classmethod
    def from_scipy(cls, matrix, max_expansion: float | None = None, **params):
        csr = as_csr(matrix)
        lengths = np.diff(csr.indptr)
        K = int(lengths.max()) if lengths.size else 0
        budget = cls.DEFAULT_MAX_EXPANSION if max_expansion is None else max_expansion
        if csr.nnz and K * csr.shape[0] > budget * csr.nnz:
            raise FormatNotApplicableError(
                f"ELL padding {K}x{csr.shape[0]} slots exceeds "
                f"{budget}x nnz ({csr.nnz}); matrix too skewed for ELL"
            )
        nrows = csr.shape[0]
        col_index = np.full((K, nrows), PAD_COL, dtype=np.int32)
        values = np.zeros((K, nrows), dtype=np.float64)
        if csr.nnz:
            rows = np.repeat(np.arange(nrows), lengths)
            slots = np.arange(csr.nnz) - np.repeat(csr.indptr[:-1], lengths)
            col_index[slots, rows] = csr.indices
            values[slots, rows] = csr.data
        return cls(csr.shape, col_index, values, csr.nnz)

    def to_scipy(self) -> _sp.csr_matrix:
        mask = self.col_index != PAD_COL
        slots, rows = np.nonzero(mask)
        return _sp.coo_matrix(
            (self.values[slots, rows], (rows, self.col_index[slots, rows])),
            shape=self.shape,
        ).tocsr()

    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        fp = Footprint()
        fp.add("col_index", self.stored_slots * sizes.index)
        fp.add("values", self.stored_slots * sizes.value)
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        x = self._check_x(x)
        safe_cols = np.where(self.col_index == PAD_COL, 0, self.col_index)
        gathered = x[safe_cols]
        gathered[self.col_index == PAD_COL] = 0.0
        return (self.values * gathered).sum(axis=0)
