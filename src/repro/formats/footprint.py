"""Memory-footprint comparison across formats (reproduces Table 3).

The paper compares, per matrix: COO, ELL, the best *single* format among
clSpMV's nine, clSpMV's COCKTAIL (best per-partition mix), and
BCCOO/BCCOO+ as selected by the auto-tuner.  This module computes each
column of that table:

* ``coo`` / ``ell`` -- direct footprints (ELL may be ``N/A``);
* ``best_single`` -- minimum over our single-format zoo with a small
  per-format parameter search (block sizes for BCSR/BELL, slice height
  for SELL, width for HYB);
* ``cocktail`` -- best row-partitioned two-format mix: rows are sorted by
  length and split at every decile between an ELL-part (dense head) and a
  CSR/COO remainder, emulating how clSpMV's cocktail assigns regular rows
  to ELL-like formats and irregular rows to CSR/COO;
* ``bccoo`` -- minimum over the BCCOO block-size space (the footprint the
  auto-tuner's block-dimension pruning heuristic uses).

Sizes follow the paper: 4-byte values, 4-byte ints, 2-byte shorts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import FormatNotApplicableError
from ..util import as_csr
from .base import FP32, ByteSizes
from .bccoo import BCCOOMatrix
from .bcsr import BCSRMatrix
from .bell import BELLMatrix
from .coo import COOMatrix
from .csr import CSRMatrix
from .dia import DIAMatrix
from .ell import ELLMatrix
from .hyb import HYBMatrix
from .sell import SELLMatrix

__all__ = [
    "FootprintReport",
    "footprint_report",
    "best_single_footprint",
    "cocktail_footprint",
    "best_bccoo_footprint",
    "bccoo_block_candidates",
    "BLOCK_WIDTHS",
    "BLOCK_HEIGHTS",
]

#: Table 1 block dimension space.
BLOCK_WIDTHS: tuple[int, ...] = (1, 2, 4)
BLOCK_HEIGHTS: tuple[int, ...] = (1, 2, 3, 4)


@dataclass
class FootprintReport:
    """One row of Table 3 (bytes; ``None`` where the format is N/A)."""

    name: str
    coo: int
    ell: int | None
    best_single: int
    best_single_format: str
    cocktail: int
    cocktail_recipe: str
    bccoo: int
    bccoo_block: tuple[int, int]
    details: dict[str, int] = field(default_factory=dict)

    def as_mb(self, nbytes: int | None) -> float | None:
        return None if nbytes is None else nbytes / (1024.0 * 1024.0)


def _try(fmt_cls, matrix, sizes: ByteSizes, **kw) -> int | None:
    """Footprint of ``fmt_cls`` on ``matrix`` or ``None`` when N/A."""
    try:
        return fmt_cls.from_scipy(matrix, **kw).footprint_bytes(sizes)
    except FormatNotApplicableError:
        return None


def best_single_footprint(
    matrix, sizes: ByteSizes = FP32
) -> tuple[int, str]:
    """Minimum footprint over the single-format zoo -> (bytes, label)."""
    csr = as_csr(matrix)
    candidates: dict[str, int | None] = {
        "csr": _try(CSRMatrix, csr, sizes),
        "coo": _try(COOMatrix, csr, sizes),
        "ell": _try(ELLMatrix, csr, sizes),
        "dia": _try(DIAMatrix, csr, sizes),
        "hyb": _try(HYBMatrix, csr, sizes),
    }
    for sh in (32, 64):
        candidates[f"sell{sh}"] = _try(SELLMatrix, csr, sizes, slice_height=sh)
    for h in (2, 4):
        for w in (2, 4):
            candidates[f"bcsr{h}x{w}"] = _try(
                BCSRMatrix, csr, sizes, block_height=h, block_width=w
            )
            candidates[f"bell{h}x{w}"] = _try(
                BELLMatrix, csr, sizes, block_height=h, block_width=w
            )
    valid = {k: v for k, v in candidates.items() if v is not None}
    best = min(valid, key=valid.__getitem__)
    return valid[best], best


def cocktail_footprint(matrix, sizes: ByteSizes = FP32) -> tuple[int, str]:
    """Best two-partition row split, emulating clSpMV's COCKTAIL.

    Rows are sorted by length; for each decile split point the short-row
    head goes to the best of {ELL, DIA-free SELL} and the long-row tail
    to the best of {CSR, COO}; the best split (including "no split" =
    best single) wins.
    """
    csr = as_csr(matrix)
    single_bytes, single_name = best_single_footprint(csr, sizes)
    best = (single_bytes, f"single:{single_name}")

    lengths = np.diff(csr.indptr)
    order = np.argsort(lengths, kind="stable")
    nrows = csr.shape[0]
    for frac in (0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99):
        cut = int(nrows * frac)
        if cut in (0, nrows):
            continue
        head_rows = order[:cut]
        tail_rows = order[cut:]
        head = csr[np.sort(head_rows)]
        tail = csr[np.sort(tail_rows)]
        head_opts = [
            _try(ELLMatrix, head, sizes),
            _try(SELLMatrix, head, sizes, slice_height=32),
        ]
        head_best = min((b for b in head_opts if b is not None), default=None)
        if head_best is None:
            continue
        tail_opts = [
            _try(CSRMatrix, tail, sizes),
            _try(COOMatrix, tail, sizes),
        ]
        tail_best = min(b for b in tail_opts if b is not None)
        # Partition bookkeeping: one row-permutation array.
        total = head_best + tail_best + nrows * sizes.index
        if total < best[0]:
            best = (total, f"split@{frac:.2f}")
    return best


def bccoo_block_candidates(
    matrix, sizes: ByteSizes = FP32, keep: int = 4
) -> list[tuple[int, int, int]]:
    """Rank the Table 1 block space by footprint -> ``[(h, w, bytes)]``.

    This is the paper's pruning heuristic: "select the block dimensions
    corresponding to the 4 smallest memory footprints" (section 4).
    """
    csr = as_csr(matrix)
    scored: list[tuple[int, int, int]] = []
    for h in BLOCK_HEIGHTS:
        for w in BLOCK_WIDTHS:
            nbytes = BCCOOMatrix.from_scipy(
                csr, block_height=h, block_width=w
            ).footprint_bytes(sizes)
            scored.append((h, w, nbytes))
    scored.sort(key=lambda t: t[2])
    return scored[:keep]


def best_bccoo_footprint(
    matrix, sizes: ByteSizes = FP32
) -> tuple[int, tuple[int, int]]:
    """Smallest BCCOO footprint over the block space -> (bytes, (h, w))."""
    h, w, nbytes = bccoo_block_candidates(matrix, sizes, keep=1)[0]
    return nbytes, (h, w)


def footprint_report(matrix, name: str = "", sizes: ByteSizes = FP32) -> FootprintReport:
    """Compute one full Table 3 row for ``matrix``."""
    csr = as_csr(matrix)
    coo_bytes = COOMatrix.from_scipy(csr).footprint_bytes(sizes)
    ell_bytes = _try(ELLMatrix, csr, sizes)
    single_bytes, single_name = best_single_footprint(csr, sizes)
    cock_bytes, cock_recipe = cocktail_footprint(csr, sizes)
    bccoo_bytes, block = best_bccoo_footprint(csr, sizes)
    return FootprintReport(
        name=name,
        coo=coo_bytes,
        ell=ell_bytes,
        best_single=single_bytes,
        best_single_format=single_name,
        cocktail=cock_bytes,
        cocktail_recipe=cock_recipe,
        bccoo=bccoo_bytes,
        bccoo_block=block,
    )
