"""Hybrid (HYB) format: ELL head + COO tail.

HYB, CUSPARSE's flagship format, stores the first ``K`` non-zeros of every
row in an ELL part and spills the remainder into a COO part.  The ELL row
width ``K`` is configurable; the paper manually searched it per matrix for
the CUSPARSE baseline, which we reproduce with :meth:`HYBMatrix.tune_k`
(footprint-optimal ``K``) and an explicit ``k`` override.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatError
from ..util import as_csr
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format
from .coo import COOMatrix
from .ell import PAD_COL, ELLMatrix

__all__ = ["HYBMatrix"]


@register_format
class HYBMatrix(SparseFormat):
    """ELL(K) head plus COO spill."""

    name = "hyb"

    def __init__(self, shape, ell: ELLMatrix, coo: COOMatrix):
        super().__init__(shape)
        if ell.shape != shape or coo.shape != shape:
            raise FormatError("HYB sub-format shapes disagree with matrix shape")
        self.ell = ell
        self.coo = coo

    @property
    def K(self) -> int:
        return self.ell.K

    @property
    def nnz(self) -> int:
        return self.ell.nnz + self.coo.nnz

    @staticmethod
    def tune_k(matrix, sizes: ByteSizes = FP32, max_k: int | None = None) -> int:
        """Footprint-optimal ELL width.

        Marginal cost of raising K by one: one (index+value) ELL slot per
        row versus removing one (2*index+value) COO triplet per row that
        still has spilled entries.  The optimum is the largest K at which
        the number of rows with length >= K exceeds the break-even ratio.
        """
        csr = as_csr(matrix)
        lengths = np.diff(csr.indptr)
        if lengths.size == 0 or csr.nnz == 0:
            return 0
        nrows = csr.shape[0]
        ell_slot = sizes.index + sizes.value
        coo_entry = 2 * sizes.index + sizes.value
        max_len = int(lengths.max())
        hist = np.bincount(lengths, minlength=max_len + 1)
        # rows_ge[k] = number of rows with >= k non-zeros (k = 0..max_len).
        rows_ge = nrows - np.concatenate(([0], np.cumsum(hist[:-1])))
        upper = max_len if max_k is None else min(max_len, max_k)
        ks = np.arange(upper + 1, dtype=np.int64)
        # spilled(k) = sum_{j > k} rows_ge[j]; build via reversed cumsum.
        suffix = np.concatenate((np.cumsum(rows_ge[::-1])[::-1], [0]))
        spilled = suffix[ks + 1]
        cost = ks * nrows * ell_slot + spilled * coo_entry
        return int(ks[np.argmin(cost)])

    @classmethod
    def from_scipy(cls, matrix, k: int | None = None, **params) -> "HYBMatrix":
        csr = as_csr(matrix)
        if k is None:
            k = cls.tune_k(csr)
        if k < 0:
            raise FormatError(f"ELL width k must be >= 0, got {k}")
        lengths = np.diff(csr.indptr)
        nrows = csr.shape[0]

        ell_cols = np.full((k, nrows), PAD_COL, dtype=np.int32)
        ell_vals = np.zeros((k, nrows), dtype=np.float64)
        if csr.nnz:
            rows = np.repeat(np.arange(nrows), lengths)
            slots = np.arange(csr.nnz) - np.repeat(csr.indptr[:-1], lengths)
            head = slots < k
            ell_cols[slots[head], rows[head]] = csr.indices[head]
            ell_vals[slots[head], rows[head]] = csr.data[head]
            tail = ~head
            coo = COOMatrix(
                csr.shape, rows[tail], csr.indices[tail], csr.data[tail]
            )
            ell_nnz = int(head.sum())
        else:
            coo = COOMatrix(
                csr.shape,
                np.empty(0, np.int32),
                np.empty(0, np.int32),
                np.empty(0, np.float64),
            )
            ell_nnz = 0
        ell = ELLMatrix(csr.shape, ell_cols, ell_vals, ell_nnz)
        return cls(csr.shape, ell, coo)

    def to_scipy(self) -> _sp.csr_matrix:
        combined = self.ell.to_scipy() + self.coo.to_scipy()
        combined.sum_duplicates()
        combined.eliminate_zeros()
        combined.sort_indices()
        return combined

    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        fp = Footprint()
        for name, nbytes in self.ell.footprint(sizes).arrays.items():
            fp.add(f"ell_{name}", nbytes)
        for name, nbytes in self.coo.footprint(sizes).arrays.items():
            fp.add(f"coo_{name}", nbytes)
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        return self.ell.multiply(x) + self.coo.multiply(x)
