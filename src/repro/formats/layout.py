"""Device memory layout: the offline transpose of section 3.2.2.

Each thread owns ``tile`` consecutive blocks, so a naive value array has
thread ``t`` reading addresses ``t*tile .. t*tile+tile-1`` -- a strided
pattern that breaks warp coalescing.  The paper's fix is to view the
value array as a 2-D matrix of width ``tile`` and *transpose* it (online
through shared memory, or offline at conversion time) so that at step
``i`` the warp's threads read consecutive addresses.

This module materializes the offline-transposed layout: for every
workgroup-level chunk of ``wg_size * tile`` entries, entry ``(t, i)``
(thread, step) is stored at ``i * wg_size + t``.  It is the layout the
generated OpenCL kernels index, and conversions are exact inverses.

Functions operate on any per-block payload (value blocks, column words),
flattening non-block axes.
"""

from __future__ import annotations

import numpy as np

from ..errors import FormatError


__all__ = ["to_device_order", "from_device_order", "device_order_indices"]


def device_order_indices(n_blocks: int, wg_size: int, tile: int) -> np.ndarray:
    """Permutation ``p`` with ``device[j] = natural[p[j]]``.

    ``n_blocks`` must already be padded to a multiple of
    ``wg_size * tile`` (the workgroup working set).
    """
    if wg_size < 1 or tile < 1:
        raise FormatError(
            f"wg_size and tile must be >= 1, got {wg_size}, {tile}"
        )
    work = wg_size * tile
    if n_blocks % work != 0:
        raise FormatError(
            f"n_blocks {n_blocks} is not a multiple of the workgroup "
            f"working set {work}; pad first"
        )
    n_wg = n_blocks // work
    # natural index of (wg, t, i) is wg*work + t*tile + i; its device
    # position is wg*work + i*wg_size + t.
    wg, i, t = np.meshgrid(
        np.arange(n_wg), np.arange(tile), np.arange(wg_size), indexing="ij"
    )
    natural = (wg * work + t * tile + i).ravel()
    return natural


def to_device_order(blocks: np.ndarray, wg_size: int, tile: int) -> np.ndarray:
    """Transpose a per-block array into the coalesced device order.

    ``blocks`` has shape ``(n_blocks, ...)``; the result has the same
    shape with axis 0 permuted.
    """
    blocks = np.asarray(blocks)
    perm = device_order_indices(blocks.shape[0], wg_size, tile)
    return blocks[perm]


def from_device_order(device: np.ndarray, wg_size: int, tile: int) -> np.ndarray:
    """Inverse of :func:`to_device_order`."""
    device = np.asarray(device)
    perm = device_order_indices(device.shape[0], wg_size, tile)
    out = np.empty_like(device)
    out[perm] = device
    return out
