"""Merge-path CSR: equal-work team decomposition over the CSR streams.

CSR's classic GPU weakness is load imbalance -- a thread (or vector) per
row stalls the whole warp on the longest row.  The merge-path family
(Merrill & Garland; the CUSP/iSparse ``spmv_GPU_D`` kernels in
SNIPPETS.md) fixes this by walking the *merge* of the row-offset array
and the non-zero stream: total work ``nrows + nnz`` is split into
equal-sized chunks and a load-balancing search finds, for every chunk,
the ``(row, nnz)`` coordinate where its diagonal crosses the merge path.
Each team then processes exactly the same number of non-zeros no matter
how skewed the row lengths are; a row spanning a team boundary is
finished by carry continuation -- the successor team starts from its
predecessor's open partial, so the per-row accumulation order is the
strict sequential CSR fold.

This module stores the host-side model of that format:

* the unchanged CSR triplet (``row_ptr``, ``col_index``, ``values``),
* the precomputed load-balancing-search output ``team_rows`` (the first
  row of every team chunk) -- the array a device kernel binary-searches
  once per team instead of once per element,
* the adaptive ``threads_per_vector`` picked by the ``cal_vectors``
  heuristic from the related work: the smallest power of two in
  ``[2, 32]`` at least ``sqrt(ceil(nnz / nrows))``.

The matching kernel lives in :mod:`repro.kernels.merge_path`.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatError, ValidationError
from ..util import as_csr, ceil_div
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format

__all__ = ["MergeCSRMatrix", "cal_vectors", "DEFAULT_ITEMS_PER_THREAD"]

#: Non-zeros each *thread* of a team consumes sequentially; a team chunk
#: holds ``threads_per_vector * DEFAULT_ITEMS_PER_THREAD`` non-zeros.
DEFAULT_ITEMS_PER_THREAD = 8


def cal_vectors(sqrt_avg: int) -> int:
    """Adaptive THREADS_PER_VECTOR heuristic from the related work.

    Returns the smallest power of two in ``[2, 32]`` that is at least
    ``sqrt_avg`` (``sqrt`` of the average row length), capped at 32 --
    the warp width.  Mirrors ``cal_vectors`` in the iSparse/CUSP GMRES
    SpMV driver (SNIPPETS.md snippet 2).
    """
    sqrt_avg = int(sqrt_avg)
    i = 2
    while i <= 32:
        if sqrt_avg <= i or i == 32:
            return i
        i <<= 1
    return 2


@register_format
class MergeCSRMatrix(SparseFormat):
    """CSR plus precomputed merge-path team coordinates.

    Parameters are normally supplied through :meth:`from_scipy`; the raw
    constructor is for tests and internal use.
    """

    name = "merge_csr"

    def __init__(
        self,
        shape,
        row_ptr: np.ndarray,
        col_index: np.ndarray,
        values: np.ndarray,
        team_nnz: int,
        threads_per_vector: int,
    ):
        super().__init__(shape)
        self.row_ptr = np.asarray(row_ptr, dtype=np.int64)
        self.col_index = np.asarray(col_index, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        self.team_nnz = int(team_nnz)
        self.threads_per_vector = int(threads_per_vector)
        self._validate()
        # Load-balancing search: the row containing each team's first
        # non-zero.  ``side='right' - 1`` lands split rows on the row
        # being continued, exactly the coordinate the device kernel's
        # per-team binary search produces.
        starts = self.team_starts()
        self.team_rows = (
            np.searchsorted(self.row_ptr, starts, side="right") - 1
        ).astype(np.int64)

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_scipy(
        cls,
        matrix,
        team_nnz: int | None = None,
        items_per_thread: int = DEFAULT_ITEMS_PER_THREAD,
        **params,
    ) -> "MergeCSRMatrix":
        """Convert any matrix to merge-path CSR.

        Parameters
        ----------
        team_nnz:
            Non-zeros per team chunk.  Defaults to
            ``cal_vectors(sqrt(avg_row_length)) * items_per_thread`` --
            the adaptive heuristic scales team size with row density.
        items_per_thread:
            Sequential non-zeros per thread under the default sizing.
        """
        csr = as_csr(matrix)
        nrows = csr.shape[0]
        nnz = int(csr.nnz)
        avg = ceil_div(max(nnz, 1), max(nrows, 1))
        tpv = cal_vectors(math.isqrt(avg))
        if team_nnz is None:
            team_nnz = max(tpv * max(int(items_per_thread), 1), 1)
        return cls(
            csr.shape,
            csr.indptr.astype(np.int64),
            csr.indices.astype(np.int64),
            csr.data.astype(np.float64),
            team_nnz,
            tpv,
        )

    # ------------------------------------------------------------------ #
    # Incremental value refresh
    # ------------------------------------------------------------------ #

    def with_values(self, matrix) -> "MergeCSRMatrix":
        """Rebuild only the value payload from a structurally identical matrix.

        The row pointers, column indices and team coordinates are shared
        with ``self`` by identity -- only the value array is replaced.
        Any structural drift (shape, nnz, a moved entry) raises
        :class:`~repro.errors.ValidationError`.
        """
        csr = as_csr(matrix)
        if csr.shape != self.shape:
            raise ValidationError(
                f"with_values shape mismatch: format is {self.shape}, "
                f"new matrix is {csr.shape}"
            )
        if int(csr.nnz) != self.nnz:
            raise ValidationError(
                f"with_values nnz mismatch: format holds {self.nnz} "
                f"non-zeros, new matrix has {csr.nnz} (structure must be "
                f"identical; zeros are eliminated during canonicalization)"
            )
        if not np.array_equal(csr.indptr, self.row_ptr) or not np.array_equal(
            csr.indices, self.col_index
        ):
            raise ValidationError(
                "with_values structure mismatch: the new matrix's sparsity "
                "pattern differs from the format's"
            )
        out = MergeCSRMatrix.__new__(MergeCSRMatrix)
        SparseFormat.__init__(out, self.shape)
        out.row_ptr = self.row_ptr
        out.col_index = self.col_index
        out.values = csr.data.astype(np.float64)
        out.team_nnz = self.team_nnz
        out.threads_per_vector = self.threads_per_vector
        out.team_rows = self.team_rows
        return out

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def nnz(self) -> int:
        return int(self.col_index.shape[0])

    @property
    def n_teams(self) -> int:
        return max(ceil_div(self.nnz, self.team_nnz), 1)

    def team_starts(self) -> np.ndarray:
        """First non-zero index of every team chunk (implicit arithmetic)."""
        return np.arange(self.n_teams, dtype=np.int64) * self.team_nnz

    def row_map(self) -> np.ndarray:
        """Rows with at least one non-zero, ascending."""
        return np.flatnonzero(np.diff(self.row_ptr) > 0).astype(np.int64)

    def row_stops(self) -> np.ndarray:
        """End-of-row marker per non-zero (the bit-flag analogue).

        ``True`` on the last element of every non-empty row; the row
        ordinal of element ``k`` is the number of stops before it.
        """
        stops = np.zeros(self.nnz, dtype=bool)
        ends = self.row_ptr[1:][np.diff(self.row_ptr) > 0] - 1
        stops[ends] = True
        return stops

    def validate(self):
        """Run the runtime invariant checkers over this instance.

        Returns a :class:`repro.fault.ValidationReport`; call its
        ``raise_if_failed()`` to convert failures into a typed
        :class:`repro.errors.ValidationError`.
        """
        from ..fault.validation import validate_format

        return validate_format(self)

    # ------------------------------------------------------------------ #
    # SparseFormat interface
    # ------------------------------------------------------------------ #

    def to_scipy(self) -> _sp.csr_matrix:
        return _sp.csr_matrix(
            (self.values.copy(), self.col_index.copy(), self.row_ptr.copy()),
            shape=self.shape,
        )

    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        """Device footprint: the CSR triplet plus the team coordinates.

        The team's starting non-zero index is implicit (``team *
        team_nnz``), so only the row coordinate of the load-balancing
        search is stored.
        """
        fp = Footprint()
        fp.add("values", self.nnz * sizes.value)
        fp.add("col_index", self.nnz * sizes.index)
        fp.add("row_ptr", (self.nrows + 1) * sizes.index)
        fp.add("team_rows", self.n_teams * sizes.index)
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV walking the team decomposition in order.

        Teams are processed sequentially and accumulate straight into
        ``y`` -- a row split across teams receives its carry *before*
        the successor team's elements, so the result is bit-identical to
        the strict sequential per-row CSR fold.
        """
        x = self._check_x(x)
        rows = np.repeat(
            np.arange(self.nrows, dtype=np.int64), np.diff(self.row_ptr)
        )
        prods = self.values * x[self.col_index]
        y = np.zeros(self.nrows, dtype=np.float64)
        starts = self.team_starts()
        for t in range(self.n_teams):
            s = int(starts[t])
            e = min(s + self.team_nnz, self.nnz)
            if e > s and rows[s] != self.team_rows[t]:
                raise FormatError(
                    f"team {t} coordinate {self.team_rows[t]} disagrees with "
                    f"the row pointers (element {s} lies in row {rows[s]})"
                )
            np.add.at(y, rows[s:e], prods[s:e])
        return y

    # ------------------------------------------------------------------ #
    # Shared-memory export (serve process mode)
    # ------------------------------------------------------------------ #

    def share_arrays(self) -> dict[str, np.ndarray]:
        """Structural + value arrays for a :class:`SharedArena` export."""
        return {
            "merge.row_ptr": self.row_ptr,
            "merge.col_index": self.col_index,
            "merge.values": self.values,
        }

    def shm_meta(self) -> dict:
        """Scalar metadata reconstructing the instance around shared arrays."""
        return {
            "format": self.name,
            "shape": self.shape,
            "team_nnz": self.team_nnz,
            "threads_per_vector": self.threads_per_vector,
        }

    @classmethod
    def from_shared(cls, meta: dict, arrays: dict) -> "MergeCSRMatrix":
        """Rebuild from :meth:`shm_meta` + adopted arena views."""
        return cls(
            tuple(meta["shape"]),
            arrays["merge.row_ptr"],
            arrays["merge.col_index"],
            arrays["merge.values"],
            meta["team_nnz"],
            meta["threads_per_vector"],
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        if self.row_ptr.shape != (self.nrows + 1,):
            raise FormatError(
                f"row_ptr length {self.row_ptr.shape[0]} != nrows+1 "
                f"({self.nrows + 1})"
            )
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != self.col_index.shape[0]:
            raise FormatError("row_ptr must start at 0 and end at nnz")
        if np.any(np.diff(self.row_ptr) < 0):
            raise FormatError("row_ptr must be non-decreasing")
        if self.values.shape != self.col_index.shape:
            raise FormatError(
                f"values length {self.values.shape[0]} != col_index length "
                f"{self.col_index.shape[0]}"
            )
        if self.team_nnz < 1:
            raise FormatError(f"team_nnz must be >= 1, got {self.team_nnz}")
        if self.threads_per_vector < 1:
            raise FormatError(
                f"threads_per_vector must be >= 1, got {self.threads_per_vector}"
            )
