"""Adaptive row-grouped CSR (RG-CSR) -- Oberhuber et al.'s format.

Rows are bucketed by the power of two bounding their length (bucket
``g`` holds rows with ``2^(g-1) < length <= 2^g``; empty rows are
dropped), and each group stores its rows **column-major**, padded to the
group's *actual* maximum row length -- the "adaptive" refinement: a
bucket admitting up to ``2^g`` elements per row only pays for the
longest row it really contains.  Thread ``r`` of a group then walks its
row one lane at a time while the group's lane arrays stream fully
coalesced, ELL-style, but without ELL's global worst-row padding:
skewed matrices pay padding only within a bucket, where lengths differ
by at most 2x.

Stored arrays:

* ``row_perm`` -- original row index of every packed row, group by group;
* ``row_lengths`` -- true lengths aligned with ``row_perm`` (the lane
  validity predicate);
* ``group_row_offsets`` / ``group_data_offsets`` -- per-group starts
  into ``row_perm`` and the flat lane arrays;
* ``group_widths`` -- adaptive per-group pad width;
* ``col_index`` / ``values`` -- flat column-major lane arrays (padding
  lanes hold column 0 / value 0 and are skipped by the numerics).

The matching kernel lives in :mod:`repro.kernels.row_grouped`.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatError, ValidationError
from ..util import as_csr
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format

__all__ = ["RGCSRMatrix", "group_of_length"]

#: Column count below which the lane arrays store 16-bit columns (the
#: same rule the kernel's traffic model applies).
USHORT_COL_LIMIT = 1 << 16


def group_of_length(lengths: np.ndarray) -> np.ndarray:
    """Power-of-two bucket id per row length (length 1 -> 0, 2 -> 1,
    3..4 -> 2, 5..8 -> 3, ...).  Lengths must be >= 1."""
    lengths = np.asarray(lengths, dtype=np.int64)
    return np.ceil(np.log2(np.maximum(lengths, 1))).astype(np.int64)


@register_format
class RGCSRMatrix(SparseFormat):
    """Adaptive row-grouped CSR.

    Parameters are normally supplied through :meth:`from_scipy`; the raw
    constructor is for tests and internal use.
    """

    name = "rgcsr"

    def __init__(
        self,
        shape,
        row_perm: np.ndarray,
        row_lengths: np.ndarray,
        group_row_offsets: np.ndarray,
        group_data_offsets: np.ndarray,
        group_widths: np.ndarray,
        col_index: np.ndarray,
        values: np.ndarray,
    ):
        super().__init__(shape)
        self.row_perm = np.asarray(row_perm, dtype=np.int64)
        self.row_lengths = np.asarray(row_lengths, dtype=np.int64)
        self.group_row_offsets = np.asarray(group_row_offsets, dtype=np.int64)
        self.group_data_offsets = np.asarray(group_data_offsets, dtype=np.int64)
        self.group_widths = np.asarray(group_widths, dtype=np.int64)
        self.col_index = np.asarray(col_index, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        self._validate()

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    @classmethod
    def from_scipy(cls, matrix, **params) -> "RGCSRMatrix":
        """Convert any matrix to adaptive row-grouped CSR."""
        csr = as_csr(matrix)
        lengths = np.diff(csr.indptr).astype(np.int64)
        nonempty = np.flatnonzero(lengths > 0).astype(np.int64)
        gids = group_of_length(lengths[nonempty]) if nonempty.size else (
            np.empty(0, dtype=np.int64)
        )
        # Stable sort keeps rows ascending within each bucket.
        order = np.argsort(gids, kind="stable")
        perm = nonempty[order]
        perm_lens = lengths[perm]
        sorted_gids = gids[order]

        present, counts = (
            np.unique(sorted_gids, return_counts=True)
            if sorted_gids.size
            else (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        )
        row_off = np.zeros(present.shape[0] + 1, dtype=np.int64)
        np.cumsum(counts, out=row_off[1:])

        widths = np.zeros(present.shape[0], dtype=np.int64)
        data_off = np.zeros(present.shape[0] + 1, dtype=np.int64)
        for g in range(present.shape[0]):
            seg = perm_lens[row_off[g] : row_off[g + 1]]
            widths[g] = int(seg.max()) if seg.size else 0
            data_off[g + 1] = data_off[g] + widths[g] * seg.shape[0]

        cols = np.zeros(int(data_off[-1]), dtype=np.int64)
        vals = np.zeros(int(data_off[-1]), dtype=np.float64)
        indptr = csr.indptr.astype(np.int64)
        indices = csr.indices.astype(np.int64)
        data = csr.data.astype(np.float64)
        for g in range(present.shape[0]):
            r0, r1 = int(row_off[g]), int(row_off[g + 1])
            n, w = r1 - r0, int(widths[g])
            base = int(data_off[g])
            rows = perm[r0:r1]
            lens = perm_lens[r0:r1]
            for j in range(w):
                valid = np.flatnonzero(lens > j)
                src = indptr[rows[valid]] + j
                dst = base + j * n + valid
                cols[dst] = indices[src]
                vals[dst] = data[src]
        return cls(
            csr.shape, perm, perm_lens, row_off, data_off, widths, cols, vals
        )

    # ------------------------------------------------------------------ #
    # Incremental value refresh
    # ------------------------------------------------------------------ #

    def with_values(self, matrix) -> "RGCSRMatrix":
        """Rebuild only the value payload from a structurally identical matrix.

        The permutation, lengths, group offsets and column lanes are
        shared with ``self`` by identity -- only the flat value array is
        rebuilt.  Any structural drift raises
        :class:`~repro.errors.ValidationError`.
        """
        csr = as_csr(matrix)
        if csr.shape != self.shape:
            raise ValidationError(
                f"with_values shape mismatch: format is {self.shape}, "
                f"new matrix is {csr.shape}"
            )
        if int(csr.nnz) != self.nnz:
            raise ValidationError(
                f"with_values nnz mismatch: format holds {self.nnz} "
                f"non-zeros, new matrix has {csr.nnz} (structure must be "
                f"identical; zeros are eliminated during canonicalization)"
            )
        indptr = csr.indptr.astype(np.int64)
        indices = csr.indices.astype(np.int64)
        data = csr.data.astype(np.float64)
        if not np.array_equal(np.diff(indptr)[self.row_perm], self.row_lengths):
            raise ValidationError(
                "with_values structure mismatch: row lengths differ from "
                "the format's grouping"
            )
        vals = np.zeros_like(self.values)
        for g in range(self.n_groups):
            r0, r1 = int(self.group_row_offsets[g]), int(self.group_row_offsets[g + 1])
            n, w = r1 - r0, int(self.group_widths[g])
            base = int(self.group_data_offsets[g])
            rows = self.row_perm[r0:r1]
            lens = self.row_lengths[r0:r1]
            for j in range(w):
                valid = np.flatnonzero(lens > j)
                src = indptr[rows[valid]] + j
                dst = base + j * n + valid
                if not np.array_equal(indices[src], self.col_index[dst]):
                    raise ValidationError(
                        "with_values structure mismatch: the new matrix's "
                        "column pattern differs from the stored lanes"
                    )
                vals[dst] = data[src]
        out = RGCSRMatrix.__new__(RGCSRMatrix)
        SparseFormat.__init__(out, self.shape)
        out.row_perm = self.row_perm
        out.row_lengths = self.row_lengths
        out.group_row_offsets = self.group_row_offsets
        out.group_data_offsets = self.group_data_offsets
        out.group_widths = self.group_widths
        out.col_index = self.col_index
        out.values = vals
        return out

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n_groups(self) -> int:
        return int(self.group_widths.shape[0])

    @property
    def n_packed_rows(self) -> int:
        return int(self.row_perm.shape[0])

    @property
    def nnz(self) -> int:
        return int(self.row_lengths.sum())

    @property
    def padded_slots(self) -> int:
        """Lane slots stored, padding included."""
        return int(self.col_index.shape[0])

    @property
    def fill_ratio(self) -> float:
        return self.padded_slots / self.nnz if self.nnz else 1.0

    def lane_mask(self) -> np.ndarray:
        """Boolean validity flag per flat lane slot (the bit-flag analogue)."""
        mask = np.zeros(self.padded_slots, dtype=bool)
        for g in range(self.n_groups):
            r0, r1 = int(self.group_row_offsets[g]), int(self.group_row_offsets[g + 1])
            n, w = r1 - r0, int(self.group_widths[g])
            base = int(self.group_data_offsets[g])
            lens = self.row_lengths[r0:r1]
            for j in range(w):
                mask[base + j * n : base + (j + 1) * n] = lens > j
        return mask

    def validate(self):
        """Run the runtime invariant checkers over this instance.

        Returns a :class:`repro.fault.ValidationReport`; call its
        ``raise_if_failed()`` to convert failures into a typed
        :class:`repro.errors.ValidationError`.
        """
        from ..fault.validation import validate_format

        return validate_format(self)

    # ------------------------------------------------------------------ #
    # SparseFormat interface
    # ------------------------------------------------------------------ #

    def to_scipy(self) -> _sp.csr_matrix:
        rows, cols, data = [], [], []
        for g in range(self.n_groups):
            r0, r1 = int(self.group_row_offsets[g]), int(self.group_row_offsets[g + 1])
            n, w = r1 - r0, int(self.group_widths[g])
            base = int(self.group_data_offsets[g])
            grp_rows = self.row_perm[r0:r1]
            lens = self.row_lengths[r0:r1]
            for j in range(w):
                valid = np.flatnonzero(lens > j)
                slot = base + j * n + valid
                rows.append(grp_rows[valid])
                cols.append(self.col_index[slot])
                data.append(self.values[slot])
        if rows:
            rows = np.concatenate(rows)
            cols = np.concatenate(cols)
            data = np.concatenate(data)
        else:
            rows = cols = np.empty(0, dtype=np.int64)
            data = np.empty(0, dtype=np.float64)
        return _sp.coo_matrix((data, (rows, cols)), shape=self.shape).tocsr()

    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        """Device footprint at the hot representation the kernel streams.

        Column lanes are charged at 16 bits when every column index fits
        (``ncols < USHORT_COL_LIMIT``) -- the same rule the kernel's
        traffic model applies, mirroring how BCCOO counts its ushort
        column blocks.
        """
        col_b = sizes.short if self.ncols < USHORT_COL_LIMIT else sizes.index
        fp = Footprint()
        fp.add("values", self.padded_slots * sizes.value)
        fp.add("col_index", self.padded_slots * col_b)
        fp.add("row_perm", self.n_packed_rows * sizes.index)
        fp.add("row_lengths", self.n_packed_rows * sizes.index)
        fp.add("group_offsets", 2 * (self.n_groups + 1) * sizes.index)
        fp.add("group_widths", self.n_groups * sizes.index)
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Reference SpMV walking the grouped lanes in order.

        Each packed row accumulates its elements lane by lane -- the
        strict sequential per-row fold, bit-identical to the CSR
        reference; padded lanes are skipped entirely (never multiplied,
        never added).
        """
        x = self._check_x(x)
        y = np.zeros(self.nrows, dtype=np.float64)
        for g in range(self.n_groups):
            r0, r1 = int(self.group_row_offsets[g]), int(self.group_row_offsets[g + 1])
            n, w = r1 - r0, int(self.group_widths[g])
            base = int(self.group_data_offsets[g])
            lens = self.row_lengths[r0:r1]
            acc = np.zeros(n, dtype=np.float64)
            for j in range(w):
                valid = lens > j
                slot = base + j * n + np.flatnonzero(valid)
                acc[valid] += self.values[slot] * x[self.col_index[slot]]
            y[self.row_perm[r0:r1]] = acc
        return y

    # ------------------------------------------------------------------ #
    # Shared-memory export (serve process mode)
    # ------------------------------------------------------------------ #

    def share_arrays(self) -> dict[str, np.ndarray]:
        """Structural + value arrays for a :class:`SharedArena` export."""
        return {
            "rg.row_perm": self.row_perm,
            "rg.row_lengths": self.row_lengths,
            "rg.group_row_offsets": self.group_row_offsets,
            "rg.group_data_offsets": self.group_data_offsets,
            "rg.group_widths": self.group_widths,
            "rg.col_index": self.col_index,
            "rg.values": self.values,
        }

    def shm_meta(self) -> dict:
        """Scalar metadata reconstructing the instance around shared arrays."""
        return {"format": self.name, "shape": self.shape}

    @classmethod
    def from_shared(cls, meta: dict, arrays: dict) -> "RGCSRMatrix":
        """Rebuild from :meth:`shm_meta` + adopted arena views."""
        return cls(
            tuple(meta["shape"]),
            arrays["rg.row_perm"],
            arrays["rg.row_lengths"],
            arrays["rg.group_row_offsets"],
            arrays["rg.group_data_offsets"],
            arrays["rg.group_widths"],
            arrays["rg.col_index"],
            arrays["rg.values"],
        )

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        n = self.n_packed_rows
        g = self.n_groups
        if self.row_lengths.shape != (n,):
            raise FormatError(
                f"row_lengths length {self.row_lengths.shape[0]} != "
                f"packed rows {n}"
            )
        if self.group_row_offsets.shape != (g + 1,):
            raise FormatError(
                f"group_row_offsets length {self.group_row_offsets.shape[0]} "
                f"!= n_groups+1 ({g + 1})"
            )
        if self.group_data_offsets.shape != (g + 1,):
            raise FormatError(
                f"group_data_offsets length {self.group_data_offsets.shape[0]} "
                f"!= n_groups+1 ({g + 1})"
            )
        if self.group_row_offsets[0] != 0 or self.group_row_offsets[-1] != n:
            raise FormatError("group_row_offsets must start at 0 and end at n")
        if np.any(np.diff(self.group_row_offsets) < 0) or np.any(
            np.diff(self.group_data_offsets) < 0
        ):
            raise FormatError("group offsets must be non-decreasing")
        if self.group_data_offsets[0] != 0 or (
            self.group_data_offsets[-1] != self.col_index.shape[0]
        ):
            raise FormatError(
                "group_data_offsets must start at 0 and end at the flat "
                "lane length"
            )
        expect = (
            np.diff(self.group_row_offsets) * self.group_widths
        )
        if not np.array_equal(np.diff(self.group_data_offsets), expect):
            raise FormatError(
                "group data extents disagree with rows x width"
            )
        if self.values.shape != self.col_index.shape:
            raise FormatError(
                f"values length {self.values.shape[0]} != col_index length "
                f"{self.col_index.shape[0]}"
            )
        for g_i in range(g):
            r0, r1 = int(self.group_row_offsets[g_i]), int(
                self.group_row_offsets[g_i + 1]
            )
            lens = self.row_lengths[r0:r1]
            if lens.size and (
                lens.min() < 1 or lens.max() > self.group_widths[g_i]
            ):
                raise FormatError(
                    f"group {g_i} holds a row length outside "
                    f"[1, {int(self.group_widths[g_i])}]"
                )
