"""Sliced ELLPACK (SELL) format (Monakov et al., cited as [12]).

SELL partitions rows into fixed-height horizontal slices and pads each
slice only to *its own* maximum row length, trading ELL's global padding
for per-slice padding plus a slice pointer array.  It is one of the nine
single formats inside clSpMV's cocktail and therefore a candidate for the
"clSpMV best single" baseline.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatError
from ..util import as_csr, ceil_div
from .base import FP32, ByteSizes, Footprint, SparseFormat, register_format

__all__ = ["SELLMatrix"]

PAD_COL: int = -1


@register_format
class SELLMatrix(SparseFormat):
    """Row slices of height ``slice_height``, each padded independently.

    Storage is a flat concatenation of per-slice column/value arrays in
    slot-major order (slice-local ELL layout), plus ``slice_ptr`` giving
    each slice's offset into the flat arrays and ``slice_width`` its
    padded row length.
    """

    name = "sell"

    def __init__(self, shape, slice_height, slice_ptr, slice_width, col_index, values, nnz):
        super().__init__(shape)
        self.slice_height = int(slice_height)
        self.slice_ptr = np.asarray(slice_ptr, dtype=np.int64)
        self.slice_width = np.asarray(slice_width, dtype=np.int32)
        self.col_index = np.asarray(col_index, dtype=np.int32)
        self.values = np.asarray(values, dtype=np.float64)
        self._nnz = int(nnz)
        if self.slice_ptr.shape[0] != self.slice_width.shape[0] + 1:
            raise FormatError("slice_ptr must have one more entry than slice_width")
        if self.col_index.shape != self.values.shape:
            raise FormatError("col_index/values length mismatch")

    @property
    def n_slices(self) -> int:
        return int(self.slice_width.shape[0])

    @property
    def nnz(self) -> int:
        return self._nnz

    @property
    def stored_slots(self) -> int:
        return int(self.col_index.shape[0])

    @classmethod
    def from_scipy(cls, matrix, slice_height: int = 32, **params) -> "SELLMatrix":
        if slice_height < 1:
            raise FormatError(f"slice_height must be >= 1, got {slice_height}")
        csr = as_csr(matrix)
        nrows = csr.shape[0]
        lengths = np.diff(csr.indptr)
        n_slices = ceil_div(max(nrows, 1), slice_height)

        widths = np.zeros(n_slices, dtype=np.int32)
        for s in range(n_slices):
            seg = lengths[s * slice_height : (s + 1) * slice_height]
            widths[s] = int(seg.max()) if seg.size else 0
        sizes_flat = widths.astype(np.int64) * slice_height
        slice_ptr = np.concatenate(([0], np.cumsum(sizes_flat)))

        col_index = np.full(int(slice_ptr[-1]), PAD_COL, dtype=np.int32)
        values = np.zeros(int(slice_ptr[-1]), dtype=np.float64)
        for s in range(n_slices):
            r0 = s * slice_height
            r1 = min(r0 + slice_height, nrows)
            W = int(widths[s])
            if W == 0:
                continue
            base = int(slice_ptr[s])
            for local, r in enumerate(range(r0, r1)):
                a, b = csr.indptr[r], csr.indptr[r + 1]
                L = b - a
                # slot-major within the slice: slot*slice_height + local row
                pos = base + np.arange(L) * slice_height + local
                col_index[pos] = csr.indices[a:b]
                values[pos] = csr.data[a:b]
        return cls(csr.shape, slice_height, slice_ptr, widths, col_index, values, csr.nnz)

    def to_scipy(self) -> _sp.csr_matrix:
        rows_list, cols_list, data_list = [], [], []
        for s in range(self.n_slices):
            W = int(self.slice_width[s])
            if W == 0:
                continue
            base = int(self.slice_ptr[s])
            block = self.col_index[base : base + W * self.slice_height].reshape(
                W, self.slice_height
            )
            vals = self.values[base : base + W * self.slice_height].reshape(
                W, self.slice_height
            )
            slots, locals_ = np.nonzero(block != PAD_COL)
            rows_list.append(s * self.slice_height + locals_)
            cols_list.append(block[slots, locals_])
            data_list.append(vals[slots, locals_])
        if not rows_list:
            return _sp.csr_matrix(self.shape)
        return _sp.coo_matrix(
            (
                np.concatenate(data_list),
                (np.concatenate(rows_list), np.concatenate(cols_list)),
            ),
            shape=self.shape,
        ).tocsr()

    def footprint(self, sizes: ByteSizes = FP32) -> Footprint:
        fp = Footprint()
        fp.add("slice_ptr", (self.n_slices + 1) * sizes.index)
        fp.add("col_index", self.stored_slots * sizes.index)
        fp.add("values", self.stored_slots * sizes.value)
        return fp

    def multiply(self, x: np.ndarray) -> np.ndarray:
        x = self._check_x(x)
        y = np.zeros(self.nrows, dtype=np.float64)
        for s in range(self.n_slices):
            W = int(self.slice_width[s])
            if W == 0:
                continue
            base = int(self.slice_ptr[s])
            count = W * self.slice_height
            block = self.col_index[base : base + count].reshape(W, self.slice_height)
            vals = self.values[base : base + count].reshape(W, self.slice_height)
            safe = np.where(block == PAD_COL, 0, block)
            gathered = x[safe]
            gathered[block == PAD_COL] = 0.0
            partial = (vals * gathered).sum(axis=0)
            r0 = s * self.slice_height
            r1 = min(r0 + self.slice_height, self.nrows)
            y[r0:r1] = partial[: r1 - r0]
        return y
