"""Simulated SIMT device substrate.

Stands in for the paper's GTX480/GTX680: device descriptors with the
published specs, a memory-coalescing model, a texture-cache model, a
workgroup dispatch model with in-order scheduling, adjacent
synchronization, and the analytical timing model that converts kernel
cost profiles into seconds and GFLOPS.
"""

from .adjacent_sync import (
    chain_carries,
    chain_carries_hazard,
    chain_segments,
    logical_workgroup_ids,
    propagation_delay,
)
from .caches import LRUCache, vector_read_traffic, windowed_miss_estimate
from .counters import KernelStats
from .device import GTX480, GTX680, DeviceSpec, available_devices, get_device
from .dispatch import DispatchResult, schedule_workgroups
from .memory import (
    gather_transactions,
    stream_bytes,
    strided_stream_transactions,
    warp_transactions,
)
from .timing import TimingBreakdown, TimingModel

__all__ = [
    "chain_carries",
    "chain_carries_hazard",
    "logical_workgroup_ids",
    "chain_segments",
    "propagation_delay",
    "LRUCache",
    "vector_read_traffic",
    "windowed_miss_estimate",
    "KernelStats",
    "GTX480",
    "GTX680",
    "DeviceSpec",
    "available_devices",
    "get_device",
    "DispatchResult",
    "schedule_workgroups",
    "gather_transactions",
    "stream_bytes",
    "strided_stream_transactions",
    "warp_transactions",
    "TimingBreakdown",
    "TimingModel",
]
