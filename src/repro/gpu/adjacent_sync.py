"""Adjacent synchronization (paper section 3.2.4, after StreamScan [24]).

Segments spanning workgroup boundaries need the predecessor's partial
sum.  Instead of a second kernel behind a global barrier, yaSpMV chains
a ``Grp_sum`` array through global memory: workgroup ``X`` *without* a
row stop waits for ``Grp_sum[X-1]`` and publishes
``Grp_sum[X] = Grp_sum[X-1] + last_partial[X]``; a workgroup *with* a
row stop breaks the chain and publishes its own last partial directly.
Every workgroup ``X > 0`` still consumes ``Grp_sum[X-1]`` as the
carry-in for its first (possibly continued) segment.

This module provides both the **numerics** (:func:`chain_carries`, used
by the kernels to compute exact results) and the **cost structure**
(:func:`chain_segments`, :func:`propagation_delay`) the timing model
charges.  It also models the logical-id fallback for out-of-order
dispatch: one global atomic fetch-and-add per workgroup (<2% overhead in
the paper's experiments).
"""

from __future__ import annotations

import numpy as np

from ..errors import AdjacentSyncTimeout
from ..obs import active_observer
from ..util import check_1d, run_lengths

__all__ = [
    "SPIN_WATCHDOG_CAP",
    "chain_carries",
    "chain_carries_hazard",
    "chain_segments",
    "logical_workgroup_ids",
    "propagation_delay",
]

#: Default spin cap the kernels pass to :func:`chain_carries_hazard`.
#: On real hardware the adjacent-sync wait is a spin on ``Grp_sum[X-1]``;
#: the paper notes it deadlocks under out-of-order dispatch unless
#: logical workgroup ids are used.  Rather than model an unbounded spin,
#: the engine's execution path caps it and surfaces a typed
#: :class:`~repro.errors.AdjacentSyncTimeout` the fallback chain can
#: route to the logical-id repair stage.
SPIN_WATCHDOG_CAP = 4096


def chain_carries(
    last_partials: np.ndarray, has_stop: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Exact Grp_sum chain -> per-workgroup carry-in.

    Parameters
    ----------
    last_partials:
        Each workgroup's last partial sum (the value after its internal
        scan of ``last_partial_sums``); shape ``(n_wg,)`` or
        ``(n_wg, lanes)``.
    has_stop:
        Whether each workgroup's tile contains at least one row stop.

    Returns
    -------
    ``(carry_in, grp_sum)``:
        ``carry_in[X]`` is what workgroup ``X`` adds to its first
        segment (0 for workgroup 0); ``grp_sum`` is the published array.

    The recurrence is a segmented scan over workgroups with segment
    breaks at stop-containing workgroups -- the same structure as the
    thread-level phase, one level up.
    """
    lp = np.asarray(last_partials, dtype=np.float64)
    stops = check_1d("has_stop", np.asarray(has_stop, dtype=bool))
    n = stops.shape[0]
    if lp.shape[0] != n:
        raise ValueError(
            f"last_partials length {lp.shape[0]} != has_stop length {n}"
        )
    grp_sum = np.empty_like(lp)
    carry = np.zeros_like(lp)
    running = np.zeros(lp.shape[1:], dtype=np.float64)
    for x in range(n):
        carry[x] = running
        if stops[x]:
            grp_sum[x] = lp[x]
            running = lp[x]
        else:
            grp_sum[x] = running + lp[x]
            running = grp_sum[x]
    return carry, grp_sum


def logical_workgroup_ids(arrival_order: np.ndarray) -> np.ndarray:
    """The logical-id fallback: one atomic fetch-and-add per workgroup.

    The paper (section 3.2.4) notes that when in-order dispatch cannot
    be assumed, each workgroup acquires a *logical* id from a global
    counter instead of using its physical id -- the k-th workgroup to
    arrive gets logical id k, so the data tiles and the Grp_sum chain
    are traversed in arrival order and adjacent synchronization stays
    deadlock-free (<2% overhead in the paper's experiments).

    ``arrival_order[k]`` is the physical id of the k-th arriver; returns
    ``logical[phys]`` -- each physical workgroup's acquired logical id.
    """
    order = check_1d("arrival_order", np.asarray(arrival_order, dtype=np.int64))
    n = order.shape[0]
    if n and (np.unique(order).shape[0] != n or order.min() < 0 or order.max() >= n):
        raise ValueError("arrival_order must be a permutation of 0..n-1")
    logical = np.empty(n, dtype=np.int64)
    logical[order] = np.arange(n, dtype=np.int64)
    return logical


def chain_carries_hazard(
    last_partials: np.ndarray,
    has_stop: np.ndarray,
    arrival_order: np.ndarray | None = None,
    stale_reads: np.ndarray | None = None,
    max_spin: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Grp_sum chain under dispatch/staleness hazards.

    The exact chain of :func:`chain_carries` assumes workgroup ``X-1``
    publishes before ``X`` reads.  This variant models two violations:

    * ``arrival_order`` -- workgroups execute in this (permuted) order.
      A workgroup arriving before its predecessor has published cannot
      spin forever (on real hardware this is the deadlock the paper
      warns about); with ``max_spin=None`` we model the silent
      bounded-wait outcome: it reads the initialization value (0) -- a
      *stale* carry.
    * ``stale_reads[X]`` -- workgroup ``X``'s read of ``Grp_sum[X-1]``
      returns the initialization value even though the predecessor
      published (a delayed-visibility fault that slips *past* the spin
      loop -- the watchdog cannot see it).

    ``max_spin`` arms the spin watchdog: a workgroup that would wait on
    an unpublished predecessor slot spins at most ``max_spin``
    iterations and then raises a typed
    :class:`~repro.errors.AdjacentSyncTimeout` (counted as
    ``watchdog.timeouts``) instead of silently reading a stale value.
    In this serialized arrival-order model a predecessor that has not
    published by the time its successor runs never will, so the timeout
    fires deterministically -- exactly the recoverable signal the
    engine's fallback chain routes to the logical-id repair stage.

    With ``arrival_order=None`` and ``stale_reads=None`` the result is
    identical to :func:`chain_carries`.  Callers needing immunity to
    out-of-order arrival should remap data tiles through
    :func:`logical_workgroup_ids` first -- that is the fallback path the
    engine's resilience layer exercises.
    """
    lp = np.asarray(last_partials, dtype=np.float64)
    stops = check_1d("has_stop", np.asarray(has_stop, dtype=bool))
    n = stops.shape[0]
    if lp.shape[0] != n:
        raise ValueError(
            f"last_partials length {lp.shape[0]} != has_stop length {n}"
        )
    if arrival_order is None:
        order = np.arange(n, dtype=np.int64)
    else:
        order = check_1d(
            "arrival_order", np.asarray(arrival_order, dtype=np.int64)
        )
        if order.shape[0] != n:
            raise ValueError("arrival_order length must match has_stop")
    grp_sum = np.zeros_like(lp)
    carry = np.zeros_like(lp)
    published = np.zeros(n, dtype=bool)
    zero = np.zeros(lp.shape[1:], dtype=np.float64)
    stale_count = 0
    for x in order:
        x = int(x)
        if x == 0:
            c = zero
        elif published[x - 1] and not (stale_reads is not None and stale_reads[x]):
            c = grp_sum[x - 1]
        else:
            if max_spin is not None and not published[x - 1]:
                # Bounded-wait watchdog: the predecessor will never
                # publish in this serialized schedule, so the spin cap
                # expires -- surface the deadlock as a typed timeout
                # instead of a silently wrong carry.
                obs = active_observer()
                obs.counter(
                    "watchdog.timeouts",
                    "adjacent-sync spin watchdog expiries",
                ).inc()
                raise AdjacentSyncTimeout(
                    f"workgroup {x} spun {max_spin} iterations waiting for "
                    f"Grp_sum[{x - 1}] (predecessor never published; "
                    "out-of-order dispatch without logical workgroup ids)",
                    workgroup=x,
                    spins=max_spin,
                )
            c = zero  # stale read: the initialization value
            stale_count += 1
        carry[x] = c
        grp_sum[x] = lp[x] if stops[x] else c + lp[x]
        published[x] = True
    obs = active_observer()
    if obs.enabled:
        obs.counter(
            "gpu.sync.hazard_walks", "Grp_sum chains walked under hazards"
        ).inc()
        obs.counter(
            "gpu.sync.stale_reads", "Grp_sum reads that returned init values"
        ).inc(stale_count)
        if arrival_order is not None:
            obs.counter(
                "gpu.sync.out_of_order_walks", "chains walked in permuted order"
            ).inc()
    return carry, grp_sum


def chain_segments(has_stop: np.ndarray) -> np.ndarray:
    """Lengths of the serialized update chains.

    A run of consecutive workgroups without a row stop must update
    ``Grp_sum`` strictly in order; each such run of length ``L``
    (plus the stop-carrying workgroup that terminates it) forms a chain
    of ``L + 1`` dependent updates.  Returns the chain lengths, used by
    the timing model -- long chains only arise when one matrix row spans
    many workgroups (e.g. a single huge row).
    """
    stops = check_1d("has_stop", np.asarray(has_stop, dtype=bool))
    if stops.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    vals, lens = run_lengths(~stops)
    chains = lens[vals.astype(bool)] + 1
    if chains.size == 0:
        return np.ones(1, dtype=np.int64)
    return chains.astype(np.int64)


def propagation_delay(
    finish_times: np.ndarray,
    has_stop: np.ndarray,
    hop_latency_s: float,
) -> float:
    """Extra completion time the Grp_sum chain adds beyond computation.

    ``finish_times`` are the dispatch-model completion times of each
    workgroup's *local* work.  ``Grp_sum[X]`` becomes available at::

        avail[X] = finish[X]                      if X has a stop
        avail[X] = max(finish[X], avail[X-1] + hop) otherwise

    and every workgroup X > 0 can only retire its first segment at
    ``max(finish[X], avail[X-1] + hop)``.  Returns the increase of the
    overall makespan versus chain-free execution (>= 0).
    """
    finish = np.asarray(finish_times, dtype=np.float64).ravel()
    stops = check_1d("has_stop", np.asarray(has_stop, dtype=bool))
    n = finish.shape[0]
    if stops.shape[0] != n:
        raise ValueError("finish_times and has_stop must have equal length")
    if n == 0:
        return 0.0
    base_makespan = float(finish.max())
    avail = np.empty(n, dtype=np.float64)
    retire = finish.copy()
    avail[0] = finish[0]
    for x in range(1, n):
        ready = avail[x - 1] + hop_latency_s
        retire[x] = max(finish[x], ready)
        avail[x] = finish[x] if stops[x] else max(finish[x], ready)
    return max(float(retire.max()) - base_makespan, 0.0)
