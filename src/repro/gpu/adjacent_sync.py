"""Adjacent synchronization (paper section 3.2.4, after StreamScan [24]).

Segments spanning workgroup boundaries need the predecessor's partial
sum.  Instead of a second kernel behind a global barrier, yaSpMV chains
a ``Grp_sum`` array through global memory: workgroup ``X`` *without* a
row stop waits for ``Grp_sum[X-1]`` and publishes
``Grp_sum[X] = Grp_sum[X-1] + last_partial[X]``; a workgroup *with* a
row stop breaks the chain and publishes its own last partial directly.
Every workgroup ``X > 0`` still consumes ``Grp_sum[X-1]`` as the
carry-in for its first (possibly continued) segment.

This module provides both the **numerics** (:func:`chain_carries`, used
by the kernels to compute exact results) and the **cost structure**
(:func:`chain_segments`, :func:`propagation_delay`) the timing model
charges.  It also models the logical-id fallback for out-of-order
dispatch: one global atomic fetch-and-add per workgroup (<2% overhead in
the paper's experiments).
"""

from __future__ import annotations

import numpy as np

from ..util import check_1d, run_lengths

__all__ = ["chain_carries", "chain_segments", "propagation_delay"]


def chain_carries(
    last_partials: np.ndarray, has_stop: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Exact Grp_sum chain -> per-workgroup carry-in.

    Parameters
    ----------
    last_partials:
        Each workgroup's last partial sum (the value after its internal
        scan of ``last_partial_sums``); shape ``(n_wg,)`` or
        ``(n_wg, lanes)``.
    has_stop:
        Whether each workgroup's tile contains at least one row stop.

    Returns
    -------
    ``(carry_in, grp_sum)``:
        ``carry_in[X]`` is what workgroup ``X`` adds to its first
        segment (0 for workgroup 0); ``grp_sum`` is the published array.

    The recurrence is a segmented scan over workgroups with segment
    breaks at stop-containing workgroups -- the same structure as the
    thread-level phase, one level up.
    """
    lp = np.asarray(last_partials, dtype=np.float64)
    stops = check_1d("has_stop", np.asarray(has_stop, dtype=bool))
    n = stops.shape[0]
    if lp.shape[0] != n:
        raise ValueError(
            f"last_partials length {lp.shape[0]} != has_stop length {n}"
        )
    grp_sum = np.empty_like(lp)
    carry = np.zeros_like(lp)
    running = np.zeros(lp.shape[1:], dtype=np.float64)
    for x in range(n):
        carry[x] = running
        if stops[x]:
            grp_sum[x] = lp[x]
            running = lp[x]
        else:
            grp_sum[x] = running + lp[x]
            running = grp_sum[x]
    return carry, grp_sum


def chain_segments(has_stop: np.ndarray) -> np.ndarray:
    """Lengths of the serialized update chains.

    A run of consecutive workgroups without a row stop must update
    ``Grp_sum`` strictly in order; each such run of length ``L``
    (plus the stop-carrying workgroup that terminates it) forms a chain
    of ``L + 1`` dependent updates.  Returns the chain lengths, used by
    the timing model -- long chains only arise when one matrix row spans
    many workgroups (e.g. a single huge row).
    """
    stops = check_1d("has_stop", np.asarray(has_stop, dtype=bool))
    if stops.shape[0] == 0:
        return np.empty(0, dtype=np.int64)
    vals, lens = run_lengths(~stops)
    chains = lens[vals.astype(bool)] + 1
    if chains.size == 0:
        return np.ones(1, dtype=np.int64)
    return chains.astype(np.int64)


def propagation_delay(
    finish_times: np.ndarray,
    has_stop: np.ndarray,
    hop_latency_s: float,
) -> float:
    """Extra completion time the Grp_sum chain adds beyond computation.

    ``finish_times`` are the dispatch-model completion times of each
    workgroup's *local* work.  ``Grp_sum[X]`` becomes available at::

        avail[X] = finish[X]                      if X has a stop
        avail[X] = max(finish[X], avail[X-1] + hop) otherwise

    and every workgroup X > 0 can only retire its first segment at
    ``max(finish[X], avail[X-1] + hop)``.  Returns the increase of the
    overall makespan versus chain-free execution (>= 0).
    """
    finish = np.asarray(finish_times, dtype=np.float64).ravel()
    stops = check_1d("has_stop", np.asarray(has_stop, dtype=bool))
    n = finish.shape[0]
    if stops.shape[0] != n:
        raise ValueError("finish_times and has_stop must have equal length")
    if n == 0:
        return 0.0
    base_makespan = float(finish.max())
    avail = np.empty(n, dtype=np.float64)
    retire = finish.copy()
    avail[0] = finish[0]
    for x in range(1, n):
        ready = avail[x - 1] + hop_latency_s
        retire[x] = max(finish[x], ready)
        avail[x] = finish[x] if stops[x] else max(finish[x], ready)
    return max(float(retire.max()) - base_makespan, 0.0)
