"""Texture / read-only cache model for multiplied-vector accesses.

SpMV reads the matrix once but the vector many times; whether those
re-reads hit cache decides a large slice of the bandwidth bill.  The
paper routes vector reads through the texture cache (a Table 1 tuning
knob, "always on" in the pruned search) and motivates BCCOO+ by the
higher hit rate of slice-local column indices.

Two estimators are provided:

* :func:`windowed_miss_estimate` (default) -- an O(n) reuse-window
  approximation: the access stream is cut into windows holding roughly
  one cache's worth of distinct lines; every distinct line per window is
  one miss.  This tracks LRU closely for SpMV's streaming-with-locality
  patterns and is fast enough for the auto-tuner's inner loop.
* :class:`LRUCache` -- an exact set-associative-free (fully associative)
  LRU simulator for validation on small streams.
"""

from __future__ import annotations

import numpy as np

__all__ = ["windowed_miss_estimate", "LRUCache", "vector_read_traffic"]


def windowed_miss_estimate(
    line_ids: np.ndarray, capacity_lines: int, window: int | None = None
) -> int:
    """Approximate LRU miss count for an access stream of cache lines.

    The stream is split into windows of ``window`` accesses (default
    ``4 * capacity_lines``); distinct lines per window are counted as
    misses.  Lines re-referenced within a window (the common SpMV case:
    several non-zeros of nearby rows sharing vector lines) are hits;
    reuse across windows -- further apart than the cache can remember --
    misses, as it would under LRU.
    """
    ids = np.asarray(line_ids, dtype=np.int64).ravel()
    if ids.size == 0:
        return 0
    if capacity_lines <= 0:
        return int(ids.size)
    if window is None:
        window = max(4 * capacity_lines, 1)
    window = max(int(window), 1)
    misses = 0
    for start in range(0, ids.size, window):
        chunk = ids[start : start + window]
        misses += int(np.unique(chunk).size)
    return misses


class LRUCache:
    """Exact fully-associative LRU over line ids (validation tool)."""

    def __init__(self, capacity_lines: int):
        if capacity_lines < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity_lines}")
        self.capacity = int(capacity_lines)
        self._stamp: dict[int, int] = {}
        self._clock = 0
        self.hits = 0
        self.misses = 0

    def access(self, line_id: int) -> bool:
        """Touch one line; returns True on hit."""
        self._clock += 1
        if line_id in self._stamp:
            self._stamp[line_id] = self._clock
            self.hits += 1
            return True
        self.misses += 1
        if len(self._stamp) >= self.capacity:
            victim = min(self._stamp, key=self._stamp.__getitem__)
            del self._stamp[victim]
        self._stamp[line_id] = self._clock
        return False

    def run(self, line_ids: np.ndarray) -> tuple[int, int]:
        """Feed a whole stream; returns ``(hits, misses)`` of this run."""
        h0, m0 = self.hits, self.misses
        for lid in np.asarray(line_ids).ravel():
            self.access(int(lid))
        return self.hits - h0, self.misses - m0


def vector_read_traffic(
    element_indices: np.ndarray,
    element_bytes: int,
    cache_bytes: int,
    line_bytes: int,
    use_cache: bool = True,
) -> tuple[int, int]:
    """DRAM vs cached bytes for vector reads through the texture path.

    Parameters
    ----------
    element_indices:
        Flat stream of vector element indices in kernel access order.
    element_bytes:
        Size of one vector element (4 for fp32 accounting).
    cache_bytes / line_bytes:
        Texture cache geometry of the device.
    use_cache:
        False models the "no texture cache" tuning choice: every access
        goes to DRAM at line granularity (L2 still merges a warp's
        accesses, approximated by counting distinct lines per warp-sized
        run -- which :func:`windowed_miss_estimate` with one-warp windows
        reproduces).

    Returns
    -------
    ``(dram_bytes, cached_bytes)``: DRAM traffic from misses, and bytes
    served from cache.
    """
    idx = np.asarray(element_indices, dtype=np.int64).ravel()
    if idx.size == 0:
        return 0, 0
    elems_per_line = max(line_bytes // element_bytes, 1)
    lines = idx // elems_per_line
    total_bytes = int(idx.size) * element_bytes
    if use_cache:
        capacity = max(cache_bytes // line_bytes, 1)
        misses = windowed_miss_estimate(lines, capacity)
    else:
        # Without the texture cache only intra-warp coalescing merges
        # accesses: count distinct lines per 32-access (one-warp) window.
        misses = windowed_miss_estimate(lines, capacity_lines=32, window=32)
    dram = misses * line_bytes
    cached = max(total_bytes - dram, 0)
    return int(dram), int(cached)
