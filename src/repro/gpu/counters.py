"""Kernel cost accounting -- what the simulated kernels hand the timing model.

A kernel run produces a :class:`KernelStats`: aggregate traffic and FLOPs,
per-workgroup work weights (for load-imbalance modeling), SIMD efficiency
(for divergence), synchronization structure and launch count.  Multiple
kernels of one logical operation (e.g. a two-kernel baseline, or yaSpMV's
BCCOO+ combine pass) are merged with :meth:`KernelStats.sequential`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["KernelStats"]


@dataclass
class KernelStats:
    """Cost profile of one kernel launch (or a fused sequence of them).

    Attributes
    ----------
    flops:
        Useful floating-point operations (the paper's throughput metric
        divides ``2 * nnz`` by time, so kernels report real multiply/add
        counts here for the compute-bound check).
    dram_read_bytes / dram_write_bytes:
        Post-coalescing global memory traffic.
    cached_read_bytes:
        Reads served by the texture/read-only cache (free of DRAM cost but
        still subject to the cache-throughput ceiling).
    simd_efficiency:
        Fraction of scheduled SIMD lane slots doing useful work
        (1.0 = divergence-free).  Weighs the compute term only.
    workgroup_size / n_workgroups:
        Launch geometry of the dominant kernel.
    shared_mem_per_workgroup:
        Shared-memory footprint (occupancy input).
    workgroup_work:
        Optional per-workgroup relative work weights (any consistent unit);
        drives the dispatch-based imbalance factor.  ``None`` means
        perfectly uniform.
    barriers_per_workgroup:
        Intra-workgroup barrier count.
    atomics:
        Global atomic operations issued in total.
    sync_chain_lengths:
        Lengths of adjacent-synchronization dependence chains (runs of
        consecutive workgroups each waiting on its predecessor); empty
        when the kernel needs no inter-workgroup ordering.
    n_launches:
        Kernel launches this stats object covers.
    extra_latency_s:
        Already-converted latency seconds a kernel wants added verbatim
        (used sparingly, e.g. result-cache spill round trips).
    """

    flops: float = 0.0
    dram_read_bytes: float = 0.0
    dram_write_bytes: float = 0.0
    cached_read_bytes: float = 0.0
    simd_efficiency: float = 1.0
    workgroup_size: int = 0
    n_workgroups: int = 0
    shared_mem_per_workgroup: int = 0
    #: Estimated registers per thread (0 = unknown; occupancy input).
    registers_per_thread: int = 0
    workgroup_work: np.ndarray | None = None
    barriers_per_workgroup: float = 0.0
    atomics: int = 0
    sync_chain_lengths: np.ndarray = field(
        default_factory=lambda: np.empty(0, dtype=np.int64)
    )
    n_launches: int = 1
    extra_latency_s: float = 0.0
    #: True when the kernel's arithmetic is double precision (the timing
    #: model then applies the device's much lower fp64 peak).
    fp64: bool = False

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes

    @property
    def max_sync_chain(self) -> int:
        return int(self.sync_chain_lengths.max()) if self.sync_chain_lengths.size else 0

    def imbalance_factor(self) -> float:
        """Max-over-mean of the per-workgroup work weights (>= 1).

        This is the *workload skew* before scheduling; the dispatch model
        refines it with actual SM packing.  Uniform work -> 1.0.
        """
        w = self.workgroup_work
        if w is None or w.size == 0:
            return 1.0
        mean = float(w.mean())
        return float(w.max()) / mean if mean > 0 else 1.0

    def sequential(self, other: "KernelStats") -> "KernelStats":
        """Combine with a kernel that runs *after* this one.

        Traffic, FLOPs, atomics and launches add; geometry and efficiency
        keep the dominant (larger-traffic) kernel's values; per-workgroup
        work arrays are dropped (the merged object keeps the dominant
        kernel's, already folded into ``workgroup_work`` if set).
        """
        dominant = self if self.dram_bytes >= other.dram_bytes else other
        return KernelStats(
            flops=self.flops + other.flops,
            dram_read_bytes=self.dram_read_bytes + other.dram_read_bytes,
            dram_write_bytes=self.dram_write_bytes + other.dram_write_bytes,
            cached_read_bytes=self.cached_read_bytes + other.cached_read_bytes,
            simd_efficiency=dominant.simd_efficiency,
            workgroup_size=dominant.workgroup_size,
            n_workgroups=dominant.n_workgroups,
            shared_mem_per_workgroup=dominant.shared_mem_per_workgroup,
            registers_per_thread=dominant.registers_per_thread,
            workgroup_work=dominant.workgroup_work,
            barriers_per_workgroup=dominant.barriers_per_workgroup,
            atomics=self.atomics + other.atomics,
            sync_chain_lengths=(
                self.sync_chain_lengths
                if self.sync_chain_lengths.size
                else other.sync_chain_lengths
            ),
            n_launches=self.n_launches + other.n_launches,
            extra_latency_s=self.extra_latency_s + other.extra_latency_s,
            fp64=self.fp64 or other.fp64,
        )
