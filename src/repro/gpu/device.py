"""Simulated-device descriptors (the paper's GTX480 and GTX680).

A :class:`DeviceSpec` carries the published architectural parameters the
timing model needs.  SpMV is bandwidth-bound, so the numbers that matter
most are DRAM bandwidth, the achievable fraction of it under streaming
loads, cache sizes (for multiplied-vector locality) and the fixed costs
(kernel launch, barrier, atomic) that separate one-kernel yaSpMV from
two-kernel baselines.

Sources for the specs: NVIDIA GF100/GK104 whitepapers and the paper's
own setup (section 5).  GTX480 = Fermi, 15 SMs, 177.4 GB/s, 1345 GFLOPS
single precision; GTX680 = Kepler, 8 SMXs, 192.3 GB/s, 3090 GFLOPS.
Kepler's FLOP-to-byte ratio is twice Fermi's, which is why the paper's
bandwidth savings pay off *more* on the GTX680 -- a shape our model
reproduces by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import DeviceError

__all__ = ["DeviceSpec", "GTX480", "GTX680", "get_device", "available_devices"]


@dataclass(frozen=True)
class DeviceSpec:
    """Architectural parameters of one simulated GPU."""

    name: str
    arch: str
    num_sms: int
    cores_per_sm: int
    warp_size: int
    clock_ghz: float
    #: Theoretical DRAM bandwidth, bytes/second.
    dram_bandwidth: float
    #: Fraction of theoretical bandwidth a streaming kernel achieves.
    achievable_bw_fraction: float
    #: Single-precision peak, FLOP/s.
    peak_flops: float
    #: Double-precision peak, FLOP/s (GeForce parts are heavily cut:
    #: GF100 runs fp64 at 1/8 of fp32, GK104 at a dismal 1/24).
    peak_flops_dp: float
    shared_mem_per_sm: int
    max_shared_mem_per_workgroup: int
    registers_per_sm: int
    max_registers_per_thread: int
    max_threads_per_sm: int
    max_workgroups_per_sm: int
    max_workgroup_size: int
    l2_bytes: int
    #: Per-SM texture / read-only data cache, bytes.
    tex_cache_bytes: int
    #: Cache line granularity for the texture path, bytes.
    tex_line_bytes: int
    #: Per-SM L1 available to *global* loads, bytes.  Fermi (GF100)
    #: caches global loads in its 16/48 KB L1, softening scattered
    #: gathers; Kepler GK104 disabled L1 for global loads (0).  This is
    #: the architectural reason row-based CSR kernels hold up better on
    #: the GTX480 and the paper's relative gains are larger on GTX680.
    l1_global_bytes: int
    #: Global-memory transaction size after coalescing, bytes.
    transaction_bytes: int
    #: Fixed kernel-launch overhead, seconds.
    kernel_launch_s: float
    #: DRAM round-trip latency, seconds (drives adjacent-sync chains).
    dram_latency_s: float
    #: Sustained same-address global-atomic service time, seconds per op
    #: (reciprocal throughput; atomics pipeline through L2, they do not
    #: pay full DRAM latency each).
    atomic_s: float
    #: Workgroup barrier cost, seconds.
    barrier_s: float

    # ------------------------------------------------------------------ #

    @property
    def total_cores(self) -> int:
        return self.num_sms * self.cores_per_sm

    @property
    def effective_bandwidth(self) -> float:
        """Bandwidth a well-coalesced streaming kernel sees, bytes/s."""
        return self.dram_bandwidth * self.achievable_bw_fraction

    @property
    def flop_byte_ratio(self) -> float:
        """Peak FLOPs per byte of DRAM bandwidth (Kepler ~2x Fermi)."""
        return self.peak_flops / self.dram_bandwidth

    def max_concurrent_workgroups(
        self,
        workgroup_size: int,
        shared_mem_per_workgroup: int = 0,
        registers_per_thread: int = 0,
    ) -> int:
        """Occupancy: concurrent workgroups one SM sustains.

        Limited by the thread budget, the workgroup-slot budget, the
        shared-memory budget and (when reported) the register file; at
        least 1 if the workgroup fits at all.
        """
        if workgroup_size < 1 or workgroup_size > self.max_workgroup_size:
            raise DeviceError(
                f"workgroup size {workgroup_size} outside [1, {self.max_workgroup_size}] "
                f"on {self.name}"
            )
        if shared_mem_per_workgroup > self.max_shared_mem_per_workgroup:
            raise DeviceError(
                f"workgroup requests {shared_mem_per_workgroup} B shared memory; "
                f"{self.name} allows {self.max_shared_mem_per_workgroup}"
            )
        by_threads = self.max_threads_per_sm // workgroup_size
        by_slots = self.max_workgroups_per_sm
        if shared_mem_per_workgroup > 0:
            by_shmem = self.shared_mem_per_sm // shared_mem_per_workgroup
        else:
            by_shmem = by_slots
        if registers_per_thread > 0:
            by_regs = self.registers_per_sm // (
                registers_per_thread * workgroup_size
            )
        else:
            by_regs = by_slots
        return max(1, min(by_threads, by_slots, by_shmem, by_regs))

    def with_overrides(self, **kw) -> "DeviceSpec":
        """Copy with selected fields replaced (for what-if studies)."""
        return replace(self, **kw)


GTX480 = DeviceSpec(
    name="gtx480",
    arch="fermi-gf100",
    num_sms=15,
    cores_per_sm=32,
    warp_size=32,
    clock_ghz=1.401,
    dram_bandwidth=177.4e9,
    achievable_bw_fraction=0.75,
    peak_flops=1345.0e9,
    peak_flops_dp=168.0e9,
    shared_mem_per_sm=48 * 1024,
    max_shared_mem_per_workgroup=48 * 1024,
    registers_per_sm=32768,
    max_registers_per_thread=63,
    max_threads_per_sm=1536,
    max_workgroups_per_sm=8,
    max_workgroup_size=1024,
    l2_bytes=768 * 1024,
    tex_cache_bytes=12 * 1024,
    tex_line_bytes=32,
    l1_global_bytes=16 * 1024,
    transaction_bytes=128,
    kernel_launch_s=5.0e-6,
    dram_latency_s=500e-9,
    atomic_s=8e-9,
    barrier_s=40e-9,
)

GTX680 = DeviceSpec(
    name="gtx680",
    arch="kepler-gk104",
    num_sms=8,
    cores_per_sm=192,
    warp_size=32,
    clock_ghz=1.006,
    dram_bandwidth=192.26e9,
    achievable_bw_fraction=0.78,
    peak_flops=3090.0e9,
    peak_flops_dp=129.0e9,
    shared_mem_per_sm=48 * 1024,
    max_shared_mem_per_workgroup=48 * 1024,
    registers_per_sm=65536,
    max_registers_per_thread=63,
    max_threads_per_sm=2048,
    max_workgroups_per_sm=16,
    max_workgroup_size=1024,
    l2_bytes=512 * 1024,
    tex_cache_bytes=48 * 1024,
    tex_line_bytes=32,
    l1_global_bytes=0,
    transaction_bytes=128,
    kernel_launch_s=4.0e-6,
    dram_latency_s=450e-9,
    atomic_s=4e-9,
    barrier_s=30e-9,
)

_DEVICES = {d.name: d for d in (GTX480, GTX680)}


def get_device(name: str) -> DeviceSpec:
    """Look up a device spec by name (``"gtx480"`` or ``"gtx680"``)."""
    try:
        return _DEVICES[name.lower()]
    except KeyError:
        raise DeviceError(
            f"unknown device {name!r}; available: {sorted(_DEVICES)}"
        ) from None


def available_devices() -> dict[str, DeviceSpec]:
    """Read-only view of the device registry."""
    return dict(_DEVICES)
