"""Workgroup dispatch / scheduling model.

GPUs dispatch workgroups to SMs in id order as resources free up (the
in-order property the paper's adjacent synchronization relies on,
section 3.2.4).  We reproduce that with a list-scheduling model: each SM
runs up to ``max_concurrent`` workgroups; the next workgroup in id order
is placed on the SM slot that frees earliest.  The makespan over SMs,
relative to the perfectly balanced lower bound, yields the load-imbalance
factor applied by the timing model -- the quantity that blows up for
row-based kernels on skewed matrices and stays ~1 for yaSpMV's equal
tiles.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

__all__ = ["DispatchResult", "schedule_workgroups"]


@dataclass
class DispatchResult:
    """Outcome of list-scheduling one grid onto the SMs.

    Attributes
    ----------
    start / finish:
        Per-workgroup start and finish times in work units.
    makespan:
        Time the last workgroup finishes.
    balanced_lower_bound:
        ``total_work / total_slots`` -- the perfectly parallel time.
    """

    start: np.ndarray
    finish: np.ndarray
    makespan: float
    balanced_lower_bound: float

    @property
    def imbalance_factor(self) -> float:
        """Makespan over the balanced bound (>= 1)."""
        if self.balanced_lower_bound <= 0:
            return 1.0
        return max(self.makespan / self.balanced_lower_bound, 1.0)


def schedule_workgroups(
    costs: np.ndarray,
    num_sms: int,
    max_concurrent_per_sm: int = 1,
    dispatch_order: np.ndarray | None = None,
) -> DispatchResult:
    """List-schedule workgroups onto SM execution slots.

    ``costs`` are per-workgroup execution times in arbitrary consistent
    units.  Concurrency within an SM is modeled as ``max_concurrent``
    independent slots -- adequate for throughput accounting (real SMs
    interleave warps, but for bandwidth-bound kernels slot-level
    granularity captures the imbalance that matters).

    Workgroups are placed in id order (the in-order property adjacent
    synchronization relies on) unless ``dispatch_order`` gives an
    explicit arrival permutation -- the fault-injection harness uses
    that to model schedulers that break the assumption.  The makespan is
    order-independent for uniform costs; what an out-of-order arrival
    breaks is the *correctness* of the Grp_sum chain, which
    :func:`repro.gpu.adjacent_sync.chain_carries_hazard` models.
    """
    costs = np.asarray(costs, dtype=np.float64).ravel()
    n = costs.shape[0]
    total_slots = max(num_sms * max_concurrent_per_sm, 1)
    start = np.zeros(n, dtype=np.float64)
    finish = np.zeros(n, dtype=np.float64)
    if n == 0:
        return DispatchResult(start, finish, 0.0, 0.0)

    if dispatch_order is None:
        order = range(n)
    else:
        order = np.asarray(dispatch_order, dtype=np.int64).ravel()
        if order.shape[0] != n or np.unique(order).shape[0] != n:
            raise ValueError("dispatch_order must be a permutation of 0..n-1")

    total = float(costs.sum())
    if n <= total_slots:
        # Everything runs concurrently.
        finish = costs.copy()
        return DispatchResult(
            start, finish, float(costs.max()), total / total_slots
        )

    # Min-heap of slot free times.
    heap = [0.0] * total_slots
    heapq.heapify(heap)
    for i in order:
        t = heapq.heappop(heap)
        start[i] = t
        finish[i] = t + costs[i]
        heapq.heappush(heap, finish[i])
    return DispatchResult(
        start, finish, float(finish.max()), total / total_slots
    )
