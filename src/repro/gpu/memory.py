"""Global-memory coalescing model.

GPUs service a warp's 32 loads as whole aligned *transactions* (128 B on
both Fermi and Kepler).  A warp touching 32 consecutive floats costs one
transaction; 32 scattered floats cost up to 32.  The functions here turn
per-warp access patterns into transaction counts and effective DRAM
bytes, which is where row-based CSR kernels lose (strided gathers) and
the transposed BCCOO layout wins (unit-stride streams) -- the mechanism
behind the paper's "memory coalescing requirement" discussion.
"""

from __future__ import annotations

import numpy as np

from ..util import ceil_div

__all__ = [
    "warp_transactions",
    "gather_transactions",
    "stream_bytes",
    "strided_stream_transactions",
]


def warp_transactions(
    byte_addresses: np.ndarray, transaction_bytes: int = 128
) -> np.ndarray:
    """Transactions needed per warp for arbitrary address patterns.

    Parameters
    ----------
    byte_addresses:
        ``(n_warps, lanes)`` integer byte addresses; a negative address
        marks an inactive lane (predicated off) and costs nothing.
    transaction_bytes:
        Aligned segment size.

    Returns
    -------
    ``(n_warps,)`` transaction counts.
    """
    addr = np.asarray(byte_addresses, dtype=np.int64)
    if addr.ndim != 2:
        raise ValueError(f"expected (n_warps, lanes) addresses, got {addr.shape}")
    segs = addr // transaction_bytes
    segs = np.where(addr < 0, np.int64(-1), segs)
    segs_sorted = np.sort(segs, axis=1)
    new_seg = np.empty(segs_sorted.shape, dtype=bool)
    new_seg[:, 0] = segs_sorted[:, 0] >= 0
    np.not_equal(segs_sorted[:, 1:], segs_sorted[:, :-1], out=new_seg[:, 1:])
    new_seg[:, 1:] &= segs_sorted[:, 1:] >= 0
    return new_seg.sum(axis=1).astype(np.int64)


def gather_transactions(
    element_indices: np.ndarray,
    element_bytes: int,
    warp_size: int = 32,
    transaction_bytes: int = 128,
) -> int:
    """Total transactions for a gather executed warp-by-warp in order.

    ``element_indices`` is the flat stream of element indices the kernel
    gathers (e.g. column indices indexing the multiplied vector), chopped
    into consecutive warps of ``warp_size`` lanes.  Returns the total
    transaction count; multiply by ``transaction_bytes`` for DRAM bytes.
    """
    idx = np.asarray(element_indices, dtype=np.int64).ravel()
    if idx.size == 0:
        return 0
    pad = (-idx.size) % warp_size
    if pad:
        idx = np.concatenate([idx, np.full(pad, -1, dtype=np.int64)])
    addr = np.where(idx >= 0, idx * element_bytes, np.int64(-1))
    per_warp = warp_transactions(addr.reshape(-1, warp_size), transaction_bytes)
    return int(per_warp.sum())


def stream_bytes(n_elements: int, element_bytes: int, transaction_bytes: int = 128) -> int:
    """DRAM bytes for a perfectly coalesced unit-stride stream.

    Rounded up to whole transactions -- the floor cost of reading an
    array once.
    """
    total = n_elements * element_bytes
    return ceil_div(total, transaction_bytes) * transaction_bytes if total else 0


def strided_stream_transactions(
    n_elements: int,
    element_bytes: int,
    stride_elements: int,
    warp_size: int = 32,
    transaction_bytes: int = 128,
) -> int:
    """Transactions for a warp-strided access pattern.

    Models lane ``l`` of warp ``w`` touching element
    ``(w * warp_size + l) * stride``: the pattern of an *untransposed*
    value array in the paper's section 3.2.2, where each thread walks its
    thread-level tile row-by-row.  With ``stride_elements == 1`` this
    degenerates to the coalesced stream cost.
    """
    if n_elements <= 0:
        return 0
    if stride_elements <= 1:
        return ceil_div(n_elements * element_bytes, transaction_bytes)
    # Each warp covers warp_size strided elements; lanes hit
    # ceil(warp_size * stride * element_bytes / transaction) distinct
    # segments, capped at one per lane.
    span_bytes = warp_size * stride_elements * element_bytes
    per_warp = min(warp_size, ceil_div(span_bytes, transaction_bytes))
    return ceil_div(n_elements, warp_size) * per_warp
