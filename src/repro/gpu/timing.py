"""Analytical timing model: :class:`KernelStats` -> seconds -> GFLOPS.

The model captures the three first-order effects the paper's design
targets:

1. **Bandwidth**: ``t_mem = dram_bytes / effective_bandwidth`` plus a
   (cheaper) cache-throughput term for texture hits.  BCCOO's smaller
   footprint directly shrinks this term.
2. **Compute & divergence**: ``t_cmp = flops / (peak * simd_eff)``.
   SpMV is almost never compute-bound on these parts, but divergent
   row-based kernels can become so via low SIMD efficiency.
3. **Balance & synchronization**: per-workgroup work weights run through
   the dispatch model, yielding an imbalance factor >= 1 applied to the
   execution time; kernel launches, barriers, atomics and the adjacent
   synchronization chain add fixed/latency terms.

Time is ``max(t_mem, t_cmp) * imbalance + overheads``; throughput is the
paper's metric ``2 * nnz / t``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import active_observer
from .adjacent_sync import propagation_delay
from .counters import KernelStats
from .device import DeviceSpec
from .dispatch import schedule_workgroups

__all__ = ["TimingBreakdown", "TimingModel"]

#: Texture-cache hit bandwidth relative to DRAM bandwidth.  Hits are much
#: cheaper than DRAM but not free; 8x is a conservative aggregate ratio.
_CACHE_BW_MULTIPLIER = 8.0


@dataclass
class TimingBreakdown:
    """Estimated execution time of one SpMV, with attribution.

    All components are in seconds.  ``imbalance_factor`` already
    multiplies ``t_exec``; the raw balanced time is
    ``t_exec / imbalance_factor``.
    """

    t_total: float
    t_mem: float
    t_compute: float
    t_cache: float
    t_exec: float
    t_launch: float
    t_sync: float
    imbalance_factor: float
    bound: str  # "memory" | "compute"

    def gflops(self, nnz: int) -> float:
        """Paper metric: 2 * nnz FLOPs over the estimated time."""
        if self.t_total <= 0:
            return 0.0
        return 2.0 * nnz / self.t_total / 1e9


class TimingModel:
    """Converts kernel cost profiles to time on one device."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    def estimate(self, stats: KernelStats) -> TimingBreakdown:
        dev = self.device

        t_mem = stats.dram_bytes / dev.effective_bandwidth
        t_cache = stats.cached_read_bytes / (
            dev.effective_bandwidth * _CACHE_BW_MULTIPLIER
        )
        simd = min(max(stats.simd_efficiency, 1e-3), 1.0)
        peak = dev.peak_flops_dp if stats.fp64 else dev.peak_flops
        t_cmp = stats.flops / (peak * simd)

        base = max(t_mem + t_cache, t_cmp)
        bound = "memory" if t_mem + t_cache >= t_cmp else "compute"

        imbalance = self._imbalance(stats)
        t_exec = base * imbalance

        t_launch = stats.n_launches * dev.kernel_launch_s
        t_sync = self._sync_overhead(stats, t_exec)

        total = t_exec + t_launch + t_sync + stats.extra_latency_s
        return TimingBreakdown(
            t_total=total,
            t_mem=t_mem,
            t_compute=t_cmp,
            t_cache=t_cache,
            t_exec=t_exec,
            t_launch=t_launch,
            t_sync=t_sync,
            imbalance_factor=imbalance,
            bound=bound,
        )

    def explain(self, stats: KernelStats, nnz: int | None = None) -> str:
        """Human-readable cost attribution for one kernel profile.

        The report a performance engineer wants next to a number: where
        the bytes go, which term bounds the kernel, and what the
        overheads cost relative to execution.
        """
        br = self.estimate(stats)
        dev = self.device
        total = max(br.t_total, 1e-30)

        def pct(x: float) -> str:
            return f"{100.0 * x / total:5.1f}%"

        lines = [
            f"device {dev.name}: estimated {br.t_total * 1e6:.2f} us "
            f"({br.bound}-bound"
            + (f", {br.gflops(nnz):.2f} GFLOPS" if nnz else "")
            + ")",
            f"  execution      {br.t_exec * 1e6:9.2f} us  {pct(br.t_exec)}"
            + (
                f"  (imbalance x{br.imbalance_factor:.2f})"
                if br.imbalance_factor > 1.001
                else ""
            ),
            f"    memory term  {br.t_mem * 1e6:9.2f} us   "
            f"[{stats.dram_read_bytes / 1e6:.2f} MB read, "
            f"{stats.dram_write_bytes / 1e6:.2f} MB written]",
            f"    cache term   {br.t_cache * 1e6:9.2f} us   "
            f"[{stats.cached_read_bytes / 1e6:.2f} MB served from cache]",
            f"    compute term {br.t_compute * 1e6:9.2f} us   "
            f"[{stats.flops / 1e6:.2f} MFLOP, "
            f"SIMD eff {stats.simd_efficiency:.2f}"
            + (", fp64" if stats.fp64 else "")
            + "]",
            f"  launches       {br.t_launch * 1e6:9.2f} us  {pct(br.t_launch)}"
            f"  [{stats.n_launches} kernel(s)]",
            f"  synchronization{br.t_sync * 1e6:9.2f} us  {pct(br.t_sync)}"
            f"  [{stats.barriers_per_workgroup:.0f} barriers/wg, "
            f"{stats.atomics} atomics, "
            f"chain depth {stats.max_sync_chain}]",
        ]
        return "\n".join(lines)

    # ------------------------------------------------------------------ #

    def _imbalance(self, stats: KernelStats) -> float:
        """Dispatch-based makespan inflation from uneven workgroups."""
        w = stats.workgroup_work
        if w is None or w.size <= 1 or stats.workgroup_size <= 0:
            return 1.0
        concurrent = self.device.max_concurrent_workgroups(
            min(stats.workgroup_size, self.device.max_workgroup_size),
            stats.shared_mem_per_workgroup,
            stats.registers_per_thread,
        )
        result = schedule_workgroups(w, self.device.num_sms, concurrent)
        return result.imbalance_factor

    def _sync_overhead(self, stats: KernelStats, t_exec: float) -> float:
        """Barriers, atomics, and the adjacent-synchronization chain."""
        dev = self.device
        t = 0.0
        # Barriers serialize phases within a workgroup, but other
        # resident workgroups fill the stall slots: spread the total
        # barrier time over all concurrent execution contexts.
        if stats.barriers_per_workgroup and stats.n_workgroups:
            concurrent = dev.num_sms * dev.max_concurrent_workgroups(
                min(max(stats.workgroup_size, 1), dev.max_workgroup_size),
                stats.shared_mem_per_workgroup,
                stats.registers_per_thread,
            )
            total_barrier_s = (
                stats.n_workgroups * stats.barriers_per_workgroup * dev.barrier_s
            )
            t += total_barrier_s / max(concurrent, 1)
        # Atomics (logical workgroup-id tickets) pipeline through L2;
        # charge reciprocal throughput (the paper measures <2% overhead).
        if stats.atomics:
            t += stats.atomics * dev.atomic_s
        # Adjacent synchronization: the Grp_sum chain delays completion
        # only when a dependence run outlives the natural execution
        # stagger.  Approximate per-workgroup finish times as uniformly
        # staggered over t_exec and charge the chain propagation delay.
        if stats.sync_chain_lengths.size and stats.n_workgroups > 1:
            n = stats.n_workgroups
            finish = np.linspace(t_exec / n, t_exec, n)
            has_stop = self._stops_from_chains(stats.sync_chain_lengths, n)
            delay = propagation_delay(finish, has_stop, dev.dram_latency_s)
            t += delay
            obs = active_observer()
            if obs.enabled:
                obs.counter(
                    "gpu.sync.chains", "adjacent-sync dependence chains"
                ).inc(int(stats.sync_chain_lengths.size))
                obs.gauge(
                    "gpu.sync.max_chain", "longest Grp_sum chain (workgroups)"
                ).set(int(stats.sync_chain_lengths.max()))
                obs.histogram(
                    "gpu.sync.delay_s", "Grp_sum chain propagation delay"
                ).observe(delay)
        return t

    @staticmethod
    def _stops_from_chains(chain_lengths: np.ndarray, n_wg: int) -> np.ndarray:
        """Reconstruct a has-stop pattern consistent with chain lengths."""
        has_stop = np.ones(n_wg, dtype=bool)
        pos = 0
        for length in np.asarray(chain_lengths, dtype=np.int64):
            run = int(length) - 1
            if run > 0 and pos + run <= n_wg:
                has_stop[pos : pos + run] = False
            pos += max(int(length), 1)
            if pos >= n_wg:
                break
        return has_stop
