"""Simulated SpMV kernels: the yaSpMV kernel and all baselines.

Importing this package registers every kernel; look them up with
:func:`get_kernel` / :func:`available_kernels`.
"""

from .base import (
    BaselineConfig,
    KernelResult,
    SpMVKernel,
    available_kernels,
    get_kernel,
    register_kernel,
)
from .baselines import (
    BCSRKernel,
    BELLKernel,
    COOSegmentedKernel,
    CSRScalarKernel,
    CSRVectorKernel,
    DIAKernel,
    ELLKernel,
    HYBKernel,
    SELLKernel,
)
from .config import YaSpMVConfig
from .faithful import FaithfulTrace, yaspmv_faithful
from .merge_path import MergePathKernel
from .row_grouped import RowGroupedKernel
from .yaspmv import YaSpMVKernel

__all__ = [
    "BaselineConfig",
    "KernelResult",
    "SpMVKernel",
    "available_kernels",
    "get_kernel",
    "register_kernel",
    "BCSRKernel",
    "BELLKernel",
    "COOSegmentedKernel",
    "CSRScalarKernel",
    "CSRVectorKernel",
    "DIAKernel",
    "ELLKernel",
    "HYBKernel",
    "SELLKernel",
    "YaSpMVConfig",
    "FaithfulTrace",
    "yaspmv_faithful",
    "MergePathKernel",
    "RowGroupedKernel",
    "YaSpMVKernel",
]
