"""Kernel interface and registry.

A *kernel* is a simulated-GPU SpMV implementation: it computes the exact
numerical result the corresponding OpenCL/CUDA kernel would produce and
a :class:`repro.gpu.KernelStats` cost profile for the timing model.

Kernels are pure functions of ``(format_instance, x, device, config)``;
they never mutate the format.  Each kernel registers itself so the
engine and auto-tuner can enumerate them.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from ..errors import KernelConfigError
from ..formats.base import SparseFormat
from ..gpu.counters import KernelStats
from ..gpu.device import DeviceSpec

__all__ = ["KernelResult", "SpMVKernel", "register_kernel", "get_kernel", "available_kernels"]


@dataclass
class KernelResult:
    """Output of one simulated kernel execution."""

    y: np.ndarray
    stats: KernelStats

    def __iter__(self):
        # Allow ``y, stats = kernel.run(...)``.
        yield self.y
        yield self.stats


class SpMVKernel(abc.ABC):
    """Base class for simulated SpMV kernels."""

    #: Registry key, e.g. ``"yaspmv"``.
    name: ClassVar[str] = ""
    #: Format registry name this kernel executes.
    format_name: ClassVar[str] = ""

    @abc.abstractmethod
    def run(
        self,
        fmt: SparseFormat,
        x: np.ndarray,
        device: DeviceSpec,
        **config,
    ) -> KernelResult:
        """Execute SpMV; returns exact ``y`` plus the cost profile."""

    # ------------------------------------------------------------------ #

    @staticmethod
    def _check_workgroup(workgroup_size: int, device: DeviceSpec) -> None:
        if workgroup_size < device.warp_size:
            raise KernelConfigError(
                f"workgroup size {workgroup_size} below warp size {device.warp_size}"
            )
        if workgroup_size % device.warp_size != 0:
            raise KernelConfigError(
                f"workgroup size {workgroup_size} must be a multiple of the "
                f"warp size {device.warp_size}"
            )
        if workgroup_size > device.max_workgroup_size:
            raise KernelConfigError(
                f"workgroup size {workgroup_size} exceeds device limit "
                f"{device.max_workgroup_size}"
            )


_REGISTRY: dict[str, SpMVKernel] = {}


def register_kernel(cls: type[SpMVKernel]) -> type[SpMVKernel]:
    """Class decorator: instantiate and register the kernel."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate kernel name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def get_kernel(name: str) -> SpMVKernel:
    """Look up a registered kernel instance by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KernelConfigError(
            f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_kernels() -> dict[str, SpMVKernel]:
    """Read-only view of the kernel registry."""
    return dict(_REGISTRY)
