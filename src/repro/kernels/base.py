"""Kernel interface and registry.

A *kernel* is a simulated-GPU SpMV implementation: it computes the exact
numerical result the corresponding OpenCL/CUDA kernel would produce and
a :class:`repro.gpu.KernelStats` cost profile for the timing model.

Kernels are pure functions of ``(format_instance, x, device, config)``;
they never mutate the format.  Each kernel registers itself so the
engine and auto-tuner can enumerate them.

Every kernel shares one execution protocol::

    kernel.run(fmt, x, device, config=kernel.config_cls(...))

``config`` is keyword-only and must be an instance of the kernel's
:attr:`~SpMVKernel.config_cls` (a small frozen dataclass;
:class:`BaselineConfig` for the comparator kernels,
:class:`~repro.kernels.config.YaSpMVConfig` for yaSpMV).  Omitting it
runs the kernel's defaults.  The pre-unification calling convention --
loose keyword arguments such as ``run(fmt, x, device,
workgroup_size=128)`` -- still works for one release through a
deprecation shim that packs them into ``config_cls``.
"""

from __future__ import annotations

import abc
import warnings
from dataclasses import dataclass, fields, replace
from typing import Any, ClassVar

import numpy as np

from ..errors import KernelConfigError
from ..formats.base import SparseFormat
from ..gpu.counters import KernelStats
from ..gpu.device import DeviceSpec

__all__ = [
    "BaselineConfig",
    "KernelResult",
    "SpMVKernel",
    "register_kernel",
    "get_kernel",
    "available_kernels",
]


@dataclass(frozen=True)
class BaselineConfig:
    """Launch configuration shared by the baseline (comparator) kernels.

    The comparators expose a single knob -- the workgroup size -- so this
    is deliberately minimal; kernels with richer spaces (yaSpMV) declare
    their own ``config_cls``.
    """

    workgroup_size: int = 256

    def with_overrides(self, **kw) -> "BaselineConfig":
        """Copy with fields replaced."""
        return replace(self, **kw)


@dataclass
class KernelResult:
    """Output of one simulated kernel execution."""

    y: np.ndarray
    stats: KernelStats

    def __iter__(self):
        # Allow ``y, stats = kernel.run(...)``.
        yield self.y
        yield self.stats


class SpMVKernel(abc.ABC):
    """Base class for simulated SpMV kernels.

    Subclasses implement :meth:`_execute`, receiving an already-coerced
    ``config_cls`` instance; :meth:`run` is the single public entry
    point and handles config validation plus the legacy-kwargs shim.
    """

    #: Registry key, e.g. ``"yaspmv"``.
    name: ClassVar[str] = ""
    #: Format registry name this kernel executes.
    format_name: ClassVar[str] = ""
    #: Dataclass type of this kernel's launch configuration.
    config_cls: ClassVar[type] = BaselineConfig

    def run(
        self,
        fmt: SparseFormat,
        x: np.ndarray,
        device: DeviceSpec,
        *,
        config: Any | None = None,
        **legacy,
    ) -> KernelResult:
        """Execute SpMV; returns exact ``y`` plus the cost profile.

        ``config`` must be an instance of :attr:`config_cls` (defaults
        are used when omitted).  Loose keyword arguments are accepted
        for backward compatibility only and emit a
        :class:`DeprecationWarning`.
        """
        return self._execute(fmt, x, device, self._coerce_config(config, legacy))

    @abc.abstractmethod
    def _execute(
        self,
        fmt: SparseFormat,
        x: np.ndarray,
        device: DeviceSpec,
        config,
    ) -> KernelResult:
        """Kernel body; ``config`` is a validated ``config_cls`` instance."""

    # ------------------------------------------------------------------ #

    def _coerce_config(self, config, legacy: dict):
        """Validate ``config`` or pack deprecated loose kwargs into one."""
        if legacy:
            if config is not None:
                raise KernelConfigError(
                    f"{type(self).__name__}.run() takes either config= or "
                    f"legacy keyword arguments, not both: {sorted(legacy)}"
                )
            warnings.warn(
                f"passing loose keyword arguments to {type(self).__name__}"
                f".run() is deprecated; pass "
                f"config={self.config_cls.__name__}(...) instead",
                DeprecationWarning,
                stacklevel=3,
            )
            known = {f.name for f in fields(self.config_cls)}
            # The old signatures swallowed unknown kwargs (``**kw``);
            # the shim preserves that tolerance.
            return self.config_cls(**{k: v for k, v in legacy.items() if k in known})
        if config is None:
            return self.config_cls()
        if not isinstance(config, self.config_cls):
            raise KernelConfigError(
                f"{type(self).__name__}.run() needs a "
                f"{self.config_cls.__name__} config, got {type(config).__name__}"
            )
        return config

    @staticmethod
    def _check_workgroup(workgroup_size: int, device: DeviceSpec) -> None:
        if workgroup_size < device.warp_size:
            raise KernelConfigError(
                f"workgroup size {workgroup_size} below warp size {device.warp_size}"
            )
        if workgroup_size % device.warp_size != 0:
            raise KernelConfigError(
                f"workgroup size {workgroup_size} must be a multiple of the "
                f"warp size {device.warp_size}"
            )
        if workgroup_size > device.max_workgroup_size:
            raise KernelConfigError(
                f"workgroup size {workgroup_size} exceeds device limit "
                f"{device.max_workgroup_size}"
            )


_REGISTRY: dict[str, SpMVKernel] = {}


def register_kernel(cls: type[SpMVKernel]) -> type[SpMVKernel]:
    """Class decorator: instantiate and register the kernel."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate kernel name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def get_kernel(name: str) -> SpMVKernel:
    """Look up a registered kernel instance by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KernelConfigError(
            f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_kernels() -> dict[str, SpMVKernel]:
    """Read-only view of the kernel registry."""
    return dict(_REGISTRY)
