"""Kernel interface and registry.

A *kernel* is a simulated-GPU SpMV implementation: it computes the exact
numerical result the corresponding OpenCL/CUDA kernel would produce and
a :class:`repro.gpu.KernelStats` cost profile for the timing model.

Kernels are pure functions of ``(format_instance, x, device, config)``;
they never mutate the format.  Each kernel registers itself so the
engine and auto-tuner can enumerate them.

Every kernel shares one execution protocol::

    kernel.run(fmt, x, device, config=kernel.config_cls(...))

``config`` is keyword-only and must be an instance of the kernel's
:attr:`~SpMVKernel.config_cls` (a small frozen dataclass;
:class:`BaselineConfig` for the comparator kernels,
:class:`~repro.kernels.config.YaSpMVConfig` for yaSpMV).  Omitting it
runs the kernel's defaults.  The pre-unification loose-kwargs calling
convention was removed after its one-release deprecation window; passing
unknown keyword arguments is now a :class:`TypeError`.

Every execution reports through the ambient observer (see
:mod:`repro.obs`): a ``kernel.<name>`` span wrapping :meth:`_execute`
plus launch counters.  With the default null observer the hooks cost a
module-global read and nothing else.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Any, ClassVar

import numpy as np

from ..errors import KernelConfigError
from ..formats.base import SparseFormat
from ..gpu.counters import KernelStats
from ..gpu.device import DeviceSpec
from ..obs import active_observer

__all__ = [
    "BaselineConfig",
    "KernelResult",
    "SpMVKernel",
    "register_kernel",
    "get_kernel",
    "available_kernels",
]


@dataclass(frozen=True)
class BaselineConfig:
    """Launch configuration shared by the baseline (comparator) kernels.

    The comparators expose a single knob -- the workgroup size -- so this
    is deliberately minimal; kernels with richer spaces (yaSpMV) declare
    their own ``config_cls``.
    """

    workgroup_size: int = 256

    def with_overrides(self, **kw) -> "BaselineConfig":
        """Copy with fields replaced."""
        return replace(self, **kw)


@dataclass
class KernelResult:
    """Output of one simulated kernel execution."""

    y: np.ndarray
    stats: KernelStats

    def __iter__(self):
        # Allow ``y, stats = kernel.run(...)``.
        yield self.y
        yield self.stats


class SpMVKernel(abc.ABC):
    """Base class for simulated SpMV kernels.

    Subclasses implement :meth:`_execute`, receiving an already-coerced
    ``config_cls`` instance; :meth:`run` is the single public entry
    point and handles config validation plus observability.
    """

    #: Registry key, e.g. ``"yaspmv"``.
    name: ClassVar[str] = ""
    #: Format registry name this kernel executes.
    format_name: ClassVar[str] = ""
    #: Dataclass type of this kernel's launch configuration.
    config_cls: ClassVar[type] = BaselineConfig

    def run(
        self,
        fmt: SparseFormat,
        x: np.ndarray,
        device: DeviceSpec,
        *,
        config: Any | None = None,
    ) -> KernelResult:
        """Execute SpMV; returns exact ``y`` plus the cost profile.

        ``config`` must be an instance of :attr:`config_cls` (defaults
        are used when omitted).
        """
        cfg = self._coerce_config(config)
        obs = active_observer()
        if not obs.enabled:
            return self._execute(fmt, x, device, cfg)
        label = self.name or type(self).__name__
        with obs.span(
            f"kernel.{label}",
            kernel=label,
            format=type(fmt).__name__,
            workgroup_size=cfg.workgroup_size,
        ) as sp:
            result = self._execute(fmt, x, device, cfg)
            self._observe(obs, sp, label, result.stats)
        return result

    @staticmethod
    def _observe(obs, sp, label: str, stats: KernelStats) -> None:
        """Feed one execution's cost profile to the active observer."""
        sp.set(
            n_launches=stats.n_launches,
            n_workgroups=stats.n_workgroups,
            dram_read_bytes=stats.dram_read_bytes,
            dram_write_bytes=stats.dram_write_bytes,
            cached_read_bytes=stats.cached_read_bytes,
            flops=stats.flops,
        )
        obs.counter(
            "kernel.executions", "simulated kernel executions"
        ).inc(kernel=label)
        obs.counter(
            "kernel.launches", "simulated device launches"
        ).inc(stats.n_launches, kernel=label)
        obs.counter(
            "kernel.atomics", "logical-id atomics issued"
        ).inc(stats.atomics, kernel=label)

    @abc.abstractmethod
    def _execute(
        self,
        fmt: SparseFormat,
        x: np.ndarray,
        device: DeviceSpec,
        config,
    ) -> KernelResult:
        """Kernel body; ``config`` is a validated ``config_cls`` instance."""

    # ------------------------------------------------------------------ #

    def _coerce_config(self, config):
        """Validate ``config``, defaulting to the kernel's ``config_cls``."""
        if config is None:
            return self.config_cls()
        if not isinstance(config, self.config_cls):
            raise KernelConfigError(
                f"{type(self).__name__}.run() needs a "
                f"{self.config_cls.__name__} config, got {type(config).__name__}"
            )
        return config

    @staticmethod
    def _check_workgroup(workgroup_size: int, device: DeviceSpec) -> None:
        if workgroup_size < device.warp_size:
            raise KernelConfigError(
                f"workgroup size {workgroup_size} below warp size {device.warp_size}"
            )
        if workgroup_size % device.warp_size != 0:
            raise KernelConfigError(
                f"workgroup size {workgroup_size} must be a multiple of the "
                f"warp size {device.warp_size}"
            )
        if workgroup_size > device.max_workgroup_size:
            raise KernelConfigError(
                f"workgroup size {workgroup_size} exceeds device limit "
                f"{device.max_workgroup_size}"
            )


_REGISTRY: dict[str, SpMVKernel] = {}


def register_kernel(cls: type[SpMVKernel]) -> type[SpMVKernel]:
    """Class decorator: instantiate and register the kernel."""
    if not cls.name:
        raise ValueError(f"{cls.__name__} must define a non-empty 'name'")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate kernel name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def get_kernel(name: str) -> SpMVKernel:
    """Look up a registered kernel instance by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KernelConfigError(
            f"unknown kernel {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_kernels() -> dict[str, SpMVKernel]:
    """Read-only view of the kernel registry."""
    return dict(_REGISTRY)
