"""Baseline SpMV kernels: the comparators of Figures 13-15.

Reimplementations (numerics + cost profiles) of the schemes the paper
measures against, all on the same simulated device so the comparison is
apples-to-apples:

* ``csr_scalar`` / ``csr_vector`` -- CUSPARSE's CSR kernels: one thread,
  resp. one warp, per row.  These carry the two pathologies the paper
  attacks: non-coalesced gathers and row-length load imbalance.
* ``ell`` / ``dia`` -- regular formats: perfectly balanced and coalesced
  but paying for padding.
* ``hyb`` -- CUSPARSE's flagship: ELL head + COO tail, two launches.
* ``bcsr`` -- blocked CSR (CUSPARSE's blocked path, block size searched
  by the tuning harness).
* ``coo_segmented`` -- CUSP's COO kernel: segmented reduction with a
  lockstep tree scan and a second combine kernel.  Balanced, but pays
  12 bytes/non-zero, log-factor scan work and an extra launch.

The clSpMV "best single" and "COCKTAIL" comparators are selections over
these kernels; they live in :mod:`repro.core.baselines`.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import KernelConfigError
from ..formats.bcsr import BCSRMatrix
from ..formats.coo import COOMatrix
from ..formats.csr import CSRMatrix
from ..formats.dia import DIAMatrix
from ..formats.ell import ELLMatrix
from ..formats.hyb import HYBMatrix
from ..gpu.caches import vector_read_traffic
from ..gpu.counters import KernelStats
from ..gpu.device import DeviceSpec
from ..gpu.memory import stream_bytes
from ..util import ceil_div
from .base import KernelResult, SpMVKernel, register_kernel

__all__ = [
    "CSRScalarKernel",
    "CSRVectorKernel",
    "ELLKernel",
    "DIAKernel",
    "HYBKernel",
    "BCSRKernel",
    "COOSegmentedKernel",
    "SELLKernel",
    "BELLKernel",
    "CocktailKernel",
]

_VAL_B = 4
_IDX_B = 4
_SECTOR_B = 32
_SHM_OP_WEIGHT = 2.0


def _expect(fmt, cls):
    if not isinstance(fmt, cls):
        raise KernelConfigError(
            f"kernel expects {cls.__name__}, got {type(fmt).__name__}"
        )
    return fmt


def _vector_traffic(indices, device: DeviceSpec, use_cache: bool = True):
    return vector_read_traffic(
        indices,
        _VAL_B,
        cache_bytes=device.tex_cache_bytes,
        line_bytes=device.tex_line_bytes,
        use_cache=use_cache,
    )


def _row_warp_views(lengths: np.ndarray, warp: int) -> np.ndarray:
    """Row lengths padded and reshaped to ``(n_warps, warp)``."""
    n = lengths.shape[0]
    pad = (-n) % warp
    if pad:
        lengths = np.concatenate([lengths, np.zeros(pad, dtype=lengths.dtype)])
    return lengths.reshape(-1, warp)


@register_kernel
class CSRScalarKernel(SpMVKernel):
    """One thread per row over CSR (scalar kernel).

    A warp serializes to its longest row (control divergence) and each
    lane walks its own row, so value/column reads splinter into 32-byte
    sectors once rows exceed ~8 elements.
    """

    name = "csr_scalar"
    format_name = "csr"

    def _execute(self, fmt, x, device, config) -> KernelResult:
        workgroup_size = config.workgroup_size
        fmt = _expect(fmt, CSRMatrix)
        self._check_workgroup(workgroup_size, device)
        y = fmt.multiply(x)

        lengths = fmt.row_lengths().astype(np.int64)
        warp = device.warp_size
        warps = _row_warp_views(lengths, warp)
        warp_max = warps.max(axis=1)
        scheduled = float(warp_max.sum() * warp)
        useful = float(lengths.sum())
        simd_eff = useful / scheduled if scheduled else 1.0

        # Per-warp sector waste: lanes stride by ~their row length, so
        # adjacent lanes share sectors only for short rows.  A device
        # whose L1 caches global loads (Fermi) recovers the unused
        # sector halves on the next step's re-touch.
        sector_elems = _SECTOR_B // _VAL_B
        mean_len = warps.mean(axis=1)
        waste = np.clip(mean_len, 1.0, sector_elems)
        if device.l1_global_bytes > 0:
            waste = 1.0 + (waste - 1.0) * 0.4
        elem_bytes = float((warps.sum(axis=1) * waste).sum()) * _VAL_B

        read = stream_bytes(fmt.nrows + 1, _IDX_B, device.transaction_bytes)
        read += 2.0 * elem_bytes  # values + column indices
        vec_dram, vec_cached = _vector_traffic(fmt.col_index, device)
        read += vec_dram
        write = stream_bytes(fmt.nrows, _VAL_B, device.transaction_bytes)

        rows_per_wg = workgroup_size
        n_wg = max(ceil_div(fmt.nrows, rows_per_wg), 1)
        # Workgroup weight: sum of its warps' serialized lane-steps.
        warps_per_wg = rows_per_wg // warp
        pad_w = (-warp_max.shape[0]) % warps_per_wg
        wm = np.concatenate([warp_max, np.zeros(pad_w, dtype=np.int64)])
        wg_work = wm.reshape(-1, warps_per_wg).sum(axis=1).astype(np.float64)

        stats = KernelStats(
            flops=2.0 * fmt.nnz,
            dram_read_bytes=float(read),
            dram_write_bytes=float(write),
            cached_read_bytes=float(vec_cached),
            simd_efficiency=max(simd_eff, 1e-3),
            workgroup_size=workgroup_size,
            n_workgroups=n_wg,
            workgroup_work=wg_work,
            n_launches=1,
        )
        return KernelResult(y=y, stats=stats)


@register_kernel
class CSRVectorKernel(SpMVKernel):
    """One warp per row over CSR (vector kernel).

    Coalesced within a row; rows shorter than a warp idle lanes, long
    rows still skew workgroup runtimes.
    """

    name = "csr_vector"
    format_name = "csr"

    def _execute(self, fmt, x, device, config) -> KernelResult:
        workgroup_size = config.workgroup_size
        fmt = _expect(fmt, CSRMatrix)
        self._check_workgroup(workgroup_size, device)
        y = fmt.multiply(x)

        warp = device.warp_size
        lengths = fmt.row_lengths().astype(np.int64)
        rounds = np.maximum(np.ceil(lengths / warp), lengths > 0).astype(np.int64)
        scheduled = float(rounds.sum() * warp)
        useful = float(lengths.sum())
        simd_eff = useful / scheduled if scheduled else 1.0

        # Row-contiguous reads: whole transactions per row.
        txn = device.transaction_bytes
        per_row_bytes = np.ceil(lengths * _VAL_B / txn) * txn
        read = float(per_row_bytes.sum()) * 2  # values + columns
        read += stream_bytes(fmt.nrows + 1, _IDX_B, txn)
        vec_dram, vec_cached = _vector_traffic(fmt.col_index, device)
        read += vec_dram
        write = stream_bytes(fmt.nrows, _VAL_B, txn)

        rows_per_wg = workgroup_size // warp
        n_wg = max(ceil_div(fmt.nrows, max(rows_per_wg, 1)), 1)
        pad = (-lengths.shape[0]) % max(rows_per_wg, 1)
        lr = np.concatenate([rounds, np.zeros(pad, dtype=np.int64)])
        wg_work = lr.reshape(-1, rows_per_wg).sum(axis=1).astype(np.float64)

        stats = KernelStats(
            flops=2.0 * fmt.nnz + 5.0 * fmt.nrows,  # + warp reduction
            dram_read_bytes=read,
            dram_write_bytes=float(write),
            cached_read_bytes=float(vec_cached),
            simd_efficiency=max(simd_eff, 1e-3),
            workgroup_size=workgroup_size,
            n_workgroups=n_wg,
            workgroup_work=wg_work,
            n_launches=1,
        )
        return KernelResult(y=y, stats=stats)


@register_kernel
class ELLKernel(SpMVKernel):
    """One thread per row over column-major ELL.

    Perfectly coalesced and balanced in *memory* terms -- every padded
    slot is read -- so the price of skew is paid in bandwidth, not
    divergence.
    """

    name = "ell"
    format_name = "ell"

    def _execute(self, fmt, x, device, config) -> KernelResult:
        workgroup_size = config.workgroup_size
        fmt = _expect(fmt, ELLMatrix)
        self._check_workgroup(workgroup_size, device)
        y = fmt.multiply(x)

        txn = device.transaction_bytes
        slots = fmt.stored_slots
        read = stream_bytes(slots, _VAL_B, txn) + stream_bytes(slots, _IDX_B, txn)
        mask = fmt.col_index >= 0
        vec_dram, vec_cached = _vector_traffic(fmt.col_index.T[mask.T], device)
        read += vec_dram
        write = stream_bytes(fmt.nrows, _VAL_B, txn)

        stats = KernelStats(
            flops=2.0 * slots,  # padded slots do real FMAs
            dram_read_bytes=float(read),
            dram_write_bytes=float(write),
            cached_read_bytes=float(vec_cached),
            simd_efficiency=1.0,
            workgroup_size=workgroup_size,
            n_workgroups=max(ceil_div(fmt.nrows, workgroup_size), 1),
            n_launches=1,
        )
        return KernelResult(y=y, stats=stats)


@register_kernel
class DIAKernel(SpMVKernel):
    """One thread per row over DIA: fully regular streams."""

    name = "dia"
    format_name = "dia"

    def _execute(self, fmt, x, device, config) -> KernelResult:
        workgroup_size = config.workgroup_size
        fmt = _expect(fmt, DIAMatrix)
        self._check_workgroup(workgroup_size, device)
        y = fmt.multiply(x)

        txn = device.transaction_bytes
        band_slots = fmt.ndiags * fmt.nrows
        read = stream_bytes(band_slots, _VAL_B, txn)
        read += stream_bytes(fmt.ndiags, _IDX_B, txn)
        # x is streamed once per diagonal but shifted reads hit cache for
        # adjacent diagonals; charge one full stream plus sector-grain
        # misses for the rest.
        read += stream_bytes(fmt.nrows, _VAL_B, txn)
        cached = max(band_slots - fmt.nrows, 0) * _VAL_B
        write = stream_bytes(fmt.nrows, _VAL_B, txn)

        stats = KernelStats(
            flops=2.0 * band_slots,
            dram_read_bytes=float(read),
            dram_write_bytes=float(write),
            cached_read_bytes=float(cached),
            simd_efficiency=1.0,
            workgroup_size=workgroup_size,
            n_workgroups=max(ceil_div(fmt.nrows, workgroup_size), 1),
            n_launches=1,
        )
        return KernelResult(y=y, stats=stats)


@register_kernel
class HYBKernel(SpMVKernel):
    """CUSPARSE HYB: ELL kernel + COO kernel, two launches."""

    name = "hyb"
    format_name = "hyb"

    def _execute(self, fmt, x, device, config) -> KernelResult:
        fmt = _expect(fmt, HYBMatrix)
        ell_res = ELLKernel().run(fmt.ell, x, device, config=config)
        coo_res = COOSegmentedKernel().run(fmt.coo, x, device, config=config)
        y = ell_res.y + coo_res.y
        stats = ell_res.stats.sequential(coo_res.stats)
        return KernelResult(y=y, stats=stats)


@register_kernel
class BCSRKernel(SpMVKernel):
    """One thread per block row over BCSR."""

    name = "bcsr"
    format_name = "bcsr"

    def _execute(self, fmt, x, device, config) -> KernelResult:
        workgroup_size = config.workgroup_size
        fmt = _expect(fmt, BCSRMatrix)
        self._check_workgroup(workgroup_size, device)
        y = fmt.multiply(x)

        h, w = fmt.block_height, fmt.block_width
        lengths = np.diff(fmt.block_row_ptr).astype(np.int64)
        warp = device.warp_size
        warps = _row_warp_views(lengths, warp)
        warp_max = warps.max(axis=1)
        scheduled = float(warp_max.sum() * warp)
        useful = float(lengths.sum())
        simd_eff = useful / scheduled if scheduled else 1.0

        txn = device.transaction_bytes
        block_bytes = h * w * _VAL_B
        # Each block is a contiguous chunk; isolated chunks round to
        # sectors, unless an L1 for globals (Fermi) merges the slack.
        per_block = ceil_div(block_bytes, _SECTOR_B) * _SECTOR_B
        if device.l1_global_bytes > 0:
            per_block = block_bytes + (per_block - block_bytes) * 0.4
        read = fmt.nblocks * per_block
        read += fmt.nblocks * _IDX_B  # block columns (sector-merged approx)
        read += stream_bytes(fmt.n_block_rows + 1, _IDX_B, txn)
        gather = (
            fmt.block_col.astype(np.int64)[:, None] * w
            + np.arange(w, dtype=np.int64)[None, :]
        ).ravel()
        gather = np.minimum(gather, fmt.ncols - 1)
        vec_dram, vec_cached = _vector_traffic(gather, device)
        read += vec_dram
        write = stream_bytes(fmt.nrows, _VAL_B, txn)

        rows_per_wg = workgroup_size
        n_wg = max(ceil_div(fmt.n_block_rows, rows_per_wg), 1)
        warps_per_wg = rows_per_wg // warp
        pad_w = (-warp_max.shape[0]) % warps_per_wg
        wm = np.concatenate([warp_max, np.zeros(pad_w, dtype=np.int64)])
        wg_work = (
            wm.reshape(-1, warps_per_wg).sum(axis=1).astype(np.float64) * h * w
        )

        stats = KernelStats(
            flops=2.0 * fmt.nblocks * h * w,
            dram_read_bytes=float(read),
            dram_write_bytes=float(write),
            cached_read_bytes=float(vec_cached),
            simd_efficiency=max(simd_eff, 1e-3),
            workgroup_size=workgroup_size,
            n_workgroups=n_wg,
            workgroup_work=wg_work,
            n_launches=1,
        )
        return KernelResult(y=y, stats=stats)


@register_kernel
class COOSegmentedKernel(SpMVKernel):
    """CUSP-style COO SpMV: tree-scan segmented reduction, two kernels.

    Load-balanced by construction (non-zeros split evenly), but pays COO's
    12 bytes per non-zero, a log-factor of shared-memory scan work per
    element, and a second launch to stitch workgroup carries.
    """

    name = "coo_segmented"
    format_name = "coo"

    def _execute(self, fmt, x, device, config) -> KernelResult:
        workgroup_size = config.workgroup_size
        fmt = _expect(fmt, COOMatrix)
        self._check_workgroup(workgroup_size, device)
        y = fmt.multiply(x)

        txn = device.transaction_bytes
        nnz = fmt.nnz
        read = stream_bytes(nnz, _IDX_B, txn) * 2  # rows + cols
        read += stream_bytes(nnz, _VAL_B, txn)
        vec_dram, vec_cached = _vector_traffic(fmt.col, device)
        read += vec_dram

        n_wg = max(ceil_div(nnz, workgroup_size), 1)
        write = stream_bytes(fmt.nrows, _VAL_B, txn)
        # Workgroup carries round-trip through global memory for the
        # second (combine) kernel.
        carry_bytes = n_wg * _VAL_B
        write += 2 * carry_bytes
        read += 2 * carry_bytes

        log_wg = max(int(math.ceil(math.log2(max(workgroup_size, 2)))), 1)
        flops = 2.0 * nnz + nnz * log_wg * _SHM_OP_WEIGHT

        stats = KernelStats(
            flops=flops,
            dram_read_bytes=float(read),
            dram_write_bytes=float(write),
            cached_read_bytes=float(vec_cached),
            simd_efficiency=0.80,  # lockstep tree-scan idling
            workgroup_size=workgroup_size,
            n_workgroups=n_wg,
            workgroup_work=None,  # even non-zero split
            barriers_per_workgroup=float(log_wg),
            n_launches=2,
            extra_latency_s=device.dram_latency_s,
        )
        return KernelResult(y=y, stats=stats)


@register_kernel
class SELLKernel(SpMVKernel):
    """One thread per row within per-slice ELL (sliced ELLPACK).

    Coalesced like ELL but padded only to each slice's own width; the
    price is inter-slice load imbalance, carried in the per-workgroup
    work weights.
    """

    name = "sell"
    format_name = "sell"

    def _execute(self, fmt, x, device, config) -> KernelResult:
        workgroup_size = config.workgroup_size
        from ..formats.sell import SELLMatrix

        fmt = _expect(fmt, SELLMatrix)
        self._check_workgroup(workgroup_size, device)
        y = fmt.multiply(x)

        txn = device.transaction_bytes
        slots = fmt.stored_slots
        read = stream_bytes(slots, _VAL_B, txn) + stream_bytes(slots, _IDX_B, txn)
        read += stream_bytes(fmt.n_slices + 1, _IDX_B, txn)
        mask = fmt.col_index >= 0
        vec_dram, vec_cached = _vector_traffic(fmt.col_index[mask], device)
        read += vec_dram
        write = stream_bytes(fmt.nrows, _VAL_B, txn)

        # One workgroup covers workgroup_size rows; its work is the sum
        # of the slice widths its rows fall in.
        widths = fmt.slice_width.astype(np.float64)
        per_row = np.repeat(widths, fmt.slice_height)[: fmt.nrows]
        pad = (-fmt.nrows) % workgroup_size
        pr = np.concatenate([per_row, np.zeros(pad)])
        wg_work = pr.reshape(-1, workgroup_size).sum(axis=1)

        stats = KernelStats(
            flops=2.0 * slots,
            dram_read_bytes=float(read),
            dram_write_bytes=float(write),
            cached_read_bytes=float(vec_cached),
            simd_efficiency=1.0,
            workgroup_size=workgroup_size,
            n_workgroups=max(wg_work.shape[0], 1),
            workgroup_work=wg_work,
            n_launches=1,
        )
        return KernelResult(y=y, stats=stats)


@register_kernel
class BELLKernel(SpMVKernel):
    """One thread per block row over blocked ELL."""

    name = "bell"
    format_name = "bell"

    def _execute(self, fmt, x, device, config) -> KernelResult:
        workgroup_size = config.workgroup_size
        from ..formats.bell import BELLMatrix

        fmt = _expect(fmt, BELLMatrix)
        self._check_workgroup(workgroup_size, device)
        y = fmt.multiply(x)

        h, w = fmt.block_height, fmt.block_width
        txn = device.transaction_bytes
        nslots = fmt.K * fmt.n_block_rows
        read = stream_bytes(nslots * h * w, _VAL_B, txn)
        read += stream_bytes(nslots, _IDX_B, txn)
        mask = fmt.block_col >= 0
        bcols = fmt.block_col[mask].astype(np.int64)
        gather = (bcols[:, None] * w + np.arange(w, dtype=np.int64)[None, :]).ravel()
        gather = np.minimum(gather, fmt.ncols - 1)
        vec_dram, vec_cached = _vector_traffic(gather, device)
        read += vec_dram
        write = stream_bytes(fmt.nrows, _VAL_B, txn)

        stats = KernelStats(
            flops=2.0 * nslots * h * w,
            dram_read_bytes=float(read),
            dram_write_bytes=float(write),
            cached_read_bytes=float(vec_cached),
            simd_efficiency=1.0,
            workgroup_size=workgroup_size,
            n_workgroups=max(ceil_div(fmt.n_block_rows, workgroup_size), 1),
            n_launches=1,
        )
        return KernelResult(y=y, stats=stats)


@register_kernel
class CocktailKernel(SpMVKernel):
    """clSpMV COCKTAIL: one kernel launch per partition, results added.

    Each partition runs the kernel matching its storage; launches and
    traffic accumulate through :meth:`KernelStats.sequential`.
    """

    name = "cocktail"
    format_name = "cocktail"

    _SUB_KERNELS = {
        "dia": "dia",
        "ell": "ell",
        "sell32": "sell",
        "csr": "csr_vector",
        "coo": "coo_segmented",
        "merge_csr": "merge_csr",
        "rgcsr": "rgcsr",
    }

    def _execute(self, fmt, x, device, config) -> KernelResult:
        from ..formats.cocktail import CocktailMatrix
        from .base import get_kernel

        fmt = _expect(fmt, CocktailMatrix)
        y = None
        stats = None
        for label, part in fmt.partitions:
            kernel = get_kernel(self._SUB_KERNELS[label])
            # Sub-kernels keep their strict config contract; translate the
            # cocktail's config to each member's type, carrying the one
            # knob they all share.
            if config is None or isinstance(config, kernel.config_cls):
                cfg = config
            else:
                cfg = kernel.config_cls(workgroup_size=config.workgroup_size)
            res = kernel.run(part, x, device, config=cfg)
            y = res.y if y is None else y + res.y
            stats = res.stats if stats is None else stats.sequential(res.stats)
        assert y is not None and stats is not None
        return KernelResult(y=y, stats=stats)
