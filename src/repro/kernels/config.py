"""yaSpMV kernel configuration (the tunable half of Table 1).

Format-side parameters (block size, bit-flag word type, slice count,
column compression) live in the format constructors; everything the
*kernel* varies is here.  The ablation switches (``scan_mode``,
``cross_wg``, ``fine_grain``) reproduce the optimization-breakdown steps
of Figure 14.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import KernelConfigError

__all__ = ["YaSpMVConfig"]

_TRANSPOSE = ("offline", "online")
_SCAN_MODES = ("matrix", "tree")
_CROSS_WG = ("adjacent", "second_kernel")
_WG_IDS = ("inorder", "atomic")


@dataclass(frozen=True)
class YaSpMVConfig:
    """One point in the kernel-side tuning space.

    Attributes
    ----------
    workgroup_size:
        Threads per workgroup (Table 1: 64/128/256/512).
    strategy:
        1 = per-thread ``intermediate_sums`` buffers (short segments);
        2 = per-workgroup result cache (long segments).
    reg_size / shm_size:
        Strategy 1 split of the intermediate-sums buffer between
        registers and shared memory; the thread-level tile size is their
        sum (Table 1 note).  The pruned search fixes ``shm_size = 0``.
    tile_size:
        Strategy 2 thread-level tile (blocks per thread).
    result_cache_multiple:
        Strategy 2 result-cache entries as a multiple of the workgroup
        size (pruned search: 1 or 2).
    transpose:
        ``"offline"`` (value/col arrays pre-transposed, coalesced reads,
        no staging buffer) or ``"online"`` (staged through shared
        memory).
    use_texture:
        Route multiplied-vector reads through the texture cache.
    scan_mode:
        ``"matrix"`` = the paper's sequential-per-thread + small parallel
        scan; ``"tree"`` = the baseline lockstep tree scan (Figure 14's
        pre-"efficient segmented sum/scan" steps).
    cross_wg:
        ``"adjacent"`` = adjacent synchronization (one kernel);
        ``"second_kernel"`` = accumulate cross-workgroup partials with a
        separate kernel launch (Figure 14's intermediate step).
    fine_grain:
        Enables the fine-grain optimizations: compressed (short) column
        indices and the early check that skips the workgroup parallel
        scan (Figure 14's final step).
    workgroup_ids:
        ``"inorder"`` relies on in-order dispatch; ``"atomic"`` fetches
        logical ids with a global atomic (the <2%-overhead fallback).
    precision:
        ``"fp32"`` (the paper's setting) or ``"fp64"``.  Affects the
        cost model only -- value bytes double, halving the effective
        arithmetic intensity -- numerics are float64 either way.  An
        extension beyond the paper's evaluation.
    """

    workgroup_size: int = 256
    strategy: int = 2
    reg_size: int = 16
    shm_size: int = 0
    tile_size: int = 16
    result_cache_multiple: int = 1
    transpose: str = "offline"
    use_texture: bool = True
    scan_mode: str = "matrix"
    cross_wg: str = "adjacent"
    fine_grain: bool = True
    workgroup_ids: str = "inorder"
    precision: str = "fp32"

    def __post_init__(self):
        if self.precision not in ("fp32", "fp64"):
            raise KernelConfigError(
                f"precision must be 'fp32' or 'fp64', got {self.precision!r}"
            )
        if self.strategy not in (1, 2):
            raise KernelConfigError(f"strategy must be 1 or 2, got {self.strategy}")
        if self.transpose not in _TRANSPOSE:
            raise KernelConfigError(f"transpose must be in {_TRANSPOSE}")
        if self.scan_mode not in _SCAN_MODES:
            raise KernelConfigError(f"scan_mode must be in {_SCAN_MODES}")
        if self.cross_wg not in _CROSS_WG:
            raise KernelConfigError(f"cross_wg must be in {_CROSS_WG}")
        if self.workgroup_ids not in _WG_IDS:
            raise KernelConfigError(f"workgroup_ids must be in {_WG_IDS}")
        if self.strategy == 1:
            if self.reg_size + self.shm_size < 1:
                raise KernelConfigError(
                    "strategy 1 needs reg_size + shm_size >= 1"
                )
        else:
            if self.tile_size < 1:
                raise KernelConfigError(f"tile_size must be >= 1, got {self.tile_size}")
            if self.result_cache_multiple < 1:
                raise KernelConfigError(
                    f"result_cache_multiple must be >= 1, got {self.result_cache_multiple}"
                )

    @property
    def value_bytes(self) -> int:
        """Bytes per matrix/vector value under this precision."""
        return 8 if self.precision == "fp64" else 4

    @property
    def effective_tile(self) -> int:
        """Blocks each thread processes sequentially."""
        return self.reg_size + self.shm_size if self.strategy == 1 else self.tile_size

    @property
    def workgroup_work(self) -> int:
        """Blocks per workgroup-level tile."""
        return self.workgroup_size * self.effective_tile

    def with_overrides(self, **kw) -> "YaSpMVConfig":
        """Copy with fields replaced (ablation helper)."""
        return replace(self, **kw)
