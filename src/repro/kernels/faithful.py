"""Step-by-step executor of the yaSpMV kernel (Figures 9-12).

This module is the *specification*: explicit Python loops that follow
the paper's flowcharts thread by thread -- per-thread sequential
segmented scans into ``intermediate_sums`` (strategy 1) or a
per-workgroup ``result cache`` with global-memory spill (strategy 2),
``last_partial_sums`` with generated start flags, the workgroup parallel
segmented scan (skipped when every tile has a row stop), and the
``Grp_sum`` adjacent-synchronization chain.

It is orders of magnitude slower than :class:`YaSpMVKernel`'s closed
form and exists to *prove* the fast path computes the same thing: the
property tests execute both on random matrices and configurations and
require bit-for-bit agreeing results.

The 0-means-stop bit-flag convention shows up exactly as the paper
motivates: a thread whose tile ends on a row stop publishes a last
partial of **zero**, which makes every downstream accumulation
unconditional (section 2.2: "using the value '0' eliminates the
condition check").
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelConfigError
from ..formats.bccoo import BCCOOMatrix
from ..formats.bccoo_plus import BCCOOPlusMatrix
from ..scan.tree import tree_segmented_scan
from .config import YaSpMVConfig
from .yaspmv_common import block_contributions, prepare

__all__ = ["yaspmv_faithful", "FaithfulTrace"]


class FaithfulTrace:
    """Execution observations the tests assert on.

    Attributes
    ----------
    parallel_scans_run / parallel_scans_skipped:
        Workgroup-level scans executed vs skipped by the early check.
    cache_spills:
        Strategy 2 segment sums that overflowed the result cache into
        global memory.
    grp_sum:
        The published per-workgroup Grp_sum values (last lane state).
    """

    def __init__(self):
        self.parallel_scans_run = 0
        self.parallel_scans_skipped = 0
        self.cache_spills = 0
        self.grp_sum: list[np.ndarray] = []


def yaspmv_faithful(
    fmt,
    x: np.ndarray,
    config: YaSpMVConfig | None = None,
    trace: FaithfulTrace | None = None,
) -> np.ndarray:
    """Run the paper's kernel literally; returns ``y``."""
    cfg = config if config is not None else YaSpMVConfig()
    if isinstance(fmt, BCCOOPlusMatrix):
        y_stacked = yaspmv_faithful(fmt.stacked, x, cfg, trace)
        stride = fmt.padded_rows_per_slice
        buf = np.zeros(fmt.slice_count * stride, dtype=np.float64)
        buf[: y_stacked.shape[0]] = y_stacked
        return fmt.combine(buf)
    if not isinstance(fmt, BCCOOMatrix):
        raise KernelConfigError(
            f"expected BCCOO/BCCOO+, got {type(fmt).__name__}"
        )

    x = np.asarray(x, dtype=np.float64).ravel()
    padded = prepare(fmt, cfg)
    contribs, _ = block_contributions(padded, x)  # (nb_padded, h)

    h = fmt.block_height
    tile = cfg.effective_tile
    wg_size = cfg.workgroup_size
    wg_work = cfg.workgroup_work
    n_wg = padded.n_workgroups
    stops = padded.stops

    n_results = int(stops.sum())
    results = np.zeros((n_results, h), dtype=np.float64)

    # Section 2.4 auxiliary info: result ordinal of each thread's first
    # output, and the per-workgroup base used to index the result cache.
    thread_first_entry = np.concatenate(
        ([0], np.cumsum(stops.reshape(-1, tile).sum(axis=1))[:-1])
    ).astype(np.int64)

    cache_entries = (
        cfg.result_cache_multiple * wg_size if cfg.strategy == 2 else 0
    )

    grp_sum_prev = np.zeros(h, dtype=np.float64)  # Grp_sum[g-1]
    tr = trace if trace is not None else FaithfulTrace()

    for g in range(n_wg):
        base_block = g * wg_work
        wg_first_entry = int(thread_first_entry[g * wg_size])

        last_partials = np.zeros((wg_size, h), dtype=np.float64)
        lp_starts = np.zeros(wg_size, dtype=bool)
        # Strategy 1 keeps every intermediate sum per thread; strategy 2
        # keeps only segment sums in the cache (dashed boxes, Fig. 10).
        inter_sums = (
            np.zeros((wg_size, tile, h), dtype=np.float64)
            if cfg.strategy == 1
            else None
        )
        # Per-thread record of where each of its segment sums went
        # (strategy 2 writes them immediately; strategy 1 defers).
        first_stop_pos = np.full(wg_size, -1, dtype=np.int64)

        # ---- Phase 1: sequential per-thread segmented scan/sum.
        for t in range(wg_size):
            b0 = base_block + t * tile
            entry = int(thread_first_entry[g * wg_size + t])
            running = np.zeros(h, dtype=np.float64)
            stops_seen = 0
            for i in range(tile):
                running = running + contribs[b0 + i]
                if inter_sums is not None:
                    inter_sums[t, i] = running
                if stops[b0 + i]:
                    if first_stop_pos[t] < 0:
                        first_stop_pos[t] = i
                    if cfg.strategy == 2:
                        # Write the segment sum to the result cache or,
                        # past the cache, straight to global memory.
                        if entry + stops_seen - wg_first_entry >= cache_entries:
                            tr.cache_spills += 1
                        results[entry + stops_seen] = running
                    stops_seen += 1
                    running = np.zeros(h, dtype=np.float64)
            # A tile ending on a stop publishes last partial 0.
            last_partials[t] = running
            lp_starts[t] = stops_seen > 0

        # ---- Phase 2: parallel segmented scan of last_partial_sums.
        lp_starts_eff = lp_starts.copy()
        lp_starts_eff[0] = True
        if cfg.fine_grain and lp_starts.all():
            # Early check (section 2.4): all segment sizes are 1.
            scanned_lp = last_partials
            tr.parallel_scans_skipped += 1
        else:
            scanned_lp, _ = tree_segmented_scan(last_partials, lp_starts_eff)
            tr.parallel_scans_run += 1

        # ---- Phase 3: combine (Figures 11 / 12).
        if cfg.strategy == 1:
            for t in range(wg_size):
                entry = int(thread_first_entry[g * wg_size + t])
                stops_seen = 0
                for i in range(tile):
                    if not stops[base_block + t * tile + i]:
                        continue
                    value = inter_sums[t, i].copy()
                    if stops_seen == 0 and t > 0:
                        # First stop may close a segment spanning
                        # earlier threads of this workgroup.
                        value = value + scanned_lp[t - 1]
                    results[entry + stops_seen] = value
                    stops_seen += 1
        else:
            for t in range(1, wg_size):
                if first_stop_pos[t] < 0:
                    continue
                entry = int(thread_first_entry[g * wg_size + t])
                results[entry] = results[entry] + scanned_lp[t - 1]

        # Thread 0's duty: fold the previous workgroups' carry into this
        # workgroup's first result (result cache entry 0).
        wg_has_stop = bool(
            stops[base_block : base_block + wg_work].any()
        )
        if wg_has_stop:
            results[wg_first_entry] = results[wg_first_entry] + grp_sum_prev

        # ---- Phase 4: adjacent synchronization (Grp_sum chain).
        wg_last_partial = scanned_lp[wg_size - 1]
        if wg_has_stop:
            grp_sum = wg_last_partial.copy()
        else:
            grp_sum = grp_sum_prev + wg_last_partial
        tr.grp_sum.append(grp_sum.copy())
        grp_sum_prev = grp_sum

    # ---- Scatter results to y through the non-empty-row map.
    y_full = np.zeros(fmt.n_block_rows * h, dtype=np.float64)
    if n_results:
        rows = fmt.nonempty_block_rows[:n_results]
        y_full.reshape(-1, h)[rows] = results
    return y_full[: fmt.nrows]
