"""Merge-path CSR kernel: equal-work teams with carry continuation.

Executes :class:`~repro.formats.merge_csr.MergeCSRMatrix`.  Every team
consumes exactly ``team_nnz`` non-zeros of the CSR stream; a row split
across teams is finished by *carry continuation* -- the successor team
folds its elements onto the predecessor's open partial, so the per-row
accumulation order is the strict sequential CSR fold and the result is
bit-identical to the CSR reference (and to BCCOO on the same operand).

The cost model charges the format's streams (values, full-width column
indices, row pointers, the per-team load-balancing coordinates), the
multiplied vector through the texture path, a per-team carry exchange,
and two block-wide barriers around the warp-synchronous team
reduction.  Work per team is constant by
construction, so ``workgroup_work`` is ``None`` -- load balance is the
design's point; the trade is the raw (uncompressed) index streams that
BCCOO's bit flags and short columns undercut.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelConfigError, ValidationError
from ..fault.injection import active_plan
from ..formats.merge_csr import MergeCSRMatrix
from ..gpu.caches import vector_read_traffic
from ..gpu.counters import KernelStats
from ..gpu.device import DeviceSpec
from ..gpu.memory import stream_bytes
from ..util import ceil_div
from .base import KernelResult, SpMVKernel, register_kernel
from .config import YaSpMVConfig

__all__ = ["MergePathKernel", "merge_path_stats"]

_VAL_B = 4
_IDX_B = 4
#: SIMD efficiency of the team-sequential fold: equal-work chunks leave
#: only the predicated row-boundary check divergent (same discipline as
#: yaSpMV's sequential segmented sum).
_SIMD_EFF = 0.95


def _expect(fmt, cls):
    if not isinstance(fmt, cls):
        raise KernelConfigError(
            f"kernel expects {cls.__name__}, got {type(fmt).__name__}"
        )
    return fmt


def decode_rows(fmt: MergeCSRMatrix, stops: np.ndarray) -> np.ndarray:
    """Per-element row indices from end-of-row markers + the row map.

    The decode mirrors BCCOO's bit-flag reconstruction: the row ordinal
    of element ``k`` is the number of stops before it, mapped through
    the non-empty-row map.  A marker count that disagrees with the map
    (one flipped bit) raises :class:`~repro.errors.ValidationError`.
    """
    row_map = fmt.row_map()
    st = stops.astype(np.int64)
    n_stops = int(st.sum())
    if n_stops != row_map.shape[0]:
        raise ValidationError(
            f"end-of-row markers encode {n_stops} rows but the row map "
            f"holds {row_map.shape[0]}",
            check="row_stop_count",
        )
    ordinals = np.cumsum(st) - st
    return row_map[ordinals] if ordinals.size else ordinals


def merge_path_stats(
    fmt: MergeCSRMatrix, device: DeviceSpec, cfg: YaSpMVConfig
) -> KernelStats:
    """Cost profile of one merge-path launch (pure in its arguments).

    Shared by the faithful interpreter and the fast backend so both
    report field-identical :class:`KernelStats`.
    """
    nnz = fmt.nnz
    txn = device.transaction_bytes
    val_b = cfg.value_bytes
    wg = cfg.workgroup_size

    read = stream_bytes(nnz, val_b, txn)
    read += stream_bytes(nnz, _IDX_B, txn)
    read += stream_bytes(fmt.nrows + 1, _IDX_B, txn)
    read += stream_bytes(fmt.n_teams, _IDX_B, txn)

    vec_dram, vec_cached = vector_read_traffic(
        fmt.col_index,
        val_b,
        cache_bytes=device.tex_cache_bytes,
        line_bytes=device.tex_line_bytes,
        use_cache=cfg.use_texture,
    )
    read += vec_dram

    n_rows_out = fmt.row_map().shape[0]
    write = stream_bytes(n_rows_out, val_b, txn)
    # Cross-team carries: each team publishes its open partial once and
    # reads (at most) one predecessor aggregate -- the decoupled-lookback
    # exchange, a bounded round trip instead of BCCOO's Grp_sum chain.
    carry_bytes = fmt.n_teams * val_b
    read += carry_bytes
    write += carry_bytes

    flops = 2.0 * nnz + float(fmt.n_teams)
    teams_per_wg = max(wg // fmt.threads_per_vector, 1)
    n_wg = max(ceil_div(fmt.n_teams, teams_per_wg), 1)

    return KernelStats(
        flops=flops,
        dram_read_bytes=float(read),
        dram_write_bytes=float(write),
        cached_read_bytes=float(vec_cached),
        simd_efficiency=_SIMD_EFF,
        workgroup_size=wg,
        n_workgroups=n_wg,
        shared_mem_per_workgroup=shared_mem(fmt, cfg),
        registers_per_thread=16,
        workgroup_work=None,  # equal-nnz teams: the design's point
        # Team reductions are warp-synchronous (each team lives inside
        # one warp), so only two block-wide barriers remain: one after
        # the cooperative merge-coordinate search, one before the
        # shared-memory carry fixup.
        barriers_per_workgroup=2.0,
        n_launches=1,
    )


def shared_mem(fmt: MergeCSRMatrix, cfg: YaSpMVConfig) -> int:
    """Per-workgroup shared memory: carry-scan buffer + team coordinates."""
    wg = cfg.workgroup_size
    teams_per_wg = max(wg // fmt.threads_per_vector, 1)
    return wg * cfg.value_bytes + teams_per_wg * 2 * _IDX_B


@register_kernel
class MergePathKernel(SpMVKernel):
    """Load-balanced CSR SpMV over equal-nnz merge-path teams."""

    name = "merge_csr"
    format_name = "merge_csr"
    config_cls = YaSpMVConfig

    def _execute(
        self,
        fmt,
        x: np.ndarray,
        device: DeviceSpec,
        cfg: YaSpMVConfig,
    ) -> KernelResult:
        fmt = _expect(fmt, MergeCSRMatrix)
        self._check_workgroup(cfg.workgroup_size, device)

        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != fmt.ncols:
            raise KernelConfigError(
                f"vector length {x.shape[0]} != matrix columns {fmt.ncols}"
            )

        # Decode the streams a launch reads; the fault plan perturbs the
        # decoded copies exactly like corrupted device buffers would.
        stops = fmt.row_stops()
        cols = fmt.col_index
        plan = active_plan()
        if plan is not None:
            stops = plan.perturb_stops(stops, n_valid=fmt.nnz)
            cols = plan.perturb_columns(cols, n_valid=fmt.nnz)
        rows = decode_rows(fmt, stops)

        prods = fmt.values * x[cols]
        if plan is not None:
            prods = plan.perturb_partials(prods)

        # Teams run in order, accumulating straight into y: a split row's
        # carry is already in place before its successor team's elements,
        # so every row is the strict sequential fold.
        y = np.zeros(fmt.nrows, dtype=np.float64)
        starts = fmt.team_starts()
        nnz = fmt.nnz
        for t in range(fmt.n_teams):
            s = int(starts[t])
            e = min(s + fmt.team_nnz, nnz)
            np.add.at(y, rows[s:e], prods[s:e])

        return KernelResult(y=y, stats=merge_path_stats(fmt, device, cfg))

    # ------------------------------------------------------------------ #
    # Multi-RHS
    # ------------------------------------------------------------------ #

    def run_multi(
        self,
        fmt,
        X: np.ndarray,
        device: DeviceSpec,
        *,
        config=None,
    ) -> KernelResult:
        """SpMM ``Y = A @ X``: one team pass per right-hand side."""
        fmt = _expect(fmt, MergeCSRMatrix)
        cfg = self._coerce_config(config)
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != fmt.ncols:
            raise KernelConfigError(
                f"X must have shape ({fmt.ncols}, k), got {X.shape}"
            )
        k = X.shape[1]
        if k > self.max_batch_width(fmt, device, cfg):
            raise KernelConfigError(
                f"batch width {k} exceeds device limit "
                f"{self.max_batch_width(fmt, device, cfg)}"
            )
        Y = np.empty((fmt.nrows, k), dtype=np.float64)
        stats = None
        for j in range(k):
            res = self._execute(fmt, X[:, j], device, cfg)
            Y[:, j] = res.y
            stats = res.stats if stats is None else stats.sequential(res.stats)
        if stats is None:
            stats = merge_path_stats(fmt, device, cfg)
        return KernelResult(y=Y, stats=stats)

    def max_batch_width(self, fmt, device: DeviceSpec, config=None) -> int:
        """Columns one batched launch sustains under the shared-mem budget."""
        fmt = _expect(fmt, MergeCSRMatrix)
        cfg = self._coerce_config(config)
        shm_one = max(shared_mem(fmt, cfg), 1)
        return max(1, device.max_shared_mem_per_workgroup // shm_one)
