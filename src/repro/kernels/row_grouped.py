"""Adaptive row-grouped CSR kernel: one thread per row, grouped lanes.

Executes :class:`~repro.formats.rgcsr.RGCSRMatrix`.  A single launch
walks the group descriptor table; within a group, thread ``r`` folds its
row one lane at a time while the group's lane arrays stream fully
coalesced.  Each row accumulates independently in element order, so the
result is the strict sequential per-row CSR fold -- bit-identical to the
reference and to BCCOO on the same operand.

The cost model is ELL-like per group: the lane streams are charged at
their *padded* extent (the format's honest weakness), column indices
drop to short width when the matrix is narrow enough, and the padded
slots that carry no work surface as SIMD-efficiency loss.  Rows never
split and groups never interact, so there are no barriers, atomics or
adjacent-synchronization chains -- but per-group work is uneven, which
feeds the scheduler's imbalance factor through ``workgroup_work``.
"""

from __future__ import annotations

import numpy as np

from ..errors import KernelConfigError, ValidationError
from ..fault.injection import active_plan
from ..formats.rgcsr import RGCSRMatrix
from ..gpu.caches import vector_read_traffic
from ..gpu.counters import KernelStats
from ..gpu.device import DeviceSpec
from ..gpu.memory import stream_bytes
from ..util import ceil_div
from .base import KernelResult, SpMVKernel, register_kernel
from .config import YaSpMVConfig

__all__ = ["RowGroupedKernel", "row_grouped_stats"]

_IDX_B = 4
_SHORT_B = 2
#: Columns fit unsigned 16-bit indices below this width (the same cutoff
#: BCCOO uses for its short column stream).
_SHORT_COL_LIMIT = 1 << 16
#: Lane-step divergence inside a group: rows differ by at most 2x in
#: length, so predication idles under 2% of lanes beyond padding.
_LANE_EFF = 0.98


def _expect(fmt, cls):
    if not isinstance(fmt, cls):
        raise KernelConfigError(
            f"kernel expects {cls.__name__}, got {type(fmt).__name__}"
        )
    return fmt


def _col_bytes(fmt: RGCSRMatrix) -> int:
    return _SHORT_B if fmt.ncols < _SHORT_COL_LIMIT else _IDX_B


def gather_order(fmt: RGCSRMatrix) -> np.ndarray:
    """Column indices in the order the launch gathers ``x`` (valid lanes,
    flat lane-major order) -- the stream the texture model sees."""
    return fmt.col_index[fmt.lane_mask()]


def row_grouped_stats(
    fmt: RGCSRMatrix, device: DeviceSpec, cfg: YaSpMVConfig
) -> KernelStats:
    """Cost profile of one row-grouped launch (pure in its arguments).

    Shared by the faithful interpreter and the fast backend so both
    report field-identical :class:`KernelStats`.
    """
    padded = fmt.padded_slots
    txn = device.transaction_bytes
    val_b = cfg.value_bytes
    wg = cfg.workgroup_size

    read = stream_bytes(padded, val_b, txn)
    read += stream_bytes(padded, _col_bytes(fmt), txn)
    read += stream_bytes(fmt.n_packed_rows, _IDX_B, txn)  # row_perm
    read += stream_bytes(fmt.n_packed_rows, _IDX_B, txn)  # row_lengths
    read += stream_bytes(3 * fmt.n_groups + 2, _IDX_B, txn)  # descriptors

    vec_dram, vec_cached = vector_read_traffic(
        gather_order(fmt),
        val_b,
        cache_bytes=device.tex_cache_bytes,
        line_bytes=device.tex_line_bytes,
        use_cache=cfg.use_texture,
    )
    read += vec_dram

    write = stream_bytes(fmt.n_packed_rows, val_b, txn)

    nnz = fmt.nnz
    fill = nnz / padded if padded else 1.0
    simd = _LANE_EFF * fill

    # One workgroup covers ``wg`` rows of a group; its work is the
    # group's padded width times its rows -- uneven across groups, which
    # is exactly where this format loses to the merge path.
    work = []
    for g in range(fmt.n_groups):
        r0 = int(fmt.group_row_offsets[g])
        r1 = int(fmt.group_row_offsets[g + 1])
        w = int(fmt.group_widths[g])
        n = r1 - r0
        for chunk in range(ceil_div(n, wg)):
            rows_here = min(wg, n - chunk * wg)
            work.append(rows_here * w)
    workgroup_work = np.asarray(work if work else [1], dtype=np.float64)

    return KernelStats(
        flops=2.0 * nnz,
        dram_read_bytes=float(read),
        dram_write_bytes=float(write),
        cached_read_bytes=float(vec_cached),
        simd_efficiency=max(simd, 1e-6),
        workgroup_size=wg,
        n_workgroups=int(workgroup_work.shape[0]),
        shared_mem_per_workgroup=0,  # thread-private accumulators only
        registers_per_thread=16,
        workgroup_work=workgroup_work,
        barriers_per_workgroup=0.0,  # rows never split, groups never interact
        n_launches=1,  # adaptive variant: one launch over the descriptor table
    )


@register_kernel
class RowGroupedKernel(SpMVKernel):
    """Adaptive row-grouped CSR SpMV: thread-per-row over pow-2 buckets."""

    name = "rgcsr"
    format_name = "rgcsr"
    config_cls = YaSpMVConfig

    def _execute(
        self,
        fmt,
        x: np.ndarray,
        device: DeviceSpec,
        cfg: YaSpMVConfig,
    ) -> KernelResult:
        fmt = _expect(fmt, RGCSRMatrix)
        self._check_workgroup(cfg.workgroup_size, device)

        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != fmt.ncols:
            raise KernelConfigError(
                f"vector length {x.shape[0]} != matrix columns {fmt.ncols}"
            )

        # Decode the streams a launch reads; the fault plan perturbs the
        # decoded copies exactly like corrupted device buffers would.
        mask = fmt.lane_mask()
        cols = fmt.col_index
        plan = active_plan()
        if plan is not None:
            mask = plan.perturb_stops(mask, n_valid=fmt.padded_slots)
            cols = plan.perturb_columns(cols, n_valid=fmt.padded_slots)
        n_valid = int(mask.sum())
        if n_valid != fmt.nnz:
            raise ValidationError(
                f"lane validity mask encodes {n_valid} non-zeros but the "
                f"row lengths hold {fmt.nnz}",
                check="lane_mask_count",
            )

        prods = np.where(mask, fmt.values * x[cols], 0.0)
        if plan is not None:
            prods = plan.perturb_partials(prods)

        # Thread-per-row fold, lane by lane: each row accumulates its
        # elements in order, independent of every other row -- the
        # strict sequential per-row fold.
        y = np.zeros(fmt.nrows, dtype=np.float64)
        for g in range(fmt.n_groups):
            r0 = int(fmt.group_row_offsets[g])
            r1 = int(fmt.group_row_offsets[g + 1])
            n, w = r1 - r0, int(fmt.group_widths[g])
            base = int(fmt.group_data_offsets[g])
            acc = np.zeros(n, dtype=np.float64)
            for j in range(w):
                lane = slice(base + j * n, base + (j + 1) * n)
                valid = mask[lane]
                acc[valid] += prods[lane][valid]
            y[fmt.row_perm[r0:r1]] = acc

        return KernelResult(y=y, stats=row_grouped_stats(fmt, device, cfg))

    # ------------------------------------------------------------------ #
    # Multi-RHS
    # ------------------------------------------------------------------ #

    def run_multi(
        self,
        fmt,
        X: np.ndarray,
        device: DeviceSpec,
        *,
        config=None,
    ) -> KernelResult:
        """SpMM ``Y = A @ X``: one grouped pass per right-hand side."""
        fmt = _expect(fmt, RGCSRMatrix)
        cfg = self._coerce_config(config)
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != fmt.ncols:
            raise KernelConfigError(
                f"X must have shape ({fmt.ncols}, k), got {X.shape}"
            )
        k = X.shape[1]
        if k > self.max_batch_width(fmt, device, cfg):
            raise KernelConfigError(
                f"batch width {k} exceeds device limit "
                f"{self.max_batch_width(fmt, device, cfg)}"
            )
        Y = np.empty((fmt.nrows, k), dtype=np.float64)
        stats = None
        for j in range(k):
            res = self._execute(fmt, X[:, j], device, cfg)
            Y[:, j] = res.y
            stats = res.stats if stats is None else stats.sequential(res.stats)
        if stats is None:
            stats = row_grouped_stats(fmt, device, cfg)
        return KernelResult(y=Y, stats=stats)

    def max_batch_width(self, fmt, device: DeviceSpec, config=None) -> int:
        """Columns one batched launch sustains; accumulators live in
        registers, so the bound is the per-thread register file."""
        fmt = _expect(fmt, RGCSRMatrix)
        cfg = self._coerce_config(config)
        per_col_regs = max(cfg.value_bytes // 4, 1)
        return max(1, device.max_registers_per_thread // (2 * per_col_regs))
