"""The yaSpMV kernel: single-launch BCCOO SpMV with matrix-based
segmented sum/scan (paper section 3).

The numerical path computes exactly what the device kernel computes --
per-block products, per-thread sequential segmented sums, workgroup scan
of ``last_partial_sums``, adjacent-synchronization carries -- which all
telescope into per-segment sums over the padded block stream (validated
against the step-by-step executor in :mod:`repro.kernels.faithful`).

The cost path charges, per the launch configuration:

* coalesced streams for values, column indices (short/delta/int), bit
  flags and section 2.4 auxiliary info -- the bandwidth term BCCOO
  shrinks;
* multiplied-vector reads through the texture-cache model;
* the workgroup parallel scan (skippable by the fine-grain early check),
  barriers, the Grp_sum chain or the second-kernel alternative, and the
  strategy-specific shared-memory/register budgets.

Ablation switches in :class:`YaSpMVConfig` reproduce Figure 14's steps.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import KernelConfigError, ValidationError
from ..fault.injection import FaultEvent, active_plan
from ..formats.bccoo import BCCOOMatrix
from ..formats.bccoo_plus import BCCOOPlusMatrix
from ..gpu.adjacent_sync import (
    SPIN_WATCHDOG_CAP,
    chain_carries_hazard,
    chain_segments,
    logical_workgroup_ids,
)
from ..gpu.caches import vector_read_traffic
from ..gpu.counters import KernelStats
from ..gpu.device import DeviceSpec
from ..gpu.memory import stream_bytes
from ..obs import active_observer
from ..scan.reference import segment_sums_by_stops
from ..util import ceil_div
from .base import KernelResult, SpMVKernel, register_kernel
from .config import YaSpMVConfig
from .yaspmv_common import PaddedBCCOO, block_contributions, prepare

__all__ = ["YaSpMVKernel"]

#: Value/index element sizes for bandwidth accounting (fp32 device data).
_VAL_B = 4
_IDX_B = 4
_SHORT_B = 2
#: Minimum useful DRAM granule for an isolated random read.
_SECTOR_B = 32
#: SIMD efficiency of the sequential per-thread segmented sum (the only
#: divergence is the predicated row-stop check).
_MATRIX_SIMD_EFF = 0.95
#: SIMD efficiency of the lockstep tree scan (idle lanes + bank traffic).
_TREE_SIMD_EFF = 0.80
#: Relative cost of one shared-memory scan op versus one FMA.
_SHM_OP_WEIGHT = 2.0


def _per_stop_via_chain(contribs, padded, cfg, plan):
    """Per-stop sums computed through the explicit Grp_sum chain.

    Functionally equivalent to ``segment_sums_by_stops`` when no fault
    fires (modulo floating-point summation order), but decomposed the
    way the device actually runs -- per-workgroup local segment sums,
    ``last_partial`` open tails, and the adjacent-synchronization chain
    -- so the fault plan can corrupt the chain itself: stale ``Grp_sum``
    reads and out-of-order dispatch.  The logical-id atomic fallback
    (``cfg.workgroup_ids == "atomic"``) is modeled explicitly: acquired
    ids follow arrival order, so the chain is traversed in the order
    workgroups actually run and out-of-order dispatch is absorbed.
    """
    n_wg = padded.n_workgroups
    h = contribs.shape[1]
    wg_stops = padded.workgroup_stops()
    wg_contribs = contribs.reshape(n_wg, -1, h)
    has_stop = wg_stops.any(axis=1)

    # Each workgroup's open tail: the sum of contributions after its
    # last row stop (the whole tile when it has none).
    last_partials = np.zeros((n_wg, h), dtype=np.float64)
    for wg in range(n_wg):
        idx = np.flatnonzero(wg_stops[wg])
        start = int(idx[-1]) + 1 if idx.size else 0
        last_partials[wg] = wg_contribs[wg, start:].sum(axis=0)

    arrival = plan.dispatch_order(n_wg)
    stale = plan.stale_mask(n_wg)
    if arrival is not None and cfg.workgroup_ids == "atomic":
        # Logical-id fallback absorbs the disorder: tiles are consumed
        # by acquired (arrival-ordered) ids, so the chain is exact.
        logical_workgroup_ids(arrival)
        plan.events.append(
            FaultEvent(
                site="dispatch.out_of_order",
                detail=(("absorbed_by", "logical_ids"), ("n_workgroups", n_wg)),
            )
        )
        arrival = None

    # The spin watchdog turns an out-of-order wait on an unpublished
    # Grp_sum slot into a typed AdjacentSyncTimeout instead of a stale
    # carry -- the engine's fallback chain catches it and retries with
    # logical workgroup ids.
    carry, _ = chain_carries_hazard(
        last_partials,
        has_stop,
        arrival_order=arrival,
        stale_reads=stale,
        max_spin=SPIN_WATCHDOG_CAP,
    )

    parts = []
    for wg in range(n_wg):
        seg = segment_sums_by_stops(wg_contribs[wg], wg_stops[wg])
        if seg.shape[0]:
            seg[0] = seg[0] + carry[wg]
        parts.append(seg)
    if not parts:
        return np.empty((0, h), dtype=np.float64)
    return np.concatenate(parts, axis=0)


@register_kernel
class YaSpMVKernel(SpMVKernel):
    """Single-kernel BCCOO/BCCOO+ SpMV (the paper's contribution)."""

    name = "yaspmv"
    format_name = "bccoo"
    config_cls = YaSpMVConfig

    def _execute(
        self,
        fmt,
        x: np.ndarray,
        device: DeviceSpec,
        config: YaSpMVConfig,
    ) -> KernelResult:
        if isinstance(fmt, BCCOOPlusMatrix):
            return self._run_plus(fmt, x, device, config)
        if not isinstance(fmt, BCCOOMatrix):
            raise KernelConfigError(
                f"yaspmv kernel needs a BCCOO/BCCOO+ matrix, got {type(fmt).__name__}"
            )
        return self._run_bccoo(fmt, x, device, config)

    # ------------------------------------------------------------------ #
    # BCCOO core
    # ------------------------------------------------------------------ #

    def _run_bccoo(
        self,
        fmt: BCCOOMatrix,
        x: np.ndarray,
        device: DeviceSpec,
        cfg: YaSpMVConfig,
    ) -> KernelResult:
        self._check_workgroup(cfg.workgroup_size, device)
        self._check_resources(fmt, device, cfg)

        x = np.asarray(x, dtype=np.float64).ravel()
        if x.shape[0] != fmt.ncols:
            raise KernelConfigError(
                f"vector length {x.shape[0]} != matrix columns {fmt.ncols}"
            )

        padded = prepare(fmt, cfg)
        contribs, gather = block_contributions(padded, x)

        # Exact numerics: the thread/workgroup/Grp_sum hierarchy of
        # section 3.2 computes, for every row stop, the sum of all block
        # contributions since the previous stop -- i.e. per-segment sums
        # over the padded stream (cross-checked by kernels.faithful).
        # When a fault plan targets the synchronization layer, route
        # through the explicit per-workgroup Grp_sum chain instead so
        # stale reads and out-of-order dispatch can actually corrupt it.
        plan = active_plan()
        if plan is not None and (plan.targets("sync.") or plan.targets("dispatch.")):
            per_stop = _per_stop_via_chain(contribs, padded, cfg, plan)
        else:
            per_stop = segment_sums_by_stops(contribs, padded.stops)
        h = fmt.block_height
        # Runtime invariant: the stop count carried by the bit flags must
        # equal the non-empty-row map -- the compression is unreadable
        # otherwise (a flipped flag word lands here).
        if per_stop.shape[0] != fmt.nonempty_block_rows.shape[0]:
            raise ValidationError(
                f"bit flags encode {per_stop.shape[0]} row stops but the "
                f"row map holds {fmt.nonempty_block_rows.shape[0]}",
                check="row_stop_count",
            )
        y_full = np.zeros(fmt.n_block_rows * h, dtype=np.float64)
        if per_stop.shape[0]:
            rows = fmt.nonempty_block_rows[: per_stop.shape[0]]
            y_full.reshape(-1, h)[rows] = per_stop
        y = y_full[: fmt.nrows]

        stats = self._stats(padded, gather, device, cfg)
        return KernelResult(y=y, stats=stats)

    def _run_plus(
        self,
        fmt: BCCOOPlusMatrix,
        x: np.ndarray,
        device: DeviceSpec,
        cfg: YaSpMVConfig,
    ) -> KernelResult:
        inner = self._run_bccoo(fmt.stacked, x, device, cfg)
        # inner.y covers the stacked rows; fold slices (Figure 5).
        stride = fmt.padded_rows_per_slice
        y_stacked = np.zeros(fmt.slice_count * stride, dtype=np.float64)
        y_stacked[: inner.y.shape[0]] = inner.y
        y = fmt.combine(y_stacked)

        combine_stats = self._combine_stats(fmt, device)
        return KernelResult(y=y, stats=inner.stats.sequential(combine_stats))

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #

    def _stats(
        self,
        padded: PaddedBCCOO,
        gather: np.ndarray,
        device: DeviceSpec,
        cfg: YaSpMVConfig,
    ) -> KernelStats:
        fmt = padded.fmt
        h, w = fmt.block_height, fmt.block_width
        nb_p = padded.nb_padded
        tile = cfg.effective_tile
        txn = device.transaction_bytes
        val_b = cfg.value_bytes

        # ---- matrix streams (read once, coalesced after transpose).
        read = stream_bytes(nb_p * h * w, val_b, txn)
        col_mode = fmt.col_storage if cfg.fine_grain else "int32"
        if col_mode == "int32":
            read += stream_bytes(nb_p, _IDX_B, txn)
        else:
            read += stream_bytes(nb_p, _SHORT_B, txn)
            if col_mode == "delta" and fmt.delta is not None:
                # Per-tile base columns stream once.
                read += stream_bytes(fmt.delta.n_tiles, _IDX_B, txn)
                # Sentinel entries re-fetch the uncompressed index; the
                # fallback array is indexed in block order, so those
                # reads coalesce -- a transaction is touched when any of
                # its 32 int32 entries is a fallback.
                p = fmt.delta.fallback_fraction
                touched = 1.0 - (1.0 - min(p, 1.0)) ** 32
                read += touched * stream_bytes(nb_p, _IDX_B, txn)
        read += stream_bytes(ceil_div(nb_p, 8), 1, txn)  # bit flags
        read += stream_bytes(padded.n_threads_total, _IDX_B, txn)  # §2.4 aux

        # ---- multiplied vector through the texture path.
        vec_dram, vec_cached = vector_read_traffic(
            gather,
            val_b,
            cache_bytes=device.tex_cache_bytes,
            line_bytes=device.tex_line_bytes,
            use_cache=cfg.use_texture,
        )
        read += vec_dram

        # ---- result writes.
        thread_stops = padded.thread_stops()
        n_stops = int(padded.stops.sum())
        write = stream_bytes(n_stops * h, val_b, txn)
        if cfg.strategy == 1:
            # Per-thread scattered stores retire in smaller bursts than
            # the coalesced result-cache flush of strategy 2.
            write = int(write * 1.5)

        extra_latency = 0.0
        spill_bytes = 0
        if cfg.strategy == 2:
            entries = cfg.result_cache_multiple * cfg.workgroup_size
            wg_stop_counts = padded.workgroup_stops().sum(axis=1)
            spilled = np.maximum(wg_stop_counts - entries, 0).sum()
            if spilled:
                # Spilled segment sums take a global round trip and are
                # re-read by the write-back phase (section 3.2.2).
                spill_bytes = int(spilled) * h * val_b
                write += 2 * spill_bytes
                extra_latency += device.dram_latency_s

        # ---- compute.
        flops = 2.0 * nb_p * h * w  # block product mul+add
        flops += nb_p * h  # sequential segmented-sum adds
        wg = cfg.workgroup_size
        log_wg = max(int(math.ceil(math.log2(max(wg, 2)))), 1)

        tile_has_stop = thread_stops.any(axis=1)
        wg_all_tiles_stop = tile_has_stop.reshape(padded.n_workgroups, -1).all(axis=1)
        skip_frac = float(wg_all_tiles_stop.mean()) if cfg.fine_grain else 0.0

        if cfg.scan_mode == "tree":
            # Lockstep tree scan replaces the sequential phase: every
            # element goes through log2(wg) shared-memory combine steps.
            flops += nb_p * h * log_wg * _SHM_OP_WEIGHT
            simd_eff = _TREE_SIMD_EFF
            barriers = float(tile * log_wg)
        else:
            # Small parallel scan over wg last partials, skippable.
            flops += (1.0 - skip_frac) * padded.n_workgroups * wg * log_wg * h
            simd_eff = _MATRIX_SIMD_EFF
            barriers = 2.0 + (1.0 - skip_frac) * log_wg
        if cfg.transpose == "online":
            barriers += tile  # one staging round trip per tile pass

        # ---- cross-workgroup accumulation.
        wg_has_stop = padded.workgroup_stops().any(axis=1)
        n_launches = 1
        chains = np.empty(0, dtype=np.int64)
        if cfg.cross_wg == "adjacent":
            chains = chain_segments(wg_has_stop)
            # Grp_sum array traffic: one write + (up to) one read per wg.
            grp_bytes = padded.n_workgroups * h * val_b
            read += grp_bytes
            write += grp_bytes
        else:
            # Two-kernel variant: last partials spill to global memory,
            # a second launch scans them and patches first results.
            n_launches = 2
            round_trip = padded.n_workgroups * h * val_b
            write += 2 * round_trip
            read += 2 * round_trip
            extra_latency += device.dram_latency_s

        atomics = padded.n_workgroups if cfg.workgroup_ids == "atomic" else 0

        return KernelStats(
            flops=flops,
            dram_read_bytes=float(read),
            dram_write_bytes=float(write),
            cached_read_bytes=float(vec_cached),
            simd_efficiency=simd_eff,
            workgroup_size=wg,
            n_workgroups=padded.n_workgroups,
            shared_mem_per_workgroup=self._shared_mem(fmt, cfg),
            registers_per_thread=self._registers(fmt, cfg),
            workgroup_work=None,  # equal tiles: the design's point
            barriers_per_workgroup=barriers,
            atomics=atomics,
            sync_chain_lengths=chains,
            n_launches=n_launches,
            extra_latency_s=extra_latency,
            fp64=(cfg.precision == "fp64"),
        )

    def _combine_stats(self, fmt: BCCOOPlusMatrix, device: DeviceSpec) -> KernelStats:
        """BCCOO+ slice-combine kernel (Figure 5's reduction)."""
        stride = fmt.padded_rows_per_slice
        txn = device.transaction_bytes
        return KernelStats(
            flops=float((fmt.slice_count - 1) * stride),
            dram_read_bytes=float(stream_bytes(fmt.slice_count * stride, _VAL_B, txn)),
            dram_write_bytes=float(stream_bytes(fmt.nrows, _VAL_B, txn)),
            workgroup_size=256,
            n_workgroups=max(ceil_div(stride, 256), 1),
            n_launches=1,
        )

    # ------------------------------------------------------------------ #
    # Resource checks
    # ------------------------------------------------------------------ #

    def _shared_mem(self, fmt: BCCOOMatrix, cfg: YaSpMVConfig) -> int:
        h = fmt.block_height
        wg = cfg.workgroup_size
        val_b = cfg.value_bytes
        shm = wg * h * val_b  # last_partial_sums
        if cfg.strategy == 1:
            shm += cfg.shm_size * wg * h * val_b
        else:
            shm += cfg.result_cache_multiple * wg * h * val_b
        if cfg.transpose == "online":
            shm += wg * cfg.effective_tile * val_b  # staging buffer
        return shm

    @staticmethod
    def _registers(fmt: BCCOOMatrix, cfg: YaSpMVConfig) -> int:
        """Estimated registers per thread (bookkeeping + live sums)."""
        base = 24
        lanes = fmt.block_height * (2 if cfg.precision == "fp64" else 1)
        if cfg.strategy == 1:
            return base + cfg.reg_size * lanes
        return base + lanes

    def _check_resources(
        self, fmt: BCCOOMatrix, device: DeviceSpec, cfg: YaSpMVConfig
    ) -> None:
        shm = self._shared_mem(fmt, cfg)
        if shm > device.max_shared_mem_per_workgroup:
            raise KernelConfigError(
                f"configuration needs {shm} B shared memory per workgroup; "
                f"{device.name} allows {device.max_shared_mem_per_workgroup}"
            )
        if cfg.strategy == 1:
            regs = cfg.reg_size * fmt.block_height + 24  # +bookkeeping
            if regs > device.max_registers_per_thread:
                raise KernelConfigError(
                    f"strategy 1 needs ~{regs} registers/thread; "
                    f"{device.name} allows {device.max_registers_per_thread}"
                )


class YaSpMMKernel(YaSpMVKernel):
    """Multi-vector extension: Y = A @ X for k right-hand sides.

    SpMM amortizes the matrix stream: values, columns and flags are read
    once while vector traffic, FLOPs and result writes scale with ``k``.
    For bandwidth-bound SpMV that makes k simultaneous products much
    cheaper than k sequential ones -- the block-Krylov / multi-RHS
    workload a solver library needs.  Not part of the paper's
    evaluation; the kernel structure is the natural extension of the
    strategy-2 dataflow with ``k``-wide partial sums.
    """

    # Not registered: reached through run_multi / SpMVEngine.multiply_many.
    name = ""

    def max_batch_width(
        self,
        fmt,
        device: DeviceSpec,
        config: YaSpMVConfig | None = None,
    ) -> int:
        """Widest ``k`` that :meth:`run_multi` can dispatch on ``device``.

        The SpMM dataflow widens the per-workgroup partial sums by ``k``,
        so shared memory scales linearly with the batch width; a wider
        batch would be rejected with :class:`KernelConfigError`.  Callers
        coalescing requests (the serving layer) chunk to this bound.
        """
        cfg = config if config is not None else YaSpMVConfig()
        if isinstance(fmt, BCCOOPlusMatrix):
            fmt = fmt.stacked
        shm_one = self._shared_mem(fmt, cfg)
        return max(1, device.max_shared_mem_per_workgroup // max(shm_one, 1))

    def run_multi(
        self,
        fmt,
        X: np.ndarray,
        device: DeviceSpec,
        config: YaSpMVConfig | None = None,
    ) -> KernelResult:
        """Execute ``Y = A @ X`` with ``X`` of shape ``(ncols, k)``."""
        cfg = config if config is not None else YaSpMVConfig()
        obs = active_observer()
        if not obs.enabled:
            return self._run_multi(fmt, X, device, cfg)
        with obs.span(
            "kernel.yaspmm", kernel="yaspmm", format=type(fmt).__name__
        ) as sp:
            result = self._run_multi(fmt, X, device, cfg)
            self._observe(obs, sp, "yaspmm", result.stats)
        return result

    def _run_multi(
        self,
        fmt,
        X: np.ndarray,
        device: DeviceSpec,
        cfg: YaSpMVConfig,
    ) -> KernelResult:
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise KernelConfigError(
                f"X must be 2-D (ncols, k), got shape {X.shape}"
            )
        k = X.shape[1]
        if k < 1:
            raise KernelConfigError("X needs at least one column")

        if isinstance(fmt, BCCOOPlusMatrix):
            inner = self.run_multi(fmt.stacked, X, device, cfg)
            stride = fmt.padded_rows_per_slice
            buf = np.zeros((fmt.slice_count * stride, k), dtype=np.float64)
            buf[: inner.y.shape[0]] = inner.y
            folded = buf.reshape(fmt.slice_count, stride, k).sum(axis=0)
            y = folded[: fmt.nrows]
            combine = self._combine_stats(fmt, device)
            combine.dram_read_bytes *= k
            combine.dram_write_bytes *= k
            combine.flops *= k
            return KernelResult(y=y, stats=inner.stats.sequential(combine))
        if not isinstance(fmt, BCCOOMatrix):
            raise KernelConfigError(
                f"yaspmm kernel needs a BCCOO/BCCOO+ matrix, got {type(fmt).__name__}"
            )
        if X.shape[0] != fmt.ncols:
            raise KernelConfigError(
                f"X has {X.shape[0]} rows, matrix has {fmt.ncols} columns"
            )

        self._check_workgroup(cfg.workgroup_size, device)
        self._check_resources(fmt, device, cfg)
        padded = prepare(fmt, cfg)

        # Numerics: per-block (h, k) contributions, segment sums by stop.
        w = fmt.block_width
        base = padded.cols * w
        gather = base[:, None] + np.arange(w, dtype=np.int64)[None, :]
        valid = gather < fmt.ncols
        safe = np.where(valid, gather, 0)
        Xg = X[safe]                     # (nb, w, k)
        Xg[~valid] = 0.0
        contribs = np.einsum("bhw,bwk->bhk", padded.values, Xg)
        nb_p = padded.nb_padded
        h = fmt.block_height
        per_stop = segment_sums_by_stops(
            contribs.reshape(nb_p, h * k), padded.stops
        )
        Y_full = np.zeros((fmt.n_block_rows * h, k), dtype=np.float64)
        if per_stop.shape[0]:
            rows = fmt.nonempty_block_rows[: per_stop.shape[0]]
            Y_full.reshape(-1, h, k)[rows] = per_stop.reshape(-1, h, k)
        y = Y_full[: fmt.nrows]

        # Cost: matrix streams once; vector/result/compute terms scale
        # with k.  Start from the single-vector profile and add the
        # k-dependent deltas.
        single = self._stats(padded, safe.ravel(), device, cfg)
        vec_dram, vec_cached = vector_read_traffic(
            safe.ravel(),
            cfg.value_bytes * k,   # each touched index pulls a k-row
            cache_bytes=device.tex_cache_bytes,
            line_bytes=device.tex_line_bytes,
            use_cache=cfg.use_texture,
        )
        base_vec_dram, base_vec_cached = vector_read_traffic(
            safe.ravel(),
            cfg.value_bytes,
            cache_bytes=device.tex_cache_bytes,
            line_bytes=device.tex_line_bytes,
            use_cache=cfg.use_texture,
        )
        n_stops = int(padded.stops.sum())
        write_delta = (k - 1) * stream_bytes(
            n_stops * h, cfg.value_bytes, device.transaction_bytes
        )
        single.dram_read_bytes += vec_dram - base_vec_dram
        single.cached_read_bytes += vec_cached - base_vec_cached
        single.dram_write_bytes += write_delta
        single.flops *= k
        single.shared_mem_per_workgroup *= k  # k-wide partial sums
        if single.shared_mem_per_workgroup > device.max_shared_mem_per_workgroup:
            raise KernelConfigError(
                f"k={k} needs {single.shared_mem_per_workgroup} B shared "
                f"memory per workgroup; {device.name} allows "
                f"{device.max_shared_mem_per_workgroup}"
            )
        return KernelResult(y=y, stats=single)
