"""Shared machinery for the yaSpMV kernels (fast path and faithful path).

Holds the launch-time preparation both implementations need: padding the
BCCOO arrays to the workgroup working set, gathering the multiplied
vector per block, and computing per-block dot-product contributions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..fault.injection import active_plan
from ..formats.bccoo import BCCOOMatrix
from ..util import round_up
from .config import YaSpMVConfig

__all__ = ["PaddedBCCOO", "prepare", "block_contributions"]


@dataclass
class PaddedBCCOO:
    """BCCOO arrays padded to a whole number of workgroup tiles.

    ``stops``/``cols``/``values`` cover ``nb_padded`` blocks, a multiple
    of ``config.workgroup_work``; blocks past ``nb_valid`` are padding
    (zero values, continue flags) exactly as section 2.2 prescribes.
    """

    stops: np.ndarray  # (nb_padded,) bool
    cols: np.ndarray  # (nb_padded,) int64, decompressed
    values: np.ndarray  # (nb_padded, h, w)
    nb_valid: int
    n_workgroups: int
    n_threads_total: int
    fmt: BCCOOMatrix
    config: YaSpMVConfig

    @property
    def nb_padded(self) -> int:
        return int(self.stops.shape[0])

    @property
    def tile(self) -> int:
        return self.config.effective_tile

    def thread_stops(self) -> np.ndarray:
        """Stops reshaped to ``(n_threads_total, tile)``."""
        return self.stops.reshape(-1, self.tile)

    def workgroup_stops(self) -> np.ndarray:
        """Stops reshaped to ``(n_workgroups, workgroup_work)``."""
        return self.stops.reshape(self.n_workgroups, -1)


def prepare(fmt: BCCOOMatrix, config: YaSpMVConfig) -> PaddedBCCOO:
    """Pad and decode a BCCOO instance for a given launch configuration."""
    wg_work = config.workgroup_work
    nb = fmt.nblocks
    nb_pad = fmt.nblocks_padded
    target = round_up(max(nb_pad, 1), wg_work)

    stops = np.zeros(target, dtype=bool)
    stops[:nb_pad] = fmt.stops()
    # Padding past the real blocks must be continue flags ('1' bits);
    # fmt.stops() already guarantees that for its own padding, and the
    # zeros-initialized tail (False = continue) matches for ours.

    cols = np.zeros(target, dtype=np.int64)
    cols[:nb_pad] = fmt.columns().astype(np.int64)

    # Fault-injection hooks: perturb the *decoded copies* this launch
    # reads (a corrupted flag word / truncated delta stream), never the
    # format instance itself.  No-ops without an active plan.
    plan = active_plan()
    if plan is not None:
        stops = plan.perturb_stops(stops, n_valid=nb)
        cols = plan.perturb_columns(cols, n_valid=nb)

    h, w = fmt.block_height, fmt.block_width
    values = np.zeros((target, h, w), dtype=np.float64)
    values[:nb_pad] = fmt.values

    n_wg = target // wg_work
    return PaddedBCCOO(
        stops=stops,
        cols=cols,
        values=values,
        nb_valid=nb,
        n_workgroups=n_wg,
        n_threads_total=target // config.effective_tile,
        fmt=fmt,
        config=config,
    )


def block_contributions(
    padded: PaddedBCCOO, x: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-block partial dot products and the vector gather stream.

    Returns
    -------
    contribs:
        ``(nb_padded, h)``: block ``b`` row ``r`` holds
        ``sum_j values[b, r, j] * x[col[b] * w + j]``.
    gather_indices:
        The flat stream of vector element indices the kernel reads, in
        block order -- input to the cache/coalescing models.  Out-of-range
        slots (blocks at the right edge, padding blocks) are clamped to
        index 0 but multiply a zero value, matching a padded device
        buffer.
    """
    fmt = padded.fmt
    w = fmt.block_width
    base = padded.cols * w
    gather = base[:, None] + np.arange(w, dtype=np.int64)[None, :]
    valid = gather < fmt.ncols
    safe = np.where(valid, gather, 0)
    xg = np.asarray(x, dtype=np.float64)[safe]
    xg[~valid] = 0.0
    contribs = np.einsum("bhw,bw->bh", padded.values, xg)
    plan = active_plan()
    if plan is not None:
        contribs = plan.perturb_partials(contribs)
    return contribs, safe.ravel()
