"""Evaluation matrices: synthetic Table 2 suite, generators, IO, stats."""

from .generators import (
    dense_matrix,
    fem_banded,
    power_law,
    random_uniform,
    stencil,
    wide_rows,
)
from .mmio import read_matrix_market, write_matrix_market
from .reorder import Reordering, reverse_cuthill_mckee, sort_rows_by_length
from .stats import RowStats, bandwidth, block_fill_ratio, row_stats
from .suite import SUITE, MatrixSpec, get_spec, load_matrix, load_suite

__all__ = [
    "dense_matrix",
    "fem_banded",
    "power_law",
    "random_uniform",
    "stencil",
    "wide_rows",
    "read_matrix_market",
    "Reordering",
    "reverse_cuthill_mckee",
    "sort_rows_by_length",
    "write_matrix_market",
    "RowStats",
    "bandwidth",
    "block_fill_ratio",
    "row_stats",
    "SUITE",
    "MatrixSpec",
    "get_spec",
    "load_matrix",
    "load_suite",
]
