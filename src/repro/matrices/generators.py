"""Synthetic sparse-matrix generators.

The paper evaluates on 20 SuiteSparse / clSpMV matrices (Table 2) we
cannot download offline.  Each generator below reproduces the
*structural class* that drives SpMV behaviour -- row-length
distribution, diagonal band structure, block substructure, aspect ratio
-- so formats and kernels face the same trade-offs as on the originals:

* :func:`dense_matrix` -- the Dense control case;
* :func:`fem_banded` -- FEM discretizations: small dense blocks
  clustered in a diagonal band with near-uniform row lengths (Protein,
  FEM/*, Wind Tunnel, Ship, Ga/Si quantum-chemistry matrices);
* :func:`stencil` -- constant-offset diagonals (QCD lattice,
  Epidemiology grid);
* :func:`power_law` -- web/circuit graphs with Zipf degree
  distributions and hub rows (Webbase, eu-2005, in-2004, Circuit*);
* :func:`wide_rows` -- LP constraint matrices: few rows, thousands of
  non-zeros each;
* :func:`random_uniform` -- unstructured fill (Economics-like).

All generators are deterministic in ``seed`` and return canonical CSR.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse as _sp

from ..errors import MatrixGenerationError
from ..util import as_csr

__all__ = [
    "dense_matrix",
    "fem_banded",
    "stencil",
    "power_law",
    "wide_rows",
    "random_uniform",
]


def _finalize(rows, cols, shape, rng) -> _sp.csr_matrix:
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    data = rng.uniform(0.5, 1.5, size=rows.shape[0])
    mat = _sp.coo_matrix((data, (rows, cols)), shape=shape)
    out = as_csr(mat)
    if out.nnz == 0:
        raise MatrixGenerationError(f"generator produced an empty {shape} matrix")
    return out


def dense_matrix(n_rows: int, n_cols: int, seed: int = 0) -> _sp.csr_matrix:
    """Fully dense matrix stored sparsely (the paper's Dense case)."""
    if n_rows < 1 or n_cols < 1:
        raise MatrixGenerationError(f"invalid shape ({n_rows}, {n_cols})")
    rng = np.random.default_rng(seed)
    return as_csr(_sp.csr_matrix(rng.uniform(0.5, 1.5, (n_rows, n_cols))))


def fem_banded(
    n_rows: int,
    nnz_per_row: int,
    block: int = 3,
    band_fraction: float = 0.05,
    seed: int = 0,
) -> _sp.csr_matrix:
    """FEM-style matrix: dense ``block x block`` clusters in a diagonal band.

    Each block row connects to ``nnz_per_row / block`` neighbouring block
    columns drawn from a window of +/- ``band_fraction * n`` around the
    diagonal -- giving the near-uniform row lengths and blocked
    substructure of assembled finite-element systems.
    """
    if nnz_per_row < 1 or n_rows < block:
        raise MatrixGenerationError(
            f"need n_rows >= block and nnz_per_row >= 1, "
            f"got n_rows={n_rows}, block={block}, nnz_per_row={nnz_per_row}"
        )
    rng = np.random.default_rng(seed)
    nbr = n_rows // block
    blocks_per_row = max(nnz_per_row // block, 1)
    half_band = max(int(band_fraction * nbr), blocks_per_row)

    bi = np.repeat(np.arange(nbr), blocks_per_row)
    offsets = rng.integers(-half_band, half_band + 1, size=bi.shape[0])
    bj = np.clip(bi + offsets, 0, nbr - 1)
    # Always include the diagonal block.
    bi = np.concatenate([bi, np.arange(nbr)])
    bj = np.concatenate([bj, np.arange(nbr)])

    # Expand block coordinates to dense element blocks.
    in_r, in_c = np.meshgrid(np.arange(block), np.arange(block), indexing="ij")
    rows = (bi[:, None, None] * block + in_r[None]).ravel()
    cols = (bj[:, None, None] * block + in_c[None]).ravel()
    return _finalize(rows, cols, (n_rows, n_rows), rng)


def stencil(
    n_rows: int, offsets: tuple[int, ...] = (-1, 0, 1), seed: int = 0
) -> _sp.csr_matrix:
    """Constant-diagonal stencil matrix (QCD / Epidemiology class)."""
    if not offsets:
        raise MatrixGenerationError("stencil needs at least one offset")
    rng = np.random.default_rng(seed)
    rows_list, cols_list = [], []
    base = np.arange(n_rows, dtype=np.int64)
    for off in offsets:
        cols = base + off
        valid = (cols >= 0) & (cols < n_rows)
        rows_list.append(base[valid])
        cols_list.append(cols[valid])
    return _finalize(
        np.concatenate(rows_list), np.concatenate(cols_list), (n_rows, n_rows), rng
    )


def power_law(
    n_rows: int,
    target_nnz: int,
    alpha: float = 2.1,
    locality: float = 0.5,
    seed: int = 0,
) -> _sp.csr_matrix:
    """Web-graph-like matrix: Zipf row degrees, hub columns, some locality.

    ``alpha`` is the Zipf exponent (smaller = heavier tail = more extreme
    hub rows); ``locality`` mixes diagonal-local targets with global hub
    targets, reproducing host-locality in web link matrices.
    """
    if target_nnz < n_rows // 2:
        raise MatrixGenerationError(
            f"target_nnz {target_nnz} too small for {n_rows} rows"
        )
    rng = np.random.default_rng(seed)
    raw = rng.zipf(alpha, size=n_rows).astype(np.int64)
    raw = np.minimum(raw, n_rows)  # a row cannot exceed the width
    degrees = np.maximum((raw * (target_nnz / raw.sum())).astype(np.int64), 1)
    degrees = np.minimum(degrees, n_rows)

    rows = np.repeat(np.arange(n_rows, dtype=np.int64), degrees)
    n = rows.shape[0]
    local = rng.random(n) < locality
    # Local edges cluster near the diagonal; global edges prefer hubs
    # (low column ids after a Zipf draw).
    spread = max(n_rows // 100, 4)
    local_cols = rows + rng.integers(-spread, spread + 1, size=n)
    hub_cols = (rng.zipf(1.5, size=n) - 1) % n_rows
    cols = np.where(local, local_cols, hub_cols)
    cols = np.clip(cols, 0, n_rows - 1)
    return _finalize(rows, cols, (n_rows, n_rows), rng)


def wide_rows(
    n_rows: int, n_cols: int, nnz_per_row: int, seed: int = 0
) -> _sp.csr_matrix:
    """LP-style matrix: much wider than tall, thousands of nnz per row."""
    if n_cols < nnz_per_row:
        raise MatrixGenerationError(
            f"n_cols {n_cols} must be >= nnz_per_row {nnz_per_row}"
        )
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), nnz_per_row)
    cols = rng.integers(0, n_cols, size=rows.shape[0])
    return _finalize(rows, cols, (n_rows, n_cols), rng)


def random_uniform(
    n_rows: int, n_cols: int, nnz_per_row: float, seed: int = 0
) -> _sp.csr_matrix:
    """Unstructured uniform sparsity with Poisson row lengths."""
    rng = np.random.default_rng(seed)
    degrees = rng.poisson(nnz_per_row, size=n_rows).astype(np.int64)
    degrees = np.clip(degrees, 1, n_cols)
    rows = np.repeat(np.arange(n_rows, dtype=np.int64), degrees)
    cols = rng.integers(0, n_cols, size=rows.shape[0])
    return _finalize(rows, cols, (n_rows, n_cols), rng)
