"""Minimal Matrix Market (``.mtx``) coordinate I/O.

Lets users substitute the *real* Table 2 matrices (downloaded from
SuiteSparse) for the synthetic stand-ins: drop the ``.mtx`` files in a
directory and load them with :func:`read_matrix_market`.  Supports the
``matrix coordinate real/integer/pattern general/symmetric`` subset that
covers SuiteSparse exports.
"""

from __future__ import annotations

import io
from pathlib import Path

import numpy as np
from scipy import sparse as _sp

from ..errors import FormatError
from ..util import as_csr

__all__ = ["read_matrix_market", "write_matrix_market"]


def read_matrix_market(path) -> _sp.csr_matrix:
    """Parse an ``.mtx`` coordinate file into canonical CSR."""
    text = Path(path).read_text()
    return _parse(text)


def _parse(text: str) -> _sp.csr_matrix:
    lines = iter(text.splitlines())
    try:
        header = next(lines)
    except StopIteration:
        raise FormatError("empty Matrix Market file") from None
    parts = header.lower().split()
    if len(parts) < 5 or parts[0] != "%%matrixmarket" or parts[1] != "matrix":
        raise FormatError(f"not a Matrix Market header: {header!r}")
    layout, field, symmetry = parts[2], parts[3], parts[4]
    if layout != "coordinate":
        raise FormatError(f"only coordinate layout supported, got {layout!r}")
    if field not in ("real", "integer", "pattern"):
        raise FormatError(f"unsupported field {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise FormatError(f"unsupported symmetry {symmetry!r}")

    size_line = None
    for line in lines:
        stripped = line.strip()
        if stripped and not stripped.startswith("%"):
            size_line = stripped
            break
    if size_line is None:
        raise FormatError("missing size line")
    dims = size_line.split()
    if len(dims) != 3:
        raise FormatError(f"bad size line: {size_line!r}")
    nrows, ncols, nnz = (int(v) for v in dims)

    body = "\n".join(
        ln for ln in lines if ln.strip() and not ln.lstrip().startswith("%")
    )
    if nnz == 0:
        return _sp.csr_matrix((nrows, ncols))
    want_cols = 2 if field == "pattern" else 3
    table = np.loadtxt(io.StringIO(body), ndmin=2)
    if table.shape[0] != nnz:
        raise FormatError(
            f"size line declares {nnz} entries, file has {table.shape[0]}"
        )
    if table.shape[1] < want_cols:
        raise FormatError(
            f"{field} entries need {want_cols} columns, got {table.shape[1]}"
        )
    rows = table[:, 0].astype(np.int64) - 1
    cols = table[:, 1].astype(np.int64) - 1
    data = (
        np.ones(nnz, dtype=np.float64)
        if field == "pattern"
        else table[:, 2].astype(np.float64)
    )
    if rows.min() < 0 or cols.min() < 0 or rows.max() >= nrows or cols.max() >= ncols:
        raise FormatError("index out of declared bounds")

    if symmetry == "symmetric":
        off = rows != cols
        mirror_rows, mirror_cols = cols[off], rows[off]
        rows = np.concatenate([rows, mirror_rows])
        cols = np.concatenate([cols, mirror_cols])
        data = np.concatenate([data, data[off]])
    return as_csr(_sp.coo_matrix((data, (rows, cols)), shape=(nrows, ncols)))


def write_matrix_market(path, matrix) -> None:
    """Write a matrix as ``coordinate real general`` (1-based indices)."""
    coo = as_csr(matrix).tocoo()
    with open(path, "w") as fh:
        fh.write("%%MatrixMarket matrix coordinate real general\n")
        fh.write(f"{coo.shape[0]} {coo.shape[1]} {coo.nnz}\n")
        for r, c, v in zip(coo.row, coo.col, coo.data):
            fh.write(f"{r + 1} {c + 1} {v:.17g}\n")
