"""Matrix reordering -- the related-work alternative to format design.

Section 7 contrasts yaSpMV with "compression and reordering techniques"
(Pichel et al. [14], Buluc et al. [2]): permuting rows/columns to
improve locality, at the price of "changing the inherent locality of
the original matrix".  This module provides the two standard
reorderings so that trade-off can actually be measured against BCCOO
(see ``benchmarks/bench_ablations.py``):

* :func:`reverse_cuthill_mckee` -- bandwidth-minimizing permutation
  (symmetric RCM over ``A + A^T``);
* :func:`sort_rows_by_length` -- the degree-sort used by row-binning
  SpMV schemes (improves warp regularity for row-based kernels, but
  scrambles vector locality).

Both return the permuted matrix *and* the permutations, since a real
user must apply them to the vector and un-permute the result:
``y = P_r^T @ (A_perm @ (P_c @ x))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.sparse import csgraph

from ..util import as_csr

__all__ = ["Reordering", "reverse_cuthill_mckee", "sort_rows_by_length"]


@dataclass
class Reordering:
    """A permuted matrix with its row/column permutations.

    ``row_perm[i]`` is the original row placed at permuted position
    ``i`` (and likewise for columns), so for the original problem
    ``y = A @ x``::

        y_perm = matrix @ x[col_perm]
        y = empty;  y[row_perm] = y_perm
    """

    matrix: object  # csr_matrix
    row_perm: np.ndarray
    col_perm: np.ndarray

    def apply_to_vector(self, x: np.ndarray) -> np.ndarray:
        return np.asarray(x)[self.col_perm]

    def restore_result(self, y_perm: np.ndarray) -> np.ndarray:
        y = np.empty_like(y_perm)
        y[self.row_perm] = y_perm
        return y

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Reference: the full permute-multiply-restore round trip."""
        return self.restore_result(self.matrix @ self.apply_to_vector(x))


def reverse_cuthill_mckee(matrix) -> Reordering:
    """Symmetric RCM reordering (rows and columns permuted alike).

    Works on any square matrix; the ordering is computed on the
    symmetrized pattern ``A + A^T``.
    """
    csr = as_csr(matrix)
    if csr.shape[0] != csr.shape[1]:
        raise ValueError(
            f"RCM needs a square matrix, got {csr.shape}"
        )
    pattern = csr + csr.T
    perm = np.asarray(
        csgraph.reverse_cuthill_mckee(pattern.tocsr(), symmetric_mode=True)
    ).astype(np.int64)
    permuted = as_csr(csr[perm][:, perm])
    return Reordering(matrix=permuted, row_perm=perm, col_perm=perm)


def sort_rows_by_length(matrix) -> Reordering:
    """Sort rows by non-zero count (descending); columns untouched.

    The binning trick of SELL-style schemes: adjacent rows get similar
    lengths, so warps of a row-based kernel stop diverging.
    """
    csr = as_csr(matrix)
    lengths = np.diff(csr.indptr)
    perm = np.argsort(-lengths, kind="stable").astype(np.int64)
    permuted = as_csr(csr[perm])
    return Reordering(
        matrix=permuted,
        row_perm=perm,
        col_perm=np.arange(csr.shape[1], dtype=np.int64),
    )
