"""Row-structure statistics of sparse matrices.

These are the quantities the paper's analysis (and our tuner heuristics
and reports) reason about: the row-length distribution drives the load
imbalance of row-based kernels and the ELL padding blow-up, and the
block fill ratio drives BCCOO's block-size choice.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..formats.blocking import extract_blocks
from ..util import as_csr

__all__ = ["RowStats", "row_stats", "block_fill_ratio", "bandwidth"]


@dataclass(frozen=True)
class RowStats:
    """Summary of a matrix's row-length distribution."""

    nrows: int
    ncols: int
    nnz: int
    mean: float
    std: float
    min: int
    max: int
    #: Mean over warps (32 consecutive rows) of max/mean within the warp:
    #: the first-order divergence factor of a scalar-CSR kernel.
    warp_divergence: float
    #: Gini coefficient of row lengths (0 = uniform, ->1 = hub-dominated).
    gini: float

    @property
    def ell_expansion(self) -> float:
        """Padded-slot blow-up ELL would pay (max / mean row length)."""
        return self.max / self.mean if self.mean else 1.0


def row_stats(matrix) -> RowStats:
    """Compute :class:`RowStats` for any matrix."""
    csr = as_csr(matrix)
    lengths = np.diff(csr.indptr).astype(np.float64)
    n = lengths.shape[0]
    if n == 0 or csr.nnz == 0:
        return RowStats(csr.shape[0], csr.shape[1], 0, 0.0, 0.0, 0, 0, 1.0, 0.0)

    warp = 32
    pad = (-n) % warp
    # Pad with NaN so partial final warps don't dilute the statistics.
    padded = np.concatenate([lengths, np.full(pad, np.nan)])
    warps = padded.reshape(-1, warp)
    means = np.nanmean(warps, axis=1)
    maxes = np.nanmax(warps, axis=1)
    nonzero = means > 0
    divergence = float((maxes[nonzero] / means[nonzero]).mean()) if nonzero.any() else 1.0

    sorted_l = np.sort(lengths)
    cum = np.cumsum(sorted_l)
    # Gini = 1 - 2 * area under the Lorenz curve.
    lorenz = cum / cum[-1]
    gini = float(1.0 - 2.0 * (lorenz.sum() / n - lorenz[-1] / (2 * n)))

    return RowStats(
        nrows=csr.shape[0],
        ncols=csr.shape[1],
        nnz=int(csr.nnz),
        mean=float(lengths.mean()),
        std=float(lengths.std()),
        min=int(lengths.min()),
        max=int(lengths.max()),
        warp_divergence=divergence,
        gini=max(gini, 0.0),
    )


def block_fill_ratio(matrix, block_height: int, block_width: int) -> float:
    """Stored slots over true non-zeros for a given blocking (>= 1)."""
    return extract_blocks(matrix, block_height, block_width).fill_ratio


def bandwidth(matrix) -> int:
    """Matrix bandwidth: max ``|col - row|`` over non-zeros."""
    coo = as_csr(matrix).tocoo()
    if coo.nnz == 0:
        return 0
    return int(np.abs(coo.col.astype(np.int64) - coo.row.astype(np.int64)).max())
