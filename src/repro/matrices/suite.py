"""The 20-matrix evaluation suite (paper Table 2), as synthetic stand-ins.

Each :class:`MatrixSpec` records the original's published shape, non-zero
count and nnz/row together with a generator recipe reproducing its
structural class (see :mod:`repro.matrices.generators` and DESIGN.md's
substitution table).  Because a 59M-non-zero matrix is intractable in
pure Python, specs load at a ``scale`` in (0, 1]: row/column counts
shrink proportionally while nnz/row -- the quantity that drives format
and kernel behaviour -- is preserved.  ``load_suite`` picks per-matrix
scales capping nnz at a budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from scipy import sparse as _sp

from ..errors import MatrixGenerationError
from . import generators as g

__all__ = ["MatrixSpec", "SUITE", "get_spec", "load_matrix", "load_suite"]


@dataclass(frozen=True)
class MatrixSpec:
    """One Table 2 row plus its synthetic recipe."""

    name: str
    rows: int
    cols: int
    nnz: int
    nnz_per_row: int
    family: str  # generator family, for reporting
    build: Callable[[int, int, int], _sp.csr_matrix]
    #: Paper's Table 3 BCCOO footprint in MB (for EXPERIMENTS.md deltas).
    paper_bccoo_mb: float | None = None

    def load(self, scale: float = 1.0, seed: int = 1234) -> _sp.csr_matrix:
        """Generate the matrix at ``scale``; nnz/row is preserved."""
        if not (0 < scale <= 1.0):
            raise MatrixGenerationError(f"scale must be in (0, 1], got {scale}")
        rows = max(int(self.rows * scale), 64)
        cols = max(int(self.cols * scale), 64)
        return self.build(rows, cols, seed)

    def scale_for_nnz(self, cap: int) -> float:
        """Largest scale keeping the expected nnz under ``cap``."""
        if self.nnz <= cap:
            return 1.0
        return cap / self.nnz


def _dense(rows, cols, seed):
    return g.dense_matrix(rows, cols, seed=seed)


def _fem(nnz_per_row, block, band):
    def build(rows, cols, seed):
        return g.fem_banded(
            rows, nnz_per_row, block=block, band_fraction=band, seed=seed
        )

    return build


def _stencil_qcd(rows, cols, seed):
    # 4D lattice operator: 39 regular diagonals around the main one.
    side = max(int(round(rows ** 0.25)), 2)
    offs = [0]
    for d in (1, side, side * side, side**3):
        offs += [d, -d, 2 * d, -2 * d]
    extra = 3
    while len(offs) < 39:
        offs += [extra, -extra]
        extra += 2
    return g.stencil(rows, tuple(offs[:39]), seed=seed)


def _stencil_epid(rows, cols, seed):
    # 2D grid 4-point stencil: exactly 4 regular diagonals.
    side = max(int(math.isqrt(rows)), 2)
    return g.stencil(rows, (-side, -1, 1, side), seed=seed)


def _power(nnz_per_row, alpha):
    def build(rows, cols, seed):
        return g.power_law(rows, rows * nnz_per_row, alpha=alpha, seed=seed)

    return build


def _lp(nnz_per_row):
    def build(rows, cols, seed):
        return g.wide_rows(rows, cols, min(nnz_per_row, cols), seed=seed)

    return build


def _uniform(nnz_per_row):
    def build(rows, cols, seed):
        return g.random_uniform(rows, cols, nnz_per_row, seed=seed)

    return build


SUITE: tuple[MatrixSpec, ...] = (
    MatrixSpec("Dense", 2_000, 2_000, 4_000_000, 2000, "dense", _dense, 17),
    MatrixSpec("Protein", 36_000, 36_000, 4_344_765, 119, "fem", _fem(119, 4, 0.02), 21),
    MatrixSpec("FEM/Spheres", 83_000, 83_000, 6_010_480, 72, "fem", _fem(72, 3, 0.02), 31),
    MatrixSpec("FEM/Cantilever", 62_000, 62_000, 4_007_383, 65, "fem", _fem(65, 3, 0.02), 21),
    MatrixSpec("Wind Tunnel", 218_000, 218_000, 11_634_424, 53, "fem", _fem(53, 3, 0.01), 65),
    MatrixSpec("FEM/Harbor", 47_000, 47_000, 2_374_001, 59, "fem", _fem(59, 3, 0.03), 14),
    MatrixSpec("QCD", 49_000, 49_000, 1_916_928, 39, "stencil", _stencil_qcd, 9),
    MatrixSpec("FEM/Ship", 141_000, 141_000, 7_813_404, 28, "fem", _fem(28, 2, 0.02), 34),
    MatrixSpec("Economics", 207_000, 207_000, 1_273_389, 6, "uniform", _uniform(6), 8),
    MatrixSpec("Epidemiology", 526_000, 526_000, 2_100_225, 4, "stencil", _stencil_epid, 14),
    MatrixSpec("FEM/Accelerator", 121_000, 121_000, 2_620_000, 22, "fem", _fem(22, 2, 0.05), 17),
    MatrixSpec("Circuit", 171_000, 171_000, 958_936, 6, "powerlaw", _power(6, 2.3), 6),
    MatrixSpec("Webbase", 1_000_000, 1_000_000, 3_105_536, 3, "powerlaw", _power(3, 1.9), 27),
    MatrixSpec("LP", 4_000, 1_100_000, 11_279_748, 2825, "lp", _lp(2825), 85),
    MatrixSpec("Circuit5M", 5_560_000, 5_560_000, 59_524_291, 11, "powerlaw", _power(11, 2.2), 516),
    MatrixSpec("eu-2005", 863_000, 863_000, 19_235_140, 22, "powerlaw", _power(22, 2.0), 159),
    MatrixSpec("Ga41As41H72", 268_000, 268_000, 18_488_476, 67, "fem", _fem(67, 1, 0.1), 136),
    MatrixSpec("in-2004", 1_380_000, 1_380_000, 16_917_053, 12, "powerlaw", _power(12, 2.0), 132),
    MatrixSpec("mip1", 66_000, 66_000, 10_352_819, 152, "fem", _fem(152, 4, 0.05), 51),
    MatrixSpec("Si41Ge41H72", 186_000, 186_000, 15_011_265, 81, "fem", _fem(81, 1, 0.1), 105),
)

_BY_NAME = {s.name.lower(): s for s in SUITE}


def get_spec(name: str) -> MatrixSpec:
    """Look up a suite entry by (case-insensitive) Table 2 name."""
    try:
        return _BY_NAME[name.lower()]
    except KeyError:
        raise MatrixGenerationError(
            f"unknown suite matrix {name!r}; available: {[s.name for s in SUITE]}"
        ) from None


def load_matrix(name: str, scale: float = 1.0, seed: int = 1234) -> _sp.csr_matrix:
    """Generate one suite matrix at the given scale."""
    return get_spec(name).load(scale=scale, seed=seed)


def load_suite(
    cap_nnz: int = 200_000, seed: int = 1234
) -> dict[str, _sp.csr_matrix]:
    """Generate the whole suite, capping each matrix's nnz at ``cap_nnz``.

    Returns name -> CSR.  The per-matrix scale is recorded implicitly in
    the returned shapes; benchmarks report it alongside results.
    """
    out: dict[str, _sp.csr_matrix] = {}
    for spec in SUITE:
        out[spec.name] = spec.load(scale=spec.scale_for_nnz(cap_nnz), seed=seed)
    return out
