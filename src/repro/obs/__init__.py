"""repro.obs -- the observability layer: tracing, metrics, exporters.

One :class:`Observer` bundles a span :class:`~repro.obs.trace.Tracer`
and a :class:`~repro.obs.metrics.MetricsRegistry`.  The engine, tuner,
kernels, timing model and resilience chain all report through whichever
observer is active; the default :data:`NULL_OBSERVER` swallows
everything at near-zero cost, so an un-observed run is indistinguishable
from the pre-observability engine.

Usage::

    from repro import SpMVEngine
    from repro.obs import Observer

    obs = Observer()
    engine = SpMVEngine(observer=obs)
    engine.multiply(engine.prepare(A), x)
    print(obs.report())            # span tree + metric table
    obs.write_trace("run.jsonl")   # JSON-lines, reload with load_jsonl

Library code that cannot be handed an observer (kernels, the timing
model) reads the ambient one via :func:`active_observer`; the engine
installs its observer with :func:`obs_scope` around every public entry
point, mirroring :func:`repro.fault.injection.fault_scope`.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from .export import console_report, dump_jsonl, load_jsonl, prometheus_text, write_jsonl
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .trace import Span, Tracer

__all__ = [
    "Observer",
    "NullObserver",
    "NULL_OBSERVER",
    "obs_scope",
    "active_observer",
    "Span",
    "Tracer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "console_report",
    "dump_jsonl",
    "write_jsonl",
    "load_jsonl",
    "prometheus_text",
]


class Observer:
    """Tracer + metrics registry, the unit the engine is handed."""

    enabled = True

    def __init__(self):
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    # Convenience pass-throughs so call sites stay one-liners.
    def span(self, name: str, **attrs):
        return self.tracer.span(name, **attrs)

    def counter(self, name: str, help: str = "") -> Counter:
        return self.metrics.counter(name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self.metrics.gauge(name, help)

    def histogram(self, name: str, help: str = "", **kw) -> Histogram:
        return self.metrics.histogram(name, help, **kw)

    def report(self, title: str = "") -> str:
        """Console summary: span tree plus metric table."""
        return console_report(self, title=title)

    def write_trace(self, path) -> int:
        """Dump the span forest as JSON-lines; returns the span count."""
        return write_jsonl(self.tracer, path)


class _NullSpan:
    """Reusable no-op span: context manager + dead-end ``set``."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: list = []

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs):
        return self


class _NullMetric:
    """Accepts every mutation, stores nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels):
        pass

    def set(self, value: float, **labels):
        pass

    def add(self, amount: float, **labels):
        pass

    def observe(self, value: float, **labels):
        pass

    def value(self, **labels) -> float:
        return 0.0


_NULL_SPAN = _NullSpan()
_NULL_METRIC = _NullMetric()


class NullObserver:
    """The default observer: every hook is a constant-time no-op."""

    enabled = False

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def counter(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def gauge(self, name: str, help: str = "") -> _NullMetric:
        return _NULL_METRIC

    def histogram(self, name: str, help: str = "", **kw) -> _NullMetric:
        return _NULL_METRIC

    def report(self, title: str = "") -> str:
        return "(observability disabled)"

    def write_trace(self, path) -> int:
        return 0


#: Shared do-nothing observer (stateless, safe to reuse everywhere).
NULL_OBSERVER = NullObserver()

_ACTIVE: Observer | NullObserver = NULL_OBSERVER


def active_observer() -> Observer | NullObserver:
    """The observer installed by the innermost :func:`obs_scope`."""
    return _ACTIVE


@contextlib.contextmanager
def obs_scope(observer: Observer | NullObserver | None) -> Iterator:
    """Install ``observer`` as the ambient observer for the dynamic extent.

    ``None`` keeps whatever is already active -- callers with an optional
    observer can wrap unconditionally.
    """
    global _ACTIVE
    previous = _ACTIVE
    if observer is not None:
        _ACTIVE = observer
    try:
        yield _ACTIVE
    finally:
        _ACTIVE = previous
