"""Exporters: trace/metric state out of an :class:`~repro.obs.Observer`.

Three formats, matching the three consumers:

* **JSON-lines** (:func:`dump_jsonl` / :func:`write_jsonl` /
  :func:`load_jsonl`) -- one flat span record per line, reconstructable
  into the identical span forest (round-trip tested).  This is what
  ``repro tune --trace out.jsonl`` writes.
* **Prometheus text** (:func:`prometheus_text`) -- the standard
  ``# HELP`` / ``# TYPE`` exposition format for the metrics registry.
* **Console** (:func:`console_report`) -- the span tree plus a metric
  table, the ``repro profile`` output.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .metrics import Histogram, MetricsRegistry, _label_text
from .trace import Span, Tracer

__all__ = [
    "dump_jsonl",
    "write_jsonl",
    "load_jsonl",
    "prometheus_text",
    "console_report",
]


def _iter_spans(source) -> Iterable[Span]:
    """Accept a Tracer, an Observer, a span forest, or a span iterable."""
    tracer = getattr(source, "tracer", source)
    if isinstance(tracer, Tracer):
        return tracer.spans()
    spans: list[Span] = []
    for item in source:
        spans.extend(item.walk() if isinstance(item, Span) else [item])
    return spans


def dump_jsonl(source) -> str:
    """Serialize every span as one JSON object per line (depth-first,
    roots in recording order) -- parent links carried by ``parent_id``."""
    return "\n".join(
        json.dumps(span.to_dict(), sort_keys=True, default=_jsonable)
        for span in _iter_spans(source)
    )


def _jsonable(value):
    """Best-effort attribute coercion: numpy scalars, odd objects."""
    item = getattr(value, "item", None)
    if callable(item):
        try:
            return item()
        except (TypeError, ValueError):
            pass
    return str(value)


def write_jsonl(source, path) -> int:
    """Write the JSON-lines trace to ``path``; returns the span count."""
    text = dump_jsonl(source)
    with open(path, "w", encoding="utf-8") as fh:
        if text:
            fh.write(text + "\n")
    return 0 if not text else text.count("\n") + 1


def load_jsonl(source: str | IO) -> list[Span]:
    """Parse a JSON-lines trace back into its root spans.

    ``source`` is the text itself or an open file.  Children are
    re-attached by ``parent_id`` preserving line order, so
    ``load_jsonl(dump_jsonl(tracer))`` reproduces the span forest
    exactly (a missing parent -- e.g. a truncated file -- promotes the
    span to a root rather than dropping it).
    """
    text = source if isinstance(source, str) else source.read()
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        span = Span.from_dict(json.loads(line))
        by_id[span.span_id] = span
        parent = by_id.get(span.parent_id) if span.parent_id is not None else None
        if parent is not None:
            parent.children.append(span)
        else:
            roots.append(span)
    return roots


# ---------------------------------------------------------------------- #


def prometheus_text(registry: MetricsRegistry) -> str:
    """Prometheus exposition format for every registered metric."""
    lines: list[str] = []
    for metric in registry.metrics():
        safe = metric.name.replace(".", "_").replace("-", "_")
        if metric.help:
            lines.append(f"# HELP {safe} {metric.help}")
        lines.append(f"# TYPE {safe} {metric.kind}")
        if isinstance(metric, Histogram):
            for key, total in metric.items():
                labels = dict(key)
                cumulative = metric.bucket_counts(**labels)
                for bound, cum in zip(metric.buckets, cumulative):
                    bkey = key + (("le", f"{bound:g}"),)
                    lines.append(f"{safe}_bucket{_label_text(bkey)} {cum}")
                inf_key = key + (("le", "+Inf"),)
                lines.append(f"{safe}_bucket{_label_text(inf_key)} {cumulative[-1]}")
                lines.append(f"{safe}_sum{_label_text(key)} {total:g}")
                lines.append(f"{safe}_count{_label_text(key)} {cumulative[-1]}")
        else:
            for key, value in metric.items():
                lines.append(f"{safe}{_label_text(key)} {value:g}")
    return "\n".join(lines) + ("\n" if lines else "")


def console_report(observer, title: str = "") -> str:
    """Span tree + metric table: the ``repro profile`` page."""
    parts: list[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    tree = observer.tracer.render()
    parts.append("spans:")
    parts.append(tree if tree else "  (no spans recorded)")
    parts.append("")
    parts.append("metrics:")
    parts.append(observer.metrics.render_table())
    return "\n".join(parts)
