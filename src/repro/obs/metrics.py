"""Metrics registry: named counters, gauges and histograms with labels.

The registry is the numerical half of the observability layer (the span
tracer is the structural half): engine, tuner, kernels and the
resilience chain increment well-known metrics --
``tuner.plan_cache.hits``, ``fallback.stage_used{stage=...}``,
``fault.injections{site=...}``, ``kernel.launches{kernel=...}`` -- and
the exporters turn the registry into a Prometheus-style text page or a
human table.

Every metric stores one value per label combination (an unlabeled metric
is the empty combination).  All mutation goes through one registry lock:
cheap enough for the simulated hot path and safe for
``tuning_workers > 1`` with the thread executor.
"""

from __future__ import annotations

import threading
from bisect import bisect_right
from typing import Iterable

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds (seconds-ish scale; callers with
#: different ranges pass their own).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_text(key: tuple) -> str:
    if not key:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in key) + "}"


class _Metric:
    """Shared plumbing: name, help text, per-label storage."""

    kind = "untyped"

    def __init__(self, name: str, help: str, lock: threading.Lock):
        self.name = name
        self.help = help
        self._lock = lock
        self._values: dict[tuple, float] = {}

    def value(self, **labels) -> float:
        """Current value for one label combination (0.0 if never touched)."""
        return self._values.get(_label_key(labels), 0.0)

    def items(self) -> list[tuple[tuple, float]]:
        """``(label_key, value)`` pairs, insertion-ordered."""
        with self._lock:
            return list(self._values.items())

    def _bump(self, labels: dict, delta: float, absolute: bool = False) -> None:
        key = _label_key(labels)
        with self._lock:
            if absolute:
                self._values[key] = delta
            else:
                self._values[key] = self._values.get(key, 0.0) + delta


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self._bump(labels, float(amount))


class Gauge(_Metric):
    """Point-in-time value; settable and adjustable."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        self._bump(labels, float(value), absolute=True)

    def add(self, amount: float, **labels) -> None:
        self._bump(labels, float(amount))


class Histogram(_Metric):
    """Bucketed distribution with sum and count per label combination."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        lock: threading.Lock,
        buckets: Iterable[float] = DEFAULT_BUCKETS,
    ):
        super().__init__(name, help, lock)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {self.name} needs at least one bucket")
        #: label key -> [per-bucket counts..., +Inf count]
        self._counts: dict[tuple, list[int]] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        idx = bisect_right(self.buckets, float(value))
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * (len(self.buckets) + 1)
            counts[idx] += 1
            # _values doubles as the running sum; count derives from buckets.
            self._values[key] = self._values.get(key, 0.0) + float(value)

    def count(self, **labels) -> int:
        counts = self._counts.get(_label_key(labels))
        return sum(counts) if counts else 0

    def sum(self, **labels) -> float:
        return self.value(**labels)

    def mean(self, **labels) -> float:
        n = self.count(**labels)
        return self.sum(**labels) / n if n else 0.0

    def bucket_counts(self, **labels) -> list[int]:
        """Cumulative counts per bucket bound (Prometheus ``le`` style)."""
        counts = self._counts.get(_label_key(labels))
        if counts is None:
            return [0] * (len(self.buckets) + 1)
        out, running = [], 0
        for c in counts:
            running += c
            out.append(running)
        return out

    def items(self) -> list[tuple[tuple, float]]:
        with self._lock:
            return [(k, self._values.get(k, 0.0)) for k in self._counts]


class MetricsRegistry:
    """Get-or-create home for every metric of one :class:`Observer`."""

    def __init__(self):
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def _get_or_create(self, cls, name: str, help: str, **kw):
        with self._lock:
            metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}, "
                    f"requested {cls.kind}"
                )
            return metric
        created = cls(name, help, self._lock, **kw)
        with self._lock:
            # Another thread may have won the race; first writer sticks.
            metric = self._metrics.setdefault(name, created)
        if not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: Iterable[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> _Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def metrics(self) -> list[_Metric]:
        with self._lock:
            return list(self._metrics.values())

    def as_dict(self) -> dict:
        """``{name: {label_text: value}}`` snapshot (histograms report sums
        plus per-combination counts under ``name.count``)."""
        out: dict[str, dict] = {}
        for metric in self.metrics():
            out[metric.name] = {_label_text(k) or "": v for k, v in metric.items()}
            if isinstance(metric, Histogram):
                out[metric.name + ".count"] = {
                    _label_text(k) or "": metric.count(**dict(k))
                    for k, _ in metric.items()
                }
        return out

    def render_table(self) -> str:
        """Aligned human-readable metric table."""
        rows: list[tuple[str, str]] = []
        for metric in self.metrics():
            for key, value in sorted(metric.items()):
                label = metric.name + _label_text(key)
                if isinstance(metric, Histogram):
                    n = metric.count(**dict(key))
                    text = f"count={n} sum={value:.6g} mean={metric.mean(**dict(key)):.6g}"
                elif float(value).is_integer():
                    text = str(int(value))
                else:
                    text = f"{value:.6g}"
                rows.append((label, text))
        if not rows:
            return "(no metrics recorded)"
        width = max(len(label) for label, _ in rows)
        return "\n".join(f"{label:<{width}}  {text}" for label, text in rows)
