"""Lightweight structured tracing: nested spans over the engine's phases.

A :class:`Span` is one timed region of a run -- ``engine.prepare``,
``tuner.candidate``, ``kernel.yaspmv`` -- with wall-clock bounds plus
arbitrary attributes (simulated time, GFLOPS, stage names, fault sites).
Spans nest: the tracer keeps a per-thread stack, so a span opened while
another is active becomes its child, and spans opened on worker threads
(``tuning_workers > 1`` with the thread executor) start fresh roots
tagged with their thread id instead of corrupting another thread's tree.

The tracer is deliberately tiny -- no sampling, no clock abstraction
beyond ``time.perf_counter`` -- because its consumers are the exporters
in :mod:`repro.obs.export` and the ``repro profile`` CLI, not a
telemetry backend.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Span", "Tracer"]


@dataclass
class Span:
    """One timed, attributed region; ``children`` are sub-spans."""

    name: str
    span_id: int
    parent_id: int | None = None
    t_start: float = 0.0
    t_end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        """Wall-clock extent; 0.0 while the span is still open."""
        if self.t_end is None:
            return 0.0
        return self.t_end - self.t_start

    def set(self, **attrs) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attrs.update(attrs)
        return self

    def walk(self) -> Iterator["Span"]:
        """Depth-first iteration over this span and all descendants."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with ``name``, depth-first."""
        for span in self.walk():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        """Every descendant (or self) with ``name``, depth-first order."""
        return [s for s in self.walk() if s.name == name]

    def to_dict(self) -> dict:
        """Flat JSON-able record (children are linked by ``parent_id``)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            name=d["name"],
            span_id=int(d["span_id"]),
            parent_id=None if d.get("parent_id") is None else int(d["parent_id"]),
            t_start=float(d["t_start"]),
            t_end=None if d.get("t_end") is None else float(d["t_end"]),
            attrs=dict(d.get("attrs", {})),
        )

    def render(self, indent: int = 0, attr_limit: int = 6) -> str:
        """Human-readable tree of this span and its descendants."""
        pad = "  " * indent
        dur = f"{self.duration_s * 1e3:.2f} ms" if self.t_end is not None else "open"
        shown = list(self.attrs.items())[:attr_limit]
        attrs = ", ".join(f"{k}={_short(v)}" for k, v in shown)
        if len(self.attrs) > attr_limit:
            attrs += ", ..."
        line = f"{pad}{self.name}  [{dur}]" + (f"  {{{attrs}}}" if attrs else "")
        return "\n".join([line] + [c.render(indent + 1, attr_limit) for c in self.children])


def _short(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    text = str(value)
    return text if len(text) <= 40 else text[:37] + "..."


class Tracer:
    """Thread-safe collector of span trees.

    ``span()`` is the only producer API::

        with tracer.span("engine.multiply", nnz=nnz) as sp:
            ...
            sp.set(sim_time_s=breakdown.t_total)

    Spans nest per thread; completed roots accumulate in :attr:`roots`.
    """

    def __init__(self):
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self.roots: list[Span] = []

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on the calling thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        stack = self._stack()
        parent = stack[-1] if stack else None
        with self._lock:
            span = Span(
                name=name,
                span_id=next(self._ids),
                parent_id=parent.span_id if parent else None,
                t_start=time.perf_counter(),
                attrs=dict(attrs),
            )
            if parent is not None:
                parent.children.append(span)
            else:
                if threading.current_thread() is not threading.main_thread():
                    span.attrs.setdefault("thread", threading.current_thread().name)
                self.roots.append(span)
        stack.append(span)
        try:
            yield span
        finally:
            span.t_end = time.perf_counter()
            stack.pop()

    def spans(self) -> list[Span]:
        """Every recorded span (all roots, depth-first)."""
        with self._lock:
            roots = list(self.roots)
        return [s for root in roots for s in root.walk()]

    def find(self, name: str) -> Span | None:
        """First span with ``name`` across all roots."""
        for span in self.spans():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list[Span]:
        return [s for s in self.spans() if s.name == name]

    def render(self) -> str:
        """All root trees, in recording order."""
        with self._lock:
            roots = list(self.roots)
        return "\n".join(root.render() for root in roots)

    def clear(self) -> None:
        with self._lock:
            self.roots = []
