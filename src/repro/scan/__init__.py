"""Segmented scan/sum primitives.

``reference`` holds the sequential ground truth, ``tree`` the classic
log-depth parallel scan the paper replaces, and ``matrix_scan`` the
matrix-based approach the yaSpMV kernels customize.  ``flags`` converts
between BCCOO bit flags (row stops) and classic start flags.
"""

from .batched import SegmentPlan, batched_segment_sums, make_segment_plan
from .blelloch import BlellochStats, blelloch_segmented_scan
from .flags import segment_ids, starts_from_stops, stops_from_starts
from .matrix_scan import MatrixScanStats, matrix_segmented_scan
from .reference import (
    segment_sums_by_stops,
    segmented_scan_exclusive,
    segmented_scan_inclusive,
    segmented_sum,
)
from .tree import TreeScanStats, tree_segmented_scan

__all__ = [
    "BlellochStats",
    "SegmentPlan",
    "batched_segment_sums",
    "blelloch_segmented_scan",
    "make_segment_plan",
    "segment_ids",
    "starts_from_stops",
    "stops_from_starts",
    "MatrixScanStats",
    "matrix_segmented_scan",
    "segment_sums_by_stops",
    "segmented_scan_exclusive",
    "segmented_scan_inclusive",
    "segmented_sum",
    "TreeScanStats",
    "tree_segmented_scan",
]
