"""Batched segmented sums for the fast execution backend.

:func:`repro.scan.reference.segmented_sum` accumulates with
``np.add.at`` -- an in-order element loop, the ground truth every kernel
is pinned against, but paying Python-level ufunc dispatch per inner
buffer makes it the hot path's dominant cost.  ``np.bincount`` with a
``weights`` array performs the *same in-order accumulation* (one C loop
over the elements, adding each weight into its bin in element order), so
its output is **bit-identical** to ``np.add.at`` -- same additions, same
order, same rounding -- at a fraction of the cost.

Lanes (the ``h`` intra-block rows, or ``h * k`` for SpMM) ride along two
ways, both preserving the per-``(bin, lane)`` accumulation order that
``np.add.at`` over 2-D values produces:

* **combined ids** (:func:`batched_segment_sums` with a 2-D ``flat_ids``
  plan): element ``i`` lane ``l`` maps to flat bin ``ids[i] * lanes + l``,
  one ``bincount`` over ``values.ravel()``;
* **per-lane sweep** (wide SpMM): one ``bincount`` per lane over the
  lane's column.  ``np.add.at`` interleaves lanes per element, but every
  ``(bin, lane)`` cell still sees its contributions in element order, so
  the per-lane sweep lands on identical bits.

The dividing line is allocation: combined ids need an ``n * lanes``
int64 index array, fine for ``h <= 4`` but wasteful for a 32-wide SpMM
batch.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from .flags import segment_ids, starts_from_stops

__all__ = ["SegmentPlan", "make_segment_plan", "batched_segment_sums"]

#: Widest lane count the combined-id form allocates flat indices for;
#: past it the per-lane sweep wins on memory without losing bit-identity.
_FLAT_LANE_CAP = 8


class SegmentPlan:
    """Precomputed segment structure for repeated batched sums.

    Holds everything :func:`batched_segment_sums` needs that depends only
    on the stop flags -- the per-element segment ids, the segment count,
    and how many of those segments are *closed* (end with a stop; the
    trailing open run is bit-flag padding and is discarded, exactly like
    :func:`~repro.scan.reference.segment_sums_by_stops`).
    """

    __slots__ = ("ids", "n_segments", "n_closed", "_flat_ids")

    def __init__(self, stops: np.ndarray):
        stops = np.asarray(stops, dtype=bool)
        if stops.ndim != 1:
            raise ReproError(f"stops must be 1-D, got shape {stops.shape}")
        if stops.shape[0] == 0:
            self.ids = np.empty(0, dtype=np.int64)
            self.n_segments = 0
        else:
            self.ids = segment_ids(starts_from_stops(stops))
            self.n_segments = int(self.ids[-1]) + 1
        self.n_closed = int(np.count_nonzero(stops))
        #: lane count -> combined flat ids, built lazily per batch width.
        self._flat_ids: dict[int, np.ndarray] = {}

    def flat_ids(self, lanes: int) -> np.ndarray:
        """Combined ``(n * lanes,)`` bin ids mapping lane ``l`` of element
        ``i`` to bin ``ids[i] * lanes + l``."""
        cached = self._flat_ids.get(lanes)
        if cached is None:
            cached = (
                self.ids[:, None] * lanes + np.arange(lanes, dtype=np.int64)
            ).ravel()
            self._flat_ids[lanes] = cached
        return cached


def make_segment_plan(stops: np.ndarray) -> SegmentPlan:
    """Build (and cacheably reuse) the segment structure for ``stops``."""
    return SegmentPlan(stops)


def batched_segment_sums(values: np.ndarray, plan: SegmentPlan) -> np.ndarray:
    """Per-*closed*-segment totals, bit-identical to
    :func:`~repro.scan.reference.segment_sums_by_stops` on the stop flags
    the ``plan`` was built from.

    ``values`` is ``(n,)`` or ``(n, lanes)`` float64.  Returns ``(n_closed,)``
    or ``(n_closed, lanes)`` -- every element the exact bits the
    ``np.add.at`` reference produces, because ``np.bincount`` adds the
    same weights into the same bins in the same element order.
    """
    values = np.asarray(values, dtype=np.float64)
    n = values.shape[0]
    if n != plan.ids.shape[0]:
        raise ReproError(
            f"values length {n} != plan length {plan.ids.shape[0]}"
        )
    nseg = plan.n_segments
    if values.ndim == 1:
        if n == 0:
            return values.copy()
        sums = np.bincount(plan.ids, weights=values, minlength=nseg)
        return sums[: plan.n_closed]
    lanes = int(np.prod(values.shape[1:]))
    flat_vals = values.reshape(n, lanes)
    if n == 0 or lanes == 0:
        return np.zeros((plan.n_closed,) + values.shape[1:], dtype=np.float64)
    if lanes <= _FLAT_LANE_CAP:
        sums = np.bincount(
            plan.flat_ids(lanes),
            weights=flat_vals.ravel(),
            minlength=nseg * lanes,
        ).reshape(nseg, lanes)
    else:
        sums = np.empty((nseg, lanes), dtype=np.float64)
        for lane in range(lanes):
            sums[:, lane] = np.bincount(
                plan.ids,
                weights=np.ascontiguousarray(flat_vals[:, lane]),
                minlength=nseg,
            )
    out = sums[: plan.n_closed]
    return out.reshape((out.shape[0],) + values.shape[1:])
