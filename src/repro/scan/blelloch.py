"""Work-efficient (Blelloch) segmented scan -- the CUDPP-style baseline.

The paper's related work distinguishes two tree-scan families: the
log-stepping network in :mod:`repro.scan.tree` (Hillis-Steele:
``n log n`` work, ``log n`` steps) and the *work-efficient*
up-sweep/down-sweep scan of Blelloch [5] as implemented for segments by
Sengupta et al. [18] and shipped in CUDPP [9] (``O(n)`` work,
``2 log n`` barrier stages).  CUDPP's segmented-scan SpMV is the "tree
based scan algorithm, which has been shown to be inefficient" that
section 7 contrasts against.

This is the exact algorithm of Sengupta, Harris, Zhang & Owens (Graphics
Hardware 2007), over a power-of-two padded Schwartz tree:

up-sweep, for ``d = 1, 2, 4, ...``::

    if not f[bi]: data[bi] += data[ai]
    f[bi] |= f[ai]

down-sweep (after ``data[last] = 0``), for ``d = m/2, ..., 1``::

    t = data[ai]; data[ai] = data[bi]
    data[bi] = 0        if orig_f[ai + 1]
             = t        elif f[ai]         (up-swept flags, then cleared)
             = t + data[bi] otherwise
    f[ai] = 0

with ``ai = k*2d + d - 1`` and ``bi = ai + d``.  The native result is
the *exclusive* segmented scan; the inclusive form adds the input back.

:class:`BlellochStats` mirrors :class:`~repro.scan.tree.TreeScanStats`:
half the total work of Hillis-Steele but twice the stages, with lane
utilization collapsing geometrically toward the tree root -- the
load-imbalance signature the paper's section 3.1 criticizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError

__all__ = ["BlellochStats", "blelloch_segmented_scan"]


@dataclass
class BlellochStats:
    """Cost accounting of one work-efficient segmented scan.

    ``steps`` counts barrier-separated stages (up + down sweeps),
    ``element_ops`` the combine operations actually performed, and
    ``element_slots`` the lane slots scheduled: each stage dispatches a
    half-array wave regardless of how few pairs are active at its depth.
    """

    n: int
    steps: int
    element_ops: int
    element_slots: int
    barriers: int

    @property
    def idle_fraction(self) -> float:
        if self.element_slots == 0:
            return 0.0
        return 1.0 - self.element_ops / self.element_slots


def blelloch_segmented_scan(
    values: np.ndarray, start_flags: np.ndarray
) -> tuple[np.ndarray, BlellochStats]:
    """Inclusive segmented scan via up-sweep / down-sweep.

    Returns ``(result, stats)``; ``values`` may be 1-D or ``(n, lanes)``.
    """
    v_in = np.asarray(values, dtype=np.float64)
    f_in = np.asarray(start_flags, dtype=bool)
    if f_in.ndim != 1:
        raise ReproError(f"start_flags must be 1-D, got shape {f_in.shape}")
    n = f_in.shape[0]
    if v_in.shape[0] != n:
        raise ReproError(f"values length {v_in.shape[0]} != flags length {n}")
    if n == 0:
        return v_in.copy(), BlellochStats(0, 0, 0, 0, 0)

    m = 1 << int(np.ceil(np.log2(n))) if n > 1 else 1
    lane_shape = v_in.shape[1:]

    v = np.zeros((m,) + lane_shape, dtype=np.float64)
    v[:n] = v_in
    f = np.zeros(m, dtype=bool)
    f[:n] = f_in
    if m > n:
        # Wall off the padding as its own segment.
        f[n] = True
    orig_f = f.copy()

    def lanes(mask: np.ndarray):
        """Broadcast a boolean pair-mask over the lane axes."""
        if lane_shape:
            return mask.reshape(mask.shape + (1,) * len(lane_shape))
        return mask

    steps = ops = slots = 0

    # ---- up-sweep (segmented reduce).
    d = 1
    while d < m:
        ai = np.arange(d - 1, m - d, 2 * d)
        bi = ai + d
        active = ~f[bi]
        v[bi] = np.where(lanes(active), v[ai] + v[bi], v[bi])
        f[bi] |= f[ai]
        ops += int(active.sum())
        slots += m // 2
        steps += 1
        d <<= 1

    # ---- down-sweep (exclusive propagation).
    v[m - 1] = 0.0
    d = m >> 1
    while d >= 1:
        ai = np.arange(d - 1, m - d, 2 * d)
        bi = ai + d
        t = v[ai].copy()
        v[ai] = v[bi]
        case_zero = orig_f[ai + 1]
        case_keep = f[ai] & ~case_zero
        new_bi = t + v[bi]
        new_bi = np.where(lanes(case_keep), t, new_bi)
        new_bi = np.where(lanes(case_zero), 0.0, new_bi)
        v[bi] = new_bi
        f[ai] = False
        ops += int(ai.size)
        slots += m // 2
        steps += 1
        d >>= 1

    inclusive = v[:n] + v_in
    stats = BlellochStats(
        n=n,
        steps=steps,
        element_ops=ops,
        element_slots=slots,
        barriers=max(steps - 1, 0),
    )
    return inclusive, stats
