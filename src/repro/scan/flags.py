"""Flag conventions for segmented scans.

Two equivalent encodings of segment structure appear in the paper:

* **bit flags** (BCCOO's native form): ``0`` marks the *last* element of a
  segment (a "row stop"); everything else is ``1``.  We manipulate these
  as a boolean ``stops`` mask (True = stop).
* **start flags** (classic segmented-scan form, Figure 7): True marks the
  *first* element of a segment.

The paper keeps bit flags through the whole pipeline because "it is
straightforward to tell whether a segment ends from the bit flags" --
finding a segment end from start flags requires looking ahead (section
3.2.1).  The converters here are used by the baselines and by tests that
cross-check both encodings.

Convention for partial segments: a leading run with no preceding stop is
assumed to start at index 0, and a trailing run with no stop is an *open*
segment (padding semantics).
"""

from __future__ import annotations

import numpy as np

from ..util import check_1d

__all__ = ["starts_from_stops", "stops_from_starts", "segment_ids"]


def starts_from_stops(stops: np.ndarray) -> np.ndarray:
    """Start-flag mask from a stop-flag mask.

    Element 0 always starts a segment; element ``i > 0`` starts one when
    element ``i - 1`` was a stop.

    >>> starts_from_stops(np.array([0, 0, 1, 0, 1], dtype=bool)).astype(int)
    array([1, 0, 0, 1, 0])
    """
    stops = check_1d("stops", stops).astype(bool)
    starts = np.empty_like(stops)
    if stops.shape[0] == 0:
        return starts
    starts[0] = True
    starts[1:] = stops[:-1]
    return starts


def stops_from_starts(starts: np.ndarray) -> np.ndarray:
    """Stop-flag mask from a start-flag mask.

    Element ``i`` is a stop when element ``i + 1`` starts a new segment;
    the final element closes the last segment (the inverse convention of
    :func:`starts_from_stops` modulo the open trailing segment, which
    start flags cannot express).
    """
    starts = check_1d("starts", starts).astype(bool)
    stops = np.empty_like(starts)
    if starts.shape[0] == 0:
        return stops
    stops[:-1] = starts[1:]
    stops[-1] = True
    return stops


def segment_ids(starts: np.ndarray) -> np.ndarray:
    """0-based segment index of every element, from start flags.

    Elements before the first start (possible only when ``starts[0]`` is
    False, i.e. a segment continued from a previous chunk) form their own
    leading segment with id 0; flagged segments then count from 1.  With
    ``starts[0]`` set, ids are simply 0-based.
    """
    starts = check_1d("starts", starts).astype(np.int64)
    if starts.shape[0] == 0:
        return starts
    # With starts[0] set, cumsum begins at 1, so shift to 0-based; with a
    # leading continued run, the run keeps id 0 and the first flagged
    # segment becomes id 1.
    return np.cumsum(starts) - int(starts[0])
