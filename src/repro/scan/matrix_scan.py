"""Matrix-based segmented scan (Dotsenko et al. [8], customized in §3.2).

The input is viewed as a ``(threads, tile)`` matrix.  Each thread scans
its tile *sequentially* (perfect balance, no barriers), every thread's
last partial sum enters a small ``last_partial_sums`` array, a parallel
segmented scan runs over those ``threads`` values, and each thread whose
tile's leading run continues a previous tile adds the scanned carry to
the elements before its first segment start.

The implementation is honest about the dataflow -- each phase below is
the vectorized equivalent of what all threads do concurrently -- and the
numerical output is validated against :mod:`repro.scan.reference` in the
test suite.  :class:`MatrixScanStats` captures the cost structure the
timing model consumes: sequential work per thread, the (much smaller)
parallel scan, and whether the parallel scan could be skipped entirely
(the paper's §2.4 "quick check": every tile contains a row stop =>
every segment in ``last_partial_sums`` has length 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError

from .reference import segmented_scan_inclusive
from .tree import TreeScanStats, tree_segmented_scan

__all__ = ["MatrixScanStats", "matrix_segmented_scan"]


@dataclass
class MatrixScanStats:
    """Cost accounting of one matrix-based segmented scan.

    Attributes
    ----------
    threads:
        Number of (virtual) threads = rows of the matrix view.
    tile:
        Elements scanned sequentially per thread.
    sequential_ops:
        Adds performed in the sequential phase (= n, perfectly balanced:
        every thread does exactly ``tile`` of them).
    parallel_scan:
        Stats of the scan over ``last_partial_sums`` (tree scan over
        ``threads`` elements), or ``None`` when skipped.
    parallel_scan_skipped:
        True when the §2.4 early check fired (every tile had a start).
    carry_fixups:
        Threads that had to apply a cross-tile carry.
    """

    threads: int
    tile: int
    sequential_ops: int
    parallel_scan: TreeScanStats | None
    parallel_scan_skipped: bool
    carry_fixups: int


def matrix_segmented_scan(
    values: np.ndarray,
    start_flags: np.ndarray,
    num_threads: int,
) -> tuple[np.ndarray, MatrixScanStats]:
    """Inclusive segmented scan through the matrix-based dataflow.

    ``len(values)`` must be a multiple of ``num_threads``; callers pad
    (BCCOO pads with zero blocks and continue flags, which leave every
    segment sum unchanged).
    """
    v = np.asarray(values, dtype=np.float64)
    starts = np.asarray(start_flags, dtype=bool)
    if starts.ndim != 1:
        raise ReproError(f"start_flags must be 1-D, got shape {starts.shape}")
    n = starts.shape[0]
    if v.shape[0] != n:
        raise ReproError(f"values length {v.shape[0]} != flags length {n}")
    if num_threads < 1:
        raise ReproError(f"num_threads must be >= 1, got {num_threads}")
    if n % num_threads != 0:
        raise ReproError(
            f"length {n} is not a multiple of num_threads {num_threads}; pad first"
        )
    tile = n // num_threads
    if n == 0:
        return v.copy(), MatrixScanStats(num_threads, 0, 0, None, True, 0)

    # ---- Phase 1: per-thread sequential segmented scan of each tile.
    # Equivalent formulation: force a segment break at every tile start so
    # the 1-D reference scan computes all tiles' local scans at once.
    local_starts = starts.copy()
    local_starts[::tile] = True
    local = segmented_scan_inclusive(v, local_starts)

    tiles_starts = starts.reshape(num_threads, tile)
    tile_has_start = tiles_starts.any(axis=1)
    last_partial = local[tile - 1 :: tile].copy()  # (threads,) [+ lanes]

    # ---- Phase 2: parallel segmented scan over last_partial_sums.
    # Segment starts in that array: thread t's last partial starts a new
    # segment iff its tile contains a segment start (§3.2.2: "each thread
    # checks whether there is a row stop in its thread-level tile").
    lp_starts = tile_has_start.copy()
    lp_starts[0] = True
    all_have_starts = bool(tile_has_start.all())
    if all_have_starts:
        # §2.4 early check: every segment in last_partial_sums has length
        # one; the scan is the identity and is skipped.
        scanned = last_partial
        pstats: TreeScanStats | None = None
    else:
        scanned, pstats = tree_segmented_scan(last_partial, lp_starts)

    # ---- Phase 3: carry fixup.  Thread t > 0 whose tile's leading run
    # continues from tile t-1 adds scanned[t-1] to its elements before the
    # first local start.
    out = local.copy()
    needs_carry = np.zeros(num_threads, dtype=bool)
    needs_carry[1:] = True  # candidate: every non-first thread
    first_start = np.where(
        tile_has_start, tiles_starts.argmax(axis=1), tile
    )  # position of first true start; `tile` = none
    carries = 0
    out2d = out.reshape((num_threads, tile) + out.shape[1:])
    for t in range(1, num_threads):
        fs = int(first_start[t])
        if fs == 0:
            continue  # tile begins a new segment immediately; no carry
        out2d[t, :fs] += scanned[t - 1]
        carries += 1

    stats = MatrixScanStats(
        threads=num_threads,
        tile=tile,
        sequential_ops=n,
        parallel_scan=pstats,
        parallel_scan_skipped=all_have_starts,
        carry_fixups=carries,
    )
    return out2d.reshape(out.shape), stats
