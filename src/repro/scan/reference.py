"""Sequential (host) reference implementations of segmented primitives.

These are the ground truth every parallel variant (tree-based,
matrix-based, and the yaSpMV kernels) is validated against.  All are
fully vectorized; the inclusive segmented scan uses the standard
"cumsum minus segment-start offset" trick.

Values may be 1-D or 2-D ``(n, lanes)`` -- the lane axis carries the
``h`` intra-block rows of a blocked format through the same scan.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from .flags import segment_ids, starts_from_stops

__all__ = [
    "segmented_scan_inclusive",
    "segmented_scan_exclusive",
    "segmented_sum",
    "segment_sums_by_stops",
]


def _check(values: np.ndarray, flags: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    values = np.asarray(values, dtype=np.float64)
    flags = np.asarray(flags, dtype=bool)
    if flags.ndim != 1:
        raise ReproError(f"flags must be 1-D, got shape {flags.shape}")
    if values.shape[0] != flags.shape[0]:
        raise ReproError(
            f"values length {values.shape[0]} != flags length {flags.shape[0]}"
        )
    return values, flags


def segmented_scan_inclusive(
    values: np.ndarray, start_flags: np.ndarray
) -> np.ndarray:
    """Inclusive segmented prefix sum (Figure 7's 'Result' array).

    ``start_flags[i]`` True marks the first element of a segment; a
    leading unflagged run is treated as segment 0 (continuation).
    """
    values, starts = _check(values, start_flags)
    n = values.shape[0]
    if n == 0:
        return values.copy()
    cums = np.cumsum(values, axis=0)
    ids = segment_ids(starts)
    start_idx = np.flatnonzero(starts)
    n_ids = int(ids[-1]) + 1
    # offset[k] = cumulative total just before segment k begins.
    offsets = np.zeros((n_ids,) + values.shape[1:], dtype=np.float64)
    if starts[0]:
        # segment k starts at start_idx[k]
        nonzero_start = start_idx[start_idx > 0]
        offsets[ids[nonzero_start]] = cums[nonzero_start - 1]
    else:
        # leading run is segment 0 with offset 0; flagged segment k >= 1
        # starts at start_idx[k-1].
        offsets[ids[start_idx]] = cums[start_idx - 1]
    return cums - offsets[ids]


def segmented_scan_exclusive(
    values: np.ndarray, start_flags: np.ndarray
) -> np.ndarray:
    """Exclusive segmented prefix sum (identity 0 at every segment start)."""
    inc = segmented_scan_inclusive(values, start_flags)
    return inc - np.asarray(values, dtype=np.float64)


def segmented_sum(values: np.ndarray, start_flags: np.ndarray) -> np.ndarray:
    """Per-segment totals, one per segment in order.

    A leading continuation run counts as segment 0.  This is the
    segmented *reduction* the paper notes suffices for SpMV ("the last
    sum of each segment is sufficient").
    """
    values, starts = _check(values, start_flags)
    if values.shape[0] == 0:
        return values.copy()
    ids = segment_ids(starts)
    n_ids = int(ids[-1]) + 1
    out = np.zeros((n_ids,) + values.shape[1:], dtype=np.float64)
    np.add.at(out, ids, values)
    return out


def segment_sums_by_stops(values: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Per-*closed*-segment totals from BCCOO-style stop flags.

    Only segments that actually end with a stop produce an output; a
    trailing open run (bit-flag padding) is discarded -- exactly what the
    SpMV kernels write back.  Output ``k`` is the dot-product result for
    stop ordinal ``k``.
    """
    values = np.asarray(values, dtype=np.float64)
    stops = np.asarray(stops, dtype=bool)
    if values.shape[0] != stops.shape[0]:
        raise ReproError(
            f"values length {values.shape[0]} != stops length {stops.shape[0]}"
        )
    sums = segmented_sum(values, starts_from_stops(stops))
    n_closed = int(np.count_nonzero(stops))
    return sums[:n_closed]
