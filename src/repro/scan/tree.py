"""Tree-based parallel segmented scan (the baseline the paper replaces).

This models the scan underlying CUDPP/CUSP-era segmented SpMV
(Blelloch [5], Sengupta et al. [18]): a log-depth network of combine
steps executed in lockstep.  We implement the Hillis-Steele segmented
variant -- at step ``d`` every element ``i >= d`` whose accumulated flag
is clear adds element ``i - d`` and ORs its flag:

    ``v[i] += v[i-d]  if no segment start lies in (i-d, i]``

The numerical result equals the sequential reference; what the baseline
*costs* is captured in :class:`TreeScanStats`: ``ceil(log2 n)`` lockstep
stages, each touching all ``n`` elements with a workgroup barrier, with a
growing fraction of threads idle -- the load-imbalance and
synchronization overheads sections 3.1 and 7 attribute to tree scans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError

__all__ = ["TreeScanStats", "tree_segmented_scan"]


@dataclass
class TreeScanStats:
    """Cost accounting of one tree-based segmented scan.

    Attributes
    ----------
    n:
        Scanned length.
    steps:
        Lockstep stages executed (``ceil(log2 n)``).
    element_ops:
        Total add operations actually performed (active lanes only).
    element_slots:
        Total lane slots scheduled (``n * steps``); the gap to
        ``element_ops`` is idle SIMD lanes.
    barriers:
        Workgroup barriers between stages.
    """

    n: int
    steps: int
    element_ops: int
    element_slots: int
    barriers: int

    @property
    def idle_fraction(self) -> float:
        """Fraction of scheduled lanes that did no useful work."""
        if self.element_slots == 0:
            return 0.0
        return 1.0 - self.element_ops / self.element_slots


def tree_segmented_scan(
    values: np.ndarray, start_flags: np.ndarray
) -> tuple[np.ndarray, TreeScanStats]:
    """Inclusive segmented scan via the lockstep log-stepping network.

    Returns ``(result, stats)``.  ``values`` may be 1-D or ``(n, lanes)``.
    """
    v = np.asarray(values, dtype=np.float64).copy()
    f = np.asarray(start_flags, dtype=bool).copy()
    if f.ndim != 1:
        raise ReproError(f"start_flags must be 1-D, got shape {f.shape}")
    n = f.shape[0]
    if v.shape[0] != n:
        raise ReproError(f"values length {v.shape[0]} != flags length {n}")

    steps = 0
    ops = 0
    d = 1
    while d < n:
        active = np.zeros(n, dtype=bool)
        active[d:] = ~f[d:]
        idx = np.flatnonzero(active)
        if idx.size:
            v[idx] += v[idx - d]
            f[idx] |= f[idx - d]
        ops += int(idx.size)
        steps += 1
        d <<= 1

    stats = TreeScanStats(
        n=n,
        steps=steps,
        element_ops=ops,
        element_slots=n * steps,
        barriers=max(steps - 1, 0),
    )
    return v, stats
