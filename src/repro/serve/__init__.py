"""repro.serve -- the concurrent serving layer.

A thread-safe front-end that turns the single-caller
:class:`~repro.SpMVEngine` into a traffic-ready service:
:class:`SpMVServer` micro-batches concurrent single-vector requests for
the same matrix into one SpMM dispatch, keeps prepared (tuned +
converted) matrices in a footprint-budgeted LRU
:class:`~repro.serve.cache.PreparedCache`, and applies admission
control (bounded queue, per-request deadlines, retry/circuit-breaker
containment, typed :class:`~repro.errors.ServerOverloadedError`
shedding).  See ``docs/serving.md``.

:class:`ServeFabric` scales the layer out: it consistent-hashes the
value-aware serve key across N shard servers with per-shard health
tracking (:mod:`repro.serve.health`), circuit-breaker ejection and
readmission, deterministic failover under the retry/deadline budget,
and per-tenant quotas with weighted-fair dequeue.  The differential
chaos drill (:mod:`repro.serve.chaos`, ``repro chaos``) pins the
fabric's outputs bit-identical to a single pristine server while a
seeded fault plan kills shards mid-flight.

Batched serving is bit-identical to sequential ``engine.multiply`` per
vector -- the differential test harness pins this across formats,
scan strategies and injected faults.
"""

from .cache import CacheEntry, PreparedCache, prepared_footprint_bytes
from .chaos import ChaosReport, chaos_plan, run_chaos_drill
from .fabric import FabricConfig, ServeFabric, ShardRouter, TenantPolicy
from .health import HealthPolicy, ShardHealth
from .replay import ReplayReport, ReplaySpec, load_requests, run_replay
from .server import (
    ServeConfig,
    ServeFuture,
    ServeResponse,
    SpMVServer,
    serve_key,
)
from .supervisor import (
    Autoscaler,
    AutoscalePolicy,
    ShardSupervisor,
    SupervisorConfig,
)
from .workers import ProcessShard, WorkerConfig

__all__ = [
    "Autoscaler",
    "AutoscalePolicy",
    "ProcessShard",
    "ShardSupervisor",
    "SupervisorConfig",
    "WorkerConfig",
    "CacheEntry",
    "ChaosReport",
    "chaos_plan",
    "run_chaos_drill",
    "FabricConfig",
    "HealthPolicy",
    "PreparedCache",
    "prepared_footprint_bytes",
    "ReplayReport",
    "ReplaySpec",
    "ServeFabric",
    "ShardHealth",
    "ShardRouter",
    "TenantPolicy",
    "load_requests",
    "run_replay",
    "ServeConfig",
    "ServeFuture",
    "ServeResponse",
    "serve_key",
    "SpMVServer",
]
