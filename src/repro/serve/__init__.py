"""repro.serve -- the concurrent serving layer.

A thread-safe front-end that turns the single-caller
:class:`~repro.SpMVEngine` into a traffic-ready service:
:class:`SpMVServer` micro-batches concurrent single-vector requests for
the same matrix into one SpMM dispatch, keeps prepared (tuned +
converted) matrices in a footprint-budgeted LRU
:class:`~repro.serve.cache.PreparedCache`, and applies admission
control (bounded queue, per-request deadlines, retry/circuit-breaker
containment, typed :class:`~repro.errors.ServerOverloadedError`
shedding).  See ``docs/serving.md``.

Batched serving is bit-identical to sequential ``engine.multiply`` per
vector -- the differential test harness pins this across formats,
scan strategies and injected faults.
"""

from .cache import CacheEntry, PreparedCache, prepared_footprint_bytes
from .replay import ReplayReport, ReplaySpec, load_requests, run_replay
from .server import ServeConfig, ServeFuture, ServeResponse, SpMVServer

__all__ = [
    "CacheEntry",
    "PreparedCache",
    "prepared_footprint_bytes",
    "ReplayReport",
    "ReplaySpec",
    "load_requests",
    "run_replay",
    "ServeConfig",
    "ServeFuture",
    "ServeResponse",
    "SpMVServer",
]
