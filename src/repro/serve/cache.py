"""Footprint-budgeted cache of prepared (tuned + converted) matrices.

Preparing a matrix is the expensive half of serving: the auto-tuner
search plus the BCCOO/BCCOO+ conversion dwarf a single multiply by
orders of magnitude (the CMRS observation: format-conversion cost must
be cached, not repaid per call).  :class:`PreparedCache` keeps
:class:`~repro.core.engine.PreparedMatrix` instances keyed by the
matrix's structural fingerprint *plus a hash of its values* (a prepared
entry embeds the values, so same-structure/different-values matrices
must not share one) and evicts least-recently-used entries when the
total *byte footprint* exceeds a budget.

The byte accounting reuses the format layer's own model: each entry is
charged ``fmt.footprint_bytes()`` (the :mod:`repro.formats.footprint`
accounting the auto-tuner prunes with) plus the retained CSR operand's
actual array bytes, so the budget maps directly onto device/host memory
a production deployment would spend.  Buffers living in a shared-memory
arena (:meth:`PreparedMatrix.share`) are resident once system-wide and
are therefore *reported* (``stats()["shared_bytes"]``) but not charged
against the budget -- see :func:`prepared_footprint_split`.

Thread-safe; hit/miss/eviction counters are kept both on the instance
(for tests and reports) and mirrored to the ambient observer as
``serve.cache.*`` metrics by the server.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from ..core.engine import PreparedMatrix

__all__ = [
    "PreparedCache",
    "prepared_footprint_bytes",
    "prepared_footprint_split",
    "CacheEntry",
]


def prepared_footprint_split(prepared: PreparedMatrix) -> dict:
    """Owned/shared/total byte accounting for one prepared matrix.

    ``total`` is the classic footprint: the converted format pays its
    :meth:`footprint_bytes` (the same accounting
    :mod:`repro.formats.footprint` uses for Table 3 and the tuner's
    block pruning) and the retained CSR source pays its actual array
    sizes (``data``/``indices``/``indptr``); a lazily-decoded entry
    (``csr is None``) counts the format alone.

    ``shared`` is the portion living in a
    :class:`~repro.core.shm.SharedArena` segment
    (:meth:`PreparedMatrix.share`): those pages exist **once**
    system-wide no matter how many caches or processes map them, so a
    budget that charged them per entry would double-count.  ``owned``
    (= ``total - shared``, floored at zero) is what an LRU budget
    should charge.
    """
    total = int(prepared.fmt.footprint_bytes())
    csr = prepared.csr
    if csr is not None:
        total += int(csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes)
    shared = int(prepared.arena.nbytes) if prepared.shared else 0
    return {"owned": max(total - shared, 0), "shared": shared, "total": total}


def prepared_footprint_bytes(prepared: PreparedMatrix) -> int:
    """Bytes one cached entry is charged for: the *owned* portion of
    :func:`prepared_footprint_split` -- shared-memory buffers are
    resident once system-wide and must not be charged per entry."""
    return prepared_footprint_split(prepared)["owned"]


@dataclass
class CacheEntry:
    """One cached prepared matrix plus its charged footprint."""

    key: str
    prepared: PreparedMatrix
    #: Owned bytes -- what the LRU budget charges.
    nbytes: int
    #: Bytes resident in a shared-memory arena (reported, not charged).
    shared_nbytes: int = 0


class PreparedCache:
    """LRU cache of prepared matrices bounded by a byte budget.

    Parameters
    ----------
    budget_bytes:
        Eviction threshold for the summed entry footprints.  ``None``
        disables eviction (unbounded).  A single entry larger than the
        whole budget is still admitted -- evicting it would make every
        request re-tune, the pathological thrash case -- so the bound is
        "total <= budget whenever more than one entry is resident".
    """

    def __init__(self, budget_bytes: int | None = None):
        if budget_bytes is not None and budget_bytes < 0:
            from ..errors import ReproError

            raise ReproError(
                f"budget_bytes must be >= 0 or None, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.Lock()
        self.total_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def get(self, key: str) -> PreparedMatrix | None:
        """Look up ``key``; counts a hit or miss and refreshes recency."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.prepared

    def peek(self, key: str) -> PreparedMatrix | None:
        """Look up without touching recency or the hit/miss counters."""
        with self._lock:
            entry = self._entries.get(key)
            return None if entry is None else entry.prepared

    def put(self, key: str, prepared: PreparedMatrix) -> list[CacheEntry]:
        """Insert (or replace) ``key``; returns the entries evicted.

        Eviction walks the LRU order until the total footprint fits the
        budget again, never evicting the entry just inserted (see class
        docstring for the single-oversized-entry policy).
        """
        split = prepared_footprint_split(prepared)
        evicted: list[CacheEntry] = []
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self.total_bytes -= old.nbytes
            entry = CacheEntry(
                key=key,
                prepared=prepared,
                nbytes=split["owned"],
                shared_nbytes=split["shared"],
            )
            self._entries[key] = entry
            self.total_bytes += entry.nbytes
            if self.budget_bytes is not None:
                while self.total_bytes > self.budget_bytes and len(self._entries) > 1:
                    victim_key = next(iter(self._entries))
                    if victim_key == key:
                        # The new entry is the LRU head only when it is
                        # also the sole survivor candidate; never evict it.
                        break
                    victim = self._entries.pop(victim_key)
                    self.total_bytes -= victim.nbytes
                    self.evictions += 1
                    evicted.append(victim)
        return evicted

    def remove(self, key: str) -> bool:
        """Drop ``key`` if resident; returns whether anything was removed.

        Not counted as an eviction -- evictions are budget pressure;
        this is an explicit invalidation (the fabric drops a crashed
        shard's entries, a solver drops a matrix it finished with).
        """
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self.total_bytes -= entry.nbytes
            return True

    def keys(self) -> list[str]:
        """Resident keys, least recently used first."""
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.total_bytes = 0

    def stats(self) -> dict:
        """Counter snapshot (JSON-able)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "total_bytes": int(self.total_bytes),
                "shared_bytes": int(
                    sum(e.shared_nbytes for e in self._entries.values())
                ),
                "budget_bytes": self.budget_bytes,
                "hits": int(self.hits),
                "misses": int(self.misses),
                "evictions": int(self.evictions),
            }
