"""Differential chaos drills for the sharded serving fabric.

The fabric's contract is stronger than "stays up": a request that
survives shard death, slowness or corruption must return the exact
product a single pristine server would have computed -- SpMV is
deterministic, so resilience machinery has no license to change bits.
:func:`run_chaos_drill` enforces that the way the repo's differential
tests enforce kernel correctness:

1. run a replay workload (suite matrices, value refreshes, multiple
   tenants) through **one pristine** :class:`~repro.serve.SpMVServer`
   and record every ``y`` -- the golden outputs;
2. run the *same* workload through a :class:`~repro.serve.ServeFabric`
   while a seeded :class:`~repro.fault.FaultPlan` kills the busiest
   shard mid-flight (``serve.shard_crash``), injects latency
   (``serve.shard_slow``) and/or a shard whose dispatches are
   detected-corrupt;
3. diff: every fabric response must be **bit-identical**
   (``np.array_equal``) to its golden output, no request may be lost,
   and -- when a kill was planned -- ``fabric.failovers`` must be
   positive, proving the drill actually exercised failover rather than
   passing vacuously.

Everything is seeded (the plan, the workload vectors, the matrix
generators), so a failing drill replays identically under
``repro chaos --seed N``.
"""

from __future__ import annotations

import glob
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.engine import SpMVEngine
from ..errors import ValidationError
from ..fault.injection import FaultPlan, FaultSpec, fault_scope
from ..fault.retry import RetryPolicy
from ..matrices.suite import get_spec
from .fabric import ServeFabric
from .health import HealthPolicy
from .server import ServeConfig, SpMVServer
from .supervisor import AutoscalePolicy, SupervisorConfig
from .workers import WorkerConfig

__all__ = ["ChaosReport", "chaos_plan", "run_chaos_drill"]

#: Default drill workload: small, structurally diverse corner of Table 2
#: (a stencil, a banded FEM, a power-law) so the serve keys spread over
#: the hash ring instead of all landing on one shard.
DEFAULT_MATRICES = ("QCD", "FEM/Harbor", "Circuit", "Epidemiology")


class _CorruptEngine(SpMVEngine):
    """Engine of a corrupt shard: every dispatch is detected-corrupt.

    Models the interesting corruption case -- the one validation
    *catches*: the dispatch raises :class:`~repro.errors.
    ValidationError` exactly as the strict engine does when a kernel's
    output fails the reference check.  The fabric must eject the shard
    through its health window and replay elsewhere; silent wrong bits
    would instead show up as a drill mismatch.  ``prepare`` is left
    intact so the corruption surfaces mid-serve, not at cache-fill time.
    """

    def multiply(self, *args, **kwargs):
        raise ValidationError(
            "corrupt shard: kernel output failed the validation check"
        )

    def multiply_many(self, *args, **kwargs):
        raise ValidationError(
            "corrupt shard: kernel output failed the validation check"
        )


def chaos_plan(seed: int, *, kills: int = 1, slows: int = 0,
               slow_extra_s: float = 0.3, worker_kills: int = 0,
               worker_hangs: int = 0) -> FaultPlan:
    """The drill's seeded fault plan (every argument is a budget).

    ``kills`` crash whole shards (permanent); ``worker_kills`` and
    ``worker_hangs`` target out-of-process workers (real SIGKILLs and
    heartbeat silence -- recoverable through the supervisor).
    """
    specs = []
    if kills:
        specs.append(FaultSpec(
            site="serve.shard_crash", probability=1.0, count=kills,
        ))
    if slows:
        specs.append(FaultSpec(
            site="serve.shard_slow", probability=1.0, count=slows,
            fraction=slow_extra_s,
        ))
    if worker_kills:
        specs.append(FaultSpec(
            site="serve.worker_kill", probability=1.0, count=worker_kills,
        ))
    if worker_hangs:
        specs.append(FaultSpec(
            site="serve.worker_hang", probability=1.0, count=worker_hangs,
        ))
    return FaultPlan(specs, seed=seed)


@dataclass
class ChaosReport:
    """Outcome of one differential chaos drill (JSON-able)."""

    seed: int
    shards: int
    requests: int
    matched: int
    mismatched: list[int]
    golden_errors: list[tuple[int, str]]
    fabric_errors: list[tuple[int, str]]
    failovers: int
    shard_crashes: int
    ejections: int
    readmissions: int
    quota_rejections: int
    live_shards: int
    fault_events: list[str]
    require_failover: bool
    elapsed_s: float
    processes: bool = False
    autoscaled: bool = False
    worker_kills: int = 0
    worker_hangs: int = 0
    restarts: int = 0
    degraded: int = 0
    scale_ups: int = 0
    scale_downs: int = 0
    leaked_segments: list[str] = field(default_factory=list)
    fabric_stats: dict = field(default_factory=dict, repr=False)

    @property
    def passed(self) -> bool:
        """Bit-identical outputs, nothing lost, failover actually hit.

        Process drills add: every worker kill/hang answered by a
        supervisor restart (or a logged degrade), one full
        autoscale-up/down cycle when autoscaling was on, and zero
        shared-memory segments left behind after shutdown.
        """
        if self.mismatched or self.fabric_errors or self.golden_errors:
            return False
        if self.require_failover and self.failovers < 1:
            return False
        if self.processes:
            if (self.worker_kills + self.worker_hangs > 0
                    and self.restarts + self.degraded < 1):
                return False
            if self.autoscaled and (
                self.scale_ups < 1 or self.scale_downs < 1
            ):
                return False
            if self.leaked_segments:
                return False
        return True

    def to_dict(self) -> dict:
        return {
            "kind": "chaos_report",
            "passed": self.passed,
            "seed": self.seed,
            "shards": self.shards,
            "requests": self.requests,
            "matched": self.matched,
            "mismatched": list(self.mismatched),
            "golden_errors": [list(e) for e in self.golden_errors],
            "fabric_errors": [list(e) for e in self.fabric_errors],
            "failovers": self.failovers,
            "shard_crashes": self.shard_crashes,
            "ejections": self.ejections,
            "readmissions": self.readmissions,
            "quota_rejections": self.quota_rejections,
            "live_shards": self.live_shards,
            "fault_events": list(self.fault_events),
            "require_failover": self.require_failover,
            "elapsed_s": round(self.elapsed_s, 3),
            "processes": self.processes,
            "autoscaled": self.autoscaled,
            "worker_kills": self.worker_kills,
            "worker_hangs": self.worker_hangs,
            "restarts": self.restarts,
            "degraded": self.degraded,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "leaked_segments": list(self.leaked_segments),
        }

    def summary(self) -> str:
        lines = [
            f"chaos drill: seed={self.seed} shards={self.shards} "
            f"requests={self.requests}",
            f"  matched       : {self.matched}/{self.requests} bit-identical",
            f"  failovers     : {self.failovers}"
            f" (crashes={self.shard_crashes}, ejections={self.ejections},"
            f" readmissions={self.readmissions})",
            f"  live shards   : {self.live_shards}/{self.shards} at exit",
            f"  fault events  : "
            + (", ".join(self.fault_events) if self.fault_events else "none"),
        ]
        if self.processes:
            lines.append(
                f"  workers       : kills={self.worker_kills} "
                f"hangs={self.worker_hangs} restarts={self.restarts} "
                f"degraded={self.degraded}"
            )
            if self.autoscaled:
                lines.append(
                    f"  autoscale     : ups={self.scale_ups} "
                    f"downs={self.scale_downs}"
                )
            lines.append(
                "  shm leftovers : "
                + (", ".join(self.leaked_segments)
                   if self.leaked_segments else "none")
            )
        if self.mismatched:
            lines.append(f"  MISMATCHED    : requests {self.mismatched}")
        if self.fabric_errors:
            lines.append(f"  FABRIC ERRORS : {self.fabric_errors}")
        if self.golden_errors:
            lines.append(f"  GOLDEN ERRORS : {self.golden_errors}")
        lines.append(f"  verdict       : {'PASS' if self.passed else 'FAIL'}")
        return "\n".join(lines)


def _build_workload(
    matrices: tuple[str, ...],
    cap_nnz: int,
    requests_per_matrix: int,
    value_refreshes: int,
    tenants: tuple[str, ...],
    seed: int,
) -> list[tuple[object, np.ndarray, str]]:
    """Deterministic (matrix, x, tenant) triples; one serve key per
    (matrix, value refresh), so keys spread across the hash ring."""
    rng = np.random.default_rng(seed)
    work: list[tuple[object, np.ndarray, str]] = []
    i = 0
    for name in matrices:
        spec = get_spec(name)
        base = spec.load(scale=spec.scale_for_nnz(cap_nnz), seed=seed)
        for refresh in range(value_refreshes):
            if refresh == 0:
                A = base
            else:
                # The iterative-solver pattern: same structure, new
                # values -- a distinct value-aware serve key.
                A = base.copy()
                A.data = A.data * (1.0 + 0.25 * refresh)
            for _ in range(requests_per_matrix):
                x = rng.standard_normal(A.shape[1])
                work.append((A, x, tenants[i % len(tenants)]))
                i += 1
    return work


def run_chaos_drill(
    shards: int = 3,
    seed: int = 7,
    *,
    matrices: tuple[str, ...] = DEFAULT_MATRICES,
    cap_nnz: int = 4_000,
    requests_per_matrix: int = 3,
    value_refreshes: int = 2,
    tenants: tuple[str, ...] = ("alice", "bob"),
    kills: int = 1,
    slows: int = 0,
    corrupt_shards: int = 0,
    device: str = "gtx680",
    require_failover: bool | None = None,
    observer=None,
    backend: str | None = None,
    processes: bool = False,
    worker_hangs: int = 0,
    autoscale: bool | None = None,
    reply_timeout_s: float = 15.0,
) -> ChaosReport:
    """Run the differential drill; see the module docstring for the plot.

    ``kills``/``slows`` are fault budgets for the seeded plan;
    ``corrupt_shards`` makes that many shards (highest indices)
    detected-corrupt from the start.  ``require_failover`` defaults to
    "a kill or corruption was planned and more than one shard exists"
    -- the configurations in which a vacuous pass must be rejected.
    ``backend`` selects the fabric shards' execution backend; the
    pristine golden server always runs ``faithful``, so a drill under
    ``backend="fast"`` doubles as a bit-identity check on the
    vectorized path.

    ``processes=True`` runs every shard as a forked worker process and
    re-targets the ``kills`` budget at **real SIGKILLs**
    (``serve.worker_kill``): the shard is not lost, the supervisor must
    restart (or degrade) it, and the drill additionally asserts a full
    autoscale up/down cycle (``autoscale`` defaults to on in process
    mode) and that shutdown leaves zero shared-memory segments behind.
    Every distinct workload matrix is prepared once in the parent and
    primed fabric-wide through shared memory, so workers never re-tune
    -- which also keeps the drill's wall-clock bounded by
    ``reply_timeout_s`` only when a ``worker_hangs`` budget is given.
    """
    t0 = time.perf_counter()
    if require_failover is None:
        require_failover = shards > 1 and (kills > 0 or corrupt_shards > 0)
    if autoscale is None:
        autoscale = processes
    work = _build_workload(
        matrices, cap_nnz, requests_per_matrix, value_refreshes, tenants, seed
    )
    serve_config = ServeConfig(batch_window_s=0.0)

    # -- golden: one pristine server, threadless, no faults.  The
    # explicit engine keeps the golden run on the faithful interpreter
    # (the serve layer's *default* engine is the fast backend): the
    # arbiter must stay the paper-exact path regardless of defaults.
    golden: list[np.ndarray | None] = []
    golden_errors: list[tuple[int, str]] = []
    with SpMVServer(
        SpMVEngine(device=device), serve_config, start=False
    ) as pristine:
        futures = [pristine.submit(A, x) for A, x, _ in work]
        pristine.drain()
        for i, f in enumerate(futures):
            err = f.exception(timeout=0)
            if err is not None:
                golden_errors.append((i, type(err).__name__))
                golden.append(None)
            else:
                golden.append(f.result(timeout=0).y)

    # -- fabric: same workload under the seeded fault plan.
    corrupt = {shards - 1 - c for c in range(min(corrupt_shards, shards))}

    def factory(index: int) -> SpMVEngine:
        if index in corrupt:
            engine = _CorruptEngine(device=device)
        else:
            engine = SpMVEngine(device=device)
        if backend is not None:
            engine.backend = backend
        return engine

    if processes:
        # Real SIGKILLs instead of permanent shard crashes: the fleet
        # must *recover*, not just route around a hole.
        plan = chaos_plan(
            seed, kills=0, slows=slows,
            worker_kills=kills, worker_hangs=worker_hangs,
        )
    else:
        plan = chaos_plan(seed, kills=kills, slows=slows)
    pre_segments = set(glob.glob("/dev/shm/reproshm-*"))
    fabric = ServeFabric(
        shards,
        device=device,
        engine_factory=factory,
        serve_config=serve_config,
        health_policy=HealthPolicy(window=8, min_samples=2, max_error_rate=0.5),
        retry_policy=RetryPolicy(
            max_attempts=max(2, min(shards, 4)), base_delay_s=0.0
        ),
        observer=observer,
        start=False,
        processes=processes,
        worker_config=(
            WorkerConfig(reply_timeout_s=reply_timeout_s)
            if processes else None
        ),
        supervisor_config=(
            SupervisorConfig(restart_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.0
            ))
            if processes else None
        ),
        autoscale_policy=(
            AutoscalePolicy(
                min_shards=shards, max_shards=shards + 1,
                high_load=2.0, low_load=0.0,
                up_after=1, down_after=2, cooldown_rounds=1,
            )
            if autoscale else None
        ),
    )
    mismatched: list[int] = []
    fabric_errors: list[tuple[int, str]] = []
    matched = 0
    primed = []
    leaked: list[str] = []
    try:
        if processes:
            # Prepare each distinct matrix once in the parent and prime
            # it fabric-wide through shared memory: workers map the
            # segments instead of re-tuning, and supervisor restarts
            # re-warm from the same handles.
            prep_engine = SpMVEngine(device=device)
            if backend is not None:
                prep_engine.backend = backend
            seen: set[int] = set()
            for A, _, _ in work:
                if id(A) in seen:
                    continue
                seen.add(id(A))
                primed.append(prep_engine.prepare(A))
            for prepared in primed:
                fabric.prime(prepared)
        futures = [
            fabric.submit(A, x, tenant=tenant) for A, x, tenant in work
        ]
        with fault_scope(plan):
            fabric.drain()
            if processes or autoscale:
                # Idle housekeeping: heal any worker killed on the last
                # round, and let the scale-down hysteresis observe the
                # drained fleet.
                fabric.tick(rounds=8)
        for i, f in enumerate(futures):
            err = f.exception(timeout=0)
            if err is not None:
                fabric_errors.append((i, type(err).__name__))
            elif golden[i] is None:
                mismatched.append(i)  # fabric "succeeded" where golden failed
            elif np.array_equal(f.result(timeout=0).y, golden[i]):
                matched += 1
            else:
                mismatched.append(i)
        stats = fabric.stats()
    finally:
        fabric.close(drain=False)
        for prepared in primed:
            prepared.release_shared()
        if processes:
            leaked = sorted(
                set(glob.glob("/dev/shm/reproshm-*")) - pre_segments
            )

    supervisor_stats = stats.get("supervisor", {})
    autoscaler_stats = stats.get("autoscaler", {})
    return ChaosReport(
        seed=seed,
        shards=shards,
        requests=len(work),
        matched=matched,
        mismatched=mismatched,
        golden_errors=golden_errors,
        fabric_errors=fabric_errors,
        failovers=stats["failovers"],
        shard_crashes=stats["shard_crashes"],
        ejections=stats["ejections"],
        readmissions=stats["readmissions"],
        quota_rejections=stats["quota_rejections"],
        live_shards=stats["live_shards"],
        fault_events=[e.site for e in plan.events],
        require_failover=require_failover,
        elapsed_s=time.perf_counter() - t0,
        processes=processes,
        autoscaled=bool(autoscale),
        worker_kills=stats.get("worker_kills", 0),
        worker_hangs=stats.get("worker_hangs", 0),
        restarts=supervisor_stats.get("restarts", 0),
        degraded=supervisor_stats.get("degraded", 0),
        scale_ups=autoscaler_stats.get("scale_ups", 0),
        scale_downs=autoscaler_stats.get("scale_downs", 0),
        leaked_segments=leaked,
        fabric_stats=stats,
    )
