"""Sharded serving fabric: consistent hashing, failover, tenant fairness.

One :class:`~repro.serve.SpMVServer` saturates one simulated device.
:class:`ServeFabric` scales the serving layer out the way yaSpMV scales
a kernel across execution units: partition the key space, keep every
shard busy, and *repair* irregularity (here: shard death, slowness,
corruption) instead of letting it stall the pipeline -- the
optimistically-dispatch-then-repair philosophy of Liu & Vinter's
speculative segmented sum, applied to servers.

Architecture::

    submit(A, x, tenant=..) ──► per-tenant queues  (quota: QuotaExceededError)
                                      │
                        weighted-fair stride scheduler
                                      │
                 ShardRouter: consistent hash of the value-aware
                 serve key over N shards (virtual nodes)
                                      │
          ┌──────────────┬────────────┴─┬──────────────┐
       shard-0         shard-1        shard-2        ...
      SpMVServer      SpMVServer     SpMVServer
      own engine      own engine     own engine
      own device      own device     own device
          │               │              │
      ShardHealth     ShardHealth    ShardHealth   (rolling windows)
          └── sick? ──► CircuitBreaker.trip ──► ejected, keys re-routed
                        cooldown ──► half-open ──► ONE probe ──► readmit

Failure containment:

* a shard that dies mid-flight (the ``serve.shard_crash`` fault site, or
  :meth:`ServeFabric.kill_shard`) fails its queued futures with
  :class:`~repro.errors.ShardCrashError`; the fabric **replays** each on
  the key's next preferred live shard under the request's remaining
  :class:`~repro.fault.Deadline` and the fabric's
  :class:`~repro.fault.RetryPolicy` attempt budget
  (``fabric.failovers`` counts the replays);
* a shard whose rolling window turns sick (errors or injected slowness)
  is ejected via :meth:`CircuitBreaker.trip` and readmitted through the
  breaker's half-open single-probe lifecycle;
* per-tenant quotas and weighted-fair dequeue keep one noisy tenant
  from starving the rest (:class:`~repro.errors.QuotaExceededError`).

Because every shard runs the same device model and tuning mode, a
failed-over request recomputes the **bit-identical** product the dead
shard would have produced -- the chaos drill (:mod:`repro.serve.chaos`)
diffs a faulted fabric against a pristine single server and requires
equality, not closeness.

Shard servers run threadless under the fabric's single pump (either the
caller's thread via :meth:`drain`, or the fabric's own pump thread with
``start=True``), so scheduling is deterministic given the submission
order -- which is what makes seeded chaos drills replayable.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace

import numpy as np

from ..core.engine import PreparedMatrix, SpMVEngine
from ..errors import (
    CircuitOpenError,
    DeadlineExceeded,
    QuotaExceededError,
    ReproError,
    ServerClosedError,
    ServerOverloadedError,
    ShardCrashError,
    ValidationError,
)
from ..fault.injection import active_plan
from ..fault.retry import (
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
)
from ..obs import obs_scope
from ..util import as_csr
from .health import HealthPolicy, ShardHealth
from .server import ServeConfig, ServeFuture, SpMVServer, serve_key
from .supervisor import (
    Autoscaler,
    AutoscalePolicy,
    ShardSupervisor,
    SupervisorConfig,
)
from .workers import ProcessShard, WorkerConfig

__all__ = ["TenantPolicy", "FabricConfig", "ShardRouter", "ServeFabric"]


def _hash64(text: str) -> int:
    """Stable 64-bit ring position (sha256 prefix; never ``hash()``)."""
    return int.from_bytes(
        hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
    )


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's admission quota and fair-share weight.

    Attributes
    ----------
    weight:
        Weighted-fair share: a tenant with weight 2 is dequeued twice as
        often as a weight-1 tenant when both have work queued.
    max_pending:
        Quota: the tenant's queued + in-flight requests may not exceed
        this; a submit beyond it raises
        :class:`~repro.errors.QuotaExceededError`.  ``None`` = no quota
        (still bounded by each shard's own queue depth).
    """

    weight: float = 1.0
    max_pending: int | None = None

    def __post_init__(self):
        if self.weight <= 0:
            raise ValidationError(f"weight must be > 0, got {self.weight}")
        if self.max_pending is not None and self.max_pending < 1:
            raise ValidationError(
                f"max_pending must be >= 1 or None, got {self.max_pending}"
            )


@dataclass(frozen=True)
class FabricConfig:
    """Fabric-level knobs (each shard also has its own ``ServeConfig``).

    Attributes
    ----------
    shards:
        Number of shard servers.
    vnodes:
        Virtual nodes per shard on the consistent-hash ring; more
        vnodes, smoother key distribution.
    failure_threshold:
        Consecutive dispatch failures on one shard that trip its
        circuit even before the rolling window judges it sick.
    breaker_cooldown_s:
        Seconds an ejected shard stays open before the half-open
        readmission probe.
    default_timeout_s:
        Deadline applied to requests that don't carry their own.
    """

    shards: int = 2
    vnodes: int = 32
    failure_threshold: int = 3
    breaker_cooldown_s: float = 5.0
    default_timeout_s: float | None = None

    def __post_init__(self):
        if self.shards < 1:
            raise ValidationError(f"shards must be >= 1, got {self.shards}")
        if self.vnodes < 1:
            raise ValidationError(f"vnodes must be >= 1, got {self.vnodes}")
        if self.failure_threshold < 1:
            raise ValidationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.breaker_cooldown_s < 0:
            raise ValidationError(
                f"breaker_cooldown_s must be >= 0, "
                f"got {self.breaker_cooldown_s}"
            )


class ShardRouter:
    """Consistent-hash ring over shard names (virtual nodes).

    :meth:`preference` returns *every* shard in ring order from the
    key's position: element 0 is the owner, element 1 the first
    successor (the failover target when the owner is dead or ejected),
    and so on.  Adding vnodes smooths the key distribution; the ring is
    immutable -- liveness filtering is the fabric's job, so ejecting a
    shard re-routes exactly its key range and nothing else.
    """

    def __init__(self, names: list[str], vnodes: int = 32):
        if len(set(names)) != len(names):
            raise ValidationError(f"duplicate shard names: {names}")
        if not names:
            raise ValidationError("router needs at least one shard")
        if vnodes < 1:
            raise ValidationError(f"vnodes must be >= 1, got {vnodes}")
        self.names = list(names)
        self.vnodes = vnodes
        self._ring: list[tuple[int, str]] = sorted(
            (_hash64(f"{name}#{v}"), name)
            for name in names
            for v in range(vnodes)
        )

    def preference(self, key: str) -> list[str]:
        """All shards, ring order from ``key``'s position (owner first)."""
        start = bisect.bisect_right(self._ring, (_hash64(key), "￿"))
        order: list[str] = []
        n = len(self._ring)
        for i in range(n):
            name = self._ring[(start + i) % n][1]
            if name not in order:
                order.append(name)
                if len(order) == len(self.names):
                    break
        return order

    def owner(self, key: str) -> str:
        return self.preference(key)[0]

    def share(self, keys: list[str]) -> dict[str, int]:
        """How many of ``keys`` each shard owns (diagnostics/tests)."""
        counts = {name: 0 for name in self.names}
        for key in keys:
            counts[self.owner(key)] += 1
        return counts


class _Shard:
    """One shard: its engine, server, health window and liveness."""

    __slots__ = ("name", "index", "engine", "server", "health", "dead",
                 "ejected", "retired", "slow_extra_s")

    def __init__(self, name, index, engine, server, health):
        self.name = name
        self.index = index
        self.engine = engine
        self.server = server
        self.health = health
        self.dead = False        # crashed; never readmitted
        self.ejected = False     # circuit tripped; readmission possible
        self.retired = False     # scaled down; drained and closed
        self.slow_extra_s = 0.0  # injected latency (serve.shard_slow)


@dataclass
class _FabricRequest:
    tenant: str
    #: What gets submitted to a shard server: the canonical CSR, or a
    #: caller-supplied PreparedMatrix (shard caches admit it as-is).
    operand: object
    x: np.ndarray
    key: str
    deadline: Deadline | None
    future: ServeFuture
    enqueued_at: float
    attempts: int = 0
    tried: list[str] = field(default_factory=list)
    shard: str | None = None
    shard_future: ServeFuture | None = None
    forwarded_at: float = 0.0
    probe: bool = False


class ServeFabric:
    """Sharded, health-aware, tenant-fair front-end over N shard servers.

    Parameters
    ----------
    shards:
        Shard count (or pass a full :class:`FabricConfig` via
        ``config``).
    device:
        Simulated device model every shard runs (bit-identity across
        shards requires one device model; heterogeneous fabrics would
        need per-device golden outputs).
    engine_factory:
        ``f(shard_index) -> SpMVEngine`` -- override to give individual
        shards special engines (the chaos drill builds one *corrupted*
        shard this way).  Default builds
        ``SpMVEngine(device=device, backend="fast")`` per shard (the
        bit-identical vectorized path; pass a factory or ``backend=``
        to choose differently).
    serve_config:
        Per-shard :class:`ServeConfig` (shards always run threadless
        under the fabric's pump; ``batch_window_s`` is forced to 0).
    config:
        :class:`FabricConfig`; ``shards=`` argument wins over
        ``config.shards`` when both are given explicitly.
    health_policy:
        Rolling-window judgment thresholds (:class:`HealthPolicy`).
    tenants:
        ``{tenant: TenantPolicy}``; unknown tenants get
        ``default_tenant``.
    retry_policy:
        Failover budget: a request is attempted on at most
        ``max_attempts`` shards (the backoff schedule applies between
        replays when ``base_delay_s > 0``).
    observer:
        Receives ``fabric.*`` and all shard-level ``serve.*`` telemetry.
    backend:
        Optional :mod:`repro.backends` selection (name or instance)
        installed on every shard engine -- including engines a custom
        ``engine_factory`` built, so one flag switches the whole
        fabric's execution path.  ``None`` leaves the engines untouched.
    start:
        ``True`` starts the pump thread; ``False`` runs threadless --
        callers drive with :meth:`drain` (the deterministic drill mode).
    clock:
        Injectable monotonic clock, shared with every shard server and
        the breaker.
    processes:
        ``True`` runs every shard as an out-of-process worker
        (:class:`~repro.serve.ProcessShard`): a real forked child that
        maps shared-memory prepared matrices and can be SIGKILLed for
        real.  A :class:`~repro.serve.ShardSupervisor` is installed
        automatically (heartbeats, restart-with-backoff, degrade to
        in-process) and ticked at the top of every pump round.
    worker_config / supervisor_config:
        Pipe-protocol and supervision knobs for process mode.
    autoscale_policy:
        When given, an :class:`~repro.serve.Autoscaler` grows/shrinks
        the replica set between ``min_shards``/``max_shards`` from the
        fabric's own load gauges, rebuilding the consistent-hash ring on
        every action.  Works in both in-process and process mode.
    """

    def __init__(
        self,
        shards: int | None = None,
        *,
        device: str = "gtx680",
        engine_factory=None,
        serve_config: ServeConfig | None = None,
        config: FabricConfig | None = None,
        health_policy: HealthPolicy | None = None,
        tenants: dict[str, TenantPolicy] | None = None,
        default_tenant: TenantPolicy | None = None,
        retry_policy: RetryPolicy | None = None,
        observer=None,
        backend=None,
        start: bool = True,
        clock=time.monotonic,
        processes: bool = False,
        worker_config: WorkerConfig | None = None,
        supervisor_config: SupervisorConfig | None = None,
        autoscale_policy: AutoscalePolicy | None = None,
    ):
        if config is None:
            config = FabricConfig(shards=shards if shards is not None else 2)
        elif shards is not None and shards != config.shards:
            config = replace(config, shards=shards)
        self.config = config
        base = serve_config if serve_config is not None else ServeConfig()
        if base.batch_window_s != 0.0:
            base = replace(base, batch_window_s=0.0)
        self.serve_config = base
        self.health_policy = (
            health_policy if health_policy is not None else HealthPolicy()
        )
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(max_attempts=3, base_delay_s=0.0)
        )
        self.tenant_policies = dict(tenants) if tenants else {}
        self.default_tenant = (
            default_tenant if default_tenant is not None else TenantPolicy()
        )
        self._clock = clock
        self._sleep = time.sleep

        if engine_factory is None:
            engine_factory = (  # noqa: E731
                lambda i: SpMVEngine(device=device, backend="fast")
            )
        self._engine_factory = engine_factory
        self._backend = backend
        self._observer = observer
        self._processes = processes
        self._worker_config = worker_config
        #: PreparedMatrix handles primed fabric-wide; scale-ups re-warm
        #: new replicas from this list.
        self._fabric_primed: list[PreparedMatrix] = []
        self.shards: list[_Shard] = []
        for i in range(self.config.shards):
            self.shards.append(self._spawn_shard(i))
        self._next_index = self.config.shards
        self._by_name = {s.name: s for s in self.shards}
        self.router = ShardRouter(
            [s.name for s in self.shards], vnodes=self.config.vnodes
        )
        self.supervisor: ShardSupervisor | None = None
        if processes:
            self.supervisor = ShardSupervisor(
                supervisor_config,
                degrade_factory=self._degraded_server,
                observer=observer,
                clock=clock,
            )
        self.autoscaler: Autoscaler | None = None
        if autoscale_policy is not None:
            self.autoscaler = Autoscaler(autoscale_policy, observer=observer)
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            clock=clock,
        )
        self.obs = observer if observer is not None else self.shards[0].server.obs

        self._cond = threading.Condition()
        self._closed = False
        self._pumping = False
        self._queues: dict[str, deque[_FabricRequest]] = {}
        self._passes: dict[str, float] = {}
        self._vtime = 0.0
        self._tenant_pending: dict[str, int] = {}
        self._pending: list[_FabricRequest] = []
        # Plain-int mirrors of the fabric.* metrics (guarded by _cond).
        self.n_requests = 0
        self.n_responses = 0
        self.n_failovers = 0
        self.n_quota_rejections = 0
        self.n_ejections = 0
        self.n_readmissions = 0
        self.n_shard_crashes = 0
        self.n_worker_kills = 0
        self.n_worker_hangs = 0
        self._gauge_live()

        self._thread: threading.Thread | None = None
        if start:
            self._thread = threading.Thread(
                target=self._run, name="spmv-fabric-pump", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------ #
    # Shard construction
    # ------------------------------------------------------------------ #

    def _spawn_shard(self, index: int) -> _Shard:
        """Build one shard (in-process or worker-process, per config)."""
        engine = self._engine_factory(index)
        if self._backend is not None:
            engine.backend = self._backend
        name = f"shard-{index}"
        if self._processes:
            server = ProcessShard(
                engine,
                self.serve_config,
                name=name,
                worker_config=self._worker_config,
                observer=self._observer,
                clock=self._clock,
            )
        else:
            server = SpMVServer(
                engine,
                self.serve_config,
                observer=self._observer,
                start=False,
                clock=self._clock,
            )
        return _Shard(
            name=name,
            index=index,
            engine=engine,
            server=server,
            health=ShardHealth(self.health_policy),
        )

    def _degraded_server(self, shard: _Shard) -> SpMVServer:
        """In-process fallback the supervisor installs after restart
        budget exhaustion -- same engine, same serve config, threadless
        under the same pump, so degraded answers stay bit-identical."""
        return SpMVServer(
            shard.engine,
            self.serve_config,
            observer=self._observer,
            start=False,
            clock=self._clock,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def live_shards(self) -> list[str]:
        """Shards currently routable (not dead/retired, circuit not open)."""
        out = []
        for s in self.shards:
            if s.dead or s.retired:
                continue
            if self.breaker.state(s.name) == BREAKER_OPEN:
                continue
            out.append(s.name)
        return out

    def _gauge_live(self) -> None:
        self.obs.gauge(
            "fabric.live_shards", "shards currently routable"
        ).set(len(self.live_shards()))

    def _tenant_policy(self, tenant: str) -> TenantPolicy:
        return self.tenant_policies.get(tenant, self.default_tenant)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    def submit(
        self,
        matrix,
        x: np.ndarray,
        *,
        tenant: str = "default",
        timeout_s: float | None = None,
    ) -> ServeFuture:
        """Enqueue ``y = A @ x`` for ``tenant``; returns a future.

        ``matrix`` is a scipy sparse matrix or an explicit
        :class:`~repro.core.engine.PreparedMatrix` (forwarded to the
        owning shard as-is, so its cache admits the caller's prepared
        instance -- the solver sessions' value-refresh path).

        Raises :class:`~repro.errors.QuotaExceededError` when the
        tenant's quota is full and :class:`~repro.errors.
        ServerClosedError` after :meth:`close`.
        """
        x = np.asarray(x, dtype=np.float64)
        if x.ndim not in (1, 2):
            raise ValidationError(
                f"x must be a vector or a (ncols, k) block, got shape {x.shape}"
            )
        if isinstance(matrix, PreparedMatrix):
            operand = matrix
            csr = matrix.reference_csr()
        else:
            operand = csr = as_csr(matrix)
        if x.shape[0] != csr.shape[1]:
            raise ValidationError(
                f"x has {x.shape[0]} rows, matrix has {csr.shape[1]} columns"
            )
        key = serve_key(self.shards[0].engine, csr)
        timeout = (
            timeout_s if timeout_s is not None
            else self.config.default_timeout_s
        )
        deadline = None if timeout is None else Deadline(timeout, clock=self._clock)
        future = ServeFuture()
        request = _FabricRequest(
            tenant=tenant,
            operand=operand,
            x=x,
            key=key,
            deadline=deadline,
            future=future,
            enqueued_at=self._clock(),
        )
        policy = self._tenant_policy(tenant)
        with self._cond:
            if self._closed:
                raise ServerClosedError("fabric is closed; request refused")
            pending = self._tenant_pending.get(tenant, 0)
            if policy.max_pending is not None and pending >= policy.max_pending:
                self.n_quota_rejections += 1
                self.obs.counter(
                    "fabric.quota_rejections",
                    "requests refused by a per-tenant quota",
                ).inc(tenant=tenant)
                raise QuotaExceededError(
                    f"tenant {tenant!r} has {pending} requests pending, "
                    f"quota is {policy.max_pending}",
                    tenant=tenant,
                    limit=policy.max_pending,
                    pending=pending,
                )
            queue = self._queues.get(tenant)
            if queue is None:
                queue = self._queues[tenant] = deque()
                # A newly-active tenant starts at the current virtual
                # time: its idle past earns no burst against the others.
                self._passes[tenant] = max(
                    self._passes.get(tenant, 0.0), self._vtime
                )
            queue.append(request)
            self._tenant_pending[tenant] = pending + 1
            self.n_requests += 1
            self.obs.counter("fabric.requests", "requests admitted").inc()
            self._cond.notify_all()
        return future

    def multiply(self, matrix, x, *, tenant: str = "default",
                 timeout_s: float | None = None):
        """Blocking convenience: :meth:`submit` + :meth:`drain` + result."""
        future = self.submit(matrix, x, tenant=tenant, timeout_s=timeout_s)
        if self._thread is None:
            self.drain()
        return future.result()

    # ------------------------------------------------------------------ #
    # Pump
    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        """Pump-thread main loop (threaded mode).

        With a supervisor or autoscaler installed the idle wait is
        bounded so housekeeping rounds (heartbeats, restarts, scale
        decisions) still happen while no traffic flows.
        """
        housekeeping = (
            self.supervisor is not None or self.autoscaler is not None
        )
        while True:
            with self._cond:
                while not self._has_work():
                    if self._closed:
                        return
                    if housekeeping:
                        self._cond.wait(0.05)
                        break  # run an idle housekeeping round
                    self._cond.wait()
                if self._closed and not self._has_work():
                    return
            self.pump_once()
            with self._cond:
                self._cond.notify_all()

    def _has_work(self) -> bool:
        # _pumping covers the transient gap while a pump pass holds
        # requests in neither a queue nor _pending (mid-forward/collect)
        # -- without it a concurrent drain() could observe "idle" and
        # let close() fail requests that are actually in flight.
        return (
            self._pumping
            or bool(self._pending)
            or any(self._queues.values())
        )

    def drain(self) -> int:
        """Pump until nothing is queued or in flight; returns responses.

        Threadless mode processes on the calling thread; with a pump
        thread running, blocks until the fabric is idle.
        """
        if self._thread is not None:
            with self._cond:
                while self._has_work():
                    self._cond.wait(0.01)
            return 0
        done0 = self.n_responses
        while True:
            with self._cond:
                if not self._has_work():
                    break
            self.pump_once()
        return self.n_responses - done0

    def pump_once(self) -> None:
        """One deterministic scheduling round.

        Order matters for the chaos story: (0) supervision housekeeping
        -- heartbeats, worker restarts, autoscale decisions -- so a
        worker killed last round is healed before new traffic routes,
        (1) forward queued requests to their shards, (2) apply seeded
        chaos draws -- so an injected crash genuinely kills requests
        *mid-flight*, (3) drain the threadless shard servers, (4)
        collect completions and fail over.
        """
        with self._cond:
            self._pumping = True
        try:
            with obs_scope(self.obs):
                if self.supervisor is not None:
                    self.supervisor.tick(self.shards)
                if self.autoscaler is not None:
                    self._autoscale()
                self._schedule()
                self._apply_chaos()
                for shard in self.shards:
                    if not shard.dead and not shard.retired:
                        shard.server.drain()
                self._collect()
        finally:
            with self._cond:
                self._pumping = False
                self._cond.notify_all()

    def tick(self, rounds: int = 1) -> None:
        """Run ``rounds`` pump rounds even when idle (threadless mode).

        Supervision and autoscaling only act inside pump rounds; a
        threadless fabric with no queued work would otherwise never
        restart a dead worker or scale the fleet down.  Chaos drills
        call this after the workload to let the scale-down hysteresis
        observe the idle fleet.
        """
        for _ in range(rounds):
            self.pump_once()

    # -- step 1: weighted-fair scheduling ------------------------------ #

    def _schedule(self) -> None:
        while True:
            with self._cond:
                tenant = self._next_tenant_locked()
                if tenant is None:
                    return
                request = self._queues[tenant].popleft()
            self._forward(request)

    def _next_tenant_locked(self) -> str | None:
        """Stride scheduling: smallest pass among non-empty queues wins."""
        best: str | None = None
        for tenant, queue in self._queues.items():
            if not queue:
                continue
            if best is None or (
                (self._passes[tenant], tenant) < (self._passes[best], best)
            ):
                best = tenant
        if best is None:
            return None
        self._vtime = self._passes[best]
        self._passes[best] += 1.0 / self._tenant_policy(best).weight
        return best

    # -- step 2: seeded chaos ------------------------------------------ #

    def _busiest(self, candidates: list[_Shard]) -> _Shard | None:
        """Most-loaded shard (forwarded + queued), ties by name."""
        if not candidates:
            return None
        load: dict[str, int] = {s.name: 0 for s in candidates}
        for req in self._pending:
            if req.shard in load:
                load[req.shard] += 1
        for s in candidates:
            load[s.name] += s.server.queue_depth()
        return min(candidates, key=lambda s: (-load[s.name], s.name))

    def _apply_chaos(self) -> None:
        plan = active_plan()
        if plan is None:
            return
        live = [s for s in self.shards if s.name in set(self.live_shards())]
        if plan.shard_crash(len(live)):
            victim = self._busiest(live)
            if victim is not None:
                self.kill_shard(victim.name)
                live = [s for s in live if s.name != victim.name]
        delay = plan.shard_slow(len(live))
        if delay is not None:
            calm = [s for s in live if s.slow_extra_s == 0.0]
            victim = self._busiest(calm or live)
            if victim is not None:
                victim.slow_extra_s += delay
                self.obs.counter(
                    "fabric.slowed_shards", "shard-slow injections"
                ).inc(shard=victim.name)
        workers = [
            s for s in live
            if isinstance(s.server, ProcessShard) and s.server.alive
        ]
        if plan.worker_kill(len(workers)):
            victim = self._busiest(workers)
            if victim is not None:
                self.kill_worker(victim.name)
                workers = [s for s in workers if s.name != victim.name]
        if plan.worker_hang(len(workers)):
            victim = self._busiest(workers)
            if victim is not None and victim.server.inject_hang():
                with self._cond:
                    self.n_worker_hangs += 1
                self.obs.counter(
                    "fabric.worker_hangs", "worker-hang injections"
                ).inc(shard=victim.name)

    def kill_worker(self, name: str) -> int:
        """SIGKILL ``name``'s worker process (``serve.worker_kill``).

        Unlike :meth:`kill_shard` the shard is *not* marked dead: its
        in-flight futures fail (and replay on ring successors) and the
        supervisor restarts or degrades the worker on a later tick.
        Returns the number of requests the kill orphaned; 0 for
        in-process or already-down shards.
        """
        shard = self._by_name[name]
        if not isinstance(shard.server, ProcessShard) or not shard.server.alive:
            return 0
        with self._cond:
            self.n_worker_kills += 1
        self.obs.counter(
            "fabric.worker_kills", "shard workers SIGKILLed mid-flight"
        ).inc(shard=name)
        return shard.server.kill_process(ShardCrashError(
            f"worker for shard {name} was SIGKILLed with requests in flight",
            shard=name,
        ))

    def kill_shard(self, name: str) -> int:
        """Crash ``name`` mid-flight: its queued futures fail with
        :class:`~repro.errors.ShardCrashError` and the fabric replays
        them on ring successors.  Dead shards are never readmitted.
        Returns the number of in-flight requests the crash orphaned.
        """
        shard = self._by_name[name]
        if shard.dead:
            return 0
        shard.dead = True
        with self._cond:
            self.n_shard_crashes += 1
        self.obs.counter(
            "fabric.shard_crashes", "shards killed mid-flight"
        ).inc(shard=name)
        doomed = shard.server.kill(ShardCrashError(
            f"shard {name} crashed with requests in flight", shard=name
        ))
        self._gauge_live()
        return doomed

    # -- fabric-wide priming and autoscaling --------------------------- #

    def prime(self, prepared: PreparedMatrix) -> str:
        """Warm every routable shard's cache with ``prepared``.

        In process mode the matrix is :meth:`~repro.core.engine.
        PreparedMatrix.share`\\ d first so children map the shared-memory
        segments instead of re-tuning; the handle is remembered so
        scale-ups and supervisor restarts re-warm new replicas.  Returns
        the serve key the fabric will route the matrix under.
        """
        key = serve_key(
            self.shards[0].engine, prepared.reference_csr()
        )
        if self._processes:
            prepared.share()
        self._fabric_primed.append(prepared)
        for shard in self.shards:
            if shard.dead or shard.retired:
                continue
            shard.server.prime(prepared)
        return key

    def _rebuild_router(self) -> None:
        names = [
            s.name for s in self.shards if not s.dead and not s.retired
        ]
        self.router = ShardRouter(names, vnodes=self.config.vnodes)

    def _autoscale(self) -> None:
        # The scaler reasons about *fleet size* (replicas that exist and
        # could serve), not instantaneous routability: a breaker-open
        # replica is capacity in recovery, and counting it as absent
        # would double-provision every ejection.  Breaker pressure is
        # passed alongside so policies can still react to it.
        assert self.autoscaler is not None
        fleet = [s for s in self.shards if not s.dead and not s.retired]
        with self._cond:
            queued = sum(len(q) for q in self._queues.values())
            in_flight = len(self._pending)
        open_breakers = sum(
            1 for s in fleet
            if self.breaker.state(s.name) == BREAKER_OPEN
        )
        p99 = max((s.health.p99_latency_s() for s in fleet), default=0.0)
        action = self.autoscaler.observe(
            queued=queued,
            in_flight=in_flight,
            live=len(fleet),
            open_breakers=open_breakers,
            p99_s=p99,
        )
        if action == "up":
            self._scale_up()
        elif action == "down":
            self._scale_down()

    def _scale_up(self) -> None:
        shard = self._spawn_shard(self._next_index)
        self._next_index += 1
        for prepared in self._fabric_primed:
            shard.server.prime(prepared)
        self.shards.append(shard)
        self._by_name[shard.name] = shard
        self._rebuild_router()
        self.obs.counter(
            "fabric.scale_ups", "replicas added by the autoscaler"
        ).inc(shard=shard.name)
        self._gauge_live()

    def _scale_down(self) -> None:
        candidates = [
            s for s in self.shards if not s.dead and not s.retired
        ]
        if len(candidates) <= 1:
            return
        # Retire the newest replica: the ring change is the exact inverse
        # of the scale-up that added it, so steady-state keys go home.
        victim = max(candidates, key=lambda s: s.index)
        victim.retired = True
        self._rebuild_router()
        victim.server.close(drain=True)
        self.obs.counter(
            "fabric.scale_downs", "replicas retired by the autoscaler"
        ).inc(shard=victim.name)
        self._gauge_live()

    # -- step 3 happens inline in pump_once ---------------------------- #

    # -- step 4: completion, health, failover -------------------------- #

    def _forward(self, request: _FabricRequest) -> None:
        """Route one request to the best live shard and submit it."""
        if request.deadline is not None and request.deadline.expired():
            self._complete(request, DeadlineExceeded(
                f"request deadline of {request.deadline.seconds:.3f}s "
                f"expired before dispatch",
                label="fabric queue",
                budget_s=request.deadline.seconds,
            ), None)
            return
        preference = self.router.preference(request.key)
        # Prefer shards this request has not failed on yet; fall back to
        # re-trying a previously-tried (still live) shard only when the
        # ring offers nothing fresh.
        ordered = (
            [n for n in preference if n not in request.tried]
            + [n for n in preference if n in request.tried]
        )
        last_refusal: ReproError | None = None
        for name in ordered:
            shard = self._by_name[name]
            if shard.dead or shard.retired:
                continue
            state = self.breaker.state(name)
            if state == BREAKER_OPEN:
                continue
            probe = False
            if state == BREAKER_HALF_OPEN:
                if not self.breaker.allow(name):
                    continue  # another request holds the probe slot
                probe = True
            timeout = (
                None if request.deadline is None
                else max(request.deadline.remaining(), 0.0)
            )
            try:
                shard_future = shard.server.submit(
                    request.operand, request.x, timeout_s=timeout
                )
            except (ServerOverloadedError, ServerClosedError) as exc:
                if probe:
                    # The probe could not even be enqueued: count it as
                    # a failed probe (the circuit re-opens and the shard
                    # gets another chance after the next cooldown).
                    self.breaker.record_failure(name)
                last_refusal = exc
                continue
            request.attempts += 1
            request.tried.append(name)
            request.shard = name
            request.shard_future = shard_future
            request.forwarded_at = self._clock()
            request.probe = probe
            with self._cond:
                self._pending.append(request)
            return
        self._complete(request, last_refusal or CircuitOpenError(
            "no live shard available for this key "
            f"({len(self.live_shards())} of {len(self.shards)} routable)",
            family="fabric",
        ), None)

    def _collect(self) -> None:
        with self._cond:
            pending, self._pending = self._pending, []
        for request in pending:
            if not request.shard_future.done():
                with self._cond:
                    self._pending.append(request)
                continue
            shard = self._by_name[request.shard]
            error = request.shard_future.exception(timeout=0)
            latency = (
                self._clock() - request.forwarded_at + shard.slow_extra_s
            )
            if error is None:
                self._on_success(request, shard, latency)
            else:
                self._on_failure(request, shard, error, latency)

    def _on_success(self, request: _FabricRequest, shard: _Shard,
                    latency: float) -> None:
        if request.probe:
            # Readmit first (resets the window), then record: the fresh
            # window starts with the successful probe, not empty.
            self._readmit(shard)
        else:
            self.breaker.record_success(shard.name)
        shard.health.record_success(latency)
        if not shard.dead and not shard.ejected and not shard.health.healthy():
            self._eject(shard)  # e.g. healthy results, pathological latency
        response = replace(
            request.shard_future._response,
            shard=shard.name,
            failovers=request.attempts - 1,
            queue_wait_s=self._clock() - request.enqueued_at,
        )
        self._complete(request, None, response)

    def _on_failure(self, request: _FabricRequest, shard: _Shard,
                    error: BaseException, latency: float) -> None:
        crash = isinstance(error, (ShardCrashError, ServerClosedError))
        if not shard.dead:
            shard.health.record_failure(latency)
            if request.probe:
                self.breaker.record_failure(shard.name)  # re-opens
                shard.ejected = True
                self._gauge_live()
            else:
                self.breaker.record_failure(shard.name)
                if not shard.ejected and (
                    not shard.health.healthy()
                    or self.breaker.state(shard.name) == BREAKER_OPEN
                ):
                    self._eject(shard)
        if isinstance(error, DeadlineExceeded):
            self._complete(request, error, None)  # budget gone: no replay
            return
        if request.attempts >= self.retry_policy.max_attempts:
            self._complete(request, error, None)
            return
        if request.deadline is not None and request.deadline.expired():
            self._complete(request, DeadlineExceeded(
                f"deadline expired after {request.attempts} attempt(s); "
                f"last error: {type(error).__name__}: {error}",
                label="fabric failover",
                budget_s=request.deadline.seconds,
            ), None)
            return
        with self._cond:
            self.n_failovers += 1
        self.obs.counter(
            "fabric.failovers",
            "requests replayed on a successor shard",
        ).inc(shard=shard.name, crash=str(crash).lower())
        delay = self.retry_policy.delay_s(request.attempts)
        if delay > 0:
            self._sleep(delay)
        self._forward(request)

    def _eject(self, shard: _Shard) -> None:
        self.breaker.trip(shard.name)
        shard.ejected = True
        with self._cond:
            self.n_ejections += 1
        self.obs.counter(
            "fabric.ejections", "shards ejected by the health tracker"
        ).inc(shard=shard.name)
        self._gauge_live()

    def _readmit(self, shard: _Shard) -> None:
        self.breaker.record_success(shard.name)  # half-open -> closed
        shard.ejected = False
        shard.health.reset()
        with self._cond:
            self.n_readmissions += 1
        self.obs.counter(
            "fabric.readmissions", "ejected shards readmitted after a probe"
        ).inc(shard=shard.name)
        self._gauge_live()

    def _complete(self, request: _FabricRequest,
                  error: BaseException | None, response) -> None:
        if error is not None:
            request.future._fail(error)
        else:
            request.future._complete(response)
        with self._cond:
            self.n_responses += 1
            self._tenant_pending[request.tenant] = max(
                self._tenant_pending.get(request.tenant, 1) - 1, 0
            )
        self.obs.counter(
            "fabric.responses", "requests completed (success or typed error)"
        ).inc()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self, drain: bool = True) -> None:
        """Shut the fabric down; ``drain=False`` fails queued futures."""
        if drain and not self._closed:
            if self._thread is not None:
                self.drain()
            else:
                with self._cond:
                    closed_now = self._closed
                if not closed_now:
                    self.drain()
        with self._cond:
            self._closed = True
            abandoned: list[_FabricRequest] = []
            for queue in self._queues.values():
                abandoned.extend(queue)
                queue.clear()
            abandoned.extend(self._pending)
            self._pending = []
            self._cond.notify_all()
        for request in abandoned:
            self._complete(request, ServerClosedError(
                "fabric closed before the request was dispatched"
            ), None)
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        for shard in self.shards:
            if not shard.dead and not shard.retired:
                shard.server.close(drain=False)

    def __enter__(self) -> "ServeFabric":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """JSON-able snapshot: fabric counters + per-shard detail.

        The aggregate ``cache``/``batches``/``shed`` keys sum over the
        shard servers so :class:`~repro.serve.ReplayReport` summaries
        work unchanged against a fabric.
        """
        with self._cond:
            snap = {
                "requests": self.n_requests,
                "responses": self.n_responses,
                "failovers": self.n_failovers,
                "quota_rejections": self.n_quota_rejections,
                "ejections": self.n_ejections,
                "readmissions": self.n_readmissions,
                "shard_crashes": self.n_shard_crashes,
                "worker_kills": self.n_worker_kills,
                "worker_hangs": self.n_worker_hangs,
                "processes": self._processes,
                "queued": sum(len(q) for q in self._queues.values()),
                "in_flight": len(self._pending),
                "tenants": {
                    t: {
                        "pending": self._tenant_pending.get(t, 0),
                        "weight": self._tenant_policy(t).weight,
                        "quota": self._tenant_policy(t).max_pending,
                    }
                    for t in sorted(self._queues)
                },
            }
        snap["live_shards"] = len(self.live_shards())
        shard_stats = {}
        agg_cache = {"hits": 0, "misses": 0, "evictions": 0, "total_bytes": 0}
        batches = batched = shed = 0
        for s in self.shards:
            server_snap = s.server.stats()
            for k in agg_cache:
                agg_cache[k] += server_snap["cache"].get(k, 0)
            batches += server_snap["batches"]
            batched += server_snap["batched_requests"]
            shed += server_snap["shed"]
            shard_stats[s.name] = {
                "dead": s.dead,
                "ejected": s.ejected,
                "retired": s.retired,
                "breaker": self.breaker.state(s.name),
                "slow_extra_s": s.slow_extra_s,
                "health": s.health.stats(),
                "server": server_snap,
            }
        snap["shards"] = shard_stats
        snap["cache"] = agg_cache
        snap["batches"] = batches
        snap["batched_requests"] = batched
        snap["shed"] = shed
        if self.supervisor is not None:
            snap["supervisor"] = self.supervisor.stats()
        if self.autoscaler is not None:
            snap["autoscaler"] = self.autoscaler.stats()
        return snap
