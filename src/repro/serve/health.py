"""Per-shard health tracking for the serving fabric.

The paper's thesis is that SpMV throughput is won by keeping every
execution unit busy despite irregular *work*; a serving fabric's analogue
is keeping every shard busy despite irregular *failures*.  That needs a
signal: this module maintains, per shard, a rolling window of dispatch
outcomes (ok/error) and latencies, and judges the shard sick when the
window's error rate or mean latency crosses a policy threshold.

The judgment feeds the shard-level
:class:`~repro.fault.retry.CircuitBreaker` in the fabric: a sick shard is
*ejected* (circuit tripped open, key range re-routed to its ring
successors) and later *readmitted* through the breaker's normal
cooldown -> half-open -> single-probe lifecycle.  The split of concerns
mirrors the engine: health decides *when* to trip, the breaker owns the
state machine of coming back.

Everything is deterministic and clock-free (latencies are fed in by the
caller), so seeded chaos drills replay identically.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

from ..errors import ReproError

__all__ = ["HealthPolicy", "ShardHealth"]


@dataclass(frozen=True)
class HealthPolicy:
    """Thresholds for judging one shard's rolling window.

    Attributes
    ----------
    window:
        Number of most-recent dispatch outcomes the judgment sees.
    min_samples:
        Outcomes required before the window may judge at all -- a fresh
        (or freshly readmitted) shard is healthy by default instead of
        being ejected on its first hiccup.
    max_error_rate:
        Window error fraction at or above which the shard is sick.
    max_latency_s:
        Mean window latency above which the shard is sick; ``None``
        disables the latency criterion.
    """

    window: int = 16
    min_samples: int = 4
    max_error_rate: float = 0.5
    max_latency_s: float | None = None

    def __post_init__(self):
        if self.window < 1:
            raise ReproError(f"window must be >= 1, got {self.window}")
        if not 1 <= self.min_samples <= self.window:
            raise ReproError(
                f"min_samples must be in [1, window], got {self.min_samples}"
            )
        if not 0.0 < self.max_error_rate <= 1.0:
            raise ReproError(
                f"max_error_rate must be in (0, 1], got {self.max_error_rate}"
            )
        if self.max_latency_s is not None and self.max_latency_s <= 0:
            raise ReproError(
                f"max_latency_s must be > 0 or None, got {self.max_latency_s}"
            )


class ShardHealth:
    """Rolling error/latency window of one shard.  Thread-safe.

    ``record_success`` / ``record_failure`` push outcomes;
    :meth:`healthy` judges the current window against the policy.
    :meth:`reset` clears the window -- called on readmission, so a
    recovered shard is not immediately re-ejected by its pre-ejection
    history.
    """

    def __init__(self, policy: HealthPolicy | None = None):
        self.policy = policy if policy is not None else HealthPolicy()
        self._lock = threading.Lock()
        self._window: deque[tuple[bool, float]] = deque(
            maxlen=self.policy.window
        )
        #: Lifetime counters (survive resets).
        self.n_ok = 0
        self.n_err = 0

    def record_success(self, latency_s: float = 0.0) -> None:
        with self._lock:
            self._window.append((True, float(latency_s)))
            self.n_ok += 1

    def record_failure(self, latency_s: float = 0.0) -> None:
        with self._lock:
            self._window.append((False, float(latency_s)))
            self.n_err += 1

    def samples(self) -> int:
        with self._lock:
            return len(self._window)

    def error_rate(self) -> float:
        """Error fraction of the current window (0.0 when empty)."""
        with self._lock:
            if not self._window:
                return 0.0
            errs = sum(1 for ok, _ in self._window if not ok)
            return errs / len(self._window)

    def mean_latency_s(self) -> float:
        """Mean latency of the current window (0.0 when empty)."""
        with self._lock:
            if not self._window:
                return 0.0
            return sum(lat for _, lat in self._window) / len(self._window)

    def p99_latency_s(self) -> float:
        """99th-percentile latency of the current window (0.0 when empty).

        Nearest-rank on the sorted window -- with the small windows the
        fabric uses this is effectively the max, which is exactly the
        tail signal the :class:`~repro.serve.Autoscaler` wants.
        """
        with self._lock:
            if not self._window:
                return 0.0
            lats = sorted(lat for _, lat in self._window)
            rank = max(int(len(lats) * 0.99 + 0.5), 1)
            return lats[min(rank, len(lats)) - 1]

    def healthy(self) -> bool:
        """Judge the window: ``False`` means the shard should be ejected.

        Under :attr:`HealthPolicy.min_samples` outcomes the shard is
        healthy by default (insufficient evidence).
        """
        with self._lock:
            n = len(self._window)
            if n < self.policy.min_samples:
                return True
            errs = sum(1 for ok, _ in self._window if not ok)
            if errs / n >= self.policy.max_error_rate:
                return False
            if self.policy.max_latency_s is not None:
                mean = sum(lat for _, lat in self._window) / n
                if mean > self.policy.max_latency_s:
                    return False
            return True

    def reset(self) -> None:
        """Forget the window (lifetime counters survive)."""
        with self._lock:
            self._window.clear()

    def stats(self) -> dict:
        """JSON-able snapshot."""
        return {
            "ok": int(self.n_ok),
            "errors": int(self.n_err),
            "samples": self.samples(),
            "error_rate": round(self.error_rate(), 4),
            "mean_latency_s": round(self.mean_latency_s(), 6),
            "p99_latency_s": round(self.p99_latency_s(), 6),
            "healthy": self.healthy(),
        }
