"""Request-trace replay: feed a JSON-lines workload through a server.

The ``repro serve --requests file.jsonl`` CLI mode and the serving
benchmark both replay recorded workloads.  Each line describes one
burst of requests against one matrix::

    {"matrix": "QCD", "count": 16, "seed": 0}
    {"matrix": "path/to/matrix.mtx", "count": 4, "k": 2}
    {"matrix": "Dense", "count": 8, "cap": 50000, "timeout_s": 5.0}

``matrix`` is a Table 2 suite name or a ``.mtx`` path; ``count`` random
right-hand sides (seeded by ``seed``) are submitted back to back, so
consecutive same-matrix lines exercise the micro-batcher and the
prepared-matrix cache.  ``k > 1`` submits 2-D multi-RHS blocks instead
of single vectors.

:func:`run_replay` returns a :class:`ReplayReport` with the serving
counters, verification outcome and wall time.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import ReproError, ValidationError
from .server import ServeConfig, SpMVServer

__all__ = ["ReplaySpec", "ReplayReport", "load_requests", "run_replay"]


@dataclass(frozen=True)
class ReplaySpec:
    """One replay line: ``count`` requests against ``matrix``."""

    matrix: str
    count: int = 1
    seed: int = 0
    cap: int = 150_000
    k: int = 1
    timeout_s: float | None = None

    def __post_init__(self):
        # Field values come straight from untrusted JSON: check types
        # before the range comparisons so a malformed request file
        # surfaces as a clean ValidationError, never a TypeError.
        if not isinstance(self.matrix, str) or not self.matrix:
            raise ValidationError(
                f"matrix must be a non-empty string, got {self.matrix!r}"
            )
        for name in ("count", "seed", "cap", "k"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValidationError(
                    f"{name} must be an integer, got {value!r}"
                )
        if self.timeout_s is not None and (
            isinstance(self.timeout_s, bool)
            or not isinstance(self.timeout_s, (int, float))
        ):
            raise ValidationError(
                f"timeout_s must be a number or null, got {self.timeout_s!r}"
            )
        if self.count < 1:
            raise ValidationError(f"count must be >= 1, got {self.count}")
        if self.seed < 0:
            raise ValidationError(f"seed must be >= 0, got {self.seed}")
        if self.cap < 1:
            raise ValidationError(f"cap must be >= 1, got {self.cap}")
        if self.k < 1:
            raise ValidationError(f"k must be >= 1, got {self.k}")


@dataclass
class ReplayReport:
    """Outcome of one replay run."""

    requests: int
    ok: int
    errors: list[str]
    max_abs_err: float
    wall_s: float
    stats: dict = field(default_factory=dict)

    @property
    def failed(self) -> int:
        return self.requests - self.ok

    def to_dict(self) -> dict:
        return {
            "kind": "replay_report",
            "requests": int(self.requests),
            "ok": int(self.ok),
            "failed": int(self.failed),
            "errors": list(self.errors),
            "max_abs_err": float(self.max_abs_err),
            "wall_s": float(self.wall_s),
            "stats": self.stats,
        }

    def summary(self) -> str:
        cache = self.stats.get("cache", {})
        lines = [
            f"requests : {self.requests} ({self.ok} ok, {self.failed} failed)",
            f"batches  : {self.stats.get('batches', 0)} "
            f"({self.stats.get('batched_requests', 0)} requests coalesced)",
            f"cache    : {cache.get('hits', 0)} hits / "
            f"{cache.get('misses', 0)} misses / "
            f"{cache.get('evictions', 0)} evictions "
            f"({cache.get('total_bytes', 0)} bytes resident)",
            f"shed     : {self.stats.get('shed', 0)}",
            f"max |y - A@x| = {self.max_abs_err:.2e}",
            f"wall     : {self.wall_s:.3f}s",
        ]
        return "\n".join(lines)


def load_requests(path) -> list[ReplaySpec]:
    """Parse a JSON-lines request file (blank lines and ``#`` comments ok)."""
    specs: list[ReplaySpec] = []
    with open(path) as fh:
        for lineno, raw in enumerate(fh, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            try:
                blob = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValidationError(
                    f"{path}:{lineno}: not valid JSON: {exc}"
                ) from exc
            if not isinstance(blob, dict) or "matrix" not in blob:
                raise ValidationError(
                    f"{path}:{lineno}: each line needs a 'matrix' field"
                )
            known = {"matrix", "count", "seed", "cap", "k", "timeout_s"}
            unknown = set(blob) - known
            if unknown:
                raise ValidationError(
                    f"{path}:{lineno}: unknown fields {sorted(unknown)}"
                )
            try:
                specs.append(ReplaySpec(**blob))
            except ValidationError as exc:
                raise ValidationError(f"{path}:{lineno}: {exc}") from exc
            except TypeError as exc:
                # Belt and braces: any type mismatch the spec's own
                # checks don't catch still gets the file:line context.
                raise ValidationError(
                    f"{path}:{lineno}: bad field value: {exc}"
                ) from exc
    if not specs:
        raise ValidationError(f"{path}: no requests found")
    return specs


def _load_matrix(name: str, cap: int):
    from ..matrices import get_spec, read_matrix_market

    if name.endswith(".mtx"):
        return read_matrix_market(name)
    spec = get_spec(name)
    return spec.load(scale=spec.scale_for_nnz(cap))


def run_replay(
    specs,
    server: SpMVServer | None = None,
    *,
    device: str = "gtx680",
    config: ServeConfig | None = None,
    observer=None,
    verify: bool = True,
) -> ReplayReport:
    """Replay ``specs`` (a path or a list of :class:`ReplaySpec`).

    Requests of each line are submitted back to back and the server is
    drained between lines only when threadless, so a threaded server
    sees realistic concurrent pressure.  With ``verify`` every response
    is checked against ``A @ x`` (tolerance 1e-9 relative).

    ``server`` may also be a :class:`~repro.serve.ServeFabric` -- it
    exposes the same ``submit``/``drain``/``stats`` surface, so replays
    drive the sharded path unchanged (``repro serve --shards N``).
    """
    if isinstance(specs, (str, bytes)) or hasattr(specs, "__fspath__"):
        specs = load_requests(specs)
    owns_server = server is None
    if owns_server:
        from ..core.engine import SpMVEngine

        server = SpMVServer(
            SpMVEngine(device=device),
            config,
            observer=observer,
            start=False,
        )
    matrices: dict[tuple[str, int], object] = {}
    pending: list[tuple[object, np.ndarray, object]] = []
    t0 = time.perf_counter()
    errors: list[str] = []
    attempted = 0
    try:
        for spec in specs:
            mkey = (spec.matrix, spec.cap)
            if mkey not in matrices:
                matrices[mkey] = _load_matrix(spec.matrix, spec.cap)
            A = matrices[mkey]
            rng = np.random.default_rng(spec.seed)
            for _ in range(spec.count):
                if spec.k == 1:
                    x = rng.standard_normal(A.shape[1])
                else:
                    x = rng.standard_normal((A.shape[1], spec.k))
                attempted += 1
                try:
                    fut = server.submit(A, x, timeout_s=spec.timeout_s)
                except ReproError as exc:
                    errors.append(f"{spec.matrix}: {type(exc).__name__}: {exc}")
                    continue
                pending.append((A, x, fut))
        if server._thread is None:
            server.drain()
        n_ok = 0
        max_err = 0.0
        for A, x, fut in pending:
            try:
                resp = fut.result(timeout=120.0)
            except ReproError as exc:
                errors.append(f"{type(exc).__name__}: {exc}")
                continue
            n_ok += 1
            if verify:
                ref = A @ x
                max_err = max(max_err, float(np.abs(resp.y - ref).max(initial=0.0)))
    finally:
        if owns_server:
            server.close()
    wall = time.perf_counter() - t0
    return ReplayReport(
        requests=attempted,
        ok=n_ok,
        errors=errors,
        max_abs_err=max_err,
        wall_s=wall,
        stats=server.stats(),
    )
