"""Thread-safe concurrent serving layer over :class:`repro.SpMVEngine`.

The engine's entry points are single-caller: every caller pays its own
prepare (tuning + conversion) and its own kernel dispatch.  At serving
scale both costs amortize -- the paper's perfect-load-balance argument
only pays off when the framework is fed batches, and CB-SpMV/CMRS show
that blocking overheads and conversion cost must be amortized across
requests, not repaid per call.  :class:`SpMVServer` adds the three
pieces a production front-end needs:

* **micro-batching** -- concurrent single-vector requests against the
  same matrix are coalesced (time window + max batch) into one
  :meth:`YaSpMMKernel.run_multi` SpMM dispatch, which reads the matrix
  stream once for the whole batch; requests whose shapes cannot batch
  fall back to per-vector :meth:`~repro.SpMVEngine.multiply`;
* **prepared-matrix caching** -- an LRU :class:`~repro.serve.cache.
  PreparedCache` bounded by a byte budget (footprints from the format
  layer's own accounting), so a hot matrix is tuned and converted once;
* **admission control** -- a bounded queue that sheds with a typed
  :class:`~repro.errors.ServerOverloadedError`, a per-request
  :class:`~repro.fault.Deadline`, and optional
  :class:`~repro.fault.RetryPolicy` / :class:`~repro.fault.
  CircuitBreaker` containment around every dispatch.

Batched and sequential execution are **bit-identical**: the SpMM path
performs, per column, exactly the floating-point operations of the
single-vector kernel (the differential test harness pins this under
every format/strategy/fault combination).

Everything is observable through ``serve.*`` spans and metrics on the
ambient observer (``repro serve``/``repro profile`` surface them).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..core.engine import PreparedMatrix, SpMVEngine, SpMVResult
from ..errors import (
    DeadlineExceeded,
    ReproError,
    ServeTimeout,
    ServerClosedError,
    ServerOverloadedError,
    ValidationError,
)
from ..fault.retry import CircuitBreaker, Deadline, RetryPolicy
from ..obs import obs_scope
from ..tuning.persistence import matrix_fingerprint
from ..util import as_csr
from .cache import PreparedCache

__all__ = [
    "ServeConfig",
    "ServeResponse",
    "ServeFuture",
    "SpMVServer",
    "serve_key",
]


def _values_digest(csr) -> str:
    """Hash of the nonzero values -- the part ``matrix_fingerprint`` omits.

    Tuning depends only on structure, so the tuning store's fingerprint
    deliberately excludes values; a *served* answer depends on them.  The
    serve key therefore combines both, so two matrices with identical
    sparsity but different values (the iterative-solver refresh pattern)
    never share a cache entry or a coalesced batch.
    """
    data = np.ascontiguousarray(csr.data, dtype=np.float64)
    return hashlib.sha256(data.tobytes()).hexdigest()[:16]


def serve_key(engine: SpMVEngine, csr) -> str:
    """The value-aware serve key of ``csr`` on ``engine``.

    ``device:tuning_mode:structural-fingerprint:value-hash`` -- the key
    the server's cache and batch coalescing use, and the key the fabric
    consistent-hashes to pick a shard.  Every shard of a fabric runs the
    same device model and tuning mode, so the fabric-level key matches
    the one each shard computes for itself.
    """
    return (
        f"{engine.device.name}:{engine.tuning_mode}:"
        f"{matrix_fingerprint(csr)}:{_values_digest(csr)}"
    )


@dataclass(frozen=True)
class ServeConfig:
    """Backpressure and batching knobs of one :class:`SpMVServer`.

    Attributes
    ----------
    max_batch:
        Largest number of single-vector requests coalesced into one SpMM
        dispatch.
    batch_window_s:
        After the first request of a batch is picked up, how long the
        dispatcher keeps the batch open for same-matrix arrivals.  ``0``
        coalesces only what is already queued (deterministic; what the
        tests use).
    queue_depth:
        Bounded-queue admission limit; a submit beyond it raises
        :class:`~repro.errors.ServerOverloadedError` (load shedding).
    cache_budget_bytes:
        Byte budget of the prepared-matrix LRU cache (``None`` =
        unbounded).
    default_timeout_s:
        Deadline applied to requests that don't carry their own
        (``None`` = no deadline).
    """

    max_batch: int = 32
    batch_window_s: float = 0.002
    queue_depth: int = 256
    cache_budget_bytes: int | None = 256 << 20
    default_timeout_s: float | None = None

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValidationError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.batch_window_s < 0:
            raise ValidationError(
                f"batch_window_s must be >= 0, got {self.batch_window_s}"
            )
        if self.queue_depth < 1:
            raise ValidationError(
                f"queue_depth must be >= 1, got {self.queue_depth}"
            )


@dataclass
class ServeResponse:
    """One request's answer: the product vector plus serving context."""

    y: np.ndarray
    #: The (possibly shared) execution profile.  For a coalesced batch
    #: every member references the same batch-level :class:`SpMVResult`.
    result: SpMVResult
    batched: bool
    batch_size: int
    cache_hit: bool
    queue_wait_s: float
    #: Set by the sharded fabric: which shard served the request, and
    #: how many failovers (replays on a successor shard) it survived.
    #: ``None``/``0`` for a plain single-server response.
    shard: str | None = None
    failovers: int = 0

    def to_dict(self) -> dict:
        return {
            "kind": "serve_response",
            "batched": bool(self.batched),
            "batch_size": int(self.batch_size),
            "cache_hit": bool(self.cache_hit),
            "queue_wait_s": float(self.queue_wait_s),
            "shard": self.shard,
            "failovers": int(self.failovers),
            "result": self.result.to_dict(),
        }


class ServeFuture:
    """Completion handle for one submitted request."""

    __slots__ = ("_event", "_response", "_error")

    def __init__(self):
        self._event = threading.Event()
        self._response: ServeResponse | None = None
        self._error: BaseException | None = None

    def _complete(self, response: ServeResponse) -> None:
        self._response = response
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> ServeResponse:
        """Block until the response is ready; re-raises server-side errors.

        An exhausted ``timeout`` raises :class:`~repro.errors.
        ServeTimeout` (a ``TimeoutError`` subclass): the *wait* expired,
        not the request -- distinguishable from a shard failure or a
        server-side :class:`~repro.errors.DeadlineExceeded`, which the
        fabric's failover logic must treat differently.
        """
        if not self._event.wait(timeout):
            raise ServeTimeout(
                f"request not completed within the {timeout}s wait "
                f"(it may still complete; the server-side deadline is "
                f"separate)",
                waited_s=timeout,
            )
        if self._error is not None:
            raise self._error
        return self._response

    def exception(self, timeout: float | None = None) -> BaseException | None:
        if not self._event.wait(timeout):
            raise ServeTimeout(
                f"request not completed within the {timeout}s wait",
                waited_s=timeout,
            )
        return self._error


@dataclass
class _Request:
    key: str
    matrix: object
    prepared: PreparedMatrix | None
    x: np.ndarray
    deadline: Deadline | None
    future: ServeFuture
    enqueued_at: float
    #: 1-D requests coalesce; 2-D (multi-RHS) requests dispatch solo.
    batchable: bool = field(default=True)


class SpMVServer:
    """Concurrent SpMV front-end: micro-batching + caching + backpressure.

    Parameters
    ----------
    engine:
        The :class:`~repro.SpMVEngine` executing requests.  When omitted
        a default strict engine is built on the ``fast`` backend (the
        bit-identical vectorized path -- serving traffic is exactly the
        repeated-multiply workload it exists for; pass an explicit
        engine to choose differently).  All resilience knobs (fault
        plans, validation, permissive fallback) live on the engine and
        apply unchanged to served requests.
    config:
        A :class:`ServeConfig`; defaults are production-ish.
    retry_policy:
        Optional server-level :class:`~repro.fault.RetryPolicy` wrapped
        around every dispatch (in addition to whatever the engine does
        internally).
    breaker:
        Optional :class:`~repro.fault.CircuitBreaker` keyed by the
        prepared matrix's format family; an open circuit sheds the whole
        batch with :class:`~repro.errors.CircuitOpenError`.
    observer:
        Observer receiving the ``serve.*`` spans and metrics.  Defaults
        to the engine's observer; when given explicitly it is also
        installed on the engine so serve- and engine-level telemetry
        land in one tracer.
    backend:
        Optional :mod:`repro.backends` selection (name or instance)
        installed on the engine -- the serve-layer spelling of
        ``SpMVEngine(backend=...)``, so callers who only hold a server
        can still pick the execution path.  ``None`` leaves the
        engine's backend untouched.
    start:
        ``True`` (default) starts the background dispatcher thread.
        ``False`` runs threadless: callers submit and then invoke
        :meth:`drain` to process synchronously -- the deterministic mode
        the differential tests use.
    clock:
        Injectable monotonic clock for deadlines and the batch window.
    """

    def __init__(
        self,
        engine: SpMVEngine | None = None,
        config: ServeConfig | None = None,
        *,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        observer=None,
        backend=None,
        start: bool = True,
        clock=time.monotonic,
    ):
        self.engine = (
            engine if engine is not None else SpMVEngine(backend="fast")
        )
        if backend is not None:
            # Same install pattern as the observer: the engine is the
            # single execution authority, the server just configures it.
            self.engine.backend = backend
        self.config = config if config is not None else ServeConfig()
        if retry_policy is not None and not isinstance(retry_policy, RetryPolicy):
            raise ValidationError(
                f"retry_policy must be a RetryPolicy or None, "
                f"got {type(retry_policy).__name__}"
            )
        if breaker is not None and not isinstance(breaker, CircuitBreaker):
            raise ValidationError(
                f"breaker must be a CircuitBreaker or None, "
                f"got {type(breaker).__name__}"
            )
        self.retry_policy = retry_policy
        self.breaker = breaker
        if observer is not None:
            # One tracer for both layers: serve.batch spans contain the
            # engine.prepare/multiply spans they trigger.
            self.engine.observer = observer
        self.obs = observer if observer is not None else self.engine.observer
        self.cache = PreparedCache(self.config.cache_budget_bytes)
        self._clock = clock
        self._sleep = time.sleep
        self._queue: deque[_Request] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._in_flight = 0
        # Plain-int mirrors of the serve.* counters so a server without
        # an observer still reports; guarded by _cond's lock.
        self.n_requests = 0
        self.n_responses = 0
        self.n_shed = 0
        self.n_batches = 0
        self.n_batched_requests = 0
        self.n_batch_fallbacks = 0
        self.n_deadline_expired = 0
        self.n_breaker_rejections = 0
        self.n_internal_errors = 0
        self._thread: threading.Thread | None = None
        if start:
            self._thread = threading.Thread(
                target=self._run, name="spmv-serve-dispatch", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------ #
    # Submission side
    # ------------------------------------------------------------------ #

    def submit(
        self,
        matrix,
        x: np.ndarray,
        *,
        timeout_s: float | None = None,
    ) -> ServeFuture:
        """Enqueue one request ``y = A @ x``; returns a future.

        ``matrix`` is a scipy sparse matrix (prepared through the cache,
        once per distinct structure *and* value set -- cached entries
        embed values, so a value refresh re-prepares) or an explicit
        :class:`~repro.core.engine.PreparedMatrix` (admitted into the
        cache as-is).  ``x`` is a single vector (coalescible) or a 2-D
        ``(ncols, k)`` block (dispatched solo through ``multiply_many``).

        Raises :class:`~repro.errors.ServerOverloadedError` when the
        bounded queue is full and :class:`~repro.errors.ServerClosedError`
        after :meth:`close`.
        """
        prepared: PreparedMatrix | None = None
        if isinstance(matrix, PreparedMatrix):
            prepared = matrix
            ncols = prepared.fmt.ncols
            source = prepared.reference_csr()
        else:
            ncols = matrix.shape[1]
            source = matrix
        x = np.asarray(x, dtype=np.float64)
        if x.ndim not in (1, 2):
            raise ValidationError(
                f"x must be a vector or a (ncols, k) block, got shape {x.shape}"
            )
        if x.shape[0] != ncols:
            raise ValidationError(
                f"x has {x.shape[0]} rows, matrix has {ncols} columns"
            )
        csr = as_csr(source)
        key = serve_key(self.engine, csr)
        timeout = timeout_s if timeout_s is not None else self.config.default_timeout_s
        deadline = None if timeout is None else Deadline(timeout, clock=self._clock)
        future = ServeFuture()
        request = _Request(
            key=key,
            matrix=csr,
            prepared=prepared,
            x=x,
            deadline=deadline,
            future=future,
            enqueued_at=self._clock(),
            batchable=x.ndim == 1,
        )
        with self._cond:
            if self._closed:
                raise ServerClosedError("server is closed; request refused")
            if len(self._queue) >= self.config.queue_depth:
                self.n_shed += 1
                self.obs.counter(
                    "serve.shed", "requests refused by admission control"
                ).inc()
                raise ServerOverloadedError(
                    f"queue depth {self.config.queue_depth} reached; "
                    f"request shed (retry with backoff)",
                    queue_depth=self.config.queue_depth,
                    pending=len(self._queue),
                )
            self._queue.append(request)
            self.n_requests += 1
            self.obs.counter("serve.requests", "requests admitted").inc()
            self.obs.gauge("serve.queue.depth", "queued requests").set(
                len(self._queue)
            )
            self._cond.notify_all()
        return future

    def multiply(
        self, matrix, x: np.ndarray, *, timeout_s: float | None = None
    ) -> ServeResponse:
        """Blocking convenience: :meth:`submit` + wait for the result."""
        future = self.submit(matrix, x, timeout_s=timeout_s)
        if self._thread is None:
            self.drain()
        return future.result()

    def queue_depth(self) -> int:
        """Requests currently queued (admission-side occupancy).

        Public load signal for the fabric's busiest-shard picks and the
        autoscaler's pressure metric; :class:`~repro.serve.ProcessShard`
        exposes the same method, so callers never reach into queue
        internals.
        """
        with self._cond:
            return len(self._queue)

    def prime(self, prepared: PreparedMatrix) -> str:
        """Admit a prepared matrix into the cache ahead of traffic.

        Computes the value-aware serve key and installs ``prepared``
        under it unless an entry is already resident (a later submit of
        the same matrix is then a cache hit from the first request).
        Returns the key.  This is the solver sessions' value-refresh
        hook: an :meth:`SpMVEngine.update_values` result gets a *new*
        key (its value digest changed), so priming never clobbers the
        previous values' entry.
        """
        if not isinstance(prepared, PreparedMatrix):
            raise ValidationError(
                f"prime needs a PreparedMatrix, got {type(prepared).__name__}"
            )
        key = serve_key(self.engine, prepared.reference_csr())
        if self.cache.peek(key) is None:
            self.cache.put(key, prepared)
        return key

    # ------------------------------------------------------------------ #
    # Dispatch side
    # ------------------------------------------------------------------ #

    def _run(self) -> None:
        """Dispatcher-thread main loop."""
        while True:
            batch = self._next_batch(wait=True)
            if batch is None:
                return
            self._dispatch(batch)

    def drain(self) -> int:
        """Process queued requests on the calling thread; returns count.

        The threadless (``start=False``) processing mode: batches are
        formed from whatever is queued (the window never waits, since no
        concurrent arrivals are possible) and dispatched synchronously.
        With a dispatcher thread running, ``drain`` instead blocks until
        the queue is empty and no batch is in flight.
        """
        if self._thread is not None:
            with self._cond:
                while self._queue or self._in_flight:
                    self._cond.wait(0.01)
            return 0
        done = 0
        while True:
            batch = self._next_batch(wait=False)
            if batch is None:
                return done
            done += len(batch)
            self._dispatch(batch)

    def _next_batch(self, wait: bool) -> list[_Request] | None:
        """Pop the next micro-batch: same-key 1-D requests coalesced.

        Returns ``None`` when the server is closed and the queue empty
        (or, with ``wait=False``, when the queue is simply empty).
        """
        cfg = self.config
        with self._cond:
            while not self._queue:
                if self._closed or not wait:
                    return None
                self._cond.wait()
            first = self._queue.popleft()
            # Claim the in-flight slot before any window wait below
            # releases the lock: a concurrent drain() must never observe
            # an empty queue with popped-but-undispatched requests.
            self._in_flight += 1
            batch = [first]
            if first.batchable:
                window_end = self._clock() + cfg.batch_window_s
                while len(batch) < cfg.max_batch:
                    for r in list(self._queue):
                        if r.batchable and r.key == first.key:
                            self._queue.remove(r)
                            batch.append(r)
                            if len(batch) >= cfg.max_batch:
                                break
                    if len(batch) >= cfg.max_batch:
                        break
                    remaining = window_end - self._clock()
                    if remaining <= 0 or self._closed or not wait:
                        break
                    self._cond.wait(remaining)
            self.obs.gauge("serve.queue.depth", "queued requests").set(
                len(self._queue)
            )
        return batch

    def _finish(self, request: _Request, error: BaseException | None,
                response: ServeResponse | None) -> None:
        """Complete one future and count the response."""
        if error is not None:
            request.future._fail(error)
        else:
            request.future._complete(response)
        with self._cond:
            self.n_responses += 1
        self.obs.counter(
            "serve.responses", "requests completed (success or typed error)"
        ).inc()

    def _dispatch(self, batch: list[_Request]) -> None:
        obs = self.obs
        try:
            with obs_scope(obs), obs.span(
                "serve.batch", key=batch[0].key[-12:], size=len(batch)
            ) as sp:
                self._dispatch_inner(batch, sp)
        except BaseException as exc:
            # The dispatcher must never die with futures pending: an
            # unexpected (non-ReproError) exception would otherwise kill
            # the dispatch thread and leave every queued result() caller
            # blocked forever.  Resolve the batch with the error -- it
            # reaches callers through their futures -- and keep serving.
            with self._cond:
                self.n_internal_errors += 1
            obs.counter(
                "serve.internal_errors",
                "dispatches that failed with an unexpected exception",
            ).inc()
            for r in batch:
                if not r.future.done():
                    self._finish(r, exc, None)
        finally:
            with self._cond:
                self._in_flight -= 1
                self._cond.notify_all()

    def _dispatch_inner(self, batch: list[_Request], sp) -> None:
        obs = self.obs
        now = self._clock()

        live: list[_Request] = []
        for r in batch:
            if r.deadline is not None and r.deadline.expired():
                with self._cond:
                    self.n_deadline_expired += 1
                obs.counter(
                    "serve.deadline_expiries",
                    "requests expired before dispatch",
                ).inc()
                self._finish(r, DeadlineExceeded(
                    f"request deadline of {r.deadline.seconds:.3f}s expired "
                    f"while queued",
                    label="serve queue",
                    budget_s=r.deadline.seconds,
                ), None)
            else:
                live.append(r)
        sp.set(live=len(live))
        if not live:
            return

        # -- prepared-matrix cache: one logical lookup per request, so
        # hits + misses always reconciles with the admitted request
        # count; the first miss pays the prepare, the rest of the batch
        # hits the entry it just created.
        key = live[0].key
        prepared: PreparedMatrix | None = None
        hit_flags: list[bool] = []
        hits0, misses0, evict0 = (
            self.cache.hits, self.cache.misses, self.cache.evictions,
        )
        try:
            for r in live:
                found = self.cache.get(key)
                if found is None:
                    if prepared is not None:
                        found = prepared
                    elif r.prepared is not None:
                        found = r.prepared
                    else:
                        found = self.engine.prepare(r.matrix)
                    self.cache.put(key, found)
                    hit_flags.append(False)
                else:
                    hit_flags.append(True)
                prepared = found
        except ReproError as exc:
            for r in live:
                self._finish(r, exc, None)
            return
        finally:
            obs.counter("serve.cache.hits", "prepared-cache hits").inc(
                self.cache.hits - hits0
            )
            obs.counter("serve.cache.misses", "prepared-cache misses").inc(
                self.cache.misses - misses0
            )
            obs.counter(
                "serve.cache.evictions", "prepared-cache evictions"
            ).inc(self.cache.evictions - evict0)
            obs.gauge(
                "serve.cache.bytes", "prepared-cache resident footprint"
            ).set(self.cache.total_bytes)
        sp.set(cache_hit=hit_flags[0], format=prepared.point.format_name)

        # -- circuit breaker keyed by format family.
        family = prepared.point.format_name
        if self.breaker is not None:
            try:
                self.breaker.check(family)
            except ReproError as exc:
                with self._cond:
                    self.n_breaker_rejections += len(live)
                obs.counter(
                    "serve.breaker_rejections",
                    "requests shed on an open circuit",
                ).inc(len(live))
                for r in live:
                    self._finish(r, exc, None)
                return

        # -- execute: one SpMM dispatch per device-sized chunk.  The
        # SpMM kernel's k-wide partial sums scale the per-workgroup
        # shared memory, so a coalesced batch wider than the device
        # allows would be rejected; chunking to the limit keeps every
        # dispatch on the amortized path.
        max_k = self.engine.max_batch_width(prepared)
        if len(live) > max_k:
            obs.counter(
                "serve.batch_splits",
                "batches split to the device's shared-memory width limit",
            ).inc()
            sp.set(split_k=max_k)
        for start in range(0, len(live), max_k):
            self._execute_chunk(
                live[start : start + max_k],
                hit_flags[start : start + max_k],
                prepared,
                family,
                now,
            )

    def _execute_chunk(
        self,
        live: list[_Request],
        hit_flags: list[bool],
        prepared: PreparedMatrix,
        family: str,
        now: float,
    ) -> None:
        """Run one device-sized chunk and complete its futures."""
        obs = self.obs

        def run_batch() -> SpMVResult:
            if len(live) == 1:
                r = live[0]
                if r.x.ndim == 2:
                    return self.engine.multiply_many(prepared, r.x)
                return self.engine.multiply(prepared, r.x)
            return self.engine.multiply_many(prepared, [r.x for r in live])

        try:
            if self.retry_policy is not None:
                result = self.retry_policy.call(
                    run_batch,
                    retry_on=(ReproError,),
                    sleep=self._sleep,
                    on_retry=lambda attempt, exc: obs.counter(
                        "serve.retry.attempts", "server-level dispatch retries"
                    ).inc(),
                )
            else:
                result = run_batch()
        except ReproError as exc:
            if self.breaker is not None:
                self.breaker.record_failure(family)
            if len(live) == 1:
                self._finish(live[0], exc, None)
                return
            # Containment: one poisoned batch member must not fail the
            # rest -- retry each request alone through the engine.
            with self._cond:
                self.n_batch_fallbacks += 1
            obs.counter(
                "serve.batch_fallbacks",
                "coalesced batches re-run per-vector after a failure",
            ).inc()
            for r, was_hit in zip(live, hit_flags):
                try:
                    res = self.engine.multiply(prepared, r.x)
                except ReproError as single_exc:
                    self._finish(r, single_exc, None)
                else:
                    self._finish(r, None, ServeResponse(
                        y=res.y,
                        result=res,
                        batched=False,
                        batch_size=1,
                        cache_hit=was_hit,
                        queue_wait_s=now - r.enqueued_at,
                    ))
            return
        if self.breaker is not None:
            self.breaker.record_success(family)
            obs.gauge(
                "breaker.state",
                "per-family circuit state (0=closed, 1=half-open, 2=open)",
            ).set(self.breaker.state_value(family), family=family)

        # -- split and complete.
        k = len(live)
        with self._cond:
            self.n_batches += 1
            if k > 1:
                self.n_batched_requests += k
        obs.counter("serve.batches", "dispatches (batched or solo)").inc()
        obs.histogram(
            "serve.batch_size", "requests per dispatch",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        ).observe(k)
        if k > 1:
            obs.counter(
                "serve.batched_requests", "requests served via coalesced SpMM"
            ).inc(k)
        for j, (r, was_hit) in enumerate(zip(live, hit_flags)):
            if k == 1:
                y = result.y
            else:
                y = np.ascontiguousarray(result.y[:, j])
            self._finish(r, None, ServeResponse(
                y=y,
                result=result,
                batched=k > 1,
                batch_size=k,
                cache_hit=was_hit,
                queue_wait_s=now - r.enqueued_at,
            ))

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self, drain: bool = True) -> None:
        """Stop accepting requests; optionally finish the queued ones.

        With ``drain=True`` (default) everything already queued is
        processed before shutdown; with ``drain=False`` queued futures
        fail with :class:`~repro.errors.ServerClosedError` -- no
        ``result()`` caller is ever left blocked.  Idempotent.
        """
        if not drain:
            self.kill()
            return
        with self._cond:
            already = self._closed
            self._closed = True
            self._cond.notify_all()
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        elif not already:
            self.drain()

    def kill(self, error: BaseException | None = None) -> int:
        """Abrupt shutdown: refuse new work, fail everything queued.

        Every still-queued future is failed with ``error`` (default a
        :class:`~repro.errors.ServerClosedError`); a batch already
        popped by the dispatcher still completes (its requests are
        mid-flight, exactly like a real process would finish the work
        already on the device).  The prepared cache is dropped -- a
        killed shard loses its device memory, so a later restart
        re-prepares.  Returns the number of futures failed.  This is
        what the fabric's ``serve.shard_crash`` fault site calls, with a
        :class:`~repro.errors.ShardCrashError` to fail with.
        """
        if error is None:
            error = ServerClosedError(
                "server closed before the request was dispatched"
            )
        with self._cond:
            self._closed = True
            doomed = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        for r in doomed:
            self._finish(r, error, None)
        if self._thread is not None:
            self._thread.join()
            self._thread = None
        self.cache.clear()
        return len(doomed)

    def __enter__(self) -> "SpMVServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """JSON-able snapshot of the serving counters + cache state."""
        with self._cond:
            snap = {
                "requests": self.n_requests,
                "responses": self.n_responses,
                "shed": self.n_shed,
                "batches": self.n_batches,
                "batched_requests": self.n_batched_requests,
                "batch_fallbacks": self.n_batch_fallbacks,
                "deadline_expiries": self.n_deadline_expired,
                "breaker_rejections": self.n_breaker_rejections,
                "internal_errors": self.n_internal_errors,
                "queued": len(self._queue),
            }
        snap["cache"] = self.cache.stats()
        return snap
