"""Worker-pool supervision and metric-driven replica autoscaling.

The :class:`~repro.serve.ProcessShard` knows how to *die* well (typed
failures, exit codes, hang SIGKILLs); this module owns coming *back*:

* :class:`ShardSupervisor` -- ticked once per fabric pump round, it
  heartbeats every live worker against a miss budget, detects exits
  (SIGKILL shows up as a negative exit code), respawns dead workers
  under a :class:`~repro.fault.RetryPolicy` backoff schedule (re-warming
  the value-aware cache keys each worker owned, with the
  ``serve.arena_lost`` CSR-reship fallback), reaps shared-memory
  segments orphaned by the death (:func:`repro.core.shm.reap_orphans`),
  and -- when a worker exhausts its restart budget -- **degrades** the
  shard to an in-process :class:`~repro.serve.SpMVServer` on the same
  engine, so the replica keeps serving bit-identical answers with a
  logged reason instead of silently shrinking the fleet.
* :class:`Autoscaler` -- a deterministic policy loop over the load
  signals the fabric already exports (queue depth, in-flight count,
  breaker state, :meth:`ShardHealth.p99_latency_s`): sustained pressure
  for ``up_after`` rounds grows the replica set toward ``max_shards``,
  sustained idleness for ``down_after`` rounds shrinks it toward
  ``min_shards``, and a post-action cooldown plus the two counters give
  hysteresis so the fleet never flaps.  Every round appends a decision
  record, so a seeded drill can assert the exact scaling trajectory.

Both are plain deterministic state machines driven by the fabric's pump
(no timers of their own), which is what keeps chaos drills replayable:
the same seeded fault plan against the same workload produces the same
kills, the same restarts and the same scale decisions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import ValidationError
from ..fault.injection import active_plan
from ..fault.retry import RetryPolicy
from .workers import ProcessShard

__all__ = [
    "SupervisorConfig",
    "ShardSupervisor",
    "AutoscalePolicy",
    "Autoscaler",
]


@dataclass(frozen=True)
class SupervisorConfig:
    """Heartbeat and restart knobs of one :class:`ShardSupervisor`.

    Attributes
    ----------
    miss_budget:
        Consecutive supervision ticks a worker may leave a heartbeat
        unanswered before it is declared hung and SIGKILLed.  A busy
        worker answers pings between requests, so the budget only
        penalizes genuine silence.
    restart_policy:
        :class:`~repro.fault.RetryPolicy` governing respawns of one
        worker: ``max_attempts`` failed respawns in a row degrade the
        shard to in-process, ``delay_s(attempt)`` spaces the attempts
        (deterministic seeded jitter, like every other backoff in the
        repo).
    reap_orphans:
        Whether a detected worker death also triggers a shared-memory
        orphan scan (:func:`repro.core.shm.reap_orphans`).
    """

    miss_budget: int = 3
    restart_policy: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=3, base_delay_s=0.05, max_delay_s=1.0
        )
    )
    reap_orphans: bool = True

    def __post_init__(self):
        if self.miss_budget < 1:
            raise ValidationError(
                f"miss_budget must be >= 1, got {self.miss_budget}"
            )


class _WorkerState:
    """Supervision bookkeeping for one worker shard."""

    __slots__ = ("misses", "restart_attempts", "next_restart_at",
                 "degraded")

    def __init__(self):
        self.misses = 0
        self.restart_attempts = 0
        self.next_restart_at = 0.0
        self.degraded = False


class ShardSupervisor:
    """Owns the worker pool's liveness: heartbeats, restarts, degrade.

    The fabric calls :meth:`tick` at the top of every pump round with
    its current shard list; everything else is driven from there.  The
    supervisor never *routes* -- it only flips each shard's
    ``server`` between down / respawned / degraded states and leaves
    traffic decisions to the fabric's forwarding and breaker logic.

    Parameters
    ----------
    config:
        :class:`SupervisorConfig`.
    degrade_factory:
        ``f(shard) -> server`` building the in-process fallback server
        when a worker exhausts its restart budget.  Supplied by the
        fabric (it knows the serve config and clock); ``None`` disables
        degraded mode (the shard just stays down).
    observer:
        Receives ``supervisor.*`` counters.
    clock:
        Injectable monotonic clock for backoff spacing.
    """

    def __init__(
        self,
        config: SupervisorConfig | None = None,
        *,
        degrade_factory=None,
        observer=None,
        clock=time.monotonic,
    ):
        self.config = config if config is not None else SupervisorConfig()
        self.degrade_factory = degrade_factory
        self.obs = observer
        self._clock = clock
        self._states: dict[str, _WorkerState] = {}
        #: Append-only decision log: dicts with ``action`` in
        #: {"hang_kill", "restart", "restart_failed", "degrade", "reap"}.
        self.decisions: list[dict] = []
        # Lifetime counters.
        self.n_restarts = 0
        self.n_degraded = 0
        self.n_hang_kills = 0
        self.n_reaped = 0
        self.n_arena_lost = 0

    def _state(self, name: str) -> _WorkerState:
        state = self._states.get(name)
        if state is None:
            state = self._states[name] = _WorkerState()
        return state

    def _count(self, metric: str, help_text: str, **labels) -> None:
        if self.obs is not None:
            self.obs.counter(metric, help_text).inc(**labels)

    def _log(self, action: str, shard: str, **detail) -> None:
        self.decisions.append({"action": action, "shard": shard, **detail})

    # ------------------------------------------------------------------ #
    # The tick
    # ------------------------------------------------------------------ #

    def tick(self, shards) -> None:
        """One supervision round over ``shards`` (fabric ``_Shard`` list).

        Order: collect replies / heartbeat verdicts for live workers,
        SIGKILL the ones over the miss budget, then drive dead workers
        through the restart -> backoff -> degrade ladder.
        """
        for shard in shards:
            worker = shard.server
            if not isinstance(worker, ProcessShard):
                continue
            if shard.dead or getattr(shard, "retired", False):
                continue  # fabric-level kill or scale-down; not ours to heal
            state = self._state(shard.name)
            if worker.alive:
                self._heartbeat(shard, worker, state)
            if not worker.alive and not state.degraded:
                self._heal(shard, worker, state)

    def _heartbeat(self, shard, worker: ProcessShard, state: _WorkerState) -> None:
        worker.pump_replies()
        if worker.pong_seq >= worker.ping_seq:
            state.misses = 0
        else:
            state.misses += 1
            if state.misses > self.config.miss_budget:
                self.n_hang_kills += 1
                self._count(
                    "supervisor.hang_kills",
                    "workers SIGKILLed after exhausting the heartbeat miss budget",
                    shard=shard.name,
                )
                self._log(
                    "hang_kill", shard.name,
                    misses=state.misses,
                    budget=self.config.miss_budget,
                )
                worker.kill_process()
                state.misses = 0
                return
        worker.ping()

    def _heal(self, shard, worker: ProcessShard, state: _WorkerState) -> None:
        policy = self.config.restart_policy
        if state.restart_attempts >= policy.max_attempts:
            self._degrade(shard, worker, state)
            return
        now = self._clock()
        if now < state.next_restart_at:
            return  # backoff not yet elapsed; try again next tick
        if self.config.reap_orphans:
            self._reap(shard.name)
        exit_code = worker.last_exit_code
        plan = active_plan()
        if plan is not None and worker._primed and plan.arena_lost():
            # The serve.arena_lost fault site: unlink one warm key's
            # segment before the re-prime, so the child's attach fails
            # and the CSR-reship fallback is exercised for real.
            victim = next(iter(worker._primed.values()))
            if victim.arena is not None:
                try:
                    victim.arena._shm.unlink()
                except FileNotFoundError:
                    pass
                self.n_arena_lost += 1
                self._count(
                    "supervisor.arena_lost",
                    "shared arenas found missing at restart re-prime time",
                    shard=shard.name,
                )
        try:
            state.restart_attempts += 1
            mode = worker.respawn()
        except Exception as exc:
            state.next_restart_at = now + policy.delay_s(state.restart_attempts)
            self._count(
                "supervisor.restart_failures",
                "worker respawn attempts that failed",
                shard=shard.name,
            )
            self._log(
                "restart_failed", shard.name,
                attempt=state.restart_attempts,
                error=f"{type(exc).__name__}: {exc}",
                retry_in_s=round(state.next_restart_at - now, 4),
            )
            if state.restart_attempts >= policy.max_attempts:
                self._degrade(shard, worker, state)
            return
        state.restart_attempts = 0
        state.next_restart_at = 0.0
        state.misses = 0
        self.n_restarts += 1
        self._count(
            "supervisor.restarts", "workers respawned after death",
            shard=shard.name,
        )
        self._log(
            "restart", shard.name,
            exit_code=exit_code,
            warm_mode=mode,
            pid=worker.pid,
        )

    def _degrade(self, shard, worker: ProcessShard, state: _WorkerState) -> None:
        if state.degraded:
            return
        state.degraded = True
        reason = (
            f"respawn failed {self.config.restart_policy.max_attempts} "
            f"time(s); falling back to an in-process shard"
        )
        if self.degrade_factory is None:
            self._log("degrade", shard.name, reason=reason, applied=False)
            return
        fallback = self.degrade_factory(shard)
        # Re-warm the fallback with the worker's parent-side handles so
        # degraded serving stays cache-hot and bit-identical.
        for prepared in worker._primed.values():
            fallback.prime(prepared)
        shard.server = fallback
        self.n_degraded += 1
        self._count(
            "supervisor.degraded",
            "shards degraded to in-process after exhausting restarts",
            shard=shard.name,
        )
        self._log("degrade", shard.name, reason=reason, applied=True)

    def _reap(self, shard_name: str) -> None:
        from ..core.shm import reap_orphans

        reaped = reap_orphans()
        if reaped:
            self.n_reaped += len(reaped)
            self._count(
                "arena.reaped",
                "orphaned shared-memory segments reclaimed",
                shard=shard_name,
            )
            self._log("reap", shard_name, segments=reaped)

    def stats(self) -> dict:
        """JSON-able snapshot (fabric ``stats()['supervisor']``)."""
        return {
            "restarts": self.n_restarts,
            "degraded": self.n_degraded,
            "hang_kills": self.n_hang_kills,
            "reaped": self.n_reaped,
            "arena_lost": self.n_arena_lost,
            "decisions": list(self.decisions),
        }


# ---------------------------------------------------------------------- #
# Autoscaling
# ---------------------------------------------------------------------- #


@dataclass(frozen=True)
class AutoscalePolicy:
    """Thresholds and hysteresis of the replica autoscaler.

    Attributes
    ----------
    min_shards / max_shards:
        The replica count is kept in this band; scaling never removes
        the last ``min_shards`` replicas no matter how idle the fleet.
    high_load:
        Per-replica load (queued + in-flight, divided by live replicas)
        at or above which a round counts as *pressured*.
    low_load:
        Total load at or below which a round counts as *idle*.
    p99_high_s:
        Worst live-shard p99 latency above which a round counts as
        pressured regardless of queue depth (``None`` disables the
        latency trigger).
    up_after / down_after:
        Consecutive pressured / idle rounds required before acting --
        the hysteresis that keeps a bursty queue from flapping the
        fleet.  Scaling up is deliberately quicker than scaling down.
    cooldown_rounds:
        Rounds after any action during which the autoscaler only
        observes (lets the previous action take effect before judging
        again).
    """

    min_shards: int = 1
    max_shards: int = 4
    high_load: float = 4.0
    low_load: float = 1.0
    p99_high_s: float | None = None
    up_after: int = 1
    down_after: int = 3
    cooldown_rounds: int = 1

    def __post_init__(self):
        if self.min_shards < 1:
            raise ValidationError(
                f"min_shards must be >= 1, got {self.min_shards}"
            )
        if self.max_shards < self.min_shards:
            raise ValidationError(
                f"max_shards must be >= min_shards, got "
                f"{self.max_shards} < {self.min_shards}"
            )
        if self.high_load <= 0:
            raise ValidationError(
                f"high_load must be > 0, got {self.high_load}"
            )
        if self.low_load < 0:
            raise ValidationError(
                f"low_load must be >= 0, got {self.low_load}"
            )
        if self.up_after < 1 or self.down_after < 1:
            raise ValidationError(
                "up_after and down_after must be >= 1, got "
                f"{self.up_after}/{self.down_after}"
            )
        if self.cooldown_rounds < 0:
            raise ValidationError(
                f"cooldown_rounds must be >= 0, got {self.cooldown_rounds}"
            )


class Autoscaler:
    """Deterministic grow/shrink decisions from the fabric's load gauges.

    One :meth:`observe` call per pump round.  The inputs are exactly the
    signals the obs layer already exports -- queue depth and in-flight
    count (``fabric.queued`` / ``fabric.in_flight``), live replica and
    open-breaker counts (``fabric.live_shards``), and the worst
    :meth:`~repro.serve.ShardHealth.p99_latency_s` -- so the scaler adds
    policy, not plumbing.  Every round appends a decision record with
    the observed load and the reason, making scaling trajectories
    assertable in seeded tests.
    """

    def __init__(self, policy: AutoscalePolicy | None = None, *, observer=None):
        self.policy = policy if policy is not None else AutoscalePolicy()
        self.obs = observer
        self.decisions: list[dict] = []
        self.n_scale_ups = 0
        self.n_scale_downs = 0
        self._round = 0
        self._pressured_rounds = 0
        self._idle_rounds = 0
        self._cooldown = 0

    def observe(
        self,
        *,
        queued: int,
        in_flight: int,
        live: int,
        open_breakers: int = 0,
        p99_s: float = 0.0,
    ) -> str | None:
        """Judge one round; returns ``"up"``, ``"down"`` or ``None``.

        The caller (the fabric) owns *applying* the action -- spawning
        or retiring a replica and rebuilding the ring -- so the scaler
        stays a pure, replayable policy function.
        """
        policy = self.policy
        self._round += 1
        total = queued + in_flight
        load = total / max(live, 1)
        pressured = load >= policy.high_load or (
            policy.p99_high_s is not None and p99_s > policy.p99_high_s
        )
        idle = total <= policy.low_load
        action: str | None = None
        reason = "steady"
        if self._cooldown > 0:
            self._cooldown -= 1
            reason = "cooldown"
        else:
            if pressured:
                self._pressured_rounds += 1
                self._idle_rounds = 0
            elif idle:
                self._idle_rounds += 1
                self._pressured_rounds = 0
            else:
                self._pressured_rounds = 0
                self._idle_rounds = 0
            if (
                self._pressured_rounds >= policy.up_after
                and live < policy.max_shards
            ):
                action = "up"
                reason = (
                    f"load {load:.2f}/replica >= {policy.high_load} for "
                    f"{self._pressured_rounds} round(s)"
                )
                if policy.p99_high_s is not None and p99_s > policy.p99_high_s:
                    reason += f"; p99 {p99_s:.4f}s > {policy.p99_high_s}s"
                self.n_scale_ups += 1
            elif (
                self._idle_rounds >= policy.down_after
                and live > policy.min_shards
            ):
                action = "down"
                reason = (
                    f"total load {total} <= {policy.low_load} for "
                    f"{self._idle_rounds} round(s)"
                )
                self.n_scale_downs += 1
            elif pressured:
                reason = f"pressured {self._pressured_rounds}/{policy.up_after}"
            elif idle:
                reason = f"idle {self._idle_rounds}/{policy.down_after}"
        if action is not None:
            self._pressured_rounds = 0
            self._idle_rounds = 0
            self._cooldown = policy.cooldown_rounds
            if self.obs is not None:
                self.obs.counter(
                    "autoscaler.actions", "replica scale decisions"
                ).inc(action=action)
        self.decisions.append({
            "round": self._round,
            "action": action,
            "reason": reason,
            "queued": int(queued),
            "in_flight": int(in_flight),
            "live": int(live),
            "open_breakers": int(open_breakers),
            "load_per_replica": round(load, 4),
            "p99_s": round(float(p99_s), 6),
        })
        return action

    def stats(self) -> dict:
        """JSON-able snapshot (fabric ``stats()['autoscaler']``)."""
        return {
            "scale_ups": self.n_scale_ups,
            "scale_downs": self.n_scale_downs,
            "rounds": self._round,
            "decisions": list(self.decisions),
        }
