"""Out-of-process shard workers: one child process per fabric shard.

An in-process :class:`~repro.serve.SpMVServer` shard dies when the
*simulation* says so; a :class:`ProcessShard` dies when the **kernel**
says so.  Each shard becomes a real forked child running a threadless
``SpMVServer`` behind a duplex pipe, so the fabric's chaos drills can
SIGKILL an actual pid and the supervision story (exit codes, heartbeat
silence, restart-with-backoff, shared-memory re-attachment) is exercised
against genuine process death instead of a flag.

Design constraints, in the order they shaped the protocol:

* **Zero-copy prepared matrices.**  A primed or submitted
  :class:`~repro.core.engine.PreparedMatrix` is moved into a
  :class:`~repro.core.shm.SharedArena` (idempotent) before crossing the
  pipe, so the child attaches the parent's pages from a descriptor
  instead of deserializing the arrays -- the reason PR 7 built
  descriptor pickling.  The parent keeps the handle (``_primed``) so a
  respawned child can be re-warmed with the same keys; if the segment
  has vanished by then (the ``serve.arena_lost`` fault site), the CSR
  arrays are shipped instead and the child re-prepares deterministically
  under the same tuning point.
* **No pipe deadlock.**  The parent bounds in-flight requests
  (``WorkerConfig.max_inflight``) and eagerly drains replies between
  sends, so parent and child are never both blocked writing.
* **Parent-side admission.**  ``submit`` enforces the queue bound and
  raises :class:`~repro.errors.ServerOverloadedError` /
  :class:`~repro.errors.ServerClosedError` synchronously, exactly like
  ``SpMVServer.submit`` -- the fabric's forwarding, probe accounting and
  shed counters work unchanged against a process shard.
* **Typed errors across the pipe.**  A worker-side exception crosses as
  itself when it pickles (every ``repro.errors`` class does -- the
  ``tests/serve/test_pickle_errors.py`` sweep holds that line) and as a
  :class:`~repro.errors.RemoteWorkerError` carrying the original type
  name and full remote traceback when it does not.  A worker failure is
  never an opaque ``PicklingError``.
* **Key-aware resends.**  After the child has served (or been primed
  with) a key, later submits for it send ``operand=None``; the child
  answers from its prepared cache.  If the entry was evicted meanwhile
  the child replies ``needop`` and the parent resends the full operand
  -- at most once per request, so a confused worker cannot loop.

Worker death is detected three ways: a broken pipe on send, an exit
(``Process.is_alive`` / EOF) while waiting for replies, and a reply
timeout (``WorkerConfig.reply_timeout_s``) with the child still alive --
the *hung worker* case, which SIGKILLs the child so the restart starts
clean.  In every case the in-flight futures fail with
:class:`~repro.errors.ShardCrashError` (the fabric replays them on ring
successors) and the shard waits for its
:class:`~repro.serve.ShardSupervisor` to respawn or degrade it.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import threading
import time
import traceback
from collections import deque
from dataclasses import dataclass, replace

import numpy as np

from ..core.engine import PreparedMatrix, SpMVEngine
from ..errors import (
    RemoteWorkerError,
    ServerClosedError,
    ServerOverloadedError,
    ShardCrashError,
    ValidationError,
)
from ..util import as_csr
from .server import ServeConfig, ServeFuture, SpMVServer, serve_key

__all__ = ["WorkerConfig", "ProcessShard"]


@dataclass(frozen=True)
class WorkerConfig:
    """Pipe-protocol and liveness knobs of one :class:`ProcessShard`.

    Attributes
    ----------
    max_inflight:
        Requests allowed on the pipe before the parent must collect a
        reply -- the anti-deadlock bound (parent and child never both
        block writing).
    reply_timeout_s:
        How long :meth:`ProcessShard.drain` waits for any reply from a
        live child before declaring it hung and SIGKILLing it.  This is
        the in-flight half of hang detection; idle-worker silence is the
        supervisor's heartbeat miss budget.
    stop_grace_s:
        Grace period a graceful :meth:`ProcessShard.close` gives the
        child to acknowledge ``stop`` and exit before it is killed.
    """

    max_inflight: int = 8
    reply_timeout_s: float = 5.0
    stop_grace_s: float = 2.0

    def __post_init__(self):
        if self.max_inflight < 1:
            raise ValidationError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.reply_timeout_s <= 0:
            raise ValidationError(
                f"reply_timeout_s must be > 0, got {self.reply_timeout_s}"
            )
        if self.stop_grace_s < 0:
            raise ValidationError(
                f"stop_grace_s must be >= 0, got {self.stop_grace_s}"
            )


def _picklable_error(exc: BaseException) -> BaseException:
    """``exc`` if it survives a pickle round-trip, else a typed wrapper.

    The wrapper preserves the original type name and the remote
    traceback text, so a worker failure always surfaces as a readable,
    typed :class:`~repro.errors.RemoteWorkerError` -- never as the
    parent-side ``PicklingError``/``EOFError`` soup a raw ``send`` of an
    unpicklable exception produces.
    """
    try:
        clone = pickle.loads(pickle.dumps(exc))
        if type(clone) is type(exc):
            return exc
    except Exception:
        pass
    return RemoteWorkerError(
        f"{type(exc).__name__}: {exc}",
        original_type=type(exc).__name__,
        remote_traceback="".join(
            traceback.format_exception(type(exc), exc, exc.__traceback__)
        ),
    )


def _rebuild_csr(data, indices, indptr, shape):
    from scipy import sparse

    return sparse.csr_matrix(
        (np.asarray(data), np.asarray(indices), np.asarray(indptr)),
        shape=tuple(shape),
    )


def _handle_request(conn, server, rid, key, operand, x, timeout_s) -> None:
    try:
        if operand is None:
            operand = server.cache.peek(key)
            if operand is None:
                # Evicted (or never seen): ask the parent to resend the
                # full operand instead of guessing.
                conn.send(("needop", rid))
                return
        future = server.submit(operand, x, timeout_s=timeout_s)
        server.drain()
        error = future.exception(timeout=0)
        if error is not None:
            conn.send(("err", rid, _picklable_error(error)))
            return
        try:
            conn.send(("res", rid, future.result(timeout=0)))
        except Exception as exc:  # unpicklable response payload
            conn.send(("err", rid, _picklable_error(exc)))
    except BaseException as exc:
        try:
            conn.send(("err", rid, _picklable_error(exc)))
        except Exception:  # pragma: no cover - pipe already gone
            pass


def _worker_main(conn, engine, serve_config, name: str) -> None:
    """Child-process request loop: a threadless server behind a pipe.

    Messages in: ``req`` / ``prime`` / ``prime_csr`` / ``ping`` /
    ``hang`` / ``stop``.  Messages out: ``res`` / ``err`` / ``needop`` /
    ``primed`` / ``pong`` / ``stopped``.  Every per-message failure is
    caught and surfaced as a typed reply; only a broken pipe (parent
    gone) ends the loop silently.
    """
    # A forked child inherits the parent's ambient fault scope; the plan
    # draws must stay parent-side (deterministic regardless of worker
    # scheduling), so the inherited plan is dropped before serving.
    from ..fault import injection as _injection

    _injection._ACTIVE = None
    server = SpMVServer(engine, serve_config, start=False)
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return
            except Exception as exc:
                # The payload was consumed but failed to deserialize
                # (e.g. a shared arena unlinked mid-flight): the stream
                # is still framed, but the request id is lost -- tell
                # the parent to fail everything outstanding.
                try:
                    conn.send(("bad", _picklable_error(exc)))
                    continue
                except Exception:
                    return
            kind = msg[0]
            if kind == "req":
                _handle_request(conn, server, *msg[1:])
            elif kind == "prime":
                key, payload = msg[1], msg[2]
                try:
                    prepared = pickle.loads(payload)
                    if server.cache.peek(key) is None:
                        server.cache.put(key, prepared)
                    conn.send(("primed", key, True, None))
                except BaseException as exc:
                    conn.send(("primed", key, False, _picklable_error(exc)))
            elif kind == "prime_csr":
                key = msg[1]
                try:
                    csr = _rebuild_csr(*msg[2])
                    if server.cache.peek(key) is None:
                        server.cache.put(key, server.engine.prepare(csr))
                    conn.send(("primed", key, True, None))
                except BaseException as exc:
                    conn.send(("primed", key, False, _picklable_error(exc)))
            elif kind == "ping":
                conn.send(("pong", msg[1], server.stats()))
            elif kind == "hang":
                # The serve.worker_hang fault site: stop reading the
                # pipe forever.  Only SIGKILL gets this worker back.
                while True:
                    time.sleep(3600)
            elif kind == "stop":
                try:
                    conn.send(("stopped", server.stats()))
                except Exception:  # pragma: no cover - pipe already gone
                    pass
                return
    finally:
        conn.close()


class _WorkerRequest:
    __slots__ = ("rid", "key", "operand", "x", "timeout_s", "future",
                 "resends")

    def __init__(self, rid, key, operand, x, timeout_s, future):
        self.rid = rid
        self.key = key
        self.operand = operand
        self.x = x
        self.timeout_s = timeout_s
        self.future = future
        self.resends = 0


class ProcessShard:
    """A shard server living in a real child process.

    Drop-in for the slots of :class:`~repro.serve.SpMVServer` the fabric
    touches -- ``submit`` / ``drain`` / ``prime`` / ``queue_depth`` /
    ``kill`` / ``close`` / ``stats`` -- plus the process-lifecycle verbs
    the supervisor drives: :meth:`kill_process` (real SIGKILL),
    :meth:`inject_hang`, :meth:`ping` / :attr:`pong_seq` heartbeats and
    :meth:`respawn`.

    Parameters
    ----------
    engine:
        The engine forked into every child (and used parent-side for
        serve keys).  Fork inheritance means the child needs no engine
        pickling -- custom engines (the chaos drill's corrupted shard)
        work unchanged.
    config:
        Per-worker :class:`~repro.serve.ServeConfig`; the queue bound is
        enforced parent-side, ``batch_window_s`` is forced to 0 (the
        child is threadless).
    worker_config:
        :class:`WorkerConfig` pipe/liveness knobs.
    start:
        ``True`` (default) forks the child immediately; ``False`` leaves
        the shard down until :meth:`spawn` (supervisor-managed pools use
        this to control spawn order).
    """

    def __init__(
        self,
        engine: SpMVEngine | None = None,
        config: ServeConfig | None = None,
        *,
        name: str = "worker",
        worker_config: WorkerConfig | None = None,
        observer=None,
        start: bool = True,
        clock=time.monotonic,
    ):
        self.engine = engine if engine is not None else SpMVEngine(backend="fast")
        config = config if config is not None else ServeConfig()
        if config.batch_window_s != 0.0:
            config = replace(config, batch_window_s=0.0)
        self.config = config
        self.worker = worker_config if worker_config is not None else WorkerConfig()
        self.name = name
        self.obs = observer if observer is not None else self.engine.observer
        self._clock = clock
        self._ctx = mp.get_context("fork")
        self._lock = threading.RLock()
        self._proc = None
        self._conn = None
        self._queue: deque[_WorkerRequest] = deque()
        self._sent: dict[int, _WorkerRequest] = {}
        #: key -> parent-side PreparedMatrix handle, re-warmed on respawn.
        self._primed: dict[str, PreparedMatrix] = {}
        self._child_keys: set[str] = set()
        self._rid = 0
        self._closed = False
        self._dead = True
        self._ping_seq = 0
        self._pong_seq = 0
        self._last_stats: dict = {}
        self.last_exit_code: int | None = None
        self.last_error: BaseException | None = None
        # Lifetime counters (survive respawns).
        self.n_requests = 0
        self.n_responses = 0
        self.n_shed = 0
        self.n_spawns = 0
        self.n_kills = 0
        self.n_hangs = 0
        self.n_deaths = 0
        self.n_needop = 0
        self.n_csr_reprimes = 0
        if start:
            self.spawn()

    # ------------------------------------------------------------------ #
    # Liveness
    # ------------------------------------------------------------------ #

    @property
    def alive(self) -> bool:
        return (
            not self._dead
            and self._proc is not None
            and self._proc.is_alive()
        )

    @property
    def pid(self) -> int | None:
        return self._proc.pid if self._proc is not None else None

    @property
    def pong_seq(self) -> int:
        return self._pong_seq

    @property
    def ping_seq(self) -> int:
        return self._ping_seq

    def spawn(self) -> None:
        """Fork a fresh child (no-op while one is alive)."""
        with self._lock:
            if self._closed:
                raise ServerClosedError(
                    f"worker {self.name} is closed; cannot spawn"
                )
            if self.alive:
                return
            parent_conn, child_conn = self._ctx.Pipe()
            proc = self._ctx.Process(
                target=_worker_main,
                args=(child_conn, self.engine, self.config, self.name),
                name=f"spmv-worker-{self.name}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._proc = proc
            self._conn = parent_conn
            self._dead = False
            self._child_keys.clear()
            self._ping_seq = 0
            self._pong_seq = 0
            self.last_exit_code = None
            self.last_error = None
            self.n_spawns += 1
            self.obs.counter("worker.spawns", "shard worker processes forked").inc(
                worker=self.name
            )

    def respawn(self) -> str:
        """Fresh child + cache re-warm; the supervisor's restart verb.

        Re-primes every key the previous incarnation owned: via the
        shared-arena descriptor when the segment still exists, falling
        back to shipping the CSR arrays for a deterministic in-child
        re-prepare when attachment fails (``serve.arena_lost``).
        Returns ``"cold"`` (nothing to warm), ``"shared"`` (all keys
        re-attached) or ``"csr"`` (at least one key needed the
        fallback).  Raises if the child cannot be warmed at all.
        """
        with self._lock:
            self.spawn()
            mode = "cold"
            for key, prepared in list(self._primed.items()):
                primed_how = self._send_prime(key, prepared)
                if primed_how == "csr":
                    mode = "csr"
                elif mode == "cold":
                    mode = "shared"
            return mode

    # ------------------------------------------------------------------ #
    # Submission (parent-side admission)
    # ------------------------------------------------------------------ #

    def submit(
        self,
        matrix,
        x: np.ndarray,
        *,
        timeout_s: float | None = None,
    ) -> ServeFuture:
        """Enqueue ``y = A @ x`` on the worker; returns a future.

        Same admission contract as :meth:`SpMVServer.submit` -- the
        bounded queue and closed-state checks happen here in the parent,
        synchronously, so fabric probe accounting and shed counters see
        identical behavior.  A ``PreparedMatrix`` operand is moved into
        shared memory (idempotent) so the child maps it zero-copy, and
        is retained as a re-warm handle for restarts.
        """
        prepared: PreparedMatrix | None = None
        if isinstance(matrix, PreparedMatrix):
            prepared = matrix
            ncols = prepared.fmt.ncols
            source = prepared.reference_csr()
        else:
            ncols = matrix.shape[1]
            source = matrix
        x = np.asarray(x, dtype=np.float64)
        if x.ndim not in (1, 2):
            raise ValidationError(
                f"x must be a vector or a (ncols, k) block, got shape {x.shape}"
            )
        if x.shape[0] != ncols:
            raise ValidationError(
                f"x has {x.shape[0]} rows, matrix has {ncols} columns"
            )
        csr = as_csr(source)
        key = serve_key(self.engine, csr)
        operand = csr if prepared is None else prepared
        with self._lock:
            if self._closed:
                raise ServerClosedError(
                    f"worker {self.name} is closed; request refused"
                )
            if self._dead:
                raise ServerClosedError(
                    f"worker {self.name} is down (awaiting supervisor "
                    f"restart); request refused"
                )
            pending = len(self._queue) + len(self._sent)
            if pending >= self.config.queue_depth:
                self.n_shed += 1
                self.obs.counter(
                    "serve.shed", "requests refused by admission control"
                ).inc()
                raise ServerOverloadedError(
                    f"queue depth {self.config.queue_depth} reached on "
                    f"worker {self.name}; request shed (retry with backoff)",
                    queue_depth=self.config.queue_depth,
                    pending=pending,
                )
            if prepared is not None:
                prepared.share()
                self._primed.setdefault(key, prepared)
            self._rid += 1
            future = ServeFuture()
            self._queue.append(_WorkerRequest(
                self._rid, key, operand, x, timeout_s, future
            ))
            self.n_requests += 1
            self.obs.counter("serve.requests", "requests admitted").inc()
        return future

    def multiply(self, matrix, x, *, timeout_s: float | None = None):
        """Blocking convenience: :meth:`submit` + :meth:`drain` + result."""
        future = self.submit(matrix, x, timeout_s=timeout_s)
        self.drain()
        return future.result()

    def queue_depth(self) -> int:
        """Queued + in-flight occupancy (see :meth:`SpMVServer.queue_depth`)."""
        with self._lock:
            return len(self._queue) + len(self._sent)

    def prime(self, prepared: PreparedMatrix) -> str:
        """Warm the child's cache with ``prepared`` (shared zero-copy).

        Shares the buffers (idempotent), retains the parent-side handle
        for restart re-warming, and -- when a child is up -- installs it
        into the child's prepared cache so the first request for the key
        is already a cache hit.  Returns the serve key.
        """
        if not isinstance(prepared, PreparedMatrix):
            raise ValidationError(
                f"prime needs a PreparedMatrix, got {type(prepared).__name__}"
            )
        key = serve_key(self.engine, prepared.reference_csr())
        with self._lock:
            prepared.share()
            self._primed[key] = prepared
            if self.alive:
                self._send_prime(key, prepared)
        return key

    # ------------------------------------------------------------------ #
    # Pipe pump
    # ------------------------------------------------------------------ #

    def drain(self) -> int:
        """Pump until every queued request has a reply; returns count.

        Keeps at most ``max_inflight`` requests on the pipe, eagerly
        collecting replies between sends.  A reply timeout with the
        child still alive is the hung-worker signal: the child is
        SIGKILLed, in-flight futures fail with
        :class:`~repro.errors.ShardCrashError`, and the shard waits for
        its supervisor.
        """
        done0 = self.n_responses
        with self._lock:
            if self._dead:
                self._fail_outstanding(self._death_error())
                return 0
            while self._queue or self._sent:
                while (
                    self._queue
                    and len(self._sent) < self.worker.max_inflight
                    and not self._dead
                ):
                    self._send_request(self._queue.popleft())
                if self._dead or not self._sent:
                    # Death mid-send (futures already failed), or every
                    # send bounced -- nothing left to wait for.
                    if self._dead:
                        break
                    continue
                status = self._recv_one(self.worker.reply_timeout_s)
                if status == "timeout":
                    self._on_death(hung=True)
                if status in ("timeout", "dead"):
                    break
            if self._dead:
                self._fail_outstanding(self._death_error())
        return self.n_responses - done0

    def pump_replies(self) -> int:
        """Collect whatever replies are already on the pipe (non-blocking)."""
        n = 0
        with self._lock:
            while self.alive and self._conn.poll(0):
                if self._recv_one(0.0) != "msg":
                    break
                n += 1
        return n

    def _send_request(self, req: _WorkerRequest) -> bool:
        operand = req.operand
        if req.key in self._child_keys and req.resends == 0:
            operand = None  # the child serves it from its cache
        try:
            self._conn.send(
                ("req", req.rid, req.key, operand, req.x, req.timeout_s)
            )
        except (BrokenPipeError, OSError):
            self._queue.appendleft(req)
            self._on_death(hung=False)
            return False
        self._sent[req.rid] = req
        return True

    def _recv_one(self, timeout: float) -> str:
        """Wait for one message: ``"msg"`` | ``"dead"`` | ``"timeout"``."""
        deadline = self._clock() + timeout
        while True:
            try:
                ready = self._conn.poll(min(max(deadline - self._clock(), 0.0), 0.05))
            except (BrokenPipeError, OSError):
                self._on_death(hung=False)
                return "dead"
            if ready:
                try:
                    msg = self._conn.recv()
                except (EOFError, OSError):
                    self._on_death(hung=False)
                    return "dead"
                self._dispatch(msg)
                return "msg"
            if self._proc is None or not self._proc.is_alive():
                # Sweep messages written before the child died, then
                # declare the death.
                try:
                    while self._conn.poll(0):
                        self._dispatch(self._conn.recv())
                except (EOFError, OSError):
                    pass
                self._on_death(hung=False)
                return "dead"
            if self._clock() >= deadline:
                return "timeout"

    def _dispatch(self, msg) -> None:
        kind = msg[0]
        if kind == "res":
            req = self._sent.pop(msg[1], None)
            if req is not None:
                self._child_keys.add(req.key)
                self.n_responses += 1
                req.future._complete(msg[2])
        elif kind == "err":
            req = self._sent.pop(msg[1], None)
            if req is not None:
                self.n_responses += 1
                req.future._fail(msg[2])
        elif kind == "needop":
            req = self._sent.pop(msg[1], None)
            if req is not None:
                self._child_keys.discard(req.key)
                req.resends += 1
                if req.resends > 1:
                    self.n_responses += 1
                    req.future._fail(RemoteWorkerError(
                        f"worker {self.name} requested the operand for "
                        f"{req.key} twice; giving up",
                        original_type="needop-loop",
                    ))
                else:
                    self.n_needop += 1
                    self._queue.appendleft(req)
        elif kind == "pong":
            self._pong_seq = max(self._pong_seq, msg[1])
            self._last_stats = msg[2]
        elif kind == "primed":
            self._last_primed = msg
        elif kind == "bad":
            # The child lost a request id mid-deserialize: everything
            # outstanding is ambiguous, fail it all with the cause.
            for req in list(self._sent.values()):
                self.n_responses += 1
                req.future._fail(msg[1])
            self._sent.clear()

    def _send_prime(self, key: str, prepared: PreparedMatrix) -> str:
        """Install one key child-side; returns ``"shared"`` or ``"csr"``."""
        payload = pickle.dumps(prepared)
        reply = self._prime_roundtrip(("prime", key, payload))
        if reply[2]:
            self._child_keys.add(key)
            return "shared"
        # Attach failed (arena unlinked / vanished): ship the CSR arrays
        # and let the child re-prepare under the same deterministic
        # tuning; the parent-side handle keeps answering reference_csr()
        # even when its segment is gone because the views live on.
        csr = prepared.reference_csr()
        reply = self._prime_roundtrip(
            ("prime_csr", key, (csr.data, csr.indices, csr.indptr, csr.shape))
        )
        if not reply[2]:
            raise reply[3]
        self.n_csr_reprimes += 1
        self.obs.counter(
            "worker.csr_reprimes",
            "restart re-primes that fell back to shipping CSR arrays",
        ).inc(worker=self.name)
        self._child_keys.add(key)
        return "csr"

    def _prime_roundtrip(self, msg) -> tuple:
        try:
            self._conn.send(msg)
        except (BrokenPipeError, OSError):
            self._on_death(hung=False)
            raise self._death_error() from None
        deadline = self._clock() + self.worker.reply_timeout_s
        while True:
            status = self._recv_one(max(deadline - self._clock(), 0.01))
            if status == "timeout":
                self._on_death(hung=True)
                raise self._death_error()
            if status == "dead":
                raise self._death_error()
            if self._last_primed is not None:
                reply, self._last_primed = self._last_primed, None
                return reply

    #: ``primed`` replies are routed here by ``_dispatch`` so the
    #: roundtrip helper can interleave with request replies without
    #: losing either.
    _last_primed: tuple | None = None

    # ------------------------------------------------------------------ #
    # Death & chaos verbs
    # ------------------------------------------------------------------ #

    def ping(self) -> int:
        """Send one heartbeat; the child answers with a ``pong`` + stats."""
        with self._lock:
            if not self.alive:
                return -1
            self._ping_seq += 1
            try:
                self._conn.send(("ping", self._ping_seq))
            except (BrokenPipeError, OSError):
                self._on_death(hung=False)
                return -1
            return self._ping_seq

    def inject_hang(self) -> bool:
        """Make the child stop reading its pipe (``serve.worker_hang``)."""
        with self._lock:
            if not self.alive:
                return False
            try:
                self._conn.send(("hang",))
            except (BrokenPipeError, OSError):
                self._on_death(hung=False)
                return False
            return True

    def kill_process(self, error: BaseException | None = None) -> int:
        """SIGKILL the child (``serve.worker_kill``); returns orphan count.

        Unlike :meth:`kill` the shard is *not* closed: in-flight futures
        fail (the fabric replays them) and the shard waits for its
        supervisor to :meth:`respawn` it.
        """
        with self._lock:
            if not self.alive:
                return 0
            doomed = len(self._queue) + len(self._sent)
            self.n_kills += 1
            self.obs.counter(
                "worker.kills", "shard workers SIGKILLed"
            ).inc(worker=self.name)
            try:
                self._proc.kill()
            except Exception:  # pragma: no cover - already reaped
                pass
            self._on_death(hung=False, error=error)
            return doomed

    def _death_error(self) -> BaseException:
        if self.last_error is not None:
            return self.last_error
        return ShardCrashError(
            f"worker {self.name} is down", shard=self.name
        )

    def _on_death(self, *, hung: bool, error: BaseException | None = None) -> None:
        if self._dead:
            return
        self._dead = True
        if hung:
            self.n_hangs += 1
            self.obs.counter(
                "worker.hangs", "workers SIGKILLed after reply-timeout silence"
            ).inc(worker=self.name)
            try:
                self._proc.kill()
            except Exception:  # pragma: no cover - already gone
                pass
        if self._proc is not None:
            self._proc.join(timeout=5.0)
            self.last_exit_code = self._proc.exitcode
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover
                pass
            self._conn = None
        if error is None:
            reason = (
                "went silent (reply timeout) and was SIGKILLed"
                if hung
                else f"died (exit code {self.last_exit_code})"
            )
            error = ShardCrashError(
                f"worker {self.name} {reason} with requests in flight",
                shard=self.name,
            )
        self.last_error = error
        self.n_deaths += 1
        self.obs.counter(
            "worker.deaths", "shard worker processes lost"
        ).inc(worker=self.name, hung=str(hung).lower())
        self._fail_outstanding(error)

    def _fail_outstanding(self, error: BaseException) -> None:
        doomed = list(self._sent.values()) + list(self._queue)
        self._sent.clear()
        self._queue.clear()
        for req in doomed:
            self.n_responses += 1
            req.future._fail(error)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def kill(self, error: BaseException | None = None) -> int:
        """Permanent abrupt shutdown (the ``SpMVServer.kill`` contract).

        The fabric's ``kill_shard`` calls this for shards it has marked
        dead-forever; the worker is SIGKILLed *and* the shard refuses
        all further work (no supervisor restart).
        """
        with self._lock:
            doomed = len(self._queue) + len(self._sent)
            if self.alive:
                try:
                    self._proc.kill()
                except Exception:  # pragma: no cover
                    pass
                self._on_death(hung=False, error=error)
            elif error is not None or self._queue or self._sent:
                self._fail_outstanding(
                    error if error is not None else self._death_error()
                )
            self._closed = True
            self._primed.clear()
            return doomed

    def close(self, drain: bool = True) -> None:
        """Graceful stop: finish queued work, ask the child to exit.

        ``drain=False`` fails queued futures and SIGKILLs instead.  The
        parent's shared-arena handles are released (refcount down; the
        owner's release unlinks).  Idempotent.
        """
        with self._lock:
            if self._closed and not self.alive:
                return
            if not drain:
                self.kill()
                return
            if self.alive:
                self.drain()
            self._closed = True
            if self.alive:
                try:
                    self._conn.send(("stop",))
                    deadline = self._clock() + self.worker.stop_grace_s
                    while self._clock() < deadline:
                        if self._conn.poll(0.01):
                            msg = self._conn.recv()
                            if msg[0] == "stopped":
                                self._last_stats = msg[1]
                                break
                            self._dispatch(msg)
                        elif not self._proc.is_alive():
                            break
                except (BrokenPipeError, EOFError, OSError):
                    pass
                self._proc.join(timeout=self.worker.stop_grace_s)
                if self._proc.is_alive():
                    self._proc.kill()
                    self._proc.join(timeout=5.0)
                self.last_exit_code = self._proc.exitcode
                self._dead = True
                if self._conn is not None:
                    try:
                        self._conn.close()
                    except OSError:  # pragma: no cover
                        pass
                    self._conn = None
            self._fail_outstanding(ServerClosedError(
                f"worker {self.name} closed before the request was dispatched"
            ))

    def __enter__(self) -> "ProcessShard":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """JSON-able snapshot, shaped like :meth:`SpMVServer.stats`.

        Child-side numbers (cache, batches) are the last ones the child
        reported (heartbeat pongs and the stop handshake refresh them);
        parent-side admission and lifecycle counters are always current.
        """
        child = dict(self._last_stats)
        cache = child.get("cache") or {
            "hits": 0, "misses": 0, "evictions": 0,
            "entries": 0, "total_bytes": 0,
        }
        with self._lock:
            return {
                "requests": self.n_requests,
                "responses": self.n_responses,
                "shed": self.n_shed,
                "batches": child.get("batches", 0),
                "batched_requests": child.get("batched_requests", 0),
                "batch_fallbacks": child.get("batch_fallbacks", 0),
                "deadline_expiries": child.get("deadline_expiries", 0),
                "breaker_rejections": child.get("breaker_rejections", 0),
                "internal_errors": child.get("internal_errors", 0),
                "queued": len(self._queue) + len(self._sent),
                "cache": cache,
                "worker": {
                    "pid": self.pid,
                    "alive": self.alive,
                    "exit_code": self.last_exit_code,
                    "spawns": self.n_spawns,
                    "kills": self.n_kills,
                    "hangs": self.n_hangs,
                    "deaths": self.n_deaths,
                    "needop": self.n_needop,
                    "csr_reprimes": self.n_csr_reprimes,
                    "primed_keys": len(self._primed),
                },
            }
