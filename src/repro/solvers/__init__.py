"""Iterative solvers on top of the SpMV engine."""

from .iterative import SolveResult, bicgstab, conjugate_gradient, jacobi, power_method

__all__ = [
    "SolveResult",
    "bicgstab",
    "conjugate_gradient",
    "jacobi",
    "power_method",
]
