"""Iterative solvers on top of the SpMV engine and serve layer.

One surface -- :func:`solve` -- with per-method wrappers, plus
:class:`SolverSession` for prepare-once/solve-many workflows whose
iterations can stream through a server or fabric and whose values can
be swapped in place between solves.
"""

from .iterative import (
    SOLVE_METHODS,
    SolveResult,
    bicgstab,
    conjugate_gradient,
    gmres,
    jacobi,
    power_method,
    solve,
)
from .session import SolverSession

__all__ = [
    "SOLVE_METHODS",
    "SolveResult",
    "SolverSession",
    "bicgstab",
    "conjugate_gradient",
    "gmres",
    "jacobi",
    "power_method",
    "solve",
]
