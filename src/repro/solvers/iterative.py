"""Iterative solvers driven by the yaSpMV engine.

SpMV exists to serve iterative methods -- the paper's introduction
motivates the kernel with exactly these workloads.  This module gives
the engine's prepare-once/multiply-many pattern a solver-shaped API:
conjugate gradient (SPD systems), BiCGSTAB (general systems), Jacobi
(diagonally dominant systems) and the power method (dominant
eigenpairs), each reporting a convergence history plus the *simulated
device time* spent in SpMV so users can budget kernels, not wall clock.

All solvers accept either a prepared matrix or a raw scipy matrix (which
is then auto-tuned once).  Numerics are plain float64 NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.engine import PreparedMatrix, SpMVEngine
from ..errors import ReproError
from ..util import as_csr

__all__ = [
    "SolveResult",
    "conjugate_gradient",
    "bicgstab",
    "jacobi",
    "power_method",
]


@dataclass
class SolveResult:
    """Outcome of an iterative solve.

    ``spmv_time_s`` accumulates the simulated device time of every SpMV
    issued -- the quantity the paper's speedups translate into for a
    full solve.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    spmv_count: int
    spmv_time_s: float
    history: list[float] = field(default_factory=list)
    #: Rayleigh-quotient estimate; set by :func:`power_method` only.
    eigenvalue: float = 0.0


class _Multiplier:
    """Wraps (engine, prepared) into a counting A@v operator."""

    def __init__(self, engine: SpMVEngine | None, matrix_or_prepared):
        if isinstance(matrix_or_prepared, PreparedMatrix):
            if engine is None:
                raise ReproError(
                    "a PreparedMatrix needs the engine it was prepared with"
                )
            self.engine = engine
            self.prepared = matrix_or_prepared
        else:
            self.engine = engine if engine is not None else SpMVEngine()
            self.prepared = self.engine.prepare(as_csr(matrix_or_prepared))
        self.count = 0
        self.time_s = 0.0

    @property
    def shape(self):
        return self.prepared.fmt.shape

    def __call__(self, v: np.ndarray) -> np.ndarray:
        res = self.engine.multiply(self.prepared, v)
        self.count += 1
        self.time_s += res.time_s
        return res.y


def _check_square(mult: _Multiplier):
    r, c = mult.shape
    if r != c:
        raise ReproError(f"solver needs a square system, got {mult.shape}")


def conjugate_gradient(
    A,
    b: np.ndarray,
    engine: SpMVEngine | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
) -> SolveResult:
    """CG for symmetric positive-definite systems."""
    mult = _Multiplier(engine, A)
    _check_square(mult)
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)

    r = b - mult(x)
    p = r.copy()
    rs = float(r @ r)
    history = [np.sqrt(rs)]
    for it in range(1, max_iter + 1):
        Ap = mult(p)
        denom = float(p @ Ap)
        if denom == 0.0:
            break
        alpha = rs / denom
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        history.append(np.sqrt(rs_new))
        if history[-1] < tol:
            return SolveResult(
                x, True, it, history[-1], mult.count, mult.time_s, history
            )
        p = r + (rs_new / rs) * p
        rs = rs_new
    return SolveResult(
        x, False, max_iter, history[-1], mult.count, mult.time_s, history
    )


def bicgstab(
    A,
    b: np.ndarray,
    engine: SpMVEngine | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
) -> SolveResult:
    """BiCGSTAB for general (non-symmetric) systems."""
    mult = _Multiplier(engine, A)
    _check_square(mult)
    b = np.asarray(b, dtype=np.float64)
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)

    r = b - mult(x)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    history = [float(np.linalg.norm(r))]
    for it in range(1, max_iter + 1):
        rho_new = float(r_hat @ r)
        if rho_new == 0.0:
            break
        beta = (rho_new / rho) * (alpha / omega) if it > 1 else 0.0
        p = r + beta * (p - omega * v) if it > 1 else r.copy()
        v = mult(p)
        denom = float(r_hat @ v)
        if denom == 0.0:
            break
        alpha = rho_new / denom
        s = r - alpha * v
        if np.linalg.norm(s) < tol:
            x += alpha * p
            history.append(float(np.linalg.norm(s)))
            return SolveResult(
                x, True, it, history[-1], mult.count, mult.time_s, history
            )
        t = mult(s)
        tt = float(t @ t)
        if tt == 0.0:
            break
        omega = float(t @ s) / tt
        x += alpha * p + omega * s
        r = s - omega * t
        rho = rho_new
        history.append(float(np.linalg.norm(r)))
        if history[-1] < tol:
            return SolveResult(
                x, True, it, history[-1], mult.count, mult.time_s, history
            )
    return SolveResult(
        x, False, max_iter, history[-1], mult.count, mult.time_s, history
    )


def jacobi(
    A,
    b: np.ndarray,
    engine: SpMVEngine | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
) -> SolveResult:
    """Jacobi iteration for diagonally dominant systems.

    Uses the splitting ``x' = x + D^{-1} (b - A x)``; the diagonal is
    extracted once from the prepared matrix's scipy view.
    """
    mult = _Multiplier(engine, A)
    _check_square(mult)
    b = np.asarray(b, dtype=np.float64)
    diag = mult.prepared.fmt.to_scipy().diagonal()
    if np.any(diag == 0.0):
        raise ReproError("Jacobi needs a zero-free diagonal")
    inv_d = 1.0 / diag
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)

    history = []
    for it in range(1, max_iter + 1):
        r = b - mult(x)
        history.append(float(np.linalg.norm(r)))
        if history[-1] < tol:
            return SolveResult(
                x, True, it - 1, history[-1], mult.count, mult.time_s, history
            )
        x = x + inv_d * r
    return SolveResult(
        x, False, max_iter, history[-1], mult.count, mult.time_s, history
    )


def power_method(
    A,
    engine: SpMVEngine | None = None,
    v0: np.ndarray | None = None,
    tol: float = 1e-12,
    max_iter: int = 5_000,
    seed: int = 0,
) -> SolveResult:
    """Power iteration: dominant eigenvalue/vector of a square matrix."""
    mult = _Multiplier(engine, A)
    _check_square(mult)
    n = mult.shape[0]
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n) if v0 is None else np.array(v0, dtype=np.float64)
    v /= np.linalg.norm(v)

    lam = 0.0
    history = []
    w = mult(v)
    for it in range(1, max_iter + 1):
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            break
        v_new = w / norm
        w = mult(v_new)  # reused both for lambda and the next step
        lam_new = float(v_new @ w)
        history.append(abs(lam_new - lam))
        converged = history[-1] < tol
        v, lam = v_new, lam_new
        if converged:
            res = SolveResult(
                v, True, it, history[-1], mult.count, mult.time_s, history
            )
            res.eigenvalue = lam
            return res
    res = SolveResult(
        v, False, max_iter, history[-1] if history else np.inf,
        mult.count, mult.time_s, history,
    )
    res.eigenvalue = lam
    return res
