"""Iterative solvers driven by the yaSpMV engine and serve layer.

SpMV exists to serve iterative methods -- the paper's introduction
motivates the kernel with exactly these workloads.  This module gives
the engine's prepare-once/multiply-many pattern a solver-shaped API
behind **one surface**:

    solve(A, b, method="cg" | "bicgstab" | "gmres" | "jacobi", ...)

with keyword-only options mirroring :class:`~repro.SpMVEngine`
(``backend=``, ``observer=``, ``fault_plan=``, ``retry_policy=``,
``deadline=``) plus ``server=`` to stream every iteration's multiply
through an :class:`~repro.serve.SpMVServer` or
:class:`~repro.serve.ServeFabric` (admission control, quotas, failover
and the value-aware cache all apply; see
:class:`~repro.solvers.SolverSession`).  The per-method functions
(:func:`conjugate_gradient`, :func:`bicgstab`, :func:`gmres`,
:func:`jacobi`) are thin wrappers delegating to :func:`solve`.

Every solver reports a convergence history plus the *simulated device
time* spent in SpMV -- counting only the successful attempt of each
multiply, so a retried/failed-over iteration is never double-billed --
and :class:`SolveResult` speaks the same ``to_dict()``/``summary()``
protocol as :class:`~repro.SpMVResult` and
:class:`~repro.tuning.TuningResult`.

Numerics are plain float64 NumPy, identical whether iterations run
direct or served (the differential tests pin ``np.array_equal`` per
iterate).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.engine import SpMVEngine
from ..errors import ReproError, ValidationError
from ..fault.retry import Deadline

__all__ = [
    "SolveResult",
    "solve",
    "conjugate_gradient",
    "bicgstab",
    "gmres",
    "jacobi",
    "power_method",
]

#: Methods :func:`solve` accepts.
SOLVE_METHODS = ("cg", "bicgstab", "gmres", "jacobi")


@dataclass
class SolveResult:
    """Outcome of an iterative solve.

    ``spmv_time_s`` accumulates the simulated device time of every SpMV
    issued -- the quantity the paper's speedups translate into for a
    full solve.  Only the *successful* attempt of each multiply is
    billed: a retried or failed-over iteration contributes its retries
    to ``spmv_retries``/``failovers``, never to the device time.
    """

    x: np.ndarray
    converged: bool
    iterations: int
    residual_norm: float
    spmv_count: int
    spmv_time_s: float
    history: list[float] = field(default_factory=list)
    #: Rayleigh-quotient estimate; set by :func:`power_method` only.
    eigenvalue: float = 0.0
    #: Which :func:`solve` method produced this result.
    method: str = ""
    #: Whether iterations streamed through a server/fabric.
    served: bool = False
    #: Failed multiply attempts recovered by the engine's fallback chain.
    spmv_retries: int = 0
    #: Served requests replayed on a successor shard (fabric only).
    failovers: int = 0
    #: Served requests answered from the prepared-matrix cache.
    cache_hits: int = 0
    #: :meth:`SolverSession.update_values` calls during the solve.
    value_refreshes: int = 0
    #: Wall-clock seconds spent inside multiplies (simulated work is
    #: ``spmv_time_s``; this is the host-side cost, the bench's
    #: "SpMV share" numerator).
    spmv_wall_s: float = 0.0
    #: The solve stopped on an expired ``deadline=`` with the
    #: best-so-far ``x`` (mirrors the tuner's partial-result semantics).
    deadline_expired: bool = False
    #: Per-iteration solution snapshots (``keep_iterates=True`` only) --
    #: what the differential served-vs-direct tests compare bit for bit.
    iterates: list[np.ndarray] | None = None

    # -- the shared result protocol (see SpMVResult / TuningResult) ---- #

    def to_dict(self) -> dict:
        """JSON-able snapshot -- the CLI's and benches' interchange form."""
        return {
            "kind": "solve_result",
            "method": self.method,
            "converged": bool(self.converged),
            "iterations": int(self.iterations),
            "residual_norm": float(self.residual_norm),
            "spmv_count": int(self.spmv_count),
            "spmv_time_s": float(self.spmv_time_s),
            "spmv_wall_s": float(self.spmv_wall_s),
            "spmv_retries": int(self.spmv_retries),
            "served": bool(self.served),
            "failovers": int(self.failovers),
            "cache_hits": int(self.cache_hits),
            "value_refreshes": int(self.value_refreshes),
            "deadline_expired": bool(self.deadline_expired),
            "eigenvalue": float(self.eigenvalue),
            "history": [float(h) for h in self.history],
        }

    def summary(self) -> str:
        """One-line human description of the solve."""
        verdict = (
            "converged"
            if self.converged
            else ("deadline expired" if self.deadline_expired else "NOT converged")
        )
        line = (
            f"{self.method or 'solve'}: {verdict} in {self.iterations} "
            f"iterations (residual {self.residual_norm:.2e}, "
            f"{self.spmv_count} SpMVs, {self.spmv_time_s * 1e3:.2f} ms "
            f"simulated)"
        )
        if self.served:
            line += f" [served, {self.failovers} failovers]"
        if self.spmv_retries:
            line += f" [{self.spmv_retries} retries]"
        return line


# ---------------------------------------------------------------------- #
# The one solver surface
# ---------------------------------------------------------------------- #


def solve(
    A,
    b: np.ndarray,
    method: str = "cg",
    *,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    restart: int = 30,
    engine: SpMVEngine | None = None,
    backend=None,
    observer=None,
    fault_plan=None,
    retry_policy=None,
    deadline=None,
    server=None,
    tenant: str = "default",
    timeout_s: float | None = None,
    keep_iterates: bool = False,
) -> SolveResult:
    """Solve ``A x = b`` with the named iterative method.

    Parameters
    ----------
    A:
        A scipy sparse matrix (prepared/auto-tuned once) or a
        :class:`~repro.core.engine.PreparedMatrix` (amortizes tuning
        across solves; requires the engine it was prepared with, or a
        ``server=`` whose engine prepared it).
    method:
        ``"cg"`` (SPD), ``"bicgstab"`` (general), ``"gmres"``
        (restarted GMRES(``restart``), general) or ``"jacobi"``
        (diagonally dominant).
    restart:
        GMRES restart length ``m`` (ignored by the other methods).
    engine, backend, observer, fault_plan, retry_policy:
        Execution options mirroring :class:`~repro.SpMVEngine`.  With no
        ``engine``/``server``, a permissive engine is built from them
        (the solver's default degrades gracefully through the fallback
        chain; pass your own engine for strict semantics).  With an
        explicit engine or server, any option given here is installed on
        that engine -- the serve layer's install pattern.
    deadline:
        Wall-clock budget in seconds (or a :class:`~repro.fault.
        Deadline`); on expiry the best-so-far ``x`` is returned with
        ``deadline_expired=True`` -- the tuner's partial-result
        semantics applied to solves.
    server:
        An :class:`~repro.serve.SpMVServer` or :class:`~repro.serve.
        ServeFabric`: every iteration's multiply is issued as a served
        request (see :class:`~repro.solvers.SolverSession`).
    tenant, timeout_s:
        Served-request attribution and per-request deadline (fabric
        quotas and fairness key on the tenant).
    keep_iterates:
        Record every iteration's solution snapshot in
        :attr:`SolveResult.iterates` (the differential tests' hook).
    """
    from ..core.engine import PreparedMatrix
    from .session import SolverSession

    if engine is None and server is None:
        # No target can run a bare PreparedMatrix -- fall through and
        # let the session raise its "needs the engine it was prepared
        # with" error instead of conjuring an unrelated engine.
        if not isinstance(A, PreparedMatrix):
            engine = SpMVEngine(
                policy="permissive",
                backend=backend,
                observer=observer,
                fault_plan=fault_plan,
                retry_policy=retry_policy,
            )
    else:
        target = engine
        if target is None:
            target = (
                server.engine
                if hasattr(server, "engine")
                else server.shards[0].engine
            )
        if backend is not None:
            target.backend = backend
        if observer is not None:
            target.observer = observer
        if fault_plan is not None:
            from ..fault.injection import FaultPlan

            target.fault_plan = FaultPlan.coerce(fault_plan)
        if retry_policy is not None:
            target.retry_policy = retry_policy
    session = SolverSession(
        A, engine=engine, server=server, tenant=tenant, timeout_s=timeout_s
    )
    return session.solve(
        b,
        method=method,
        x0=x0,
        tol=tol,
        max_iter=max_iter,
        restart=restart,
        deadline=deadline,
        keep_iterates=keep_iterates,
    )


def _run_solve(
    session,
    b: np.ndarray,
    method: str,
    *,
    x0=None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    restart: int = 30,
    deadline=None,
    keep_iterates: bool = False,
) -> SolveResult:
    """Shared driver behind :func:`solve` / :meth:`SolverSession.solve`."""
    runner = _RUNNERS.get(method)
    if runner is None:
        raise ValidationError(
            f"method must be one of {SOLVE_METHODS}, got {method!r}"
        )
    nrows, ncols = session.shape
    if nrows != ncols:
        raise ReproError(
            f"solver needs a square system, got {(nrows, ncols)}"
        )
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 1 or b.shape[0] != nrows:
        raise ValidationError(
            f"b must be a length-{nrows} vector, got shape {b.shape}"
        )
    if deadline is not None and not isinstance(deadline, Deadline):
        deadline = Deadline(float(deadline))
    should_stop = (lambda: False) if deadline is None else deadline.expired

    snap = session.counters()
    x, converged, iterations, residual, history, iterates, expired = runner(
        session,
        b,
        x0,
        tol,
        max_iter,
        restart,
        should_stop,
        keep_iterates,
    )
    delta = {k: v - snap[k] for k, v in session.counters().items()}
    return SolveResult(
        x=x,
        converged=converged,
        iterations=iterations,
        residual_norm=residual,
        spmv_count=delta["spmv_count"],
        spmv_time_s=delta["spmv_time_s"],
        history=history,
        method=method,
        served=session.server is not None,
        spmv_retries=delta["spmv_retries"],
        failovers=delta["failovers"],
        cache_hits=delta["cache_hits"],
        value_refreshes=delta["value_refreshes"],
        spmv_wall_s=delta["spmv_wall_s"],
        deadline_expired=expired,
        iterates=iterates,
    )


# ---------------------------------------------------------------------- #
# Method runners -- pure float64 numerics over a counting multiplier.
# Each returns (x, converged, iterations, residual, history, iterates,
# deadline_expired).  The multiply sequences are identical direct or
# served, which is what makes the differential bit-identity tests hold.
# ---------------------------------------------------------------------- #


def _run_cg(mult, b, x0, tol, max_iter, restart, should_stop, keep_iterates):
    """CG for symmetric positive-definite systems."""
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    iterates = [] if keep_iterates else None

    r = b - mult(x)
    p = r.copy()
    rs = float(r @ r)
    history = [np.sqrt(rs)]
    for it in range(1, max_iter + 1):
        if should_stop():
            return x, False, it - 1, history[-1], history, iterates, True
        Ap = mult(p)
        denom = float(p @ Ap)
        if denom == 0.0:
            break
        alpha = rs / denom
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        history.append(np.sqrt(rs_new))
        if iterates is not None:
            iterates.append(x.copy())
        if history[-1] < tol:
            return x, True, it, history[-1], history, iterates, False
        p = r + (rs_new / rs) * p
        rs = rs_new
    return x, False, max_iter, history[-1], history, iterates, False


def _run_bicgstab(
    mult, b, x0, tol, max_iter, restart, should_stop, keep_iterates
):
    """BiCGSTAB for general (non-symmetric) systems."""
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    iterates = [] if keep_iterates else None

    r = b - mult(x)
    r_hat = r.copy()
    rho = alpha = omega = 1.0
    v = np.zeros_like(b)
    p = np.zeros_like(b)
    history = [float(np.linalg.norm(r))]
    for it in range(1, max_iter + 1):
        if should_stop():
            return x, False, it - 1, history[-1], history, iterates, True
        rho_new = float(r_hat @ r)
        if rho_new == 0.0:
            break
        beta = (rho_new / rho) * (alpha / omega) if it > 1 else 0.0
        p = r + beta * (p - omega * v) if it > 1 else r.copy()
        v = mult(p)
        denom = float(r_hat @ v)
        if denom == 0.0:
            break
        alpha = rho_new / denom
        s = r - alpha * v
        if np.linalg.norm(s) < tol:
            x += alpha * p
            history.append(float(np.linalg.norm(s)))
            if iterates is not None:
                iterates.append(x.copy())
            return x, True, it, history[-1], history, iterates, False
        t = mult(s)
        tt = float(t @ t)
        if tt == 0.0:
            break
        omega = float(t @ s) / tt
        x += alpha * p + omega * s
        r = s - omega * t
        rho = rho_new
        history.append(float(np.linalg.norm(r)))
        if iterates is not None:
            iterates.append(x.copy())
        if history[-1] < tol:
            return x, True, it, history[-1], history, iterates, False
    return x, False, max_iter, history[-1], history, iterates, False


def _run_gmres(mult, b, x0, tol, max_iter, restart, should_stop, keep_iterates):
    """Restarted GMRES(m): Arnoldi with modified Gram-Schmidt + Givens.

    The residual norm after each inner iteration falls out of the
    Givens-rotated right-hand side (``|g[j+1]|``) without forming the
    solution; the solution itself is assembled by back-substitution at
    cycle end (and per iteration under ``keep_iterates``).
    """
    n = b.shape[0]
    m = max(1, min(int(restart), n))
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    iterates = [] if keep_iterates else None

    r = b - mult(x)
    beta = float(np.linalg.norm(r))
    history = [beta]
    if beta < tol:
        return x, True, 0, beta, history, iterates, False

    total = 0
    while True:
        V = np.zeros((m + 1, n), dtype=np.float64)
        H = np.zeros((m + 1, m), dtype=np.float64)
        cs = np.zeros(m)
        sn = np.zeros(m)
        g = np.zeros(m + 1)
        V[0] = r / beta
        g[0] = beta
        k = 0
        converged = expired = breakdown = False
        for j in range(m):
            if should_stop():
                expired = True
                break
            w = mult(V[j])
            for i in range(j + 1):  # modified Gram-Schmidt
                H[i, j] = float(w @ V[i])
                w = w - H[i, j] * V[i]
            h_next = float(np.linalg.norm(w))
            # Rotate the new column through the accumulated Givens
            # rotations, then zero its subdiagonal with a fresh one.
            for i in range(j):
                tmp = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = tmp
            denom = float(np.hypot(H[j, j], h_next))
            if denom == 0.0:
                cs[j], sn[j] = 1.0, 0.0
            else:
                cs[j], sn[j] = H[j, j] / denom, h_next / denom
            H[j, j] = cs[j] * H[j, j] + sn[j] * h_next
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]
            k = j + 1
            total += 1
            residual = abs(float(g[j + 1]))
            history.append(residual)
            if iterates is not None:
                iterates.append(_gmres_solution(x, V, H, g, k))
            if residual < tol:
                converged = True
                break
            if h_next == 0.0:
                breakdown = True  # lucky breakdown: Krylov space exhausted
                break
            if total >= max_iter:
                break
            V[j + 1] = w / h_next
        if k:
            x = _gmres_solution(x, V, H, g, k)
        residual = history[-1]
        if converged:
            return x, True, total, residual, history, iterates, False
        if expired:
            return x, False, total, residual, history, iterates, True
        if total >= max_iter or breakdown:
            return x, residual < tol, total, residual, history, iterates, False
        # Restart: true residual for the next cycle.
        r = b - mult(x)
        beta = float(np.linalg.norm(r))
        if beta < tol:
            return x, True, total, beta, history, iterates, False


def _gmres_solution(x, V, H, g, k) -> np.ndarray:
    """Back-substitute the rotated least-squares system, update x."""
    y = np.zeros(k)
    for i in range(k - 1, -1, -1):
        s = float(g[i]) - float(H[i, i + 1 : k] @ y[i + 1 : k])
        y[i] = s / H[i, i] if H[i, i] != 0.0 else 0.0
    return x + V[:k].T @ y


def _run_jacobi(mult, b, x0, tol, max_iter, restart, should_stop, keep_iterates):
    """Jacobi iteration for diagonally dominant systems.

    Uses the splitting ``x' = x + D^{-1} (b - A x)``; the diagonal is
    extracted once from the prepared matrix's CSR view.
    """
    diag = mult.prepared.reference_csr().diagonal()
    if np.any(diag == 0.0):
        raise ReproError("Jacobi needs a zero-free diagonal")
    inv_d = 1.0 / diag
    x = np.zeros_like(b) if x0 is None else np.array(x0, dtype=np.float64)
    iterates = [] if keep_iterates else None

    history = []
    for it in range(1, max_iter + 1):
        if should_stop():
            last = history[-1] if history else float(np.linalg.norm(b))
            return x, False, it - 1, last, history, iterates, True
        r = b - mult(x)
        history.append(float(np.linalg.norm(r)))
        if history[-1] < tol:
            return x, True, it - 1, history[-1], history, iterates, False
        x = x + inv_d * r
        if iterates is not None:
            iterates.append(x.copy())
    return x, False, max_iter, history[-1], history, iterates, False


_RUNNERS = {
    "cg": _run_cg,
    "bicgstab": _run_bicgstab,
    "gmres": _run_gmres,
    "jacobi": _run_jacobi,
}


# ---------------------------------------------------------------------- #
# Per-method wrappers (the pre-redesign surface, now thin delegates)
# ---------------------------------------------------------------------- #


def conjugate_gradient(
    A,
    b: np.ndarray,
    engine: SpMVEngine | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    **options,
) -> SolveResult:
    """CG for symmetric positive-definite systems (see :func:`solve`)."""
    return solve(
        A, b, method="cg", engine=engine, x0=x0, tol=tol,
        max_iter=max_iter, **options,
    )


def bicgstab(
    A,
    b: np.ndarray,
    engine: SpMVEngine | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    **options,
) -> SolveResult:
    """BiCGSTAB for general systems (see :func:`solve`)."""
    return solve(
        A, b, method="bicgstab", engine=engine, x0=x0, tol=tol,
        max_iter=max_iter, **options,
    )


def gmres(
    A,
    b: np.ndarray,
    engine: SpMVEngine | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    restart: int = 30,
    **options,
) -> SolveResult:
    """Restarted GMRES(``restart``) for general systems (see :func:`solve`)."""
    return solve(
        A, b, method="gmres", engine=engine, x0=x0, tol=tol,
        max_iter=max_iter, restart=restart, **options,
    )


def jacobi(
    A,
    b: np.ndarray,
    engine: SpMVEngine | None = None,
    x0: np.ndarray | None = None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    **options,
) -> SolveResult:
    """Jacobi iteration for diagonally dominant systems (see :func:`solve`)."""
    return solve(
        A, b, method="jacobi", engine=engine, x0=x0, tol=tol,
        max_iter=max_iter, **options,
    )


def power_method(
    A,
    engine: SpMVEngine | None = None,
    v0: np.ndarray | None = None,
    tol: float = 1e-12,
    max_iter: int = 5_000,
    seed: int = 0,
) -> SolveResult:
    """Power iteration: dominant eigenvalue/vector of a square matrix.

    Not a linear solve, so it stays outside :func:`solve`'s method set;
    it shares the session multiplier and the result protocol.
    """
    from .session import SolverSession

    mult = SolverSession(A, engine=engine)
    n, c = mult.shape
    if n != c:
        raise ReproError(f"solver needs a square system, got {mult.shape}")
    rng = np.random.default_rng(seed)
    v = rng.standard_normal(n) if v0 is None else np.array(v0, dtype=np.float64)
    v /= np.linalg.norm(v)

    lam = 0.0
    history = []
    w = mult(v)
    for it in range(1, max_iter + 1):
        norm = float(np.linalg.norm(w))
        if norm == 0.0:
            break
        v_new = w / norm
        w = mult(v_new)  # reused both for lambda and the next step
        lam_new = float(v_new @ w)
        history.append(abs(lam_new - lam))
        converged = history[-1] < tol
        v, lam = v_new, lam_new
        if converged:
            res = SolveResult(
                v, True, it, history[-1], mult.spmv_count,
                mult.spmv_time_s, history, method="power",
            )
            res.eigenvalue = lam
            return res
    res = SolveResult(
        v, False, max_iter, history[-1] if history else np.inf,
        mult.spmv_count, mult.spmv_time_s, history, method="power",
    )
    res.eigenvalue = lam
    return res
