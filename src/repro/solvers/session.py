"""Solver sessions: one prepared matrix, many multiplies, one target.

A :class:`SolverSession` binds a matrix -- prepared once, auto-tuned
once -- to an execution target and turns every solver iteration's
``A @ v`` into a call on that target:

* **direct**: an :class:`~repro.SpMVEngine` multiply (the classic
  in-process path);
* **served**: a request submitted to an :class:`~repro.serve.
  SpMVServer` or :class:`~repro.serve.ServeFabric`, so iterations flow
  through admission control, the value-aware prepared cache, tenant
  quotas and health-aware failover exactly like external traffic.

The session is also the solver subsystem's **accountant**.  It tallies
SpMV count, *simulated device time* (billing only the successful
attempt of each multiply -- a retried or failed-over iteration
contributes to ``spmv_retries``/``failovers`` instead of being counted
twice), wall-clock time, serve-cache hits and value refreshes;
:func:`~repro.solvers.solve` reports per-solve deltas of these
counters in :class:`~repro.solvers.SolveResult`.

Time-varying systems use :meth:`update_values`: the structural plan
(tuning point, bit flags, column storage, fast-path gather plans) is
reused and only value buffers are swapped via
:meth:`SpMVEngine.update_values`, then the refreshed matrix is primed
into the serve cache under its new value-aware key.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.engine import PreparedMatrix, SpMVEngine, SpMVResult
from ..errors import ReproError
from ..serve.fabric import ServeFabric
from ..serve.server import SpMVServer
from ..util import as_csr

__all__ = ["SolverSession"]


class SolverSession:
    """Bind a matrix to an engine or serving target for repeated SpMV.

    Parameters
    ----------
    A:
        A scipy sparse matrix (prepared here, once) or an existing
        :class:`~repro.core.engine.PreparedMatrix` (requires ``engine=``
        or a ``server=`` whose engine prepared it).
    engine:
        The engine that owns prepares and value refreshes.  Defaults to
        the server's engine (first shard's for a fabric), or a fresh
        default engine when running direct.
    server:
        Optional :class:`~repro.serve.SpMVServer` or
        :class:`~repro.serve.ServeFabric`; when given, :meth:`multiply`
        submits requests instead of calling the engine.  Threadless
        targets (``start=False``) are pumped synchronously via
        ``drain()``, so deterministic single-threaded tests work
        unchanged.
    tenant, timeout_s:
        Attribution and per-request deadline for served multiplies.
    """

    def __init__(
        self,
        A,
        *,
        engine: SpMVEngine | None = None,
        server=None,
        tenant: str = "default",
        timeout_s: float | None = None,
    ):
        if server is not None and not isinstance(
            server, (SpMVServer, ServeFabric)
        ):
            raise ReproError(
                f"server must be an SpMVServer or ServeFabric, "
                f"got {type(server).__name__}"
            )
        self.server = server
        self.tenant = tenant
        self.timeout_s = timeout_s
        if engine is None and server is not None:
            engine = (
                server.engine
                if isinstance(server, SpMVServer)
                else server.shards[0].engine
            )
        if isinstance(A, PreparedMatrix):
            if engine is None:
                raise ReproError(
                    "a PreparedMatrix needs the engine it was prepared with"
                )
            self.engine = engine
            self.prepared = A
        else:
            self.engine = engine if engine is not None else SpMVEngine()
            self.prepared = self.engine.prepare(as_csr(A))
        if server is not None:
            # Pre-admit the session's prepared matrix so the first served
            # iteration is already a cache hit.  A fabric primes every
            # routable shard (sharing the buffers in process mode, so
            # worker restarts re-warm from the same segments).
            server.prime(self.prepared)

        self.spmv_count = 0
        self.spmv_time_s = 0.0
        self.spmv_wall_s = 0.0
        self.spmv_retries = 0
        self.failovers = 0
        self.cache_hits = 0
        self.value_refreshes = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, int]:
        return (self.prepared.fmt.nrows, self.prepared.fmt.ncols)

    @property
    def served(self) -> bool:
        return self.server is not None

    def counters(self) -> dict:
        """Snapshot of the session's accounting (see :func:`solve`)."""
        return {
            "spmv_count": self.spmv_count,
            "spmv_time_s": self.spmv_time_s,
            "spmv_wall_s": self.spmv_wall_s,
            "spmv_retries": self.spmv_retries,
            "failovers": self.failovers,
            "cache_hits": self.cache_hits,
            "value_refreshes": self.value_refreshes,
        }

    # ------------------------------------------------------------------ #
    # The multiplier
    # ------------------------------------------------------------------ #

    def multiply(self, v: np.ndarray) -> np.ndarray:
        """One accounted ``A @ v`` through the session's target."""
        v = np.asarray(v, dtype=np.float64)
        t0 = time.perf_counter()
        if self.server is None:
            res = self.engine.multiply(self.prepared, v)
            self.spmv_wall_s += time.perf_counter() - t0
            self._account(res)
            return res.y
        if isinstance(self.server, SpMVServer):
            future = self.server.submit(
                self.prepared, v, timeout_s=self.timeout_s
            )
        else:
            future = self.server.submit(
                self.prepared, v, tenant=self.tenant, timeout_s=self.timeout_s
            )
        if self.server._thread is None:
            self.server.drain()
        resp = future.result()
        self.spmv_wall_s += time.perf_counter() - t0
        self.failovers += resp.failovers
        self.cache_hits += int(resp.cache_hit)
        self._account(resp.result)
        return resp.y

    __call__ = multiply

    def _account(self, res: SpMVResult) -> None:
        """Bill one multiply: successful attempt's device time only.

        ``res.time_s`` already covers just the winning stage of the
        fallback chain; failed attempts surface as ``spmv_retries`` so a
        recovered iteration is never double-billed.
        """
        self.spmv_count += 1
        self.spmv_time_s += res.time_s
        if res.failure is not None:
            self.spmv_retries += sum(
                1 for a in res.failure.attempts if not a.ok
            )

    # ------------------------------------------------------------------ #
    # Incremental value refresh
    # ------------------------------------------------------------------ #

    def update_values(self, new_values) -> PreparedMatrix:
        """Swap the matrix's values, keeping the structural plan.

        Delegates to :meth:`SpMVEngine.update_values` (tuning point and
        block structure reused, value buffers rebuilt, fast-path plans
        migrated), rebinds the session to the refreshed matrix and
        primes it into the serve target's cache(s) under its new
        value-aware key.  The sparsity pattern must be identical; see
        :meth:`PreparedMatrix.with_values`.
        """
        self.prepared = self.engine.update_values(self.prepared, new_values)
        self.value_refreshes += 1
        if self.server is not None:
            self.server.prime(self.prepared)
        return self.prepared

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #

    def solve(
        self,
        b: np.ndarray,
        method: str = "cg",
        *,
        x0: np.ndarray | None = None,
        tol: float = 1e-10,
        max_iter: int = 10_000,
        restart: int = 30,
        deadline=None,
        keep_iterates: bool = False,
    ):
        """Run :func:`~repro.solvers.solve` against this session.

        Repeated calls reuse the prepared matrix (and its tuning) --
        solve, :meth:`update_values`, solve again is the intended loop
        for time-varying systems.
        """
        from .iterative import _run_solve

        return _run_solve(
            self,
            b,
            method,
            x0=x0,
            tol=tol,
            max_iter=max_iter,
            restart=restart,
            deadline=deadline,
            keep_iterates=keep_iterates,
        )
