"""Auto-tuning framework (paper section 4)."""

from .cache import CompiledPlan, FormatCache, KernelPlanCache
from .checkpoint import TuningCheckpoint
from .model import CostModel, MatrixSummary, ModelDrivenTuner
from .parallel import (
    CandidateOutcome,
    ChunkResult,
    ParallelReport,
    chunk_candidates,
    run_parallel,
)
from .persistence import TuningStore, matrix_fingerprint
from .parameters import (
    BASE_FORMATS,
    BIT_WORDS,
    BLOCK_HEIGHTS,
    BLOCK_WIDTHS,
    SLICE_COUNTS,
    WORKGROUP_SIZES,
    TuningPoint,
)
from .space import (
    base_format_points,
    candidate_slice_counts,
    exhaustive_space,
    pruned_space,
)
from .tuner import AutoTuner, Evaluation, TuningResult

__all__ = [
    "CostModel",
    "MatrixSummary",
    "ModelDrivenTuner",
    "CompiledPlan",
    "FormatCache",
    "KernelPlanCache",
    "BASE_FORMATS",
    "BIT_WORDS",
    "BLOCK_HEIGHTS",
    "BLOCK_WIDTHS",
    "SLICE_COUNTS",
    "WORKGROUP_SIZES",
    "TuningPoint",
    "base_format_points",
    "candidate_slice_counts",
    "exhaustive_space",
    "pruned_space",
    "AutoTuner",
    "CandidateOutcome",
    "ChunkResult",
    "ParallelReport",
    "chunk_candidates",
    "run_parallel",
    "Evaluation",
    "TuningCheckpoint",
    "TuningResult",
    "TuningStore",
    "matrix_fingerprint",
]
