"""Caches that make auto-tuning fast (paper section 4, accelerations 1-2).

* :class:`KernelPlanCache` reproduces "we cache compiled kernels in a
  hash table so that they can be reused for different matrices": a
  *plan* stands in for a compiled OpenCL binary; the first request for a
  plan key pays a simulated compile cost, later requests are free.  The
  cache is keyed on everything the code generator would specialize on
  (``TuningPoint.plan_key``) and deliberately **not** on the matrix.
* :class:`FormatCache` memoizes format conversions per matrix so the
  tuner converts once per block-dimension choice, not once per kernel
  configuration (the paper's GPU-accelerated conversion plays the same
  role: making conversion cost negligible next to kernel evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..formats.bccoo import BCCOOMatrix
from ..formats.bccoo_plus import BCCOOPlusMatrix
from ..formats.merge_csr import MergeCSRMatrix
from ..formats.rgcsr import RGCSRMatrix
from .parameters import TuningPoint

__all__ = ["CompiledPlan", "KernelPlanCache", "FormatCache"]

#: Simulated OpenCL JIT cost per distinct kernel specialization, seconds.
#: The paper's 12.8 s average tuning time is dominated by compilation;
#: this constant lets the tuner report comparable simulated totals.
DEFAULT_COMPILE_COST_S = 0.15


@dataclass(frozen=True)
class CompiledPlan:
    """Stand-in for one compiled kernel binary."""

    key: tuple
    compile_cost_s: float


@dataclass
class KernelPlanCache:
    """Hash-table cache of compiled kernel plans.

    ``get`` returns ``(plan, was_hit)``; statistics feed the tuning-time
    benchmark (how much the cache saves across the matrix suite).
    """

    compile_cost_s: float = DEFAULT_COMPILE_COST_S
    _plans: dict[tuple, CompiledPlan] = field(default_factory=dict)
    hits: int = 0
    misses: int = 0

    def get(self, point: TuningPoint) -> tuple[CompiledPlan, bool]:
        key = point.plan_key()
        plan = self._plans.get(key)
        if plan is not None:
            self.hits += 1
            return plan, True
        plan = CompiledPlan(key=key, compile_cost_s=self.compile_cost_s)
        self._plans[key] = plan
        self.misses += 1
        return plan, False

    @property
    def simulated_compile_time_s(self) -> float:
        """Total simulated JIT time actually paid (misses only)."""
        return self.misses * self.compile_cost_s

    @property
    def simulated_time_saved_s(self) -> float:
        """JIT time avoided thanks to the cache (hits)."""
        return self.hits * self.compile_cost_s

    def __len__(self) -> int:
        return len(self._plans)


class FormatCache:
    """Per-matrix memoization of BCCOO/BCCOO+ conversions."""

    def __init__(self, matrix):
        self._matrix = matrix
        self._built: dict[tuple, BCCOOMatrix | BCCOOPlusMatrix] = {}
        self.conversions = 0

    def get(self, point: TuningPoint):
        key = point.format_key()
        fmt = self._built.get(key)
        if fmt is not None:
            return fmt
        fmt = self._build(point)
        self._built[key] = fmt
        self.conversions += 1
        return fmt

    def _build(self, point: TuningPoint):
        if point.base_format == "merge_csr":
            return MergeCSRMatrix.from_scipy(self._matrix)
        if point.base_format == "rgcsr":
            return RGCSRMatrix.from_scipy(self._matrix)
        col_storage = "auto" if point.col_compress else "int32"
        kwargs = dict(
            block_height=point.block_height,
            block_width=point.block_width,
            bit_word_dtype=np.dtype(point.bit_word),
            col_storage=col_storage,
            delta_tile_size=point.kernel.effective_tile,
        )
        if point.slice_count > 1:
            return BCCOOPlusMatrix.from_scipy(
                self._matrix, slice_count=point.slice_count, **kwargs
            )
        return BCCOOMatrix.from_scipy(self._matrix, **kwargs)


# Re-exported for tests that want a custom builder.
FormatBuilder = Callable[[TuningPoint], BCCOOMatrix]
