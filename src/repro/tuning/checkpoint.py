"""Crash-safe tuning checkpoints: journal candidate outcomes, resume later.

The auto-tuner's search is restartable state (clSpMV's cocktail tuner
and SMAT both persist their search the same way): every evaluated
candidate is independent, tagged with its enumeration index, and
deterministic.  This module journals each completed
:class:`~repro.tuning.parallel.CandidateOutcome` to an append-only
JSON-lines file as it finishes, so a run killed mid-search -- worker
crash, SIGKILL, deadline expiry -- resumes by *skipping* the journaled
candidates and evaluating only the remainder.  Because the tuner merges
outcomes in enumeration order regardless of where they came from, a
resumed run's final :class:`~repro.tuning.TuningResult` (best point,
history, skip reasons) is bit-identical to an uninterrupted run.

File format (one JSON object per line)::

    {"kind": "header", "schema": 1, "fingerprint": ..., "device": ...,
     "mode": ..., "n_candidates": N}
    {"kind": "outcome", "index": 0, "point": {...}, "wall_s": ...,
     "evaluation": {"time_s": ..., "gflops": ..., "breakdown": {...}}}
    {"kind": "outcome", "index": 3, "point": {...},
     "skip_reason": "DeviceError", "format_skipped": false, ...}

The header pins the journal to one (matrix structure, device, search
mode, candidate count); a mismatched header means the file belongs to a
different run and is started fresh.  Appends are flushed and fsync'd per
outcome, and a torn trailing line (the signature of a crash mid-write)
is skipped on load -- at most one candidate's work is ever lost.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path

from ..errors import CheckpointError
from ..gpu.timing import TimingBreakdown
from .parallel import CandidateOutcome
from .persistence import _decode, _encode

__all__ = ["TuningCheckpoint"]

_SCHEMA = 1


def _encode_outcome(outcome: CandidateOutcome) -> dict:
    blob: dict = {
        "kind": "outcome",
        "index": outcome.index,
        "point": _encode(outcome.point),
        "wall_s": outcome.wall_s,
        "format_skipped": outcome.format_skipped,
        "skip_reason": outcome.skip_reason,
    }
    if outcome.evaluation is not None:
        ev = outcome.evaluation
        blob["evaluation"] = {
            "time_s": ev.time_s,
            "gflops": ev.gflops,
            "breakdown": asdict(ev.breakdown),
        }
    return blob


def _decode_outcome(blob: dict) -> CandidateOutcome | None:
    """Rebuild one journaled outcome; ``None`` when undecodable."""
    # Deferred: repro.tuning.tuner imports this package's parallel module
    # at top level; importing Evaluation lazily breaks the cycle.
    from .tuner import Evaluation

    point = _decode(blob.get("point") or {})
    if point is None or not isinstance(blob.get("index"), int):
        return None
    evaluation = None
    ev = blob.get("evaluation")
    if ev is not None:
        try:
            evaluation = Evaluation(
                point=point,
                time_s=float(ev["time_s"]),
                gflops=float(ev["gflops"]),
                breakdown=TimingBreakdown(**ev["breakdown"]),
            )
        except (KeyError, TypeError, ValueError):
            return None
    return CandidateOutcome(
        index=blob["index"],
        point=point,
        evaluation=evaluation,
        skip_reason=blob.get("skip_reason"),
        format_skipped=bool(blob.get("format_skipped", False)),
        wall_s=float(blob.get("wall_s", 0.0)),
    )


class TuningCheckpoint:
    """Append-only journal of completed candidate outcomes.

    Parameters
    ----------
    path:
        Journal location (created on :meth:`begin`).
    resume:
        When ``True`` (default), :meth:`begin` loads outcomes journaled
        by a previous *matching* run so the tuner can skip them; when
        ``False`` any existing journal is discarded and the run starts
        fresh.
    """

    def __init__(self, path, resume: bool = True):
        self.path = Path(path).expanduser()
        self.resume = resume
        self._fh = None
        #: Outcomes restored by the last :meth:`begin` (index-keyed).
        self.restored: dict[int, CandidateOutcome] = {}
        #: Journal lines that could not be parsed on the last load
        #: (torn tail from a crash mid-write).
        self.torn_lines = 0

    @classmethod
    def coerce(
        cls, value: "TuningCheckpoint | str | os.PathLike | None"
    ) -> "TuningCheckpoint | None":
        """Pass checkpoints through, wrap paths, keep ``None``."""
        if value is None or isinstance(value, TuningCheckpoint):
            return value
        if isinstance(value, (str, os.PathLike)):
            return cls(value)
        raise CheckpointError(
            f"checkpoint must be a TuningCheckpoint, a path or None, "
            f"got {type(value).__name__}"
        )

    # ------------------------------------------------------------------ #

    def begin(
        self,
        *,
        fingerprint: str,
        device: str,
        mode: str,
        n_candidates: int,
    ) -> dict[int, CandidateOutcome]:
        """Open the journal for one search; return restorable outcomes.

        A matching existing journal (same header) is kept and appended
        to; a mismatched, corrupt, or ``resume=False`` journal is
        replaced by a fresh one.  The returned dict maps enumeration
        index to the journaled :class:`CandidateOutcome` -- the
        candidates the tuner may skip.
        """
        self.close()
        header = {
            "kind": "header",
            "schema": _SCHEMA,
            "fingerprint": fingerprint,
            "device": device,
            "mode": mode,
            "n_candidates": n_candidates,
        }
        completed: dict[int, CandidateOutcome] = {}
        if self.resume and self.path.exists():
            completed = self._load_matching(header)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if completed:
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self._fh = open(self.path, "w", encoding="utf-8")
            self._write_line(header)
        self.restored = completed
        return dict(completed)

    def _load_matching(self, header: dict) -> dict[int, CandidateOutcome]:
        """Outcomes from an existing journal whose header matches."""
        self.torn_lines = 0
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError:
            return {}
        if not lines:
            return {}
        try:
            found = json.loads(lines[0])
        except json.JSONDecodeError:
            return {}
        if found != header:
            return {}
        completed: dict[int, CandidateOutcome] = {}
        for line in lines[1:]:
            line = line.strip()
            if not line:
                continue
            try:
                blob = json.loads(line)
            except json.JSONDecodeError:
                # Torn write from a crash: drop the line; the candidate
                # is simply re-evaluated.
                self.torn_lines += 1
                continue
            if blob.get("kind") != "outcome":
                continue
            outcome = _decode_outcome(blob)
            if outcome is not None and 0 <= outcome.index < header["n_candidates"]:
                completed[outcome.index] = outcome
        return completed

    # ------------------------------------------------------------------ #

    def _write_line(self, blob: dict) -> None:
        if self._fh is None:
            raise CheckpointError("checkpoint is not open; call begin() first")
        self._fh.write(json.dumps(blob, sort_keys=True) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def append(self, outcome: CandidateOutcome) -> None:
        """Journal one completed outcome (flushed and fsync'd)."""
        self._write_line(_encode_outcome(outcome))

    def append_many(self, outcomes) -> None:
        for outcome in outcomes:
            self.append(outcome)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "TuningCheckpoint":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
