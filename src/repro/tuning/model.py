"""Model-driven candidate pre-filtering for the auto-tuner.

The paper's framework evaluates every pruned candidate by running its
kernel (section 4); it cites Choi et al. [7] for the alternative --
*model-driven* auto-tuning, where an analytical performance model ranks
configurations first.  This module provides that extension: a closed-
form cost predictor needing only cheap per-matrix statistics (no kernel
execution, no vector gather), and :class:`ModelDrivenTuner`, which
ranks the pruned space with the predictor and executes only the top
fraction through the real simulated kernel.

The predictor mirrors the timing model's dominant terms:

* value/index/flag stream bytes from the block-dimension fill ratio
  (measured once per (h, w) during block-candidate scoring),
* a vector-traffic estimate from the matrix's column span vs. the
  texture cache (slice-count aware, so BCCOO+ candidates are ranked
  sensibly),
* launch and combine overheads.

It deliberately ignores second-order effects (spills, scan skips,
chain shapes) -- those are what the real evaluations of the surviving
candidates are for.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError, TuningError
from ..formats.blocking import extract_blocks
from ..gpu.device import DeviceSpec
from ..gpu.timing import TimingModel
from ..kernels.yaspmv import YaSpMVKernel
from ..util import as_csr, ceil_div
from .cache import FormatCache, KernelPlanCache
from .parameters import TuningPoint
from .space import pruned_space
from .tuner import Evaluation, TuningResult

__all__ = ["MatrixSummary", "CostModel", "ModelDrivenTuner"]


@dataclass(frozen=True)
class MatrixSummary:
    """Cheap per-matrix statistics the cost model consumes."""

    nrows: int
    ncols: int
    nnz: int
    #: (h, w) -> number of non-zero blocks, measured once per dimension.
    blocks_per_dim: dict[tuple[int, int], int]

    @classmethod
    def measure(cls, matrix, dims: list[tuple[int, int]]) -> "MatrixSummary":
        csr = as_csr(matrix)
        blocks = {
            (h, w): extract_blocks(csr, h, w).nblocks for h, w in dims
        }
        return cls(
            nrows=csr.shape[0],
            ncols=csr.shape[1],
            nnz=int(csr.nnz),
            blocks_per_dim=blocks,
        )


class CostModel:
    """Closed-form execution-time predictor for yaSpMV candidates."""

    def __init__(self, device: DeviceSpec):
        self.device = device

    def predict(self, point: TuningPoint, summary: MatrixSummary) -> float:
        """Predicted seconds for one configuration (ranking metric)."""
        dev = self.device
        h, w = point.block_height, point.block_width
        nb = summary.blocks_per_dim.get((h, w))
        if nb is None:
            raise TuningError(
                f"MatrixSummary lacks block counts for {h}x{w}; "
                f"measure() it with that dimension included"
            )
        k = point.kernel
        val_b = k.value_bytes

        # Matrix streams.
        read = nb * h * w * val_b
        read += nb * (2 if point.col_compress else 4)
        read += ceil_div(nb, 8)  # bit flags
        read += ceil_div(nb, k.effective_tile) * 4  # aux entries

        # Vector traffic: unique elements touched at least once; the
        # re-read fraction misses when the (per-slice) vector span
        # overflows the texture cache.
        touched = min(summary.nnz, summary.ncols) * val_b
        span = summary.ncols * val_b / max(point.slice_count, 1)
        rereads = max(summary.nnz * val_b - touched, 0)
        if k.use_texture and span <= dev.tex_cache_bytes:
            vector = touched  # re-reads all hit
        else:
            miss = min(1.0, span / max(dev.tex_cache_bytes, 1) / 8)
            vector = touched + rereads * miss
        read += vector

        write = summary.nrows * val_b * (1.5 if k.strategy == 1 else 1.0)
        if point.slice_count > 1:
            # Temp buffer round trip + combine launch.
            write += point.slice_count * summary.nrows * val_b
            read += point.slice_count * summary.nrows * val_b

        t_mem = (read + write) / dev.effective_bandwidth
        launches = 1 + (point.slice_count > 1) + (k.cross_wg == "second_kernel")
        return t_mem + launches * dev.kernel_launch_s


class ModelDrivenTuner:
    """Rank with :class:`CostModel`, execute only the survivors.

    ``evaluate_fraction`` of the pruned space (at least
    ``min_evaluations`` points) runs through the real kernel; the rest
    is trusted to the model.  Typical speedup is 3-5x over the full
    pruned search with near-identical winners (asserted in the tests
    and measured in ``benchmarks/bench_autotune.py``).
    """

    def __init__(
        self,
        device: DeviceSpec,
        evaluate_fraction: float = 0.2,
        min_evaluations: int = 24,
        plan_cache: KernelPlanCache | None = None,
    ):
        if not (0 < evaluate_fraction <= 1.0):
            raise TuningError(
                f"evaluate_fraction must be in (0, 1], got {evaluate_fraction}"
            )
        self.device = device
        self.evaluate_fraction = evaluate_fraction
        self.min_evaluations = min_evaluations
        self.plan_cache = plan_cache if plan_cache is not None else KernelPlanCache()
        self._kernel = YaSpMVKernel()
        self._timing = TimingModel(device)

    def tune(self, matrix, x: np.ndarray | None = None) -> TuningResult:
        csr = as_csr(matrix)
        if x is None:
            x = np.ones(csr.shape[1], dtype=np.float64)

        points = list(pruned_space(csr, self.device))
        if not points:
            raise TuningError("empty pruned space")
        dims = sorted({(p.block_height, p.block_width) for p in points})
        summary = MatrixSummary.measure(csr, dims)
        model = CostModel(self.device)

        t0 = time.perf_counter()
        hits0 = self.plan_cache.hits
        misses0 = self.plan_cache.misses
        ranked = sorted(points, key=lambda p: model.predict(p, summary))
        keep = max(
            int(len(ranked) * self.evaluate_fraction), self.min_evaluations
        )
        survivors = ranked[:keep]

        fmt_cache = FormatCache(csr)
        nnz = int(csr.nnz)
        best: Evaluation | None = None
        history: list[Evaluation] = []
        skipped = 0
        skip_reasons: dict[str, int] = {}
        for point in survivors:
            try:
                fmt = fmt_cache.get(point)
                self.plan_cache.get(point)
                result = self._kernel.run(fmt, x, self.device, config=point.kernel)
            except ReproError as exc:
                skipped += 1
                name = type(exc).__name__
                skip_reasons[name] = skip_reasons.get(name, 0) + 1
                continue
            breakdown = self._timing.estimate(result.stats)
            ev = Evaluation(
                point=point,
                time_s=breakdown.t_total,
                gflops=breakdown.gflops(nnz),
                breakdown=breakdown,
            )
            history.append(ev)
            if best is None or ev.time_s < best.time_s:
                best = ev

        if best is None:
            raise TuningError("no model-selected candidate was evaluable")
        return TuningResult(
            best=best,
            evaluated=len(history),
            skipped=skipped,
            wall_seconds=time.perf_counter() - t0,
            simulated_compile_s=self.plan_cache.simulated_compile_time_s,
            plan_cache_hits=self.plan_cache.hits,
            plan_cache_misses=self.plan_cache.misses,
            cache_hits=self.plan_cache.hits - hits0,
            cache_misses=self.plan_cache.misses - misses0,
            history=history,
            skip_reasons=skip_reasons,
        )
