"""Parallel candidate evaluation: the auto-tuner's fan-out machinery.

Section 4's search is the framework's cost center (the paper reports
12.8 s per matrix, dominated by kernel compilation), and every candidate
evaluation is independent of every other -- an embarrassingly parallel
loop that :class:`~repro.tuning.AutoTuner` nevertheless walked serially.
This module fans the candidate space out over a ``concurrent.futures``
pool and merges the results *deterministically*, so ``workers=N`` is an
observable no-op on everything except wall-clock time.

Three design rules keep the parallel path bit-identical to serial:

1. **Chunking by format affinity.**  Candidates are grouped by their
   ``(block_height, block_width, bit_word)`` triple.  Every format
   conversion a chunk needs is therefore performed exactly once, by the
   worker that owns the chunk -- :class:`~repro.tuning.FormatCache`
   state never crosses workers and no conversion is duplicated.
2. **Index-tagged outcomes.**  Each candidate carries its position in
   the enumeration order; the merge walks outcomes in that order, so the
   best-point tie-breaking ("first strictly faster wins") and the
   skip-reason quarantine counters come out exactly as the serial loop
   would produce them, regardless of worker scheduling.
3. **Plan-lookup replay.**  Workers compile against throwaway local
   :class:`~repro.tuning.KernelPlanCache` instances; the merge then
   replays the plan lookups against the tuner's *shared* cache in
   enumeration order, leaving it in the identical state (entries, hit
   and miss counters) a serial run would have left it in.

Worker processes are forked when the platform supports it (cheap, no
re-import); ``executor="thread"`` opts into a thread pool for callers
that cannot fork (the GIL limits its speedup to the NumPy-released
portions of the kernels).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..errors import ReproError, TuningError
from ..gpu.device import DeviceSpec
from ..gpu.timing import TimingModel
from .cache import FormatCache, KernelPlanCache
from .parameters import TuningPoint

__all__ = [
    "CandidateOutcome",
    "ChunkResult",
    "EXECUTORS",
    "chunk_candidates",
    "evaluate_candidates",
    "run_parallel",
]

#: Supported ``concurrent.futures`` pool kinds.
EXECUTORS = ("process", "thread")


@dataclass(frozen=True)
class CandidateOutcome:
    """One evaluated (or quarantined) candidate, tagged with its
    position in the enumeration order."""

    index: int
    point: TuningPoint
    #: ``None`` when the candidate was quarantined.
    evaluation: object | None
    #: Error class name when quarantined (the skip-reason taxonomy).
    skip_reason: str | None = None
    #: Quarantined before the plan lookup (format conversion failed), so
    #: a serial tuner would never have touched the plan cache for it.
    format_skipped: bool = False
    #: Wall-clock seconds this candidate's evaluation took (measured in
    #: the worker; observability only -- never consulted by the merge).
    wall_s: float = 0.0


@dataclass
class ChunkResult:
    """What one worker reports back for its chunk."""

    outcomes: list[CandidateOutcome] = field(default_factory=list)
    conversions: int = 0
    plan_hits: int = 0
    plan_misses: int = 0


def chunk_candidates(
    items: list[tuple[int, TuningPoint]],
) -> list[list[tuple[int, TuningPoint]]]:
    """Group index-tagged candidates by format affinity.

    The chunk key is ``(block_height, block_width, bit_word)`` -- every
    distinct format a chunk's candidates build (the key is a prefix of
    ``TuningPoint.format_key``) belongs to that chunk alone, so
    conversions stay worker-local.  Chunks preserve first-occurrence
    order and candidates keep their enumeration order within a chunk.
    """
    groups: dict[tuple, list[tuple[int, TuningPoint]]] = {}
    for index, point in items:
        key = (point.block_height, point.block_width, point.bit_word)
        groups.setdefault(key, []).append((index, point))
    return list(groups.values())


def evaluate_candidates(
    items: list[tuple[int, TuningPoint]],
    csr,
    x,
    device: DeviceSpec,
    fmt_cache: FormatCache,
    plan_cache: KernelPlanCache,
) -> list[CandidateOutcome]:
    """Evaluate candidates in order, mirroring the serial tuner loop.

    A failing candidate is quarantined and counted by reason instead of
    aborting; genuine bugs (non-:class:`ReproError`) still propagate.
    """
    # Imported here: repro.tuning.tuner imports this module at top
    # level; the deferred import breaks the cycle (and re-runs cheaply
    # in spawned workers).
    from ..kernels.yaspmv import YaSpMVKernel
    from .tuner import Evaluation

    kernel = YaSpMVKernel()
    timing = TimingModel(device)
    nnz = int(csr.nnz)
    outcomes: list[CandidateOutcome] = []
    for index, point in items:
        t0 = time.perf_counter()
        try:
            fmt = fmt_cache.get(point)
        except ReproError as exc:
            outcomes.append(
                CandidateOutcome(
                    index=index,
                    point=point,
                    evaluation=None,
                    skip_reason=type(exc).__name__,
                    format_skipped=True,
                    wall_s=time.perf_counter() - t0,
                )
            )
            continue
        plan_cache.get(point)  # compile (or reuse) the plan
        try:
            result = kernel.run(fmt, x, device, config=point.kernel)
        except ReproError as exc:
            outcomes.append(
                CandidateOutcome(
                    index=index,
                    point=point,
                    evaluation=None,
                    skip_reason=type(exc).__name__,
                    wall_s=time.perf_counter() - t0,
                )
            )
            continue
        breakdown = timing.estimate(result.stats)
        outcomes.append(
            CandidateOutcome(
                index=index,
                point=point,
                evaluation=Evaluation(
                    point=point,
                    time_s=breakdown.t_total,
                    gflops=breakdown.gflops(nnz),
                    breakdown=breakdown,
                ),
                wall_s=time.perf_counter() - t0,
            )
        )
    return outcomes


def _evaluate_chunk(payload) -> ChunkResult:
    """Worker entry point: evaluate one chunk with worker-local caches."""
    csr, x, device, items, compile_cost = payload
    fmt_cache = FormatCache(csr)
    plan_cache = KernelPlanCache(compile_cost_s=compile_cost)
    outcomes = evaluate_candidates(items, csr, x, device, fmt_cache, plan_cache)
    return ChunkResult(
        outcomes=outcomes,
        conversions=fmt_cache.conversions,
        plan_hits=plan_cache.hits,
        plan_misses=plan_cache.misses,
    )


def _make_pool(executor: str, max_workers: int):
    if executor == "thread":
        return ThreadPoolExecutor(max_workers=max_workers)
    import multiprocessing as mp

    if "fork" in mp.get_all_start_methods():
        # Fork is both the fastest start method and the one that keeps
        # already-imported modules (no per-worker re-import cost).
        return ProcessPoolExecutor(
            max_workers=max_workers, mp_context=mp.get_context("fork")
        )
    return ProcessPoolExecutor(max_workers=max_workers)


def run_parallel(
    items: list[tuple[int, TuningPoint]],
    csr,
    x,
    device: DeviceSpec,
    workers: int,
    executor: str,
    compile_cost: float,
) -> list[CandidateOutcome]:
    """Fan chunks out over a pool; return outcomes in enumeration order."""
    if executor not in EXECUTORS:
        raise TuningError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    chunks = chunk_candidates(items)
    if not chunks:
        return []
    payloads = [(csr, x, device, chunk, compile_cost) for chunk in chunks]
    max_workers = max(1, min(workers, len(chunks)))
    with _make_pool(executor, max_workers) as pool:
        results = list(pool.map(_evaluate_chunk, payloads))
    outcomes = [o for result in results for o in result.outcomes]
    outcomes.sort(key=lambda o: o.index)
    return outcomes
