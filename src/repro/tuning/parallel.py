"""Parallel candidate evaluation: the auto-tuner's fan-out machinery.

Section 4's search is the framework's cost center (the paper reports
12.8 s per matrix, dominated by kernel compilation), and every candidate
evaluation is independent of every other -- an embarrassingly parallel
loop that :class:`~repro.tuning.AutoTuner` nevertheless walked serially.
This module fans the candidate space out over a ``concurrent.futures``
pool and merges the results *deterministically*, so ``workers=N`` is an
observable no-op on everything except wall-clock time.

Three design rules keep the parallel path bit-identical to serial:

1. **Chunking by format affinity.**  Candidates are grouped by their
   ``(block_height, block_width, bit_word)`` triple.  Every format
   conversion a chunk needs is therefore performed exactly once, by the
   worker that owns the chunk -- :class:`~repro.tuning.FormatCache`
   state never crosses workers and no conversion is duplicated.
2. **Index-tagged outcomes.**  Each candidate carries its position in
   the enumeration order; the merge walks outcomes in that order, so the
   best-point tie-breaking ("first strictly faster wins") and the
   skip-reason quarantine counters come out exactly as the serial loop
   would produce them, regardless of worker scheduling.
3. **Plan-lookup replay.**  Workers compile against throwaway local
   :class:`~repro.tuning.KernelPlanCache` instances; the merge then
   replays the plan lookups against the tuner's *shared* cache in
   enumeration order, leaving it in the identical state (entries, hit
   and miss counters) a serial run would have left it in.

Worker processes are forked when the platform supports it (cheap, no
re-import); ``executor="thread"`` opts into a thread pool for callers
that cannot fork (the GIL limits its speedup to the NumPy-released
portions of the kernels).

**Failure containment.**  A long tuning run must survive its pool:
:func:`run_parallel` catches worker death (``BrokenProcessPool`` from a
killed process, :class:`~repro.errors.WorkerCrashError` from the
``tuner.worker_crash`` fault site on thread pools), requeues the lost
chunks onto a freshly built pool under a
:class:`~repro.fault.RetryPolicy` (exponential backoff, deterministic
jitter), and past the retry budget falls back to evaluating the
stragglers serially in-process -- the index-ordered merge is oblivious
to all of it, so the result stays bit-identical.  A
:class:`~repro.fault.Deadline` is threaded down into each chunk
(workers rebuild a local deadline from the remaining seconds), and an
``on_chunk`` callback lets the tuner journal completed chunks to a
:class:`~repro.tuning.TuningCheckpoint` the moment they finish.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..errors import ReproError, TuningError, WorkerCrashError
from ..fault.injection import active_plan
from ..fault.retry import Deadline, RetryPolicy
from ..gpu.device import DeviceSpec
from ..gpu.timing import TimingModel
from .cache import FormatCache, KernelPlanCache
from .parameters import TuningPoint

__all__ = [
    "CandidateOutcome",
    "ChunkResult",
    "EXECUTORS",
    "ParallelReport",
    "chunk_candidates",
    "evaluate_candidates",
    "run_parallel",
]

#: Supported ``concurrent.futures`` pool kinds.
EXECUTORS = ("process", "thread")

#: Default pool-rebuild policy when the caller supplies none: two
#: rebuilds (then serial fallback), no real sleeping.
DEFAULT_POOL_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.0)


@dataclass(frozen=True)
class CandidateOutcome:
    """One evaluated (or quarantined) candidate, tagged with its
    position in the enumeration order."""

    index: int
    point: TuningPoint
    #: ``None`` when the candidate was quarantined.
    evaluation: object | None
    #: Error class name when quarantined (the skip-reason taxonomy).
    skip_reason: str | None = None
    #: Quarantined before the plan lookup (format conversion failed), so
    #: a serial tuner would never have touched the plan cache for it.
    format_skipped: bool = False
    #: Wall-clock seconds this candidate's evaluation took (measured in
    #: the worker; observability only -- never consulted by the merge).
    wall_s: float = 0.0


@dataclass
class ChunkResult:
    """What one worker reports back for its chunk."""

    outcomes: list[CandidateOutcome] = field(default_factory=list)
    conversions: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    #: The worker mapped the shared operand arena (instead of unpickling
    #: its own CSR copy) to evaluate this chunk.
    shm_attaches: int = 0


@dataclass
class ParallelReport:
    """Containment bookkeeping for one :func:`run_parallel` call.

    Filled in place when the caller passes one in -- the tuner reads it
    to emit ``tuner.worker_crashes`` / ``retry.attempts`` metrics (the
    fan-out itself runs under a muted observer to keep traces
    executor-independent).
    """

    #: Chunks lost to a dead worker (a single crash can lose several:
    #: a broken process pool fails every in-flight future).
    lost_chunks: int = 0
    #: Pools torn down and rebuilt after a crash.
    pool_rebuilds: int = 0
    #: Chunks that ended up evaluated serially in-process because the
    #: rebuild budget ran out.
    serial_fallback_chunks: int = 0
    #: The deadline expired before every candidate was evaluated.
    deadline_expired: bool = False
    #: Worker attaches to the shared operand arena (``share_operand``):
    #: each one is a zero-copy mapping that replaced a pickled CSR.
    shm_attaches: int = 0
    #: Bytes in the shared operand arena (0 when not sharing).
    shm_bytes: int = 0


def chunk_candidates(
    items: list[tuple[int, TuningPoint]],
) -> list[list[tuple[int, TuningPoint]]]:
    """Group index-tagged candidates by format affinity.

    The chunk key is ``(base_format, block_height, block_width,
    bit_word)`` -- every distinct format a chunk's candidates build (the
    key determines ``TuningPoint.format_key`` up to slicing/compression)
    belongs to that chunk alone, so conversions stay worker-local.
    Chunks preserve first-occurrence order and candidates keep their
    enumeration order within a chunk.
    """
    groups: dict[tuple, list[tuple[int, TuningPoint]]] = {}
    for index, point in items:
        key = (
            point.base_format,
            point.block_height,
            point.block_width,
            point.bit_word,
        )
        groups.setdefault(key, []).append((index, point))
    return list(groups.values())


def _crash_worker(parent_pid: int) -> None:
    """Die the way a real pool worker does (``tuner.worker_crash``).

    In a forked/spawned pool process this is an uncatchable hard exit --
    the parent observes ``BrokenProcessPool``.  In-process executions
    (thread pools, the serial fallback) must not kill the interpreter,
    so they raise :class:`WorkerCrashError` instead, which
    :func:`run_parallel` treats as the same lost-chunk signal.
    """
    if os.getpid() != parent_pid:
        os._exit(1)
    raise WorkerCrashError("tuning worker killed mid-chunk (injected)")


def evaluate_candidates(
    items: list[tuple[int, TuningPoint]],
    csr,
    x,
    device: DeviceSpec,
    fmt_cache: FormatCache,
    plan_cache: KernelPlanCache,
    deadline: Deadline | None = None,
    crash_after: int | None = None,
    parent_pid: int | None = None,
    on_outcome=None,
    backend: str = "faithful",
) -> list[CandidateOutcome]:
    """Evaluate candidates in order, mirroring the serial tuner loop.

    A failing candidate is quarantined and counted by reason instead of
    aborting; genuine bugs (non-:class:`ReproError`) still propagate.
    An expired ``deadline`` stops the walk cooperatively -- completed
    outcomes are returned, the rest are simply absent (the tuner marks
    the result partial).  ``crash_after`` is the ``tuner.worker_crash``
    injection point: the worker dies after that many candidates, losing
    its chunk.  ``on_outcome`` fires per completed candidate (the
    serial checkpoint-journaling hook).  ``backend`` names the
    :mod:`repro.backends` execution backend candidates are timed on --
    the one they will serve on, so the speed ranking and the production
    path agree.
    """
    # Imported here: repro.tuning.tuner imports this module at top
    # level; the deferred import breaks the cycle (and re-runs cheaply
    # in spawned workers).
    from ..backends.base import get_backend
    from .tuner import Evaluation

    exec_backend = get_backend(backend)
    timing = TimingModel(device)
    nnz = int(csr.nnz)
    outcomes: list[CandidateOutcome] = []

    def emit(outcome: CandidateOutcome) -> None:
        outcomes.append(outcome)
        if on_outcome is not None:
            on_outcome(outcome)

    for pos, (index, point) in enumerate(items):
        if deadline is not None and deadline.expired():
            break
        if crash_after is not None and pos >= crash_after:
            _crash_worker(parent_pid if parent_pid is not None else -1)
        t0 = time.perf_counter()
        try:
            fmt = fmt_cache.get(point)
        except ReproError as exc:
            emit(
                CandidateOutcome(
                    index=index,
                    point=point,
                    evaluation=None,
                    skip_reason=type(exc).__name__,
                    format_skipped=True,
                    wall_s=time.perf_counter() - t0,
                )
            )
            continue
        plan_cache.get(point)  # compile (or reuse) the plan
        try:
            result = exec_backend.execute(fmt, x, device, config=point.kernel)
        except ReproError as exc:
            emit(
                CandidateOutcome(
                    index=index,
                    point=point,
                    evaluation=None,
                    skip_reason=type(exc).__name__,
                    wall_s=time.perf_counter() - t0,
                )
            )
            continue
        breakdown = timing.estimate(result.stats)
        emit(
            CandidateOutcome(
                index=index,
                point=point,
                evaluation=Evaluation(
                    point=point,
                    time_s=breakdown.t_total,
                    gflops=breakdown.gflops(nnz),
                    breakdown=breakdown,
                ),
                wall_s=time.perf_counter() - t0,
            )
        )
    return outcomes


def _evaluate_chunk(payload) -> ChunkResult:
    """Worker entry point: evaluate one chunk with worker-local caches.

    ``payload`` is ``(csr, x, device, items, compile_cost)`` optionally
    followed by ``(deadline_s, crash_after, parent_pid, backend,
    shared)`` -- the parent serializes the deadline as remaining seconds
    (a ticking clock does not pickle) and the worker rebuilds it
    locally.  When ``shared`` is set, ``csr`` is ``None`` and the worker
    maps the operand out of the parent's :class:`SharedArena` instead of
    unpickling a private copy (zero-copy; the rebuilt CSR's buffers
    point straight at the shared pages).
    """
    csr, x, device, items, compile_cost = payload[:5]
    extras = payload[5:]
    deadline_s = extras[0] if len(extras) > 0 else None
    crash_after = extras[1] if len(extras) > 1 else None
    parent_pid = extras[2] if len(extras) > 2 else None
    backend = extras[3] if len(extras) > 3 else "faithful"
    shared = extras[4] if len(extras) > 4 else None

    arena = None
    attaches = 0
    if csr is None and shared is not None:
        import scipy.sparse as sp

        from ..core.shm import SharedArena

        arena = SharedArena.attach(shared["descriptor"])
        attaches = 1
        csr = sp.csr_matrix(
            (arena.view("data"), arena.view("indices"), arena.view("indptr")),
            shape=tuple(shared["shape"]),
            copy=False,
        )
    fmt_cache = None
    try:
        fmt_cache = FormatCache(csr)
        plan_cache = KernelPlanCache(compile_cost_s=compile_cost)
        deadline = Deadline(max(deadline_s, 0.0)) if deadline_s is not None else None
        outcomes = evaluate_candidates(
            items,
            csr,
            x,
            device,
            fmt_cache,
            plan_cache,
            deadline=deadline,
            crash_after=crash_after,
            parent_pid=parent_pid,
            backend=backend,
        )
        return ChunkResult(
            outcomes=outcomes,
            conversions=fmt_cache.conversions,
            plan_hits=plan_cache.hits,
            plan_misses=plan_cache.misses,
            shm_attaches=attaches,
        )
    finally:
        if arena is not None:
            # Drop the chunk's references to the views before unmapping;
            # a still-live view keeps the mapping alive regardless.
            csr = fmt_cache = None
            arena.close()


def _make_pool(executor: str, max_workers: int):
    if executor == "thread":
        return ThreadPoolExecutor(max_workers=max_workers)
    import multiprocessing as mp

    if "fork" in mp.get_all_start_methods():
        # Fork is both the fastest start method and the one that keeps
        # already-imported modules (no per-worker re-import cost).
        return ProcessPoolExecutor(
            max_workers=max_workers, mp_context=mp.get_context("fork")
        )
    return ProcessPoolExecutor(max_workers=max_workers)


def run_parallel(
    items: list[tuple[int, TuningPoint]],
    csr,
    x,
    device: DeviceSpec,
    workers: int,
    executor: str,
    compile_cost: float,
    deadline: Deadline | None = None,
    retry: RetryPolicy | None = None,
    on_chunk=None,
    report: ParallelReport | None = None,
    backend: str = "faithful",
    share_operand: bool = False,
) -> list[CandidateOutcome]:
    """Fan chunks out over a pool; return outcomes in enumeration order.

    Worker death does not abort the run: chunks whose future fails with
    a broken-pool error (or :class:`WorkerCrashError` on thread pools)
    are requeued onto a rebuilt pool under ``retry``
    (:data:`DEFAULT_POOL_RETRY` when ``None``), and once the rebuild
    budget is spent the stragglers are evaluated serially in-process.
    ``on_chunk(ChunkResult)`` fires as each chunk completes (the
    checkpoint-journaling hook); ``report`` is filled in place with the
    containment bookkeeping.  ``backend`` picks the execution backend
    candidates are timed on; ``share_operand=True`` publishes the CSR's
    buffers once in a :class:`~repro.core.shm.SharedArena` so every
    chunk payload carries a tiny descriptor instead of a pickled matrix
    copy -- workers map the same physical pages.
    """
    if executor not in EXECUTORS:
        raise TuningError(f"executor must be one of {EXECUTORS}, got {executor!r}")
    chunks = chunk_candidates(items)
    if not chunks:
        return []
    retry = retry if retry is not None else DEFAULT_POOL_RETRY
    plan = active_plan()
    parent_pid = os.getpid()

    arena = None
    shared = None
    if share_operand:
        from ..core.shm import SharedArena

        arena = SharedArena.create(
            {"data": csr.data, "indices": csr.indices, "indptr": csr.indptr}
        )
        shared = {"descriptor": arena.descriptor(), "shape": list(csr.shape)}
        if report is not None:
            report.shm_bytes = arena.nbytes

    def payload_for(chunk, inject: bool):
        # The crash point is drawn in the parent at dispatch time: the
        # draw consumes the fault site's budget deterministically, so a
        # ``count=1`` plan kills exactly one worker no matter how the
        # pool schedules chunks -- and the requeued chunk succeeds.
        crash_after = (
            plan.worker_crash(len(chunk)) if (inject and plan is not None) else None
        )
        deadline_s = (
            deadline.remaining()
            if deadline is not None and deadline.seconds is not None
            else None
        )
        return (
            None if shared is not None else csr,
            x,
            device,
            chunk,
            compile_cost,
            deadline_s,
            crash_after,
            parent_pid,
            backend,
            shared,
        )

    def emit(result: ChunkResult) -> None:
        results.append(result)
        if on_chunk is not None:
            on_chunk(result)

    results: list[ChunkResult] = []
    try:
        pending = list(range(len(chunks)))
        attempt = 1
        while pending and attempt <= retry.max_attempts:
            max_workers = max(1, min(workers, len(pending)))
            pool = _make_pool(executor, max_workers)
            lost: list[int] = []
            try:
                futures = [
                    (pool.submit(_evaluate_chunk, payload_for(chunks[ci], True)), ci)
                    for ci in pending
                ]
                for fut, ci in futures:
                    try:
                        emit(fut.result())
                    except (BrokenExecutor, WorkerCrashError):
                        # A broken process pool fails *every* in-flight
                        # future, so one crash can lose several chunks --
                        # all of them land back on the requeue list.
                        lost.append(ci)
                        if report is not None:
                            report.lost_chunks += 1
            finally:
                pool.shutdown(wait=False, cancel_futures=True)
            pending = lost
            attempt += 1
            if pending and attempt <= retry.max_attempts:
                if report is not None:
                    report.pool_rebuilds += 1
                delay = retry.delay_s(attempt - 1)
                if delay > 0:
                    time.sleep(delay)

        # Past the rebuild budget: finish the stragglers in-process.  No
        # injection here (the parent must survive) -- a chunk that keeps
        # killing workers still gets evaluated.
        for ci in pending:
            if report is not None:
                report.serial_fallback_chunks += 1
            emit(_evaluate_chunk(payload_for(chunks[ci], False)))
    finally:
        if arena is not None:
            # Owner close: unmap and unlink.  Workers that already
            # mapped the segment keep valid pages until they exit.
            arena.close()

    if report is not None:
        report.shm_attaches = sum(r.shm_attaches for r in results)
    outcomes = [o for result in results for o in result.outcomes]
    outcomes.sort(key=lambda o: o.index)
    if report is not None and deadline is not None and len(outcomes) < len(items):
        report.deadline_expired = deadline.expired()
    return outcomes
