"""The auto-tuner's parameter space (paper Table 1).

A :class:`TuningPoint` bundles the format-side choices (BCCOO vs BCCOO+,
block dimensions, bit-flag word type, column compression, slice count)
with the kernel-side :class:`~repro.kernels.config.YaSpMVConfig`.  Points
are hashable so the kernel-plan cache can key on them.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from ..errors import TuningError
from ..kernels.config import YaSpMVConfig

__all__ = [
    "TuningPoint",
    "BASE_FORMATS",
    "BIT_WORDS",
    "BLOCK_WIDTHS",
    "BLOCK_HEIGHTS",
    "WORKGROUP_SIZES",
    "SLICE_COUNTS",
]

#: Table 1 enumerations.
BLOCK_WIDTHS: tuple[int, ...] = (1, 2, 4)
BLOCK_HEIGHTS: tuple[int, ...] = (1, 2, 3, 4)
BIT_WORDS: tuple[str, ...] = ("uint8", "uint16", "uint32")
WORKGROUP_SIZES: tuple[int, ...] = (64, 128, 256, 512)
SLICE_COUNTS: tuple[int, ...] = (1, 2, 4, 8, 16, 32)
#: Storage families the cocktail search picks among.  ``"bccoo"`` covers
#: both BCCOO and BCCOO+ (the slice count decides); the related-work
#: formats carry no block/bit-flag/slice axes of their own.
BASE_FORMATS: tuple[str, ...] = ("bccoo", "merge_csr", "rgcsr")


@dataclass(frozen=True)
class TuningPoint:
    """One candidate configuration: format choices + kernel choices."""

    block_height: int = 1
    block_width: int = 1
    bit_word: str = "uint32"
    col_compress: bool = True
    slice_count: int = 1
    base_format: str = "bccoo"
    kernel: YaSpMVConfig = field(default_factory=YaSpMVConfig)

    def __post_init__(self):
        if self.base_format not in BASE_FORMATS:
            raise TuningError(
                f"base_format {self.base_format!r} not in {BASE_FORMATS}"
            )
        if self.block_height not in BLOCK_HEIGHTS:
            raise TuningError(
                f"block_height {self.block_height} not in {BLOCK_HEIGHTS}"
            )
        if self.block_width not in BLOCK_WIDTHS:
            raise TuningError(f"block_width {self.block_width} not in {BLOCK_WIDTHS}")
        if self.bit_word not in BIT_WORDS:
            raise TuningError(f"bit_word {self.bit_word!r} not in {BIT_WORDS}")
        if self.slice_count not in SLICE_COUNTS:
            raise TuningError(f"slice_count {self.slice_count} not in {SLICE_COUNTS}")
        if self.base_format != "bccoo":
            # The related-work formats have no blocking/slicing axes:
            # reject points that would silently ignore those knobs.
            if self.slice_count != 1:
                raise TuningError(
                    f"{self.base_format} does not slice "
                    f"(slice_count={self.slice_count})"
                )
            if self.block_height != 1 or self.block_width != 1:
                raise TuningError(
                    f"{self.base_format} is unblocked "
                    f"(got {self.block_height}x{self.block_width})"
                )

    @property
    def format_name(self) -> str:
        """``"bccoo"``/``"bccoo+"`` (BCCOO+ iff sliced), or the
        related-work base format's registry name."""
        if self.base_format != "bccoo":
            return self.base_format
        return "bccoo+" if self.slice_count > 1 else "bccoo"

    @property
    def bit_word_dtype(self) -> np.dtype:
        return np.dtype(self.bit_word)

    def format_key(self) -> tuple:
        """Hashable key identifying the format build (conversion cache)."""
        return (
            self.format_name,
            self.block_height,
            self.block_width,
            self.bit_word,
            self.col_compress,
            self.slice_count,
            self.kernel.effective_tile if self.col_compress else 0,
        )

    def plan_key(self) -> tuple:
        """Hashable key identifying the compiled kernel specialization.

        Mirrors what the paper's OpenCL code generator bakes into a
        kernel binary: everything except the matrix contents.
        """
        return self.format_key() + (
            self.kernel.workgroup_size,
            self.kernel.strategy,
            self.kernel.reg_size,
            self.kernel.shm_size,
            self.kernel.tile_size,
            self.kernel.result_cache_multiple,
            self.kernel.transpose,
            self.kernel.use_texture,
            self.kernel.scan_mode,
            self.kernel.cross_wg,
            self.kernel.fine_grain,
        )

    def with_kernel(self, **kw) -> "TuningPoint":
        """Copy with kernel-config fields overridden."""
        return replace(self, kernel=self.kernel.with_overrides(**kw))
