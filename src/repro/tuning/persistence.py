"""Persisting tuned configurations.

Auto-tuning costs seconds per matrix; production libraries persist the
winner so later runs skip the search (the paper's framework keeps its
compiled-kernel hash table for the same reason).  This module stores
:class:`TuningPoint` records in a small JSON file keyed by a structural
matrix fingerprint plus the device name:

* the fingerprint hashes the sparsity *structure* (shape, nnz, row-
  pointer and column arrays), not the values -- tuned configurations
  depend only on structure;
* entries are versioned; loading an entry written by an incompatible
  schema returns a miss instead of an error.

The file itself is crash- and concurrency-safe: writes re-read the file
under an advisory lock before merging (so two processes tuning
different matrices never clobber each other's entries), the replace is
atomic and fsync'd (a crash mid-``put`` leaves the previous complete
file), the top-level payload carries a ``schema`` field, and an
unparseable file is *quarantined* -- renamed to ``<name>.corrupt`` and
treated as empty -- instead of wedging every later run.

Typical use::

    store = TuningStore("~/.cache/repro-tuning.json")
    point = store.get(A, device) or tune_and_put(store, A, device)
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path

import numpy as np

from ..errors import TuningError
from ..fault.injection import active_plan
from ..gpu.device import DeviceSpec
from ..kernels.config import YaSpMVConfig
from ..obs import active_observer
from ..util import as_csr
from .parameters import TuningPoint

try:  # pragma: no cover - platform-dependent
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

__all__ = ["matrix_fingerprint", "TuningStore"]

#: Per-entry payload version (embedded in each entry as ``version``).
_SCHEMA_VERSION = 1

#: Top-level file layout version.  Version 2 wraps the entries as
#: ``{"schema": 2, "entries": {...}}``; the version-1 layout (a bare
#: entry dict) is still accepted on read.
_STORE_SCHEMA = 2


@contextlib.contextmanager
def _locked(path: Path):
    """Advisory exclusive lock for read-modify-write on ``path``.

    Uses ``flock`` on a sibling ``.lock`` file so the data file itself
    can still be atomically replaced while held.  On platforms without
    ``fcntl`` the lock degrades to a no-op (single-process safety only).
    """
    if fcntl is None:  # pragma: no cover - non-POSIX
        yield
        return
    lock_path = path.with_suffix(path.suffix + ".lock")
    lock_path.parent.mkdir(parents=True, exist_ok=True)
    with open(lock_path, "w") as fh:
        fcntl.flock(fh, fcntl.LOCK_EX)
        try:
            yield
        finally:
            fcntl.flock(fh, fcntl.LOCK_UN)


def matrix_fingerprint(matrix) -> str:
    """Structural hash of a sparse matrix (values excluded)."""
    csr = as_csr(matrix)
    h = hashlib.sha256()
    h.update(np.asarray(csr.shape, dtype=np.int64).tobytes())
    h.update(np.int64(csr.nnz).tobytes())
    h.update(np.ascontiguousarray(csr.indptr, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(csr.indices, dtype=np.int64).tobytes())
    return h.hexdigest()[:24]


def _encode(point: TuningPoint) -> dict:
    return {
        "version": _SCHEMA_VERSION,
        "block_height": point.block_height,
        "block_width": point.block_width,
        "bit_word": point.bit_word,
        "col_compress": point.col_compress,
        "slice_count": point.slice_count,
        "base_format": point.base_format,
        "kernel": asdict(point.kernel),
    }


def _decode(blob: dict) -> TuningPoint | None:
    if blob.get("version") != _SCHEMA_VERSION:
        return None
    try:
        return TuningPoint(
            block_height=blob["block_height"],
            block_width=blob["block_width"],
            bit_word=blob["bit_word"],
            col_compress=blob["col_compress"],
            slice_count=blob["slice_count"],
            # Entries written before the related-work formats existed
            # carry no base_format; they are all BCCOO.
            base_format=blob.get("base_format", "bccoo"),
            kernel=YaSpMVConfig(**blob["kernel"]),
        )
    except Exception:
        # Malformed or future-version entry: treat as a cache miss.
        return None


class TuningStore:
    """JSON-backed store of tuned configurations.

    The file is read lazily and written eagerly (every ``put`` persists),
    so concurrent readers see a consistent snapshot and a crashed run
    loses at most nothing.
    """

    def __init__(self, path):
        self.path = Path(path).expanduser()
        self._entries: dict[str, dict] | None = None
        #: Lookup statistics for this store instance.  An *invalidation*
        #: is a lookup that found an entry but could not use it (schema
        #: version mismatch or malformed payload); it also counts as a
        #: miss, so ``hits + misses`` equals total lookups.
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        #: Store files quarantined as corrupt (renamed ``.corrupt``).
        self.corruptions = 0

    # ------------------------------------------------------------------ #

    def _key(self, matrix, device: DeviceSpec | str) -> str:
        dev = device if isinstance(device, str) else device.name
        return f"{dev}:{matrix_fingerprint(matrix)}"

    def _quarantine(self) -> None:
        """Sideline an unparseable store file and continue empty.

        The file is renamed to ``<name>.corrupt`` (preserving the bytes
        for post-mortem) so the next write starts a fresh, valid store
        instead of failing on every run.
        """
        self.corruptions += 1
        target = self.path.with_suffix(self.path.suffix + ".corrupt")
        try:
            os.replace(self.path, target)
        except OSError:
            pass
        obs = active_observer()
        if obs.enabled:
            obs.counter(
                "store.corruptions", "tuning-store files quarantined as corrupt"
            ).inc()

    def _read_file(self) -> dict[str, dict]:
        """Parse the on-disk file into an entry dict (never raises).

        Accepts both the current ``{"schema": 2, "entries": {...}}``
        layout and the legacy bare-dict layout.  Unparseable files are
        quarantined (see :meth:`_quarantine`); files from an unknown
        future schema are left in place and treated as empty.
        """
        if not self.path.exists():
            return {}
        try:
            text = self.path.read_text(encoding="utf-8")
        except OSError:
            return {}
        plan = active_plan()
        if plan is not None:
            garbled = plan.corrupt_store_text(text)
            if garbled is not None:
                # Fault injection garbles the *on-disk* file so the real
                # quarantine path (rename + fresh store) is exercised.
                self.path.write_text(garbled, encoding="utf-8")
                text = garbled
        try:
            blob = json.loads(text)
        except json.JSONDecodeError:
            self._quarantine()
            return {}
        if not isinstance(blob, dict):
            self._quarantine()
            return {}
        if "schema" not in blob:
            # Legacy (version-1) layout: the entries are the top level.
            return blob
        if blob.get("schema") == _STORE_SCHEMA and isinstance(
            blob.get("entries"), dict
        ):
            return blob["entries"]
        # A future schema this build cannot read: leave the file alone
        # (a newer build owns it) and act as an empty store.
        return {}

    def _write_file(self, entries: dict[str, dict]) -> None:
        """Atomically persist ``entries`` (tmp + fsync + rename)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"schema": _STORE_SCHEMA, "entries": entries},
            indent=1,
            sort_keys=True,
        )
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def _load(self) -> dict[str, dict]:
        if self._entries is None:
            self._entries = self._read_file()
        return self._entries

    # ------------------------------------------------------------------ #

    def get(self, matrix, device: DeviceSpec | str) -> TuningPoint | None:
        """Stored configuration for (matrix structure, device), or None."""
        blob = self._load().get(self._key(matrix, device))
        if blob is None:
            self.misses += 1
            return None
        point = _decode(blob)
        if point is None:
            self.invalidations += 1
            self.misses += 1
            return None
        self.hits += 1
        return point

    def put(self, matrix, device: DeviceSpec | str, point: TuningPoint) -> None:
        """Persist a configuration (overwrites any previous entry).

        The write is a locked read-modify-write: the file is *re-read*
        under the lock and the new entry merged into what is actually on
        disk -- not into this instance's possibly stale snapshot -- so
        concurrent writers updating different keys both survive (the
        classic lost-update race).  The replace itself is atomic and
        fsync'd, so a crash mid-``put`` leaves the previous complete
        file.
        """
        key = self._key(matrix, device)
        blob = _encode(point)
        with _locked(self.path):
            entries = self._read_file()
            entries[key] = blob
            self._write_file(entries)
            self._entries = entries

    def __len__(self) -> int:
        return len(self._load())
